//! Biased-policy lineage study (§3.5): MTM introduced the read/write
//! copy-engine split; Vulcan adds thread-level ownership (targeted
//! shootdowns, private-first priority) and fairness on top. This bench
//! runs the lineage on one workload with controllable sharing structure:
//! PageRank's mix of private edge shards, private next-rank writes and a
//! shared rank array exercises every one of Table 1's four classes. The
//! workload × variant grid lives in [`vulcan_bench::suite::bias_grid`].

use vulcan::prelude::Table;
use vulcan_bench::suite::{bias_grid, SuiteOpts, BIAS_VARIANTS, BIAS_WORKLOADS};
use vulcan_bench::{init_threads, save_json_or_exit};

fn main() {
    init_threads();
    let results = bias_grid(&SuiteOpts::full()).run();

    let mut table = Table::new(
        "biased-policy lineage (same PEBS profiler for every variant)",
        &["workload", "variant", "ops/s", "FTHR", "app stall (Mcyc)"],
    );
    let mut rows = Vec::new();
    for (wi, which) in BIAS_WORKLOADS.into_iter().enumerate() {
        for (vi, label) in BIAS_VARIANTS.into_iter().enumerate() {
            // Grid order: workload-major, variant-minor.
            let res = &results[wi * BIAS_VARIANTS.len() + vi];
            let w = &res.per_workload[0];
            table.row(&[
                which.into(),
                label.into(),
                format!("{:.0}", w.mean_ops_per_sec),
                format!("{:.3}", w.mean_fthr),
                format!("{:.1}", w.stall_cycles.0 as f64 / 1e6),
            ]);
            rows.push(vulcan_json::Value::Object(
                vulcan_json::Map::new()
                    .with("workload", which)
                    .with("variant", label)
                    .with("ops_per_sec", w.mean_ops_per_sec)
                    .with("fthr", w.mean_fthr)
                    .with("stall_cycles", w.stall_cycles.0),
            ));
        }
    }
    table.print();
    println!(
        "\nMTM pays process-wide shootdowns and global preparation for every \
         sync copy; Vulcan's ownership-targeted mechanism cuts the stall, and \
         Table 1's priorities put the cheap (private, read-intensive) pages \
         first. The no-bias variant shows what the queues themselves add."
    );
    save_json_or_exit("bias_study", &rows);
}
