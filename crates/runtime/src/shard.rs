//! Sharded execution of the quantum's execute + profile phases.
//!
//! A cell's workloads are partitioned across *shards* — core-disjoint
//! groups of workloads, each swept by its own OS thread against a
//! leased [`Machine::shard_view`] and its owned cores' TLBs (moved out
//! wholesale, placeholders left behind — never copied). At the
//! quantum boundary the shards' typed deltas (bandwidth bytes, unused
//! lease frames, per-core TLB state) are merged back in fixed shard
//! order, so the result is byte-identical for any shard count.
//!
//! # Determinism contract
//!
//! The parallel path runs only when every condition below holds;
//! otherwise the quantum falls back to the sequential sweep:
//!
//! 1. **Core disjointness.** Workloads whose pinned core ranges overlap
//!    share per-core TLBs (capacity evictions couple them), so
//!    [`plan_shards`] unions them into one group. Sharding needs at
//!    least two groups.
//! 2. **The plenty guard.** Every tier must hold at least
//!    `Σ demand_bound(w)` free pages — the most any workload can still
//!    demand-allocate this quantum. Under the guard every fault is
//!    served from its *preferred* tier in both schedules (fallback and
//!    shadow-reclaim stay unreachable) and the THP `free ≥ 512` check
//!    passes identically, so per-access outcomes depend only on tiers,
//!    never on which frame index was handed out.
//! 3. **No observers with global ordering.** Telemetry event traces and
//!    fault-injection schedules are ordered across workloads; both force
//!    the sequential path.
//!
//! Within a shard, workloads execute in ascending index order —
//! the same relative order the sequential sweep uses.

use std::collections::BTreeSet;

use vulcan_sim::{CoreId, Machine, Nanos, TierKind};
use vulcan_telemetry::EventKind;
use vulcan_vm::TlbArray;

use crate::access::run_thread_quantum;
use crate::state::{SystemState, WorkloadState};

/// How a quantum's execute phase actually ran. Exposed via
/// [`SimRunner::last_execute_mode`](crate::SimRunner::last_execute_mode)
/// so tests can assert the parallel path was exercised; deliberately
/// *not* part of [`QuantumOutcome`](crate::QuantumOutcome), whose values
/// are identical across shard counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecuteMode {
    /// The monolithic sweep: one thread, workloads in index order.
    Sequential,
    /// The sharded sweep ran with this many core-disjoint shards.
    Sharded {
        /// Effective shard count (`min(requested, core-disjoint groups)`).
        shards: usize,
    },
}

/// The shard partition of one quantum: which workload indices each
/// shard sweeps, plus the underlying core-disjoint groups.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    /// Workload indices per shard, each ascending. Groups are assigned
    /// round-robin, so `shards.len() == min(requested, groups.len())`.
    pub shards: Vec<Vec<usize>>,
    /// Core-disjoint workload groups, ordered by least member index.
    pub groups: Vec<Vec<usize>>,
}

/// Partition the started workloads into core-disjoint groups and assign
/// the groups round-robin onto at most `requested` shards.
///
/// Two workloads land in the same group iff their pinned core sets are
/// connected (directly or transitively) — per-core TLBs carry
/// cross-ASID capacity evictions, so core-sharing workloads must be
/// swept by the same shard to preserve the sequential interleaving.
pub fn plan_shards(st: &SystemState, requested: usize) -> ShardPlan {
    // Merge-on-intersect union of core sets; one pass per workload.
    let mut sets: Vec<(BTreeSet<CoreId>, Vec<usize>)> = Vec::new();
    for (wi, ws) in st.workloads.iter().enumerate() {
        if !ws.started {
            continue;
        }
        let mut cores = st
            .machine
            .topology
            .cores_of(ws.process.sim_threads().iter().copied());
        let mut members = vec![wi];
        let mut kept = Vec::new();
        for (gc, gm) in sets.drain(..) {
            if gc.iter().any(|c| cores.contains(c)) {
                cores.extend(gc);
                members.extend(gm);
            } else {
                kept.push((gc, gm));
            }
        }
        sets = kept;
        members.sort_unstable();
        sets.push((cores, members));
    }
    sets.sort_by_key(|(_, m)| m[0]);
    let groups: Vec<Vec<usize>> = sets.into_iter().map(|(_, m)| m).collect();

    let effective = requested.min(groups.len());
    let mut shards = vec![Vec::new(); effective];
    for (g, members) in groups.iter().enumerate() {
        shards[g % effective].extend(members.iter().copied());
    }
    for s in &mut shards {
        s.sort_unstable();
    }
    ShardPlan { shards, groups }
}

/// Upper bound on pages workload `w` can still demand-allocate: its
/// spec RSS (rounded up to whole 2 MiB regions under THP, which may map
/// past the RSS tail) minus what is already mapped.
pub(crate) fn demand_bound(ws: &WorkloadState) -> u64 {
    let rss = ws.spec.rss_pages();
    let ceiling = if ws.spec.thp {
        let span = vulcan_sim::HUGE_PAGE_PAGES as u64;
        rss.div_ceil(span) * span
    } else {
        rss
    };
    ceiling.saturating_sub(ws.process.space.rss_pages())
}

/// Run the quantum's execute + profile phases, sharded when the
/// determinism contract allows and `requested > 1`, sequentially
/// otherwise. Returns how the sweep actually ran.
pub(crate) fn execute_quantum(
    st: &mut SystemState,
    quantum: Nanos,
    requested: usize,
    batched: bool,
) -> ExecuteMode {
    if requested > 1 && !st.telemetry.is_enabled() && !st.machine.faults.is_enabled() {
        if let Some(shards) = try_execute_sharded(st, quantum, requested, batched) {
            return ExecuteMode::Sharded { shards };
        }
    }
    execute_sequential(st, quantum, batched);
    ExecuteMode::Sequential
}

/// The monolithic sweep: every thread of every started workload, then
/// the bandwidth roll, then the profiling epochs.
fn execute_sequential(st: &mut SystemState, quantum: Nanos, batched: bool) {
    // Execute every thread of every started workload.
    for wi in 0..st.workloads.len() {
        if !st.workloads[wi].started {
            continue;
        }
        // Split the workload out of the Vec to borrow machine+tlbs
        // mutably alongside it.
        let (machine, tlbs) = (&mut st.machine, &mut st.tlbs);
        let ws = &mut st.workloads[wi];
        execute_workload(machine, tlbs, ws, quantum, batched);
    }

    // Roll bandwidth contention into the next quantum.
    st.machine.end_quantum(quantum);

    // Profiling epochs (daemon side). Freshly poisoned PTEs must be
    // flushed from the workload's TLBs so the hint faults fire.
    for ws in &mut st.workloads {
        if !ws.started {
            continue;
        }
        let out = ws.profiler.epoch(&mut ws.process.space);
        ws.stats.daemon_cycles += out.cycles;
        if st.telemetry.is_enabled() {
            st.telemetry
                .record_phase(&ws.spec.name, "profiler.epoch", out.cycles);
            st.telemetry.emit(
                st.now,
                Some(&ws.spec.name),
                EventKind::ProfilerScan {
                    pages_poisoned: out.poisoned.len() as u64,
                },
            );
        }
        if !out.poisoned.is_empty() {
            let cores = st
                .machine
                .topology
                .cores_of(ws.process.sim_threads().iter().copied());
            for vpn in out.poisoned {
                st.tlbs
                    .invalidate_on(cores.iter().copied(), ws.process.asid, vpn);
            }
        }
    }
}

/// One workload's slice of the execute phase: charge pending
/// sync-migration stall against the budget, sweep every thread, and
/// account the blocked time.
fn execute_workload(
    machine: &mut Machine,
    tlbs: &mut TlbArray,
    ws: &mut WorkloadState,
    quantum: Nanos,
    batched: bool,
) {
    let n_threads = ws.spec.n_threads;
    // Charge pending sync-migration stall against this quantum.
    let stall_per_thread = ws.pending_stall / n_threads as u64;
    ws.pending_stall = Nanos::ZERO;
    let budget = quantum.saturating_sub(stall_per_thread);
    for t in 0..n_threads {
        run_thread_quantum(machine, tlbs, ws, t, budget, batched);
    }
    // Blocked time is wall time: it counts against throughput
    // (ops / active second) and inflates the quantum's op
    // latencies — on-critical-path migration is not free.
    let blocked = stall_per_thread * n_threads as u64;
    ws.stats.active_q += blocked;
    ws.stats.op_latency_q += blocked;
}

/// Attempt the sharded sweep; `None` means a contract condition failed
/// and the caller must run sequentially. On success returns the
/// effective shard count.
fn try_execute_sharded(
    st: &mut SystemState,
    quantum: Nanos,
    requested: usize,
    batched: bool,
) -> Option<usize> {
    let plan = plan_shards(st, requested);
    let n_shards = plan.shards.len();
    if n_shards <= 1 {
        return None;
    }

    // The plenty guard: every chain tier must cover every workload's
    // residual demand, or allocation outcomes become schedule-dependent.
    // Iterate the machine's chain, not `TierKind::ALL` — absent tiers
    // have zero capacity and would veto sharding forever.
    let total_bound: u64 = st
        .workloads
        .iter()
        .filter(|w| w.started)
        .map(demand_bound)
        .sum();
    for &tier in st.machine.spec().chain() {
        if st.machine.free_pages(tier) < total_bound {
            return None;
        }
    }

    // Per-shard residual demand and owned cores (disjoint by plan).
    let shard_bounds: Vec<u64> = plan
        .shards
        .iter()
        .map(|s| s.iter().map(|&wi| demand_bound(&st.workloads[wi])).sum())
        .collect();
    let shard_cores: Vec<Vec<CoreId>> = plan
        .shards
        .iter()
        .map(|s| {
            let mut cores = BTreeSet::new();
            for &wi in s {
                cores.extend(
                    st.machine
                        .topology
                        .cores_of(st.workloads[wi].process.sim_threads().iter().copied()),
                );
            }
            cores.into_iter().collect()
        })
        .collect();

    // Lease frames and per-core TLBs, and build the shard views, in
    // fixed shard order. The guard above guarantees every frame lease
    // comes back full; the TLB lease *moves* each owned core's TLB into
    // the shard (placeholders left behind) so no TLB state is copied.
    let mut views: Vec<(Machine, TlbArray)> = Vec::with_capacity(n_shards);
    let chain: Vec<TierKind> = st.machine.spec().chain().to_vec();
    for (&bound, cores) in shard_bounds.iter().zip(&shard_cores) {
        let leases: Vec<Vec<_>> = chain
            .iter()
            .map(|&tier| {
                let lease = st.machine.allocator_mut(tier).alloc_many(bound);
                debug_assert_eq!(
                    lease.len() as u64,
                    bound,
                    "plenty guard admitted a short lease on {tier:?}"
                );
                lease
            })
            .collect();
        views.push((st.machine.shard_view(&leases), st.tlbs.lease_cores(cores)));
    }

    // Hand each shard exclusive `&mut` access to its workloads.
    let mut slots: Vec<Option<&mut WorkloadState>> = st.workloads.iter_mut().map(Some).collect();
    let mut tasks: Vec<(Machine, TlbArray, Vec<&mut WorkloadState>)> = Vec::with_capacity(n_shards);
    for (members, (view, tlbs)) in plan.shards.iter().zip(views) {
        let workloads = members.iter().filter_map(|&wi| slots[wi].take()).collect();
        tasks.push((view, tlbs, workloads));
    }

    #[cfg(feature = "oracle")]
    let now_ns = st.now.0;

    // Fan out. `std::thread::scope` (not the worker pool) because the
    // cell sweep may itself run inside a pooled bench task, and join
    // order — hence result order — must stay the spawn order.
    let results: Vec<(Machine, TlbArray)> = std::thread::scope(|scope| {
        let handles: Vec<_> = tasks
            .into_iter()
            .map(|(mut view, mut tlbs, mut workloads)| {
                scope.spawn(move || {
                    // Oracle builds: divergence reports from this shard
                    // carry the quantum's simulated time.
                    #[cfg(feature = "oracle")]
                    vulcan_oracle::set_now(now_ns);
                    run_shard(&mut view, &mut tlbs, &mut workloads, quantum, batched);
                    (view, tlbs)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });
    drop(slots);

    // Merge the typed deltas in fixed shard order: per-core TLB state
    // swaps back (cores are disjoint across shards), bandwidth bytes
    // and unused lease frames are absorbed by the real machine.
    for ((view, mut tlbs), cores) in results.into_iter().zip(shard_cores) {
        for core in cores {
            std::mem::swap(st.tlbs.core(core), tlbs.core(core));
        }
        st.machine.absorb_shard_view(view);
    }

    // Roll bandwidth contention into the next quantum, exactly where
    // the sequential sweep does.
    st.machine.end_quantum(quantum);
    Some(n_shards)
}

/// One shard's sweep: the execute phase for each owned workload in
/// ascending index order, then their profiling epochs. Telemetry is
/// guaranteed disabled on this path, so the sequential path's
/// epoch-recording branch has no counterpart here.
fn run_shard(
    machine: &mut Machine,
    tlbs: &mut TlbArray,
    workloads: &mut [&mut WorkloadState],
    quantum: Nanos,
    batched: bool,
) {
    for ws in workloads.iter_mut() {
        execute_workload(machine, tlbs, ws, quantum, batched);
    }
    for ws in workloads.iter_mut() {
        let out = ws.profiler.epoch(&mut ws.process.space);
        ws.stats.daemon_cycles += out.cycles;
        if !out.poisoned.is_empty() {
            let cores = machine
                .topology
                .cores_of(ws.process.sim_threads().iter().copied());
            for vpn in out.poisoned {
                tlbs.invalidate_on(cores.iter().copied(), ws.process.asid, vpn);
            }
        }
    }
}
