//! # vulcan-sim — tiered-memory hardware substrate
//!
//! The simulated machine underneath the Vulcan reproduction: simulated
//! time, a two-tier memory system (fast local DRAM + slow CXL-like far
//! memory), frame allocation, bandwidth contention, CPU topology, and the
//! calibrated cost model for memory accesses and page migration.
//!
//! The paper evaluates on real hardware (dual-socket Xeon 8378A with a
//! remote NUMA node emulating CXL, §5.1); this crate is the faithful
//! stand-in. Every cost constant is anchored to a number reported in the
//! paper — see [`costs`] for the calibration table.

#![warn(missing_docs)]

pub mod bandwidth;
pub mod costs;
pub mod event;
pub mod faults;
pub mod frame;
pub mod machine;
pub mod tier;
pub mod time;
pub mod topology;

pub use bandwidth::BandwidthTracker;
pub use costs::{AccessCosts, MigrationCosts, SinglePageBreakdown};
pub use event::EventQueue;
pub use faults::{FaultConfig, FaultPlan, FaultSite, FaultStats, N_FAULT_SITES};
pub use frame::{FrameAllocator, FrameId, OutOfFrames};
pub use machine::{Machine, MachineSpec};
pub use tier::{TierKind, TierSpec, HUGE_PAGE_PAGES, MAX_TIERS, PAGES_PER_PAPER_GB, PAGE_SIZE};
pub use time::{Cycles, Nanos, SimClock, CYCLES_PER_NANO};
pub use topology::{CoreId, SimThreadId, Topology};
