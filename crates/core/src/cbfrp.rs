//! Credit-Based Fair Resource Partitioning (Algorithm 1, §3.3).
//!
//! Fast memory is an entitlement of GFMC pages per co-located workload.
//! Each round:
//!
//! 1. every active workload is granted `min(demand, GFMC)` (lines 1–2);
//! 2. best-effort workloads *retain* allocation above GFMC they borrowed
//!    in earlier rounds, as far as the unclaimed pool allows (their pages
//!    are physically resident — this is the state the paper's reclaim arm
//!    operates on);
//! 3. remaining demand is served unit-by-unit from donors — workloads not
//!    using their entitlement — picking the donor with **minimum
//!    credits** first; every donated unit moves one credit from borrower
//!    to donor (the Karma-inspired ledger that yields long-term
//!    fairness). Latency-critical borrowers are strictly served first
//!    (lines 6–10);
//! 4. when no voluntary surplus remains, an LC borrower may **reclaim**
//!    units from a BE task holding more than its GFMC entitlement
//!    (lines 11–13).
//!
//! Invariant: the sum of allocations never exceeds the active workloads'
//! combined entitlement (the fast-tier capacity).

/// Service class assigned by the classifier (§3.3 classifies black-box
/// workloads by utilization patterns).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ServiceClass {
    /// Latency-critical: prioritized in CBFRP.
    LatencyCritical,
    /// Best-effort: donates first, reclaimed from when LC needs units.
    BestEffort,
}

/// Persistent CBFRP state: the credit ledger and last round's partition.
///
/// ```
/// use vulcan_core::{Cbfrp, ServiceClass};
///
/// // Two workloads, 1000-page entitlements. The LC demands 1500; the BE
/// // only uses 200, so its surplus funds the LC's overage.
/// let mut cbfrp = Cbfrp::new(2, 8);
/// let p = cbfrp.partition(
///     &[1500, 200],
///     &[ServiceClass::LatencyCritical, ServiceClass::BestEffort],
///     &[true, true],
///     1000,
/// );
/// assert_eq!(p.alloc, vec![1500, 200]);
/// assert!(cbfrp.credits()[1] > 0); // the donor earned credits
/// ```
#[derive(Clone, Debug)]
pub struct Cbfrp {
    /// Pages per transfer unit (granularity/overhead knob).
    pub unit_pages: u64,
    credits: Vec<i64>,
    prev_alloc: Vec<u64>,
}

/// One partitioning decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// Fast-tier allocation per workload, in pages.
    pub alloc: Vec<u64>,
}

impl Cbfrp {
    /// A ledger for `n` workloads with `unit_pages` transfer granularity.
    /// Everyone starts with equal (zero) credits.
    pub fn new(n: usize, unit_pages: u64) -> Cbfrp {
        assert!(unit_pages > 0);
        Cbfrp {
            unit_pages,
            credits: vec![0; n],
            prev_alloc: vec![0; n],
        }
    }

    /// Current credit balances (zero-sum across workloads).
    pub fn credits(&self) -> &[i64] {
        &self.credits
    }

    /// Extend the ledger to `n` workloads (no-op if it already covers
    /// them). Newcomers start at zero credits and zero prior allocation
    /// — the same state a fresh [`Cbfrp::new`] would give them — so the
    /// zero-sum credit invariant is preserved and existing balances are
    /// untouched. Departed workloads keep their slots: indices must stay
    /// stable for the runtime's slot-addressed bookkeeping.
    pub fn grow_to(&mut self, n: usize) {
        if n > self.credits.len() {
            self.credits.resize(n, 0);
            self.prev_alloc.resize(n, 0);
        }
    }

    /// Run one round of Algorithm 1.
    ///
    /// `demands` are the equation-3 demands in pages; `classes` the
    /// classifier's verdicts; `active[i]` marks started workloads;
    /// `gfmc` the per-workload entitlement in pages.
    pub fn partition(
        &mut self,
        demands: &[u64],
        classes: &[ServiceClass],
        active: &[bool],
        gfmc: u64,
    ) -> Partition {
        let n = demands.len();
        assert_eq!(n, classes.len());
        assert_eq!(n, active.len());
        assert_eq!(n, self.credits.len());
        let u = self.unit_pages;
        let n_active = active.iter().filter(|&&a| a).count() as u64;
        let capacity = n_active * gfmc;

        // Lines 1-2: base grant within the entitlement.
        let mut alloc: Vec<u64> = (0..n)
            .map(|i| if active[i] { demands[i].min(gfmc) } else { 0 })
            .collect();
        let mut pool = capacity - alloc.iter().sum::<u64>();

        // Per-donor surplus attribution: a donor's unclaimed entitlement.
        let mut surplus: Vec<u64> = (0..n)
            .map(|i| if active[i] { gfmc - alloc[i] } else { 0 })
            .collect();

        // Consume one unit of surplus from the minimum-credit donor
        // (Karma: the poorest donor earns first), crediting it.
        let draw = |surplus: &mut Vec<u64>,
                    credits: &mut Vec<i64>,
                    pool: &mut u64,
                    except: usize,
                    want: u64|
         -> u64 {
            let want = want.min(*pool);
            if want == 0 {
                return 0;
            }
            let donor = (0..n)
                .filter(|&i| surplus[i] > 0 && i != except)
                .min_by_key(|&i| (credits[i], i));
            let Some(d) = donor else { return 0 };
            let got = want.min(surplus[d]);
            surplus[d] -= got;
            *pool -= got;
            credits[d] += 1;
            got
        };

        // Stage 2: BE workloads retain prior over-entitlement while the
        // pool allows (their pages are resident from earlier rounds).
        for i in 0..n {
            if !active[i] || classes[i] != ServiceClass::BestEffort {
                continue;
            }
            let mut want = demands[i].min(self.prev_alloc[i]).saturating_sub(alloc[i]);
            while want > 0 && pool > 0 {
                let got = draw(&mut surplus, &mut self.credits, &mut pool, i, u.min(want));
                if got == 0 {
                    break;
                }
                alloc[i] += got;
                self.credits[i] -= 1;
                want -= got;
            }
        }

        // Stages 3-4: the borrowing loop (lines 6-17).
        loop {
            // Line 7: LC borrowers strictly first; within a class, the
            // borrower with the most credits (earned by past donations),
            // ties by index — a deterministic refinement.
            let borrower = {
                let pick = |class: ServiceClass, credits: &[i64]| {
                    (0..n)
                        .filter(|&i| active[i] && demands[i] > alloc[i] && classes[i] == class)
                        .max_by_key(|&i| (credits[i], std::cmp::Reverse(i)))
                };
                pick(ServiceClass::LatencyCritical, &self.credits)
                    .or_else(|| pick(ServiceClass::BestEffort, &self.credits))
            };
            let Some(b) = borrower else { break };
            let want = u.min(demands[b] - alloc[b]);

            // Lines 8-10: voluntary donation.
            let got = draw(&mut surplus, &mut self.credits, &mut pool, b, want);
            if got > 0 {
                alloc[b] += got;
                self.credits[b] -= 1;
                continue;
            }

            // Lines 11-13: LC reclaims from an over-entitled BE task.
            // Deterministic stand-in for the paper's random choice: the
            // most over-entitled BE.
            if classes[b] == ServiceClass::LatencyCritical {
                let victim = (0..n)
                    .filter(|&i| {
                        active[i]
                            && classes[i] == ServiceClass::BestEffort
                            && alloc[i] > gfmc
                            && i != b
                    })
                    .max_by_key(|&i| (alloc[i], std::cmp::Reverse(i)));
                if let Some(v) = victim {
                    let got = want.min(alloc[v] - gfmc);
                    alloc[v] -= got;
                    alloc[b] += got;
                    self.credits[v] += 1;
                    self.credits[b] -= 1;
                    continue;
                }
            }

            // Lines 14-15: nothing left for this borrower — but other
            // borrowers of the other class may still reclaim, so only
            // retire this one. Mark satisfied by capping its demand view.
            // (Implemented by breaking when nothing changed for anyone.)
            break;
        }

        // Serve remaining BE borrowers from any leftover surplus (the LC
        // break above ends the loop; BE-only surplus passes are safe).
        loop {
            let borrower = (0..n)
                .filter(|&i| active[i] && demands[i] > alloc[i])
                .max_by_key(|&i| (self.credits[i], std::cmp::Reverse(i)));
            let Some(b) = borrower else { break };
            let want = u.min(demands[b] - alloc[b]);
            let got = draw(&mut surplus, &mut self.credits, &mut pool, b, want);
            if got == 0 {
                break;
            }
            alloc[b] += got;
            self.credits[b] -= 1;
        }

        debug_assert!(alloc.iter().sum::<u64>() <= capacity, "over-committed");
        self.prev_alloc = alloc.clone();
        Partition { alloc }
    }
}

impl vulcan_json::Snapshot for Cbfrp {
    /// `prev_alloc` is the BE-retention memory (stage 2 reads it), so it
    /// travels alongside the credit ledger. Credits are bit-cast i64→u64
    /// per element to stay in the exact integer lane.
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::snap;
        let credits: Vec<u64> = self.credits.iter().map(|&c| c as u64).collect();
        snap::obj(vec![
            ("unit_pages", snap::u64_value(self.unit_pages)),
            ("credits", snap::u64_array(&credits)),
            ("prev_alloc", snap::u64_array(&self.prev_alloc)),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        let unit_pages = snap::field_u64(v, "unit_pages")?;
        if unit_pages == 0 {
            return Err("cbfrp unit_pages must be positive".to_string());
        }
        let credits: Vec<i64> = snap::array_u64(snap::field(v, "credits")?)?
            .into_iter()
            .map(|c| c as i64)
            .collect();
        let prev_alloc = snap::array_u64(snap::field(v, "prev_alloc")?)?;
        if prev_alloc.len() != credits.len() {
            return Err("cbfrp ledger arrays have mismatched lengths".to_string());
        }
        Ok(Cbfrp {
            unit_pages,
            credits,
            prev_alloc,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ServiceClass::{BestEffort as BE, LatencyCritical as LC};

    fn total(p: &Partition) -> u64 {
        p.alloc.iter().sum()
    }

    #[test]
    fn demands_within_entitlement_are_granted_exactly() {
        let mut c = Cbfrp::new(2, 8);
        let p = c.partition(&[100, 200], &[LC, BE], &[true, true], 1000);
        assert_eq!(p.alloc, vec![100, 200]);
        assert_eq!(c.credits(), &[0, 0], "no transfers needed");
    }

    #[test]
    fn surplus_flows_to_borrowers() {
        let mut c = Cbfrp::new(2, 8);
        // w0 wants 1500 (500 over entitlement), w1 wants 200 (800 spare).
        let p = c.partition(&[1500, 200], &[LC, BE], &[true, true], 1000);
        assert_eq!(p.alloc, vec![1500, 200]);
        // Donor earned credits, borrower spent them.
        assert!(c.credits()[1] > 0);
        assert!(c.credits()[0] < 0);
    }

    #[test]
    fn lc_borrower_served_before_be_borrower() {
        let mut c = Cbfrp::new(3, 8);
        // One donor with 400 spare; LC and BE both want 400 extra.
        let p = c.partition(&[1400, 1400, 600], &[BE, LC, BE], &[true, true, true], 1000);
        assert_eq!(p.alloc[1], 1400, "LC demand fully met first");
        assert_eq!(p.alloc[0], 1000, "BE borrower got nothing extra");
        assert_eq!(total(&p), 3000);
    }

    #[test]
    fn lc_reclaims_retained_be_over_entitlement() {
        let mut c = Cbfrp::new(3, 8);
        // Round 1: BE w0 borrows the whole idle pool.
        let p1 = c.partition(&[3000, 0, 0], &[BE, LC, BE], &[true; 3], 1000);
        assert_eq!(p1.alloc, vec![3000, 0, 0]);
        // Round 2: LC w1 demands 2000. The pool can fund w0's retention
        // only partially; the LC then reclaims w0's over-entitlement.
        let p2 = c.partition(&[3000, 2000, 0], &[BE, LC, BE], &[true; 3], 1000);
        assert_eq!(p2.alloc[1], 2000, "LC fully served via reclaim");
        assert_eq!(p2.alloc[0], 1000, "BE stripped back to GFMC");
        assert!(total(&p2) <= 3000);
    }

    #[test]
    fn be_cannot_reclaim_from_retained_be() {
        let mut c = Cbfrp::new(3, 8);
        let p1 = c.partition(&[3000, 0, 0], &[BE, BE, LC], &[true; 3], 1000);
        assert_eq!(p1.alloc[0], 3000);
        // A BE newcomer regains only its own entitlement; it cannot strip
        // w0's retained overage (no reclaim arm for BE).
        let p2 = c.partition(&[3000, 2000, 0], &[BE, BE, LC], &[true; 3], 1000);
        assert_eq!(p2.alloc[1], 1000, "entitlement only");
        assert_eq!(p2.alloc[0], 2000, "retention funded by the idle LC");
    }

    #[test]
    fn total_never_exceeds_capacity() {
        let mut c = Cbfrp::new(4, 8);
        for round in 0..6 {
            let d = [5000, 4000 - 500 * round, 500 * round, 3000];
            let p = c.partition(&d, &[LC, BE, LC, BE], &[true; 4], 1000);
            assert!(total(&p) <= 4000, "round {round}: {:?}", p.alloc);
        }
    }

    #[test]
    fn inactive_workloads_get_nothing() {
        let mut c = Cbfrp::new(3, 8);
        let p = c.partition(&[500, 500, 500], &[LC, BE, BE], &[true, false, true], 1000);
        assert_eq!(p.alloc[1], 0);
        assert_eq!(p.alloc[0], 500);
    }

    #[test]
    fn min_credit_donor_donates_first() {
        let mut c = Cbfrp::new(3, 100);
        // Round 1: w0 borrows 300; donors are w1 (1000 spare) and w2
        // (100 spare). Unit transfers alternate by min-credit, leaving
        // w1 with more credits than w2.
        c.partition(&[1300, 0, 900], &[LC, BE, BE], &[true; 3], 1000);
        assert!(c.credits()[1] > c.credits()[2], "{:?}", c.credits());
        // Round 2: both have spare; the poorer donor (w2) must earn.
        let before = (c.credits()[1], c.credits()[2]);
        c.partition(&[1100, 0, 0], &[LC, BE, BE], &[true; 3], 1000);
        assert_eq!(c.credits()[1], before.0, "rich donor skipped");
        assert!(c.credits()[2] > before.1, "poorest donor earns first");
    }

    #[test]
    fn unit_granularity_respected() {
        let mut c = Cbfrp::new(2, 64);
        let p = c.partition(&[1030, 0], &[LC, BE], &[true, true], 1000);
        assert_eq!(p.alloc[0], 1030, "last unit is partial");
    }

    #[test]
    fn credits_conserved_across_transfers() {
        let mut c = Cbfrp::new(3, 8);
        for round in 0..5 {
            let d = [
                1000 + 200 * round,
                (1000u64).saturating_sub(100 * round),
                500,
            ];
            c.partition(&d, &[LC, BE, BE], &[true; 3], 1000);
            let sum: i64 = c.credits().iter().sum();
            assert_eq!(sum, 0, "credit transfers are zero-sum");
        }
    }

    #[test]
    fn grow_to_preserves_ledger_and_zero_sum() {
        let mut c = Cbfrp::new(2, 8);
        c.partition(&[1500, 200], &[LC, BE], &[true, true], 1000);
        let before = c.credits().to_vec();
        c.grow_to(4);
        assert_eq!(&c.credits()[..2], &before[..], "old balances intact");
        assert_eq!(&c.credits()[2..], &[0, 0], "newcomers start at zero");
        assert_eq!(c.credits().iter().sum::<i64>(), 0, "still zero-sum");
        // The grown ledger partitions over all four without panicking.
        let p = c.partition(
            &[1500, 200, 800, 0],
            &[LC, BE, BE, BE],
            &[true, true, true, false],
            1000,
        );
        assert_eq!(p.alloc.len(), 4);
        assert_eq!(p.alloc[3], 0, "inactive newcomer gets nothing");
        // Shrinking is refused: slots are never reused.
        c.grow_to(1);
        assert_eq!(c.credits().len(), 4);
    }

    #[test]
    fn snapshot_roundtrip_preserves_ledger_and_retention_memory() {
        use vulcan_json::Snapshot;
        let mut c = Cbfrp::new(3, 8);
        // Two rounds build non-trivial credits AND prev_alloc (the
        // hidden BE-retention state stage 2 reads next round).
        c.partition(&[3000, 0, 0], &[BE, LC, BE], &[true; 3], 1000);
        c.partition(&[3000, 500, 0], &[BE, LC, BE], &[true; 3], 1000);
        let snap_v = c.snapshot();
        let mut back = Cbfrp::restore(&snap_v).unwrap();
        assert_eq!(back.snapshot(), snap_v, "idempotent round trip");
        assert_eq!(back.credits(), c.credits());
        // Behavioral continuation: the next round depends on prev_alloc
        // (retention) and credits — both machines must agree exactly.
        let p1 = c.partition(&[3000, 2000, 100], &[BE, LC, BE], &[true; 3], 1000);
        let p2 = back.partition(&[3000, 2000, 100], &[BE, LC, BE], &[true; 3], 1000);
        assert_eq!(p1.alloc, p2.alloc);
        assert_eq!(c.credits(), back.credits());
    }

    #[test]
    fn restore_rejects_mismatched_ledger() {
        use vulcan_json::{Snapshot, Value};
        let c = Cbfrp::new(2, 8);
        let Value::Object(mut o) = c.snapshot() else {
            panic!("snapshot is an object")
        };
        o.insert("prev_alloc", vulcan_json::snap::u64_array(&[1, 2, 3]));
        let err = Cbfrp::restore(&Value::Object(o)).unwrap_err();
        assert!(err.contains("mismatched"), "{err}");
    }

    #[test]
    fn long_term_fairness_alternating_demands() {
        // Two BE workloads alternate bursts; over time both should be
        // served symmetrically and credits stay bounded.
        let mut c = Cbfrp::new(2, 8);
        let mut got = [0u64, 0u64];
        for round in 0..20 {
            let d = if round % 2 == 0 { [2000, 0] } else { [0, 2000] };
            let p = c.partition(&d, &[BE, BE], &[true, true], 1000);
            got[0] += p.alloc[0];
            got[1] += p.alloc[1];
        }
        assert_eq!(got[0], got[1], "alternating bursts served equally");
        assert!(c.credits().iter().all(|&x| x.abs() < 2000));
    }
}
