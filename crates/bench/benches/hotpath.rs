//! Access-throughput microbench for the per-access hot path.
//!
//! Unlike the criterion-style benches, this harness measures *wall-clock
//! accesses per second* through `SimRunner::run_quantum` for three access
//! mixes and emits the numbers to `BENCH_hotpath.json` at the repo root,
//! so the hot-path perf trajectory is tracked from PR 3 onward:
//!
//! - `hit_heavy`  — small preallocated working set, TLB-resident, read
//!   mostly: the steady-state fast path (lookup + heat update).
//! - `fault_heavy` — demand paging over a uniform footprint with a 50/50
//!   read/write mix: walks, major faults and dirty walks dominate.
//! - `thp_mix`   — THP-backed footprint: every access takes the
//!   huge-page `touch` path, so the radix walk cache is on the line.
//!
//! Invocation modes:
//! - `cargo test` (no args): one tiny smoke repetition, no files written.
//! - `cargo bench --bench hotpath` : full run, writes `BENCH_hotpath.json`.
//! - `... -- --quick`: CI-scale run, still writes `BENCH_hotpath.json`.
//! - `... -- --save-baseline`: additionally records the run as the
//!   pre-optimization baseline in `target/experiments/hotpath_baseline.json`;
//!   later runs report speedup against it (override the baseline path
//!   with `HOTPATH_BASELINE`).

use std::time::Instant;
use vulcan::prelude::*;
use vulcan_json::{Map, Value};

/// One benchmark scenario: a workload mix plus quanta counts.
struct Mix {
    name: &'static str,
    spec: WorkloadSpec,
    machine: MachineSpec,
    accesses_per_op: u64,
    /// Quanta run before timing starts (0 = measure from cold start, so
    /// demand faults land inside the timed window).
    warm_quanta: u64,
    measure_quanta: u64,
}

fn micro_spec(name: &str, cfg: MicroConfig, threads: usize) -> WorkloadSpec {
    microbench(name, cfg, threads)
}

fn mixes(quick: bool) -> Vec<Mix> {
    let (warm, measure) = if quick { (2, 4) } else { (4, 24) };
    let fault_measure = if quick { 2 } else { 4 };
    vec![
        Mix {
            name: "hit_heavy",
            spec: micro_spec(
                "hit",
                MicroConfig {
                    rss_pages: 8_192,
                    wss_pages: 1_024,
                    skew: 0.9,
                    read_ratio: 0.95,
                    accesses_per_op: 8,
                    wss_drift: 0,
                    fixed_op: Nanos::ZERO,
                },
                4,
            )
            .preallocated(TierKind::Fast),
            machine: MachineSpec::small(16_384, 16_384, 4),
            accesses_per_op: 8,
            warm_quanta: warm,
            measure_quanta: measure,
        },
        Mix {
            name: "fault_heavy",
            spec: micro_spec(
                "fault",
                MicroConfig {
                    rss_pages: 65_536,
                    wss_pages: 65_536,
                    skew: 0.0,
                    read_ratio: 0.5,
                    accesses_per_op: 4,
                    wss_drift: 0,
                    fixed_op: Nanos::ZERO,
                },
                4,
            ),
            machine: MachineSpec::small(49_152, 32_768, 4),
            accesses_per_op: 4,
            warm_quanta: 0,
            measure_quanta: fault_measure,
        },
        Mix {
            name: "thp_mix",
            spec: micro_spec(
                "thp",
                MicroConfig {
                    rss_pages: 65_536,
                    wss_pages: 32_768,
                    skew: 0.6,
                    read_ratio: 0.7,
                    accesses_per_op: 8,
                    wss_drift: 0,
                    fixed_op: Nanos::ZERO,
                },
                4,
            )
            .with_thp(),
            machine: MachineSpec::small(49_152, 32_768, 4),
            accesses_per_op: 8,
            warm_quanta: warm.min(1),
            measure_quanta: measure,
        },
    ]
}

/// Run one mix once: build a fresh runner, warm it, then time
/// `measure_quanta` quanta. Returns (accesses, wall_nanos).
fn run_once(mix: &Mix) -> (u64, u128) {
    let mut runner = SimRunner::builder()
        .machine(mix.machine.clone())
        .workloads(vec![mix.spec.clone()])
        .policy(Box::new(StaticPlacement))
        .config(SimConfig {
            n_quanta: 0,
            record_series: false,
            seed: 42,
            ..Default::default()
        })
        .build();
    for _ in 0..mix.warm_quanta {
        runner.run_quantum();
    }
    let ops_before = runner.state.workloads[0].stats.ops_total;
    let t = Instant::now();
    for _ in 0..mix.measure_quanta {
        runner.run_quantum();
    }
    let wall = t.elapsed().as_nanos();
    let ops_after = runner.state.workloads[0].stats.ops_total;
    ((ops_after - ops_before) * mix.accesses_per_op, wall)
}

/// Best (highest accesses/sec) of `reps` repetitions of a mix.
fn run_mix(mix: &Mix, reps: u32) -> (u64, u128, f64) {
    let mut best: Option<(u64, u128, f64)> = None;
    for _ in 0..reps {
        let (accesses, wall) = run_once(mix);
        let mps = accesses as f64 / (wall.max(1) as f64 / 1e9) / 1e6;
        if best.map(|(_, _, b)| mps > b).unwrap_or(true) {
            best = Some((accesses, wall, mps));
        }
    }
    best.expect("at least one repetition")
}

fn baseline_path() -> std::path::PathBuf {
    match std::env::var_os("HOTPATH_BASELINE") {
        Some(p) => std::path::PathBuf::from(p),
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/experiments/hotpath_baseline.json"),
    }
}

/// Parse `{"mixes": [{"name": ..., "maccesses_per_sec": ...}]}` out of a
/// previously saved baseline file.
fn load_baseline() -> Option<Map> {
    let text = std::fs::read_to_string(baseline_path()).ok()?;
    match vulcan_json::parse(&text).ok()? {
        Value::Object(m) => Some(m),
        _ => None,
    }
}

fn baseline_rate(baseline: &Map, mix: &str) -> Option<f64> {
    let mixes = match baseline.get("mixes")? {
        Value::Array(a) => a,
        _ => return None,
    };
    for entry in mixes {
        if let Value::Object(m) = entry {
            if m.get("name").and_then(Value::as_str) == Some(mix) {
                return m.get("maccesses_per_sec").and_then(Value::as_f64);
            }
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench_mode = args.iter().any(|a| a == "--bench");
    let quick = args.iter().any(|a| a == "--quick") || std::env::var_os("HOTPATH_QUICK").is_some();
    let save_baseline = args.iter().any(|a| a == "--save-baseline");
    // `--only <mix>` restricts the run to one mix (profiling aid); such
    // runs never overwrite the tracked artifact.
    let only = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1).cloned());
    // Plain `cargo test` runs harness=false bench binaries with no args:
    // smoke-test only, write nothing.
    let smoke = !bench_mode && !quick && !save_baseline;

    let (reps, label) = if smoke {
        (1, "smoke")
    } else if quick {
        (2, "quick")
    } else {
        (5, "full")
    };
    let baseline = if save_baseline { None } else { load_baseline() };

    let mut rows: Vec<Value> = Vec::new();
    for mix in mixes(quick || smoke)
        .iter()
        .filter(|m| only.as_deref().is_none_or(|o| o == m.name))
    {
        let (accesses, wall, mps) = if smoke {
            let (a, w) = run_once(mix);
            (a, w, a as f64 / (w.max(1) as f64 / 1e9) / 1e6)
        } else {
            run_mix(mix, reps)
        };
        let mut row = Map::new()
            .with("name", mix.name)
            .with("accesses", accesses)
            .with("wall_ns", wall as u64)
            .with("maccesses_per_sec", mps);
        let mut line = format!(
            "hotpath/{}: {:.2} M accesses/s ({} accesses)",
            mix.name, mps, accesses
        );
        if let Some(base) = baseline.as_ref().and_then(|b| baseline_rate(b, mix.name)) {
            let speedup = mps / base;
            row = row
                .with("baseline_maccesses_per_sec", base)
                .with("speedup", speedup);
            line.push_str(&format!("  [{speedup:.2}x vs baseline {base:.2}]"));
        }
        println!("{line}");
        rows.push(Value::Object(row));
    }

    let report = Map::new()
        .with("bench", "hotpath")
        .with("mode", label)
        .with("mixes", Value::Array(rows));

    if smoke || only.is_some() {
        println!("hotpath: no artifacts written; run with --bench or --quick (and no --only) for a tracked run");
        return;
    }
    if save_baseline {
        let path = baseline_path();
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(
            &path,
            format!("{}\n", Value::Object(report.clone()).to_json_pretty()),
        )
        .expect("write baseline");
        println!("[wrote {}]", path.display());
        return;
    }
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_hotpath.json");
    std::fs::write(
        &out,
        format!("{}\n", Value::Object(report).to_json_pretty()),
    )
    .expect("write BENCH_hotpath.json");
    println!("[wrote {}]", out.display());
}
