//! Per-access simulation: TLB → page walk → tier access, with demand
//! paging, hint faults and replication faults.

use crate::state::{WorkloadState, WorkloadStats};
use vulcan_migrate::ShadowRegistry;
use vulcan_profile::AnyProfiler;
use vulcan_sim::{CoreId, FaultSite, Machine, Nanos, TierKind};
use vulcan_vm::{LocalTid, Process, TlbArray, Vpn};

/// Cost of linking a thread's private upper-level tables to a shared leaf
/// (a minor "replication fault", §3.6's manipulation overhead).
const REPLICATION_FAULT: Nanos = Nanos(400);

/// Cost of a major (demand-allocation) fault.
const MAJOR_FAULT: Nanos = Nanos(2_000);

/// Cost of a THP (2 MiB) demand fault — allocation plus clearing of a
/// whole region, amortized over 512 base pages of coverage.
const THP_FAULT: Nanos = Nanos(8_000);

/// Extra cost of the locked walk that sets the dirty bit on a write hit.
const DIRTY_WALK: Nanos = Nanos(5);

/// Modeled direct-reclaim stall charged when a demand allocation hits an
/// injected exhaustion and the fault path retries (ISSUE 5 degradation
/// contract: alloc faults degrade to a stall, never a panic).
const ALLOC_RETRY_STALL: Nanos = Nanos(10_000);

/// Feed an access to the profiler unless the fault plan drops the
/// sample. A drop is self-recovering — the page's heat simply decays as
/// if it were cold — so the recovery is tallied at the injection point.
#[inline]
fn profile_access(machine: &mut Machine, profiler: &mut AnyProfiler, vpn: Vpn, write: bool) {
    if machine.faults.sample_dropped() {
        machine.faults.note_recovery(FaultSite::SampleDrop);
    } else {
        profiler.on_access(vpn, write);
    }
}

/// Simulate one memory access of `tid` to `vpn`; returns its latency.
#[allow(clippy::too_many_arguments)]
// Allow-listed for the ISSUE 5 lint gate: every expect below guards a
// mapping invariant established earlier on the same path (a page just
// mapped, touched or capacity-checked), not an external condition.
#[allow(clippy::expect_used)]
pub(crate) fn simulate_access(
    machine: &mut Machine,
    tlbs: &mut TlbArray,
    process: &mut Process,
    profiler: &mut AnyProfiler,
    shadows: &mut ShadowRegistry,
    stats: &mut WorkloadStats,
    quota: u64,
    thp: bool,
    core: CoreId,
    tid: LocalTid,
    vpn: Vpn,
    write: bool,
) -> Nanos {
    let ac = &machine.spec().access_costs;
    let (tlb_hit, walk, minor_fault) = (ac.tlb_hit, ac.walk, ac.minor_fault);
    let mut t = tlb_hit;

    // THP-backed region: one 2 MiB TLB entry covers 512 base pages.
    if process.space.in_huge(vpn) {
        let hit = tlbs.core(core).lookup_huge(process.asid, vpn);
        if !hit {
            t += walk;
        }
        // Hardware still maintains A/D on the (split-ready) base PTEs.
        let out = process
            .space
            .touch(vpn, tid, write)
            .expect("huge-marked region is mapped");
        if !hit {
            tlbs.core(core).insert_huge(process.asid, vpn);
            if out.replication_fault {
                stats.replication_faults += 1;
                t += REPLICATION_FAULT;
            }
        }
        let frame = out.pte.frame().expect("mapped");
        let tier = frame.tier;
        let lat = machine.access_latency(tier);
        t += lat;
        machine.record_access(tier);
        profile_access(machine, profiler, vpn, write);
        match tier {
            TierKind::Fast => stats.fast_q += 1,
            TierKind::Slow => stats.slow_q += 1,
        }
        if write {
            stats.write_bytes_q += 64;
        } else {
            stats.read_bytes_q += 64;
        }
        stats.mem_time_q += lat;
        return t;
    }

    let cached = tlbs.core(core).lookup(process.asid, vpn);
    let frame = match cached {
        Some(f) if !write => f,
        Some(f) => {
            // Write hit: hardware performs a locked walk to set D.
            t += DIRTY_WALK;
            match process.space.touch(vpn, tid, true) {
                Some(out) => {
                    if out.hint_fault {
                        stats.hint_faults += 1;
                        t += minor_fault;
                        profiler.on_hint_fault(vpn, true);
                        stats.hint_faulted_pages.push((vpn, true));
                    }
                    out.pte.frame().expect("touched mapped page")
                }
                None => f, // defensive: stale entry, use the cached frame
            }
        }
        None => {
            t += walk;
            let out = match process.space.touch(vpn, tid, write) {
                Some(o) => o,
                None => {
                    // Major fault: demand-allocate, preferring the fast
                    // tier while the workload is under its quota.
                    stats.major_faults += 1;
                    let pref = if stats.fast_used < quota {
                        TierKind::Fast
                    } else {
                        TierKind::Slow
                    };
                    if thp && try_thp_fault(machine, process, stats, pref, tid, vpn) {
                        t += THP_FAULT;
                        tlbs.core(core).insert_huge(process.asid, vpn);
                        process.space.touch(vpn, tid, write).expect("just mapped");
                        // Account the access against the mapped tier.
                        let pte = process.space.pte(vpn);
                        let tier = pte.tier().expect("mapped");
                        let lat = machine.access_latency(tier);
                        machine.record_access(tier);
                        profile_access(machine, profiler, vpn, write);
                        match tier {
                            TierKind::Fast => stats.fast_q += 1,
                            TierKind::Slow => stats.slow_q += 1,
                        }
                        if write {
                            stats.write_bytes_q += 64;
                        } else {
                            stats.read_bytes_q += 64;
                        }
                        stats.mem_time_q += lat;
                        return t + lat;
                    }
                    t += MAJOR_FAULT;
                    let frame = match machine.alloc_with_fallback(pref) {
                        Ok(f) => f,
                        Err(_) => {
                            if machine.last_alloc_injected() {
                                // Injected exhaustion: charge the modeled
                                // direct-reclaim stall the kernel would
                                // take, then retry without injection.
                                t += ALLOC_RETRY_STALL;
                                machine.faults.note_recovery(match pref.other() {
                                    TierKind::Fast => FaultSite::AllocFast,
                                    TierKind::Slow => FaultSite::AllocSlow,
                                });
                            }
                            match machine.alloc_with_fallback_uninjected(pref) {
                                Ok(f) => f,
                                Err(_) => {
                                    // Both tiers genuinely full: reclaim
                                    // shadow frames and retry once more.
                                    for f in shadows.evict(64) {
                                        machine.free(f);
                                    }
                                    #[allow(clippy::expect_used)]
                                    // invariant: specs size tiers below combined RSS
                                    machine
                                        .alloc_with_fallback_uninjected(pref)
                                        .expect("tiers sized below combined RSS")
                                }
                            }
                        }
                    };
                    if frame.tier == TierKind::Fast {
                        stats.fast_used += 1;
                    }
                    process.space.map(vpn, frame, tid);
                    process.space.touch(vpn, tid, write).expect("just mapped")
                }
            };
            if out.hint_fault {
                stats.hint_faults += 1;
                t += minor_fault;
                profiler.on_hint_fault(vpn, write);
                stats.hint_faulted_pages.push((vpn, write));
            }
            if out.replication_fault {
                stats.replication_faults += 1;
                t += REPLICATION_FAULT;
            }
            let frame = out.pte.frame().expect("mapped");
            tlbs.core(core).insert(process.asid, vpn, frame);
            frame
        }
    };

    let tier = frame.tier;
    let lat = machine.access_latency(tier);
    t += lat;
    machine.record_access(tier);
    profile_access(machine, profiler, vpn, write);
    match tier {
        TierKind::Fast => stats.fast_q += 1,
        TierKind::Slow => stats.slow_q += 1,
    }
    if write {
        stats.write_bytes_q += 64;
    } else {
        stats.read_bytes_q += 64;
    }
    stats.mem_time_q += lat;
    t
}

/// Try to service a major fault with a whole 2 MiB region: every page of
/// the region must be unmapped and the preferred tier must have 512 free
/// frames (THP does not straddle tiers). Returns true on success.
fn try_thp_fault(
    machine: &mut Machine,
    process: &mut Process,
    stats: &mut WorkloadStats,
    pref: TierKind,
    tid: LocalTid,
    vpn: Vpn,
) -> bool {
    let base = vpn.huge_base();
    let span = vulcan_sim::HUGE_PAGE_PAGES as u64;
    if machine.free_pages(pref) < span {
        return false;
    }
    for v in base.0..base.0 + span {
        if process.space.is_mapped(Vpn(v)) {
            return false; // partially populated region: fall back to 4K
        }
    }
    for v in base.0..base.0 + span {
        // The capacity check above makes genuine exhaustion impossible,
        // but an injected allocation fault can still fail mid-region:
        // unwind the partial mapping and fall back to the 4K path (the
        // kernel's THP fallback), leaking nothing.
        let frame = match machine.alloc(pref) {
            Ok(f) => f,
            Err(_) => {
                debug_assert!(machine.last_alloc_injected(), "capacity was checked");
                for u in base.0..v {
                    if let Some(pte) = process.space.unmap(Vpn(u)) {
                        if let Some(f) = pte.frame() {
                            machine.free(f);
                        }
                    }
                }
                machine.faults.note_recovery(match pref {
                    TierKind::Fast => FaultSite::AllocFast,
                    TierKind::Slow => FaultSite::AllocSlow,
                });
                return false;
            }
        };
        process.space.map(Vpn(v), frame, tid);
    }
    if pref == TierKind::Fast {
        stats.fast_used += span;
    }
    process.space.mark_huge(base);
    true
}

/// Run one thread of a workload for (at least) `budget` of simulated time,
/// completing whole operations.
// Allow-listed for the ISSUE 5 lint gate: thread indices and core
// pinning are construction-time invariants, not runtime conditions.
#[allow(clippy::expect_used)]
pub(crate) fn run_thread_quantum(
    machine: &mut Machine,
    tlbs: &mut TlbArray,
    ws: &mut WorkloadState,
    thread_idx: usize,
    budget: Nanos,
) {
    if budget == Nanos::ZERO {
        ws.stats.active_q += Nanos::ZERO;
        return;
    }
    let quota = ws.effective_quota();
    let thp = ws.spec.thp;
    let tid = LocalTid(u8::try_from(thread_idx).expect("thread index fits the 7-bit PTE field"));
    let WorkloadState {
        gen,
        rngs,
        process,
        profiler,
        shadows,
        stats,
        ..
    } = ws;
    // Threads are pinned at construction and never migrate between
    // cores, so the (linear-scan) topology lookup is hoisted out of the
    // per-access loop.
    let core = machine
        .topology
        .core_of(process.sim_thread(tid))
        .expect("threads are pinned at construction");
    let rng = &mut rngs[thread_idx];
    let mut buf: Vec<vulcan_workloads::PageAccess> = Vec::with_capacity(16);
    let mut used = Nanos::ZERO;
    while used < budget {
        buf.clear();
        gen.next_op(thread_idx, rng, &mut buf);
        let mut t = gen.fixed_op_nanos();
        for a in &buf {
            t += simulate_access(
                machine,
                tlbs,
                process,
                profiler,
                shadows,
                stats,
                quota,
                thp,
                core,
                tid,
                Vpn(a.offset),
                a.write,
            );
        }
        used += t;
        stats.ops_q += 1;
        stats.ops_total += 1;
        stats.op_latency_q += t;
    }
    ws.stats.active_q += used;
}
