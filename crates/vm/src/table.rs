//! Four-level radix page tables with per-thread replication.
//!
//! Implements the structure of Figure 6: one **process-wide** table is
//! always maintained (the kernel's view, `process_pgd` in §4), and when
//! per-thread replication is enabled each thread additionally owns its own
//! upper-level tables (PGD/PUD/PMD) whose last-level entries point at
//! **shared leaf tables**. Leaf tables constitute the vast majority of
//! page-table memory, so sharing them keeps the replication overhead to
//! the (small) upper levels — the memory-efficiency argument of §3.4.
//!
//! Tables are arena-allocated inside the [`AddressSpace`]: inner nodes and
//! leaf tables live in two `Vec`s and reference each other by index, so a
//! leaf is "shared" simply by being reachable from several trees.

use crate::addr::{Vpn, FANOUT};
use crate::pte::{merge_owner, LocalTid, PageOwner, Pte};
use std::collections::BTreeSet;
use vulcan_sim::FrameId;

/// Reference held in an inner-node slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
enum Slot {
    /// Nothing mapped below this slot.
    #[default]
    Empty,
    /// A lower inner node (arena index).
    Node(u32),
    /// A leaf table (arena index) — only valid in level-1 nodes.
    Leaf(u32),
}

/// An inner page-table node (PGD, PUD or PMD).
#[derive(Clone, Debug)]
struct Node {
    slots: Box<[Slot]>,
}

impl Node {
    fn new() -> Node {
        Node {
            slots: vec![Slot::Empty; FANOUT].into_boxed_slice(),
        }
    }
}

/// A last-level page table holding 512 PTEs; shared across threads.
#[derive(Clone, Debug)]
struct Leaf {
    ptes: Box<[Pte]>,
    mapped: u32,
}

impl Leaf {
    fn new() -> Leaf {
        Leaf {
            ptes: vec![Pte::EMPTY; FANOUT].into_boxed_slice(),
            mapped: 0,
        }
    }
}

/// Outcome of a simulated memory touch through the page tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TouchOutcome {
    /// The PTE after the touch.
    pub pte: Pte,
    /// A per-thread upper-level path had to be created (costs a minor
    /// "replication fault" the first time a thread reaches a region).
    pub replication_fault: bool,
    /// The page transitioned from private to shared on this touch.
    pub became_shared: bool,
    /// The PTE was poisoned for hint-fault profiling; the poison has been
    /// cleared and the access owes a minor-fault latency.
    pub hint_fault: bool,
}

/// A process address space: process-wide table plus optional per-thread
/// replicas, with shared leaf tables.
///
/// ```
/// use vulcan_sim::{FrameId, TierKind};
/// use vulcan_vm::{AddressSpace, LocalTid, PageOwner, Vpn};
///
/// let mut space = AddressSpace::new(true); // per-thread replication on
/// let frame = FrameId { tier: TierKind::Slow, index: 7 };
/// space.map(Vpn(42), frame, LocalTid(0));
///
/// // First toucher owns the page; a second thread makes it shared.
/// space.touch(Vpn(42), LocalTid(0), false).unwrap();
/// assert_eq!(space.owner(Vpn(42)), Some(PageOwner::Private(LocalTid(0))));
/// space.touch(Vpn(42), LocalTid(1), true).unwrap();
/// assert_eq!(space.owner(Vpn(42)), Some(PageOwner::Shared));
/// assert!(space.pte(Vpn(42)).dirty());
/// ```
#[derive(Clone, Debug)]
pub struct AddressSpace {
    nodes: Vec<Node>,
    leaves: Vec<Leaf>,
    process_root: u32,
    /// `thread_roots[tid]` = arena index of the thread's private PGD.
    thread_roots: Vec<Option<u32>>,
    /// Whether per-thread replication is maintained (ablation switch;
    /// §3.6 suggests enabling/disabling it adaptively).
    replication: bool,
    /// All mapped VPNs, for iteration by profilers and policies.
    mapped: BTreeSet<u64>,
    /// Bases of ranges currently backed by transparent huge pages.
    huge_bases: BTreeSet<u64>,
}

impl AddressSpace {
    /// Create an address space; `replication` enables per-thread tables.
    pub fn new(replication: bool) -> AddressSpace {
        let root = Node::new();
        AddressSpace {
            nodes: vec![root],
            leaves: Vec::new(),
            process_root: 0,
            thread_roots: Vec::new(),
            replication,
            mapped: BTreeSet::new(),
            huge_bases: BTreeSet::new(),
        }
    }

    /// Whether per-thread replication is enabled.
    pub fn replication_enabled(&self) -> bool {
        self.replication
    }

    /// Register a thread; allocates its private root when replication is on.
    pub fn register_thread(&mut self, tid: LocalTid) {
        let idx = tid.0 as usize;
        if idx >= self.thread_roots.len() {
            self.thread_roots.resize(idx + 1, None);
        }
        if self.replication && self.thread_roots[idx].is_none() {
            let root = self.alloc_node();
            self.thread_roots[idx] = Some(root);
        }
    }

    fn alloc_node(&mut self) -> u32 {
        self.nodes.push(Node::new());
        (self.nodes.len() - 1) as u32
    }

    fn alloc_leaf(&mut self) -> u32 {
        self.leaves.push(Leaf::new());
        (self.leaves.len() - 1) as u32
    }

    /// Walk (and optionally build) the path from `root` to the leaf table
    /// covering `vpn`. When building and no shared leaf exists yet, one is
    /// allocated; when a shared leaf already exists (reachable from another
    /// tree), it is linked, not duplicated.
    fn leaf_index(&mut self, root: u32, vpn: Vpn, build: bool, share: Option<u32>) -> Option<u32> {
        let mut node = root;
        for level in [3usize, 2] {
            let idx = vpn.index(level);
            node = match self.nodes[node as usize].slots[idx] {
                Slot::Node(n) => n,
                Slot::Empty if build => {
                    let n = self.alloc_node();
                    self.nodes[node as usize].slots[idx] = Slot::Node(n);
                    n
                }
                Slot::Empty => return None,
                Slot::Leaf(_) => unreachable!("leaf above level 1"),
            };
        }
        let idx = vpn.index(1);
        match self.nodes[node as usize].slots[idx] {
            Slot::Leaf(l) => Some(l),
            Slot::Empty if build => {
                let l = share.unwrap_or_else(|| self.alloc_leaf());
                self.nodes[node as usize].slots[idx] = Slot::Leaf(l);
                Some(l)
            }
            Slot::Empty => None,
            Slot::Node(_) => unreachable!("node at leaf level"),
        }
    }

    /// Read-only walk from `root` to the leaf covering `vpn`.
    fn leaf_index_ro(&self, root: u32, vpn: Vpn) -> Option<u32> {
        let mut node = root;
        for level in [3usize, 2] {
            match self.nodes[node as usize].slots[vpn.index(level)] {
                Slot::Node(n) => node = n,
                _ => return None,
            }
        }
        match self.nodes[node as usize].slots[vpn.index(1)] {
            Slot::Leaf(l) => Some(l),
            _ => None,
        }
    }

    /// Map `vpn` to `frame`, first-touched by `owner`.
    ///
    /// # Panics
    /// Panics if `vpn` is already mapped (the simulator must unmap first).
    pub fn map(&mut self, vpn: Vpn, frame: FrameId, owner: LocalTid) {
        let leaf = self
            .leaf_index(self.process_root, vpn, true, None)
            .expect("building walk always yields a leaf");
        let slot = vpn.index(0);
        let l = &mut self.leaves[leaf as usize];
        assert!(!l.ptes[slot].present(), "{vpn:?} already mapped");
        l.ptes[slot] = Pte::new(frame, owner);
        l.mapped += 1;
        self.mapped.insert(vpn.0);
    }

    /// Unmap `vpn`, returning the old PTE (migration step ②).
    pub fn unmap(&mut self, vpn: Vpn) -> Option<Pte> {
        let leaf = self.leaf_index_ro(self.process_root, vpn)?;
        let slot = vpn.index(0);
        let l = &mut self.leaves[leaf as usize];
        if !l.ptes[slot].present() {
            return None;
        }
        let old = l.ptes[slot];
        l.ptes[slot] = Pte::EMPTY;
        l.mapped -= 1;
        self.mapped.remove(&vpn.0);
        Some(old)
    }

    /// The PTE for `vpn` (EMPTY if unmapped).
    pub fn pte(&self, vpn: Vpn) -> Pte {
        self.leaf_index_ro(self.process_root, vpn)
            .map(|leaf| self.leaves[leaf as usize].ptes[vpn.index(0)])
            .unwrap_or(Pte::EMPTY)
    }

    /// Overwrite the PTE for a mapped `vpn` (remap step ⑤, A/D updates).
    ///
    /// # Panics
    /// Panics if `vpn` has no leaf table yet.
    pub fn set_pte(&mut self, vpn: Vpn, pte: Pte) {
        let leaf = self
            .leaf_index_ro(self.process_root, vpn)
            .expect("set_pte on unmapped region");
        let slot = vpn.index(0);
        let l = &mut self.leaves[leaf as usize];
        let was = l.ptes[slot].present();
        l.ptes[slot] = pte;
        match (was, pte.present()) {
            (false, true) => {
                l.mapped += 1;
                self.mapped.insert(vpn.0);
            }
            (true, false) => {
                l.mapped -= 1;
                self.mapped.remove(&vpn.0);
            }
            _ => {}
        }
    }

    /// Whether `vpn` is mapped.
    pub fn is_mapped(&self, vpn: Vpn) -> bool {
        self.mapped.contains(&vpn.0)
    }

    /// Simulate thread `tid` touching `vpn`: ensures the thread's private
    /// path reaches the shared leaf, updates A/D bits and the ownership
    /// lattice, and reports hint faults.
    ///
    /// Returns `None` when the page is unmapped (a major fault the caller
    /// must handle by allocating + [`map`](Self::map)).
    pub fn touch(&mut self, vpn: Vpn, tid: LocalTid, write: bool) -> Option<TouchOutcome> {
        let leaf = self.leaf_index_ro(self.process_root, vpn)?;
        let slot = vpn.index(0);
        if !self.leaves[leaf as usize].ptes[slot].present() {
            return None;
        }

        // Link the thread's private upper levels to the shared leaf.
        let mut replication_fault = false;
        if self.replication {
            self.register_thread(tid);
            let troot = self.thread_roots[tid.0 as usize].expect("registered above");
            let linked = self.leaf_index_ro(troot, vpn);
            if linked != Some(leaf) {
                debug_assert!(linked.is_none(), "thread tree must share process leaves");
                self.leaf_index(troot, vpn, true, Some(leaf));
                replication_fault = true;
            }
        }

        let l = &mut self.leaves[leaf as usize];
        let mut pte = l.ptes[slot];
        let hint_fault = pte.poisoned();
        if hint_fault {
            pte = pte.with_poisoned(false);
        }
        let old_owner = pte.owner();
        let new_owner = merge_owner(old_owner, tid);
        let became_shared = old_owner != new_owner && new_owner == PageOwner::Shared;
        pte = pte.touch(write).with_owner(new_owner);
        l.ptes[slot] = pte;

        Some(TouchOutcome {
            pte,
            replication_fault,
            became_shared,
            hint_fault,
        })
    }

    /// The owner of a mapped page.
    pub fn owner(&self, vpn: Vpn) -> Option<PageOwner> {
        let pte = self.pte(vpn);
        pte.present().then(|| pte.owner())
    }

    /// Iterate all mapped VPNs in address order.
    pub fn mapped_vpns(&self) -> impl Iterator<Item = Vpn> + '_ {
        self.mapped.iter().map(|&v| Vpn(v))
    }

    /// Number of mapped pages (the process's RSS in pages).
    pub fn rss_pages(&self) -> u64 {
        self.mapped.len() as u64
    }

    // ---- transparent huge pages -------------------------------------------------

    /// Mark the 2 MiB range at `base` as THP-backed.
    pub fn mark_huge(&mut self, base: Vpn) {
        debug_assert_eq!(base.huge_offset(), 0, "huge base must be aligned");
        self.huge_bases.insert(base.0);
    }

    /// Whether `vpn` falls in a THP-backed range.
    pub fn in_huge(&self, vpn: Vpn) -> bool {
        self.huge_bases.contains(&vpn.huge_base().0)
    }

    /// Split the huge page covering `vpn` into base pages (Memtis-style
    /// pre-promotion split, §3.4/§3.5). Returns true if a split occurred.
    pub fn split_huge(&mut self, vpn: Vpn) -> bool {
        self.huge_bases.remove(&vpn.huge_base().0)
    }

    /// Number of THP-backed ranges.
    pub fn huge_count(&self) -> usize {
        self.huge_bases.len()
    }

    // ---- replication overhead accounting (§3.6 limitation) ---------------------

    /// Total inner nodes across all trees.
    pub fn inner_node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Leaf tables (shared across trees; counted once).
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Bytes of extra page-table memory attributable to per-thread
    /// replication: every node beyond what a single process-wide tree
    /// would need. Each node/leaf occupies 4 KiB like a real page table.
    pub fn replication_overhead_bytes(&self) -> u64 {
        // Count the nodes reachable from the process tree alone.
        let mut process_nodes = 1u64; // the root
        let mut stack = vec![self.process_root];
        while let Some(n) = stack.pop() {
            for slot in self.nodes[n as usize].slots.iter() {
                if let Slot::Node(c) = slot {
                    process_nodes += 1;
                    stack.push(*c);
                }
            }
        }
        let total = self.nodes.len() as u64;
        (total - process_nodes) * 4096
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulcan_sim::TierKind;

    fn frame(index: u32) -> FrameId {
        FrameId {
            tier: TierKind::Slow,
            index,
        }
    }

    fn space() -> AddressSpace {
        AddressSpace::new(true)
    }

    #[test]
    fn map_translate_unmap() {
        let mut s = space();
        let vpn = Vpn(0x12345);
        s.map(vpn, frame(7), LocalTid(0));
        assert!(s.is_mapped(vpn));
        assert_eq!(s.pte(vpn).frame(), Some(frame(7)));
        assert_eq!(s.rss_pages(), 1);
        let old = s.unmap(vpn).unwrap();
        assert_eq!(old.frame(), Some(frame(7)));
        assert!(!s.is_mapped(vpn));
        assert_eq!(s.pte(vpn), Pte::EMPTY);
    }

    #[test]
    fn unmap_unmapped_is_none() {
        let mut s = space();
        assert_eq!(s.unmap(Vpn(5)), None);
    }

    #[test]
    #[should_panic(expected = "already mapped")]
    fn double_map_panics() {
        let mut s = space();
        s.map(Vpn(1), frame(1), LocalTid(0));
        s.map(Vpn(1), frame(2), LocalTid(0));
    }

    #[test]
    fn touch_unmapped_is_major_fault() {
        let mut s = space();
        assert_eq!(s.touch(Vpn(9), LocalTid(0), false), None);
    }

    #[test]
    fn first_touch_sets_private_owner() {
        let mut s = space();
        s.map(Vpn(1), frame(1), LocalTid(3));
        let out = s.touch(Vpn(1), LocalTid(3), false).unwrap();
        assert_eq!(out.pte.owner(), PageOwner::Private(LocalTid(3)));
        assert!(!out.became_shared);
    }

    #[test]
    fn second_thread_shares_page() {
        let mut s = space();
        s.map(Vpn(1), frame(1), LocalTid(0));
        s.touch(Vpn(1), LocalTid(0), false).unwrap();
        let out = s.touch(Vpn(1), LocalTid(1), false).unwrap();
        assert!(out.became_shared);
        assert_eq!(s.owner(Vpn(1)), Some(PageOwner::Shared));
        // Further touches keep it shared without re-reporting.
        let again = s.touch(Vpn(1), LocalTid(0), false).unwrap();
        assert!(!again.became_shared);
    }

    #[test]
    fn replication_fault_once_per_thread_region() {
        let mut s = space();
        s.map(Vpn(1), frame(1), LocalTid(0));
        let first = s.touch(Vpn(1), LocalTid(0), false).unwrap();
        assert!(first.replication_fault);
        let second = s.touch(Vpn(1), LocalTid(0), false).unwrap();
        assert!(!second.replication_fault);
        // A different thread pays its own replication fault.
        let other = s.touch(Vpn(1), LocalTid(1), false).unwrap();
        assert!(other.replication_fault);
    }

    #[test]
    fn no_replication_faults_when_disabled() {
        let mut s = AddressSpace::new(false);
        s.map(Vpn(1), frame(1), LocalTid(0));
        let out = s.touch(Vpn(1), LocalTid(0), false).unwrap();
        assert!(!out.replication_fault);
        assert_eq!(s.replication_overhead_bytes(), 0);
    }

    #[test]
    fn leaf_tables_are_shared_not_duplicated() {
        let mut s = space();
        // Two threads touching pages in the same 2 MiB region share a leaf.
        s.map(Vpn(0), frame(1), LocalTid(0));
        s.map(Vpn(1), frame(2), LocalTid(1));
        s.touch(Vpn(0), LocalTid(0), false).unwrap();
        s.touch(Vpn(1), LocalTid(1), false).unwrap();
        assert_eq!(s.leaf_count(), 1, "one shared leaf only");
        // Upper levels are replicated: process + 2 thread trees, 3 nodes
        // each (root, L3, L2).
        assert_eq!(s.inner_node_count(), 9);
        assert_eq!(s.replication_overhead_bytes(), 6 * 4096);
    }

    #[test]
    fn dirty_bit_via_write_touch() {
        let mut s = space();
        s.map(Vpn(4), frame(4), LocalTid(0));
        s.touch(Vpn(4), LocalTid(0), false).unwrap();
        assert!(!s.pte(Vpn(4)).dirty());
        s.touch(Vpn(4), LocalTid(0), true).unwrap();
        assert!(s.pte(Vpn(4)).dirty());
    }

    #[test]
    fn hint_fault_fires_once() {
        let mut s = space();
        s.map(Vpn(2), frame(2), LocalTid(0));
        let pte = s.pte(Vpn(2)).with_poisoned(true);
        s.set_pte(Vpn(2), pte);
        let out = s.touch(Vpn(2), LocalTid(0), false).unwrap();
        assert!(out.hint_fault);
        let out2 = s.touch(Vpn(2), LocalTid(0), false).unwrap();
        assert!(!out2.hint_fault, "poison cleared by first fault");
    }

    #[test]
    fn set_pte_maintains_mapped_set() {
        let mut s = space();
        s.map(Vpn(3), frame(3), LocalTid(0));
        let pte = s.pte(Vpn(3));
        s.set_pte(Vpn(3), Pte::EMPTY);
        assert!(!s.is_mapped(Vpn(3)));
        s.set_pte(Vpn(3), pte);
        assert!(s.is_mapped(Vpn(3)));
        assert_eq!(s.rss_pages(), 1);
    }

    #[test]
    fn mapped_vpns_in_order() {
        let mut s = space();
        for v in [5u64, 1, 3] {
            s.map(Vpn(v), frame(v as u32), LocalTid(0));
        }
        let got: Vec<_> = s.mapped_vpns().map(|v| v.0).collect();
        assert_eq!(got, vec![1, 3, 5]);
    }

    #[test]
    fn huge_page_bookkeeping() {
        let mut s = space();
        s.mark_huge(Vpn(512));
        assert!(s.in_huge(Vpn(512 + 100)));
        assert!(!s.in_huge(Vpn(100)));
        assert_eq!(s.huge_count(), 1);
        assert!(s.split_huge(Vpn(700)));
        assert!(!s.in_huge(Vpn(700)));
        assert!(!s.split_huge(Vpn(700)), "second split is a no-op");
    }

    #[test]
    fn distant_vpns_use_distinct_leaves() {
        let mut s = space();
        s.map(Vpn(0), frame(1), LocalTid(0));
        s.map(Vpn(1 << 20), frame(2), LocalTid(0));
        assert_eq!(s.leaf_count(), 2);
    }

    #[test]
    fn remap_preserves_owner_and_flags() {
        let mut s = space();
        s.map(Vpn(8), frame(9), LocalTid(2));
        s.touch(Vpn(8), LocalTid(2), true).unwrap();
        let new_frame = FrameId {
            tier: TierKind::Fast,
            index: 42,
        };
        let pte = s.pte(Vpn(8)).with_frame(new_frame);
        s.set_pte(Vpn(8), pte);
        let after = s.pte(Vpn(8));
        assert_eq!(after.frame(), Some(new_frame));
        assert_eq!(after.owner(), PageOwner::Private(LocalTid(2)));
        assert!(after.dirty());
    }
}
