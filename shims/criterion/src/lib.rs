//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this shim keeps
//! the workspace's `[[bench]]` targets compiling and runnable. It is a
//! measurement sketch, not a statistics engine: each benchmark warms up
//! briefly, runs for a small time budget, and prints the mean iteration
//! time. There is no outlier analysis, plotting, or baseline comparison.
//!
//! Under `cargo test` (which builds and runs `harness = false` bench
//! binaries) each benchmark executes a single iteration so the suite
//! stays fast.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration time budget control (accepted, largely ignored).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Larger per-iteration inputs.
    LargeInput,
}

/// Units for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Compose an id from a function name and a parameter.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Benchmark driver handed to `bench_function` closures.
pub struct Bencher {
    single_shot: bool,
    reported_ns: Option<f64>,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.single_shot {
            black_box(routine());
            return;
        }
        // Warm-up, then measure in growing batches until the budget is
        // spent.
        for _ in 0..3 {
            black_box(routine());
        }
        let budget = Duration::from_millis(40);
        let started = Instant::now();
        let mut iters = 0u64;
        let mut batch = 1u64;
        while started.elapsed() < budget && iters < 1_000_000 {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
            batch = (batch * 2).min(4_096);
        }
        self.reported_ns = Some(started.elapsed().as_nanos() as f64 / iters as f64);
    }

    /// Time `routine` on fresh inputs built by `setup` (setup time is
    /// excluded from the per-iteration figure only approximately).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        if self.single_shot {
            black_box(routine(setup()));
            return;
        }
        let budget = Duration::from_millis(40);
        let started = Instant::now();
        let mut spent = Duration::ZERO;
        let mut iters = 0u64;
        while started.elapsed() < budget && iters < 100_000 {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            spent += t.elapsed();
            iters += 1;
        }
        self.reported_ns = Some(spent.as_nanos() as f64 / iters.max(1) as f64);
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Attach throughput units to subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            single_shot: self.criterion.single_shot,
            reported_ns: None,
        };
        f(&mut b);
        self.report(&id.to_string(), b.reported_ns);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher {
            single_shot: self.criterion.single_shot,
            reported_ns: None,
        };
        f(&mut b, input);
        self.report(&id.to_string(), b.reported_ns);
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, ns: Option<f64>) {
        match ns {
            Some(ns) => {
                let rate = match self.throughput {
                    Some(Throughput::Elements(n)) => {
                        format!("  ({:.1} Melem/s)", n as f64 / ns * 1e3)
                    }
                    Some(Throughput::Bytes(n)) => {
                        format!("  ({:.1} MiB/s)", n as f64 / ns * 1e9 / (1 << 20) as f64)
                    }
                    None => String::new(),
                };
                println!("{}/{id}: {ns:.1} ns/iter{rate}", self.name);
            }
            None => println!("{}/{id}: ok (single iteration)", self.name),
        }
    }
}

/// Benchmark configuration and entry point.
pub struct Criterion {
    single_shot: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo test` runs harness=false bench binaries to smoke-test
        // them; keep that fast by running one iteration per benchmark
        // unless the binary was invoked via `cargo bench`.
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion {
            single_shot: !bench_mode,
        }
    }
}

impl Criterion {
    /// Set the sample count (accepted for API compatibility).
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }
}

/// Define a benchmark group function, in either the plain list or the
/// `name`/`config`/`targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` to run the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
