//! Structured trace events.
//!
//! Every event records the simulated time at which it happened and a
//! monotonically increasing sequence number assigned by the ring, so a
//! trace is totally ordered and reproducible run-to-run.

use vulcan_json::{Map, Value};
use vulcan_sim::Nanos;

/// One structured trace event.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Monotonic sequence number (assigned at emission, never reused).
    pub seq: u64,
    /// Simulated time of the event.
    pub at: Nanos,
    /// Workload the event concerns, if any.
    pub workload: Option<String>,
    /// What happened.
    pub kind: EventKind,
}

/// The kinds of events the simulator emits.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// A workload entered the system.
    WorkloadArrival {
        /// Resident set size of the arriving workload, in pages.
        rss_pages: u64,
    },
    /// A workload left the system.
    WorkloadDeparture,
    /// Pages moved slow → fast.
    PagesPromoted {
        /// Number of pages promoted.
        pages: u64,
        /// True if via the synchronous engine, false if asynchronous.
        sync: bool,
    },
    /// Pages moved fast → slow.
    PagesDemoted {
        /// Number of pages demoted.
        pages: u64,
        /// How many of them were pure remaps to an existing shadow copy.
        remap_only: u64,
    },
    /// An asynchronous migration transaction started.
    AsyncStarted {
        /// Pages in the transaction.
        pages: u64,
    },
    /// An asynchronous migration transaction committed.
    AsyncCommitted {
        /// Pages committed.
        pages: u64,
    },
    /// An asynchronous migration transaction retried after conflict.
    AsyncRetried {
        /// Pages in the retried transaction.
        pages: u64,
    },
    /// An asynchronous migration transaction aborted.
    AsyncAborted {
        /// Pages abandoned.
        pages: u64,
    },
    /// A stalled async transaction was escalated to the sync engine.
    AsyncEscalated {
        /// Pages escalated.
        pages: u64,
    },
    /// A workload's fast-tier quota changed.
    QuotaChanged {
        /// New fast-tier quota, in pages.
        fast_pages: u64,
    },
    /// A workload was reclassified (latency-critical ↔ best-effort).
    Reclassified {
        /// New class, e.g. "latency_critical" or "best_effort".
        class: String,
    },
    /// One CBFRP partitioning round completed.
    CbfrpRound {
        /// Per-workload entitlement (GFMC) this round, in pages.
        gfmc_pages: u64,
        /// Number of active workloads partitioned over.
        active: u64,
    },
    /// The profiler completed a scan epoch.
    ProfilerScan {
        /// Pages freshly poisoned for hinting faults this epoch.
        pages_poisoned: u64,
    },
    /// An arriving tenant could not be admitted and was queued.
    AdmissionQueued {
        /// Resident set size of the waiting tenant, in pages.
        rss_pages: u64,
        /// Depth of the admission queue after enqueueing.
        queue_depth: u64,
    },
    /// An arriving tenant was rejected (queue full or RSS unplaceable).
    AdmissionRejected {
        /// Resident set size of the rejected tenant, in pages.
        rss_pages: u64,
    },
    /// A queued tenant waited past the admission timeout and was dropped.
    AdmissionTimedOut {
        /// Resident set size of the dropped tenant, in pages.
        rss_pages: u64,
    },
    /// One periodic compaction round completed (churn engine).
    CompactionRound {
        /// Shadow frames reclaimed across all live tenants.
        shadows_reclaimed: u64,
        /// Hot slow pages promoted into the freed fast headroom.
        pages_promoted: u64,
    },
}

impl EventKind {
    /// Stable snake_case name of this event kind (the `event` field of
    /// the JSON-lines encoding).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::WorkloadArrival { .. } => "workload_arrival",
            EventKind::WorkloadDeparture => "workload_departure",
            EventKind::PagesPromoted { .. } => "pages_promoted",
            EventKind::PagesDemoted { .. } => "pages_demoted",
            EventKind::AsyncStarted { .. } => "async_started",
            EventKind::AsyncCommitted { .. } => "async_committed",
            EventKind::AsyncRetried { .. } => "async_retried",
            EventKind::AsyncAborted { .. } => "async_aborted",
            EventKind::AsyncEscalated { .. } => "async_escalated",
            EventKind::QuotaChanged { .. } => "quota_changed",
            EventKind::Reclassified { .. } => "reclassified",
            EventKind::CbfrpRound { .. } => "cbfrp_round",
            EventKind::ProfilerScan { .. } => "profiler_scan",
            EventKind::AdmissionQueued { .. } => "admission_queued",
            EventKind::AdmissionRejected { .. } => "admission_rejected",
            EventKind::AdmissionTimedOut { .. } => "admission_timed_out",
            EventKind::CompactionRound { .. } => "compaction_round",
        }
    }

    fn append_fields(&self, m: Map) -> Map {
        match self {
            EventKind::WorkloadArrival { rss_pages } => m.with("rss_pages", *rss_pages),
            EventKind::WorkloadDeparture => m,
            EventKind::PagesPromoted { pages, sync } => m.with("pages", *pages).with("sync", *sync),
            EventKind::PagesDemoted { pages, remap_only } => {
                m.with("pages", *pages).with("remap_only", *remap_only)
            }
            EventKind::AsyncStarted { pages }
            | EventKind::AsyncCommitted { pages }
            | EventKind::AsyncRetried { pages }
            | EventKind::AsyncAborted { pages }
            | EventKind::AsyncEscalated { pages } => m.with("pages", *pages),
            EventKind::QuotaChanged { fast_pages } => m.with("fast_pages", *fast_pages),
            EventKind::Reclassified { class } => m.with("class", class.clone()),
            EventKind::CbfrpRound { gfmc_pages, active } => {
                m.with("gfmc_pages", *gfmc_pages).with("active", *active)
            }
            EventKind::ProfilerScan { pages_poisoned } => m.with("pages_poisoned", *pages_poisoned),
            EventKind::AdmissionQueued {
                rss_pages,
                queue_depth,
            } => m
                .with("rss_pages", *rss_pages)
                .with("queue_depth", *queue_depth),
            EventKind::AdmissionRejected { rss_pages }
            | EventKind::AdmissionTimedOut { rss_pages } => m.with("rss_pages", *rss_pages),
            EventKind::CompactionRound {
                shadows_reclaimed,
                pages_promoted,
            } => m
                .with("shadows_reclaimed", *shadows_reclaimed)
                .with("pages_promoted", *pages_promoted),
        }
    }
}

impl Event {
    /// JSON form: `{"seq":…,"t_ns":…,"workload":…,"event":…,<fields>}`.
    /// The `workload` key is omitted for system-wide events.
    pub fn to_value(&self) -> Value {
        let mut m = Map::new().with("seq", self.seq).with("t_ns", self.at.0);
        if let Some(w) = &self.workload {
            m = m.with("workload", w.clone());
        }
        m = m.with("event", self.kind.name());
        Value::Object(self.kind.append_fields(m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_distinct() {
        let kinds = [
            EventKind::WorkloadArrival { rss_pages: 1 },
            EventKind::WorkloadDeparture,
            EventKind::PagesPromoted {
                pages: 1,
                sync: true,
            },
            EventKind::PagesDemoted {
                pages: 1,
                remap_only: 0,
            },
            EventKind::AsyncStarted { pages: 1 },
            EventKind::AsyncCommitted { pages: 1 },
            EventKind::AsyncRetried { pages: 1 },
            EventKind::AsyncAborted { pages: 1 },
            EventKind::AsyncEscalated { pages: 1 },
            EventKind::QuotaChanged { fast_pages: 1 },
            EventKind::Reclassified {
                class: "best_effort".into(),
            },
            EventKind::CbfrpRound {
                gfmc_pages: 1,
                active: 1,
            },
            EventKind::ProfilerScan { pages_poisoned: 1 },
            EventKind::AdmissionQueued {
                rss_pages: 1,
                queue_depth: 1,
            },
            EventKind::AdmissionRejected { rss_pages: 1 },
            EventKind::AdmissionTimedOut { rss_pages: 1 },
            EventKind::CompactionRound {
                shadows_reclaimed: 1,
                pages_promoted: 1,
            },
        ];
        let names: std::collections::BTreeSet<&str> = kinds.iter().map(EventKind::name).collect();
        assert_eq!(names.len(), kinds.len());
    }

    #[test]
    fn to_value_omits_workload_when_none() {
        let e = Event {
            seq: 7,
            at: Nanos(123),
            workload: None,
            kind: EventKind::CbfrpRound {
                gfmc_pages: 10,
                active: 3,
            },
        };
        let v = e.to_value();
        assert!(v.get("workload").is_none());
        assert_eq!(v.get("seq").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("t_ns").and_then(Value::as_u64), Some(123));
        assert_eq!(v.get("gfmc_pages").and_then(Value::as_u64), Some(10));
    }
}
