//! `vulcan-bench tournament` — fork one checkpoint across the policy
//! registry and a set of what-if machine knobs (ISSUE 10).
//!
//! The checkpoint/restore layer makes a new kind of experiment cheap:
//! run a pressured co-location to a mid-run quantum *once* under an
//! origin policy, checkpoint it, then fork that frozen placement into
//! every registered policy crossed with re-parameterized machines — the
//! "what if CXL had twice the bandwidth" and "what if the NVM device
//! were thinner" questions — without replaying the common prefix per
//! contestant. Every fork answers the same question from the same
//! starting state: given this exact page placement, heat history and
//! in-flight pressure, which policy serves the remaining quanta best?
//!
//! Forks start the policy cold (no policy state is replayed — profiler
//! families are paired with policies, so each fork also gets fresh
//! profilers), which is precisely the "operator swaps the policy live"
//! scenario. The origin policy's own baseline fork is the reference
//! row: per-row deltas (FTHR, Jain, p99, final fast-tier occupancy) are
//! against it, so "what would switching buy" reads directly off the
//! artifact. Every fork is torn down and audited for frame
//! conservation on every chain tier; rows land ranked by mean FTHR in
//! `target/experiments/tournament.json`, byte-identical across reruns
//! and thread counts.

use rayon::prelude::*;
use vulcan::prelude::*;
use vulcan::runtime::{SimConfig, SimRunner};
use vulcan_json::{Map, Value};

/// Base seed for the origin run.
const TOURNAMENT_SEED: u64 = 17;

/// One what-if machine re-parameterization.
pub struct Knob {
    /// Row label (`baseline`, `cxl2x`, `nvm-thin`).
    pub name: &'static str,
    /// Transform the origin spec; identity for the baseline.
    pub respec: fn(&MachineSpec) -> Option<MachineSpec>,
}

/// The swept knobs, in grid order. The shape/capacity/core-count are
/// invariant by the fork contract — only latency, bandwidth and cost
/// parameters move.
pub const KNOBS: [Knob; 3] = [
    Knob {
        name: "baseline",
        respec: |_| None,
    },
    Knob {
        // The CXL link doubles its per-direction bandwidth: queueing
        // inflation on the slow tier halves at equal pressure.
        name: "cxl2x",
        respec: |spec| {
            let mut s = spec.clone();
            s.tier_mut(TierKind::Slow).bandwidth_bytes_per_ns *= 2.0;
            Some(s)
        },
    },
    Knob {
        // A thinned NVM device: half the bandwidth, double the media
        // latency — the cheap-capacity end of the design space.
        name: "nvm-thin",
        respec: |spec| {
            let mut s = spec.clone();
            s.tier_mut(TierKind::Nvm).bandwidth_bytes_per_ns /= 2.0;
            s.access_costs.nvm = Nanos(s.access_costs.nvm.0 * 2);
            Some(s)
        },
    },
];

/// Scale knobs for the tournament.
#[derive(Clone, Copy, Debug)]
pub struct TournamentOpts {
    /// Origin policy that runs the common prefix.
    pub origin: PolicyKind,
    /// Quantum the common checkpoint is taken at.
    pub fork_at: u64,
    /// Total quanta (prefix + forked continuation).
    pub quanta: u64,
    /// Fork the full registry or just the four paper systems.
    pub all_policies: bool,
    /// Intra-cell shard count for the origin prefix (rows are
    /// byte-identical for any value).
    pub shards: usize,
}

impl TournamentOpts {
    /// The full tournament: every registered policy × every knob.
    pub fn full() -> Self {
        TournamentOpts {
            origin: PolicyKind::Vulcan,
            fork_at: 12,
            quanta: 36,
            all_policies: true,
            shards: 1,
        }
    }

    /// CI scale: shorter prefix and continuation, same full registry —
    /// the acceptance bar wants all four paper policies over every
    /// knob, and the registry is a superset.
    pub fn quick() -> Self {
        TournamentOpts {
            origin: PolicyKind::Vulcan,
            fork_at: 4,
            quanta: 12,
            all_policies: true,
            shards: 1,
        }
    }

    /// Override the intra-cell shard count of the origin prefix.
    pub fn with_shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    fn policies(&self) -> &'static [PolicyKind] {
        if self.all_policies {
            &PolicyKind::ALL
        } else {
            &PolicyKind::PAPER
        }
    }
}

/// The contested machine: the *thin* 3-tier shape from the tiers sweep
/// — combined workload RSS (5 120 pages) exceeds fast+slow (3 584), so
/// the NVM tier genuinely holds pages and the nvm-thin knob has a real
/// device to thin.
fn tournament_machine() -> MachineSpec {
    MachineSpec::small3(1_536, 2_048, 8_192, 8)
}

/// The contested co-location: a latency-critical front end and the
/// THP-backed buffer-pool family, preallocated down-chain — the same
/// pressure family the tiers sweep uses, so fork placements are
/// genuinely contended when the checkpoint is cut.
fn tournament_specs() -> Vec<WorkloadSpec> {
    let mut lc = microbench(
        "lc",
        MicroConfig {
            rss_pages: 1_024,
            wss_pages: 256,
            read_ratio: 0.9,
            skew: 1.1,
            ..Default::default()
        },
        4,
    )
    .preallocated(TierKind::Slow);
    lc.class = WorkloadClass::LatencyCritical;
    let bp = bufferpool(
        "bufpool",
        BufferPoolConfig {
            rss_pages: 4_096,
            phase_ops: 128,
            ..Default::default()
        },
        4,
    )
    .preallocated(TierKind::Slow)
    .with_thp();
    vec![lc, bp]
}

/// Metrics of one completed fork, before ranking/deltas are applied.
struct ForkOutcome {
    policy: String,
    knob: &'static str,
    mean_fthr: f64,
    jain_fthr: f64,
    p99_latency_ns: Option<f64>,
    cfi: f64,
    ops_total: u64,
    used: Vec<u64>,
    violations: Vec<String>,
}

/// Fork the checkpoint under (`kind`, `knob`), run the continuation to
/// completion, audit teardown on every chain tier, and summarize.
fn run_fork(ck: &Value, kind: PolicyKind, knob: &Knob) -> Result<ForkOutcome, String> {
    let respec = (knob.respec)(&tournament_machine());
    let mut runner = SimRunner::fork(ck, kind.make(), move |_| kind.profiler(), respec)
        .map_err(|e| format!("fork {kind}/{}: {e}", knob.name))?;
    let total = runner.n_quanta();
    while runner.state.quantum_index < total {
        runner.run_quantum();
    }

    let chain: Vec<TierKind> = runner.state.machine.spec().chain().to_vec();
    let used: Vec<u64> = TierKind::ALL
        .iter()
        .map(|&t| {
            if chain.contains(&t) {
                runner.state.machine.allocator(t).used_frames()
            } else {
                0
            }
        })
        .collect();

    let mut violations = Vec::new();
    for w in 0..runner.state.workloads.len() {
        runner.state.teardown(w);
    }
    for &tier in &chain {
        let leaked = runner.state.machine.allocator(tier).used_frames();
        if leaked != 0 {
            violations.push(format!(
                "{kind}/{}: {leaked} frames leaked at teardown on {}",
                knob.name,
                tier.name()
            ));
        }
    }

    let res = runner.into_result();
    let fthrs: Vec<f64> = res.per_workload.iter().map(|w| w.mean_fthr).collect();
    let mean_fthr = fthrs.iter().sum::<f64>() / fthrs.len().max(1) as f64;
    let mut latencies: Vec<f64> = res
        .per_workload
        .iter()
        .filter_map(|w| res.series.get(&format!("{}.latency_ns", w.name)))
        .flat_map(|s| s.points.iter().map(|&(_, v)| v))
        .collect();
    Ok(ForkOutcome {
        policy: res.policy.clone(),
        knob: knob.name,
        mean_fthr,
        jain_fthr: jain_index(&fthrs),
        p99_latency_ns: vulcan::metrics::percentile(&mut latencies, 99.0),
        cfi: res.cfi,
        ops_total: res.per_workload.iter().map(|w| w.ops_total).sum(),
        used,
        violations,
    })
}

/// Results of a tournament: ranked artifact rows plus every violation.
pub struct TournamentReport {
    /// One JSON row per (policy × knob) fork, ranked by mean FTHR.
    pub rows: Vec<Value>,
    /// Fork failures and frame-conservation violations; empty on a
    /// passing tournament.
    pub violations: Vec<String>,
}

/// Run the tournament. Pure — printing and exit codes are the binary's
/// concern (and the tests').
pub fn run_tournament(opts: &TournamentOpts) -> TournamentReport {
    // The common prefix: one origin run to the fork quantum. The full
    // horizon goes into the config — the checkpoint carries it, so
    // every fork knows how many quanta remain.
    let origin_kind = opts.origin;
    let mut origin = SimRunner::builder()
        .machine(tournament_machine())
        .workloads(tournament_specs())
        .profiler_factory(move |_| origin_kind.profiler())
        .policy(origin_kind.make())
        .config(SimConfig {
            n_quanta: opts.quanta,
            seed: TOURNAMENT_SEED,
            quantum_active: Nanos::millis(1),
            shards: opts.shards,
            ..Default::default()
        })
        .build();
    for _ in 0..opts.fork_at {
        origin.run_quantum();
    }
    let ck = match origin.checkpoint() {
        Ok(v) => v,
        Err(e) => {
            return TournamentReport {
                rows: Vec::new(),
                violations: vec![format!("origin checkpoint failed: {e}")],
            }
        }
    };

    let grid: Vec<(PolicyKind, &Knob)> = opts
        .policies()
        .iter()
        .flat_map(|&k| KNOBS.iter().map(move |knob| (k, knob)))
        .collect();
    let outcomes: Vec<Result<ForkOutcome, String>> = grid
        .par_iter()
        .map(|&(kind, knob)| run_fork(&ck, kind, knob))
        .collect();

    let mut violations = Vec::new();
    let mut forks = Vec::new();
    for o in outcomes {
        match o {
            Ok(f) => {
                violations.extend(f.violations.iter().cloned());
                forks.push(f);
            }
            Err(e) => violations.push(e),
        }
    }

    // Reference row: the origin policy's own baseline fork — the same
    // cold start every contestant gets, so deltas isolate the policy
    // and knob, not the restart.
    let origin_name = opts.origin.to_string();
    let reference = forks
        .iter()
        .find(|f| f.policy == origin_name && f.knob == "baseline")
        .map(|f| (f.mean_fthr, f.jain_fthr, f.p99_latency_ns, f.used.clone()));

    // Rank by mean FTHR, ties broken by (policy, knob) for determinism.
    let mut order: Vec<usize> = (0..forks.len()).collect();
    order.sort_by(|&a, &b| {
        forks[b]
            .mean_fthr
            .partial_cmp(&forks[a].mean_fthr)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| forks[a].policy.cmp(&forks[b].policy))
            .then_with(|| forks[a].knob.cmp(forks[b].knob))
    });

    let rows = order
        .iter()
        .enumerate()
        .map(|(rank, &i)| {
            let f = &forks[i];
            let mut m = Map::new()
                .with("rank", (rank + 1) as u64)
                .with("policy", f.policy.as_str())
                .with("knob", f.knob)
                .with("origin_policy", origin_name.as_str())
                .with("fork_at", opts.fork_at)
                .with("quanta", opts.quanta)
                .with("mean_fthr", f.mean_fthr)
                .with("jain_fthr", f.jain_fthr)
                .with("cfi", f.cfi)
                .with("ops_total", f.ops_total)
                .with("used_fast", f.used[TierKind::Fast.index()])
                .with("used_slow", f.used[TierKind::Slow.index()])
                .with("used_nvm", f.used[TierKind::Nvm.index()]);
            m = match f.p99_latency_ns {
                Some(p) => m.with("p99_latency_ns", p),
                None => m.with("p99_latency_ns", Value::Null),
            };
            if let Some((ref_fthr, ref_jain, ref_p99, ref_used)) = &reference {
                m = m
                    .with("delta_fthr", f.mean_fthr - ref_fthr)
                    .with("delta_jain", f.jain_fthr - ref_jain)
                    .with(
                        "delta_used_fast",
                        f.used[TierKind::Fast.index()] as i64
                            - ref_used[TierKind::Fast.index()] as i64,
                    );
                m = match (f.p99_latency_ns, ref_p99) {
                    (Some(p), Some(r)) => m.with("delta_p99_ns", p - r),
                    _ => m.with("delta_p99_ns", Value::Null),
                };
            }
            Value::Object(m)
        })
        .collect();
    TournamentReport { rows, violations }
}

/// Render the tournament as a terminal table, ranked rows first.
pub fn tournament_table(rows: &[Value]) -> Table {
    let mut table = Table::new(
        format!(
            "tournament: forked policy race ({} threads)",
            rayon::pool::current_num_threads()
        ),
        &[
            "rank", "policy", "knob", "FTHR", "dFTHR", "jain", "p99 (us)", "fast use",
        ],
    );
    for row in rows {
        let u = |k: &str| row.get(k).and_then(Value::as_u64).unwrap_or_default();
        let f = |k: &str| row.get(k).and_then(Value::as_f64);
        table.row(&[
            u("rank").to_string(),
            row.get("policy")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string(),
            row.get("knob")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string(),
            format!("{:.3}", f("mean_fthr").unwrap_or_default()),
            f("delta_fthr")
                .map(|v| format!("{v:+.3}"))
                .unwrap_or_else(|| "-".into()),
            format!("{:.3}", f("jain_fthr").unwrap_or_default()),
            f("p99_latency_ns")
                .map(|v| format!("{:.1}", v / 1e3))
                .unwrap_or_else(|| "-".into()),
            u("used_fast").to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TournamentOpts {
        TournamentOpts {
            origin: PolicyKind::Vulcan,
            fork_at: 3,
            quanta: 10,
            all_policies: false,
            shards: 1,
        }
    }

    #[test]
    fn forks_cover_the_grid_and_conserve_frames() {
        let report = run_tournament(&tiny());
        assert!(
            report.violations.is_empty(),
            "violations: {:?}",
            report.violations
        );
        assert_eq!(report.rows.len(), PolicyKind::PAPER.len() * KNOBS.len());
        // Every (policy, knob) pair appears exactly once and rank is a
        // permutation of 1..=N.
        let mut pairs: Vec<(String, String)> = report
            .rows
            .iter()
            .map(|r| {
                (
                    r.get("policy").and_then(Value::as_str).unwrap().to_string(),
                    r.get("knob").and_then(Value::as_str).unwrap().to_string(),
                )
            })
            .collect();
        pairs.sort();
        pairs.dedup();
        assert_eq!(pairs.len(), report.rows.len());
        let mut ranks: Vec<u64> = report
            .rows
            .iter()
            .map(|r| r.get("rank").and_then(Value::as_u64).unwrap())
            .collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (1..=ranks.len() as u64).collect::<Vec<_>>());
        for row in &report.rows {
            assert!(row.get("ops_total").and_then(Value::as_u64).unwrap() > 0);
        }
    }

    #[test]
    fn origin_baseline_fork_has_zero_deltas() {
        let report = run_tournament(&tiny());
        let origin = report
            .rows
            .iter()
            .find(|r| {
                r.get("policy").and_then(Value::as_str) == Some("vulcan")
                    && r.get("knob").and_then(Value::as_str) == Some("baseline")
            })
            .expect("origin baseline row");
        assert_eq!(origin.get("delta_fthr").and_then(Value::as_f64), Some(0.0));
        assert_eq!(origin.get("delta_jain").and_then(Value::as_f64), Some(0.0));
        assert_eq!(
            origin.get("delta_used_fast").and_then(Value::as_i64),
            Some(0)
        );
    }

    #[test]
    fn rows_are_identical_across_reruns_and_shard_counts() {
        let a = run_tournament(&tiny());
        let b = run_tournament(&tiny().with_shards(4));
        assert_eq!(a.rows.len(), b.rows.len());
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.to_json(), rb.to_json());
        }
    }

    #[test]
    fn knobs_change_the_race() {
        // The what-if machines must actually bite. The thin shape keeps
        // the NVM tier resident (RSS > fast+slow), so doubling the NVM
        // media latency must move every policy's p99 — a knob that
        // changes nothing would make the tournament's what-if axis a
        // no-op.
        let report = run_tournament(&tiny());
        let ops = |policy: &str, knob: &str| -> u64 {
            report
                .rows
                .iter()
                .find(|r| {
                    r.get("policy").and_then(Value::as_str) == Some(policy)
                        && r.get("knob").and_then(Value::as_str) == Some(knob)
                })
                .and_then(|r| r.get("ops_total").and_then(Value::as_u64))
                .unwrap()
        };
        for kind in PolicyKind::PAPER {
            let p = kind.to_string();
            let (base, thin) = (ops(&p, "baseline"), ops(&p, "nvm-thin"));
            assert!(
                thin < base,
                "{p}: doubling resident-NVM latency did not cost any work \
                 (baseline {base} ops, nvm-thin {thin} ops)"
            );
        }
    }
}
