//! # vulcan-bench — the paper's evaluation harness
//!
//! One binary per table and figure of the paper (see DESIGN.md §4 for the
//! full index), plus the `vulcan-bench` driver that can replay any subset
//! of the simulation grids through one code path (`vulcan-bench suite`):
//!
//! | binary   | reproduces |
//! |----------|------------|
//! | `fig1`   | hot/cold pages under Memtis, solo vs co-located + the dilemma summary |
//! | `fig2`   | single base-page migration cost breakdown, 2–32 CPUs |
//! | `fig3`   | TLB vs copy share across batch sizes and thread counts |
//! | `fig4`   | sync vs async copying across read/write ratios |
//! | `fig7`   | speedup of Vulcan's migration-mechanism optimizations |
//! | `fig8`   | migration bandwidth, 4 systems × 3 WSS scenarios |
//! | `fig9`   | Vulcan's dynamic allocation / FTHR / GPT timelines |
//! | `fig10`  | performance + CFI fairness, 4 systems, multi-trial |
//! | `table1` | the biased-migration priority/strategy matrix |
//! | `table2` | the workload/RSS inventory |
//! | `ablation` | component ablations (§3.6 discussion) |
//! | `thp`    | transparent-huge-page study: TLB reach + split-on-promotion (§3.4/§3.5) |
//! | `bias_study` | MTM → no-bias → Table 1 policy lineage (§3.5) |
//!
//! Every binary prints its rows and writes the underlying series/values
//! as JSON under `target/experiments/`. Simulation sweeps are declared as
//! [`suite::Experiment`] grids of independent [`suite::ExperimentCell`]s
//! and executed on the workspace thread pool (sized by
//! `--threads`/`RAYON_NUM_THREADS`, see [`init_threads`]); every cell is
//! seeded deterministically, so artifacts are byte-identical regardless
//! of the thread count.

pub mod chaos;
pub mod churn;
pub mod suite;
pub mod tiers;
pub mod tournament;

use std::io;
use std::path::PathBuf;
use vulcan::prelude::*;

/// Where experiment JSON artifacts are written.
pub fn experiments_dir() -> io::Result<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Persist a JSON artifact, pretty-printed. Returns the path written.
pub fn save_json<T: Clone + Into<vulcan_json::Value>>(
    name: &str,
    value: &T,
) -> io::Result<PathBuf> {
    let path = experiments_dir()?.join(format!("{name}.json"));
    let rendered: vulcan_json::Value = value.clone().into();
    std::fs::write(&path, rendered.to_json_pretty())?;
    Ok(path)
}

/// Persist a JSON artifact; on failure report to stderr and exit with
/// status 1 (the workspace convention: 2 = usage error, 1 = runtime
/// failure such as an unwritable artifact directory).
pub fn save_json_or_exit<T: Clone + Into<vulcan_json::Value>>(name: &str, value: &T) {
    match save_json(name, value) {
        Ok(path) => println!("[wrote {}]", path.display()),
        Err(e) => {
            eprintln!("error: cannot write artifact '{name}': {e}");
            std::process::exit(1);
        }
    }
}

/// Honor a `--threads N` (or `--threads=N`) argument by sizing the
/// workspace thread pool; `RAYON_NUM_THREADS` is the environment
/// fallback and `available_parallelism` the default. Call at the top of
/// every binary `main`.
pub fn init_threads() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(n) = parse_threads(&args) {
        rayon::pool::set_num_threads(n);
    }
}

/// Extract the value of a `--threads N` / `--threads=N` flag.
pub fn parse_threads(args: &[String]) -> Option<usize> {
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--threads" {
            return it.next().and_then(|v| v.parse().ok());
        }
        if let Some(v) = arg.strip_prefix("--threads=") {
            return v.parse().ok();
        }
    }
    None
}

/// The §5.3 staggered three-application co-location.
pub fn colocation_specs() -> Vec<WorkloadSpec> {
    vec![
        memcached(),
        pagerank().starting_at(Nanos::secs(50)),
        liblinear().starting_at(Nanos::secs(110)),
    ]
}

/// Run one policy on a workload mix on the paper testbed.
pub fn run_policy(
    kind: PolicyKind,
    specs: Vec<WorkloadSpec>,
    n_quanta: u64,
    seed: u64,
) -> RunResult {
    suite::ExperimentCell::new(kind, specs, n_quanta, seed).run()
}

/// Number of trials, overridable with `VULCAN_TRIALS` (paper uses 10).
pub fn trials() -> u64 {
    std::env::var("VULCAN_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_instantiate() {
        for kind in PolicyKind::PAPER {
            assert_eq!(kind.make().name(), kind.name());
        }
    }

    #[test]
    fn colocation_specs_match_paper() {
        let specs = colocation_specs();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[1].start, Nanos::secs(50));
        assert_eq!(specs[2].start, Nanos::secs(110));
    }

    #[test]
    fn experiments_dir_exists() {
        assert!(experiments_dir().unwrap().is_dir());
    }

    #[test]
    fn threads_flag_parses_both_forms() {
        let args = |s: &[&str]| s.iter().map(|a| a.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_threads(&args(&["--threads", "4"])), Some(4));
        assert_eq!(parse_threads(&args(&["--threads=2"])), Some(2));
        assert_eq!(parse_threads(&args(&["--quick"])), None);
        assert_eq!(parse_threads(&args(&["--threads"])), None);
    }
}
