//! The quantum-stepped simulation driver.
//!
//! Each *quantum* represents one displayed second of the paper's
//! timelines but simulates a shorter active window (`quantum_active`,
//! default 2 ms) of every thread's execution — the workloads are
//! stationary at sub-second scale, so the window is statistically
//! representative while keeping full-timeline runs (~200 s) cheap.
//! Throughput and bandwidth are normalized to simulated *active* time, so
//! the scaling does not distort any reported rate.

use crate::policy::TieringPolicy;
use crate::shard::{self, ExecuteMode};
use crate::state::{MigrationCounts, SystemState};
use vulcan_metrics::{CfiAccumulator, PlaneSample, SeriesSet, StatPlanes};
use vulcan_profile::AnyProfiler;
use vulcan_sim::{
    Cycles, FaultConfig, FaultPlan, FaultSite, FaultStats, Machine, MachineSpec, Nanos, TierKind,
    N_FAULT_SITES,
};
use vulcan_telemetry::{Counter, EventKind, Telemetry};
use vulcan_workloads::{WorkloadClass, WorkloadSpec};

/// Configuration of a simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Simulated active execution per quantum (per thread).
    pub quantum_active: Nanos,
    /// Displayed wall time per quantum (timeline granularity).
    pub quantum_wall: Nanos,
    /// Number of quanta to run.
    pub n_quanta: u64,
    /// RNG seed (trials vary this).
    pub seed: u64,
    /// Enable per-thread page-table replication (§3.4); ablation switch.
    pub replication: bool,
    /// Record full time series (disable for throughput-only sweeps).
    pub record_series: bool,
    /// Telemetry sink. Disabled by default; an enabled handle records
    /// metrics, phase spans and a structured event trace without
    /// changing any simulation result.
    pub telemetry: Telemetry,
    /// Fault-injection rates (ISSUE 5). All-zero by default, in which
    /// case the plan is an exact no-op and output stays byte-identical
    /// to a build without the subsystem. The schedule derives from
    /// `seed`, so reruns and different `--threads` values see the same
    /// fault sequence.
    pub faults: FaultConfig,
    /// Intra-cell shard count for the quantum's execute phase (ISSUE 7).
    /// `1` (the default) is the monolithic sequential sweep; larger
    /// values sweep core-disjoint workload groups on parallel OS
    /// threads with a deterministic quantum-boundary merge, so every
    /// reported number is byte-identical for any value. Quanta where
    /// the determinism contract cannot be met (telemetry or fault
    /// injection enabled, fewer than two core-disjoint groups, a tier
    /// too full for the plenty guard) silently run sequentially.
    pub shards: usize,
    /// Drive batch-capable generators through the struct-of-arrays plane
    /// sweep (ISSUE 8) instead of the scalar per-access loop. Both paths
    /// produce byte-identical results (the differential oracle holds
    /// them in lockstep); this switch exists for benchmarking the scalar
    /// baseline. Fault-injection runs always use the scalar loop.
    pub batched_planes: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            quantum_active: Nanos::millis(2),
            quantum_wall: Nanos::secs(1),
            n_quanta: 60,
            seed: 42,
            replication: true,
            record_series: true,
            telemetry: Telemetry::disabled(),
            faults: FaultConfig::default(),
            shards: 1,
            batched_planes: true,
        }
    }
}

impl vulcan_json::Snapshot for SimConfig {
    /// The telemetry handle is NOT serialized (recording never affects
    /// results); a restored config starts with a disabled sink.
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::{snap, Value};
        snap::obj(vec![
            ("quantum_active", snap::u64_value(self.quantum_active.0)),
            ("quantum_wall", snap::u64_value(self.quantum_wall.0)),
            ("n_quanta", snap::u64_value(self.n_quanta)),
            ("seed", snap::u64_value(self.seed)),
            ("replication", Value::Bool(self.replication)),
            ("record_series", Value::Bool(self.record_series)),
            ("faults", self.faults.snapshot()),
            ("shards", snap::u64_value(self.shards as u64)),
            ("batched_planes", Value::Bool(self.batched_planes)),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        Ok(SimConfig {
            quantum_active: Nanos(snap::field_u64(v, "quantum_active")?),
            quantum_wall: Nanos(snap::field_u64(v, "quantum_wall")?),
            n_quanta: snap::field_u64(v, "n_quanta")?,
            seed: snap::field_u64(v, "seed")?,
            replication: snap::field_bool(v, "replication")?,
            record_series: snap::field_bool(v, "record_series")?,
            telemetry: Telemetry::disabled(),
            faults: FaultConfig::restore(snap::field(v, "faults")?)?,
            shards: snap::field_usize(v, "shards")?,
            batched_planes: snap::field_bool(v, "batched_planes")?,
        })
    }
}

/// Per-workload summary of a finished run.
#[derive(Clone, Debug)]
pub struct WorkloadResult {
    /// Workload name.
    pub name: String,
    /// Ground-truth class.
    pub class: WorkloadClass,
    /// Mean throughput over started quanta (ops per active second).
    pub mean_ops_per_sec: f64,
    /// Mean operation latency (ns).
    pub mean_latency_ns: f64,
    /// Mean fast-tier hit ratio (FTHR).
    pub mean_fthr: f64,
    /// Mean fraction of the RSS resident in fast memory (Figure 1's
    /// "hot page ratio" — the share of pages classified hot).
    pub mean_hot_ratio: f64,
    /// Mean read bandwidth (GB/s of demand traffic).
    pub mean_read_gbps: f64,
    /// Mean write bandwidth (GB/s of demand traffic).
    pub mean_write_gbps: f64,
    /// Total operations completed.
    pub ops_total: u64,
    /// Total synchronous migration stall charged.
    pub stall_cycles: Cycles,
    /// Page-table memory added by per-thread replication.
    pub replication_overhead_bytes: u64,
}

impl WorkloadResult {
    /// The paper's per-class performance metric: op latency inverse for
    /// latency-critical workloads, throughput for best-effort ones.
    pub fn performance(&self) -> f64 {
        match self.class {
            WorkloadClass::LatencyCritical => {
                if self.mean_latency_ns == 0.0 {
                    0.0
                } else {
                    1e9 / self.mean_latency_ns
                }
            }
            WorkloadClass::BestEffort => self.mean_ops_per_sec,
        }
    }
}

/// Summary of a finished run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The policy that ran.
    pub policy: String,
    /// Per-workload summaries, in spec order.
    pub per_workload: Vec<WorkloadResult>,
    /// FTHR-weighted Cumulative Fairness Index (equation 4).
    pub cfi: f64,
    /// Recorded time series (empty if disabled).
    pub series: SeriesSet,
}

impl RunResult {
    /// Look up a workload's result by name.
    pub fn workload(&self, name: &str) -> &WorkloadResult {
        self.per_workload
            .iter()
            .find(|w| w.name == name)
            .unwrap_or_else(|| panic!("no workload named {name}"))
    }
}

/// One workload's slice of a [`QuantumOutcome`], index-aligned with the
/// runner's workload list. Non-live slots (not yet arrived, departed)
/// report the all-zero default.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WorkloadQuantum {
    /// Whether the workload executed this quantum.
    pub live: bool,
    /// Operations completed this quantum.
    pub ops: u64,
    /// Demand accesses served by the fast tier.
    pub fast_hits: u64,
    /// Demand accesses served by the slow tier.
    pub slow_hits: u64,
    /// Mean operation latency this quantum (ns).
    pub mean_latency_ns: f64,
    /// Throughput this quantum (ops per simulated active second).
    pub ops_per_sec: f64,
    /// Fast-tier hit ratio after this quantum's EMA update (equation 2).
    pub fthr: f64,
    /// Fast-resident share of the RSS after this quantum's decisions.
    pub hot_ratio: f64,
    /// Synchronous migration stall charged this quantum.
    pub stall: Cycles,
}

/// The typed result of one [`SimRunner::run_quantum`] step: everything
/// step-wise drivers (the churn engine, tests) previously scraped out
/// of `SystemState` internals.
///
/// Outcomes are byte-identical for any [`SimConfig::shards`] value —
/// which is why the execute mode is *not* a field here; use
/// [`SimRunner::last_execute_mode`] to observe it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QuantumOutcome {
    /// Index of the quantum that ran (pre-increment).
    pub quantum_index: u64,
    /// Simulated instant after the quantum's wall time elapsed — the
    /// timestamp timeline consumers should stamp this quantum with.
    pub ended_at: Nanos,
    /// Pages moved this quantum, by mechanism and direction.
    pub migrations: MigrationCounts,
    /// Free fast-tier pages after the quantum's decisions.
    pub fast_free: u64,
    /// Total fast-tier capacity in pages.
    pub fast_capacity: u64,
    /// Per-workload slices, index-aligned with the workload list.
    pub workloads: Vec<WorkloadQuantum>,
}

/// The simulation driver: workloads + machine + policy.
pub struct SimRunner {
    /// The live system state (public for policy unit tests).
    pub state: SystemState,
    policy: Box<dyn TieringPolicy>,
    cfg: SimConfig,
    // Kept past construction so workloads admitted mid-run (churn) get
    // profilers from the same factory as construction-time specs.
    profiler_factory: BoxedProfilerFactory,
    series: SeriesSet,
    cfi: CfiAccumulator,
    planes: StatPlanes,
    // How the last quantum's execute phase ran, plus how many quanta
    // took the sharded path (observability for shard-equivalence tests;
    // never part of any artifact).
    last_execute_mode: ExecuteMode,
    sharded_quanta: u64,
    // Telemetry handles held across quanta (cheap no-ops when disabled).
    ops_counter: Counter,
    fast_hits_counter: Counter,
    slow_hits_counter: Counter,
    quanta_counter: Counter,
    lat_hist: vulcan_telemetry::Histogram,
    // Fault-injection counters, indexed by `FaultSite::index()`, plus
    // the last published tallies (counters receive per-quantum deltas).
    fault_injected: [Counter; N_FAULT_SITES],
    fault_recovered: [Counter; N_FAULT_SITES],
    published_faults: FaultStats,
}

/// Telemetry counter names per fault site, in [`FaultSite::ALL`] order
/// (counter names must be `&'static str`, so the `faults.injected.` /
/// `faults.recovered.` prefixes cannot be concatenated at runtime).
const FAULT_INJECTED_NAMES: [&str; N_FAULT_SITES] = [
    "faults.injected.alloc_fast",
    "faults.injected.alloc_slow",
    "faults.injected.copy_fail",
    "faults.injected.shootdown_timeout",
    "faults.injected.throttle",
    "faults.injected.sample_drop",
    "faults.injected.alloc_nvm",
];
const FAULT_RECOVERED_NAMES: [&str; N_FAULT_SITES] = [
    "faults.recovered.alloc_fast",
    "faults.recovered.alloc_slow",
    "faults.recovered.copy_fail",
    "faults.recovered.shootdown_timeout",
    "faults.recovered.throttle",
    "faults.recovered.sample_drop",
    "faults.recovered.alloc_nvm",
];

/// Marker type for a [`SimRunnerBuilder`] field that has been provided.
pub struct Set;
/// Marker type for a required [`SimRunnerBuilder`] field not yet provided.
pub struct Unset;

/// A boxed per-workload profiler constructor, as stored by the builder.
type BoxedProfilerFactory = Box<dyn FnMut(&WorkloadSpec) -> AnyProfiler>;

/// Builder for [`SimRunner`] with compile-checked required fields.
///
/// The three type parameters track whether the machine, the workloads
/// and the policy have been supplied; [`SimRunnerBuilder::build`] only
/// exists once all three are [`Set`], so forgetting one is a compile
/// error, not a panic:
///
/// ```compile_fail
/// # use vulcan_runtime::SimRunner;
/// // error[E0599]: no method `build` — the policy was never provided.
/// SimRunner::builder()
///     .machine(vulcan_sim::MachineSpec::small(64, 512, 4))
///     .workloads(vec![])
///     .build();
/// ```
///
/// The profiler factory defaults to [`HybridProfiler::vulcan_default`]
/// and the configuration to [`SimConfig::default`]; both are optional.
///
/// [`HybridProfiler::vulcan_default`]: vulcan_profile::HybridProfiler::vulcan_default
pub struct SimRunnerBuilder<M = Unset, W = Unset, P = Unset> {
    machine: Option<MachineSpec>,
    specs: Vec<WorkloadSpec>,
    profiler_factory: BoxedProfilerFactory,
    policy: Option<Box<dyn TieringPolicy>>,
    cfg: SimConfig,
    _state: std::marker::PhantomData<(M, W, P)>,
}

impl<M, W, P> SimRunnerBuilder<M, W, P> {
    fn transition<M2, W2, P2>(self) -> SimRunnerBuilder<M2, W2, P2> {
        SimRunnerBuilder {
            machine: self.machine,
            specs: self.specs,
            profiler_factory: self.profiler_factory,
            policy: self.policy,
            cfg: self.cfg,
            _state: std::marker::PhantomData,
        }
    }

    /// The simulated machine to run on (required).
    pub fn machine(mut self, spec: MachineSpec) -> SimRunnerBuilder<Set, W, P> {
        self.machine = Some(spec);
        self.transition()
    }

    /// The co-located workload mix (required; may be empty for
    /// machine-only tests).
    pub fn workloads(mut self, specs: Vec<WorkloadSpec>) -> SimRunnerBuilder<M, Set, P> {
        self.specs = specs;
        self.transition()
    }

    /// The tiering policy driving migration decisions (required).
    pub fn policy(mut self, policy: Box<dyn TieringPolicy>) -> SimRunnerBuilder<M, W, Set> {
        self.policy = Some(policy);
        self.transition()
    }

    /// Override the per-workload profiler factory (optional; defaults to
    /// Vulcan's hybrid profiler for every workload).
    ///
    /// Accepts any return type convertible into [`AnyProfiler`]: a
    /// concrete profiler, a `Box` of one (unboxed onto the enum fast
    /// path), or a `Box<dyn Profiler>` (kept dyn-dispatched), so
    /// pre-existing boxed factories work unchanged.
    pub fn profiler_factory<R: Into<AnyProfiler>>(
        mut self,
        mut f: impl FnMut(&WorkloadSpec) -> R + 'static,
    ) -> SimRunnerBuilder<M, W, P> {
        self.profiler_factory = Box::new(move |spec| f(spec).into());
        self
    }

    /// Override the run configuration (optional; defaults to
    /// [`SimConfig::default`]).
    pub fn config(mut self, cfg: SimConfig) -> SimRunnerBuilder<M, W, P> {
        self.cfg = cfg;
        self
    }
}

impl SimRunnerBuilder<Set, Set, Set> {
    /// Construct the runner. Only callable once machine, workloads and
    /// policy have all been provided.
    // Allow-listed for the ISSUE 5 lint gate: the typestate parameters
    // prove both options are Some — this method only exists on
    // `SimRunnerBuilder<Set, Set, Set>`.
    #[allow(clippy::expect_used)]
    pub fn build(self) -> SimRunner {
        SimRunner::construct(
            self.machine.expect("machine is Set"),
            self.specs,
            self.profiler_factory,
            self.policy.expect("policy is Set"),
            self.cfg,
        )
    }
}

impl SimRunner {
    /// Start building a runner: machine, workloads and policy are
    /// required; profiler factory and config are optional.
    pub fn builder() -> SimRunnerBuilder {
        SimRunnerBuilder {
            machine: None,
            specs: Vec::new(),
            profiler_factory: Box::new(|_| vulcan_profile::HybridProfiler::vulcan_default().into()),
            policy: None,
            cfg: SimConfig::default(),
            _state: std::marker::PhantomData,
        }
    }

    /// Build a runner with the given machine, workloads, profiler factory
    /// and policy.
    fn construct(
        machine_spec: MachineSpec,
        specs: Vec<WorkloadSpec>,
        mut make_profiler: BoxedProfilerFactory,
        policy: Box<dyn TieringPolicy>,
        cfg: SimConfig,
    ) -> SimRunner {
        let n = specs.len();
        let mut state = SystemState::new(
            Machine::new(machine_spec),
            specs,
            &mut make_profiler,
            cfg.replication,
            cfg.seed,
        );
        state.quantum_active = cfg.quantum_active;
        state.telemetry = cfg.telemetry.clone();
        // Install the fault schedule after construction so workload
        // prealloc (placement before the run starts) is never injected.
        // With all rates zero the plan is disabled and every hook is an
        // exact no-op, preserving byte-identical output.
        if cfg.faults.any_enabled() {
            state.machine.faults = FaultPlan::new(cfg.seed, cfg.faults.clone());
        }
        let tel = &cfg.telemetry;
        let (ops_counter, fast_hits_counter, slow_hits_counter, quanta_counter) = (
            tel.counter("sim.ops"),
            tel.counter("sim.accesses.fast"),
            tel.counter("sim.accesses.slow"),
            tel.counter("sim.quanta"),
        );
        // Per-quantum mean op latency distribution (ns).
        let lat_hist = tel.histogram(
            "quantum.mean_latency_ns",
            &[100, 300, 1_000, 3_000, 10_000, 30_000, 100_000],
        );
        let fault_injected = FAULT_INJECTED_NAMES.map(|n| tel.counter(n));
        let fault_recovered = FAULT_RECOVERED_NAMES.map(|n| tel.counter(n));
        SimRunner {
            state,
            policy,
            cfg,
            profiler_factory: make_profiler,
            series: SeriesSet::new(),
            cfi: CfiAccumulator::new(n),
            planes: StatPlanes::new(n),
            last_execute_mode: ExecuteMode::Sequential,
            sharded_quanta: 0,
            ops_counter,
            fast_hits_counter,
            slow_hits_counter,
            quanta_counter,
            lat_hist,
            fault_injected,
            fault_recovered,
            published_faults: FaultStats::default(),
        }
    }

    /// Serialize the runner's complete state as a versioned checkpoint
    /// (see [`crate::checkpoint`]). Take it at a quantum boundary —
    /// between [`run_quantum`](Self::run_quantum) calls — where the
    /// phase protocol guarantees a consistent state.
    pub fn checkpoint(&self) -> Result<vulcan_json::Value, String> {
        use vulcan_json::{snap, Snapshot as _, Value};
        Ok(snap::obj(vec![
            (
                "format",
                Value::Str(crate::checkpoint::CHECKPOINT_FORMAT.to_string()),
            ),
            (
                "version",
                snap::u64_value(crate::checkpoint::CHECKPOINT_VERSION),
            ),
            (
                "policy",
                snap::obj(vec![
                    ("name", Value::Str(self.policy.name().to_string())),
                    ("state", self.policy.snapshot_state()?),
                ]),
            ),
            ("config", self.cfg.snapshot()),
            ("state", self.state.checkpoint_value()?),
            ("series", self.series.snapshot()),
            ("cfi", self.cfi.snapshot()),
            ("planes", self.planes.snapshot()),
        ]))
    }

    /// Rebuild a runner from a checkpoint. `policy` must be a freshly
    /// constructed policy of the same kind (and config) the checkpoint
    /// was taken under — its name is checked, then its serialized state
    /// is replayed into it. `profiler_factory` is only consulted for
    /// workloads admitted *after* the restore (churn); every existing
    /// workload's profiler is restored from the checkpoint itself.
    pub fn restore<R: Into<AnyProfiler>>(
        v: &vulcan_json::Value,
        mut policy: Box<dyn TieringPolicy>,
        mut profiler_factory: impl FnMut(&WorkloadSpec) -> R + 'static,
    ) -> Result<SimRunner, crate::checkpoint::CheckpointError> {
        use crate::checkpoint::CheckpointError;
        crate::checkpoint::validate_header(v)?;
        let stored = crate::checkpoint::policy_name(v)?;
        if stored != policy.name() {
            return Err(CheckpointError::PolicyMismatch {
                expected: stored.to_string(),
                found: policy.name().to_string(),
            });
        }
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| CheckpointError::Invalid(format!("missing \"{name}\"")))
        };
        let invalid = CheckpointError::Invalid;
        policy
            .restore_state(
                field("policy")?
                    .get("state")
                    .ok_or_else(|| invalid("missing policy state".to_string()))?,
            )
            .map_err(invalid)?;
        let (cfg, state, series, cfi, planes) = Self::restore_parts(v)?;
        Ok(Self::assemble(
            cfg,
            state,
            policy,
            Box::new(move |spec| profiler_factory(spec).into()),
            series,
            cfi,
            planes,
        ))
    }

    /// Fork a checkpoint under a *different* policy and, optionally, a
    /// re-parameterized machine (the tournament's what-if knobs). Unlike
    /// [`restore`](Self::restore), no policy-name check is made and no
    /// policy state is replayed — the new policy starts cold against the
    /// checkpointed placement — and every live workload gets a fresh
    /// profiler from `profiler_factory` (profiler families are paired
    /// with policies, so the checkpointed internals may not even be the
    /// right kind). `respec` may change latency/bandwidth/cost
    /// parameters but not the tier shape or core count.
    pub fn fork<R: Into<AnyProfiler>>(
        v: &vulcan_json::Value,
        policy: Box<dyn TieringPolicy>,
        mut profiler_factory: impl FnMut(&WorkloadSpec) -> R + 'static,
        respec: Option<MachineSpec>,
    ) -> Result<SimRunner, crate::checkpoint::CheckpointError> {
        use crate::checkpoint::CheckpointError;
        crate::checkpoint::validate_header(v)?;
        let (cfg, mut state, series, cfi, planes) = Self::restore_parts(v)?;
        if let Some(spec) = respec {
            state
                .machine
                .reconfigure(spec)
                .map_err(CheckpointError::Invalid)?;
        }
        let mut factory: BoxedProfilerFactory = Box::new(move |spec| profiler_factory(spec).into());
        for ws in &mut state.workloads {
            if ws.started && !ws.departed {
                ws.profiler = factory(&ws.spec);
            }
        }
        Ok(Self::assemble(
            cfg, state, policy, factory, series, cfi, planes,
        ))
    }

    /// Decode the checkpoint payload sections shared by
    /// [`restore`](Self::restore) and [`fork`](Self::fork).
    #[allow(clippy::type_complexity)]
    fn restore_parts(
        v: &vulcan_json::Value,
    ) -> Result<
        (
            SimConfig,
            SystemState,
            SeriesSet,
            CfiAccumulator,
            StatPlanes,
        ),
        crate::checkpoint::CheckpointError,
    > {
        use crate::checkpoint::CheckpointError;
        use vulcan_json::Snapshot as _;
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| CheckpointError::Invalid(format!("missing \"{name}\"")))
        };
        let invalid = CheckpointError::Invalid;
        let cfg = SimConfig::restore(field("config")?).map_err(invalid)?;
        let state = SystemState::from_checkpoint(field("state")?).map_err(invalid)?;
        let series = vulcan_metrics::SeriesSet::restore(field("series")?).map_err(invalid)?;
        let cfi = CfiAccumulator::restore(field("cfi")?).map_err(invalid)?;
        let planes = StatPlanes::restore(field("planes")?).map_err(invalid)?;
        let n = state.n_workloads();
        if cfi.cumulative().len() != n || planes.len() != n {
            return Err(CheckpointError::Invalid(format!(
                "accumulators cover {}/{} workloads, state has {n}",
                cfi.cumulative().len(),
                planes.len()
            )));
        }
        Ok((cfg, state, series, cfi, planes))
    }

    /// Wire restored parts into a runner (telemetry counters rebuilt
    /// against the restored — disabled — sink).
    fn assemble(
        cfg: SimConfig,
        state: SystemState,
        policy: Box<dyn TieringPolicy>,
        profiler_factory: BoxedProfilerFactory,
        series: SeriesSet,
        cfi: CfiAccumulator,
        planes: StatPlanes,
    ) -> SimRunner {
        let tel = &cfg.telemetry;
        let (ops_counter, fast_hits_counter, slow_hits_counter, quanta_counter) = (
            tel.counter("sim.ops"),
            tel.counter("sim.accesses.fast"),
            tel.counter("sim.accesses.slow"),
            tel.counter("sim.quanta"),
        );
        let lat_hist = tel.histogram(
            "quantum.mean_latency_ns",
            &[100, 300, 1_000, 3_000, 10_000, 30_000, 100_000],
        );
        let fault_injected = FAULT_INJECTED_NAMES.map(|n| tel.counter(n));
        let fault_recovered = FAULT_RECOVERED_NAMES.map(|n| tel.counter(n));
        SimRunner {
            state,
            policy,
            cfg,
            profiler_factory,
            series,
            cfi,
            planes,
            last_execute_mode: ExecuteMode::Sequential,
            sharded_quanta: 0,
            ops_counter,
            fast_hits_counter,
            slow_hits_counter,
            quanta_counter,
            lat_hist,
            fault_injected,
            fault_recovered,
            published_faults: FaultStats::default(),
        }
    }

    /// The configured total quantum count — on a restored or forked
    /// runner, the original run's horizon (quanta already executed
    /// count toward it; see [`SystemState::quantum_index`]).
    pub fn n_quanta(&self) -> u64 {
        self.cfg.n_quanta
    }

    /// Run the quanta remaining until the configured total and summarize.
    /// On a fresh runner this equals [`run`](Self::run); on a restored
    /// one it completes exactly the quanta the original run had left.
    pub fn run_remaining(mut self) -> RunResult {
        while self.state.quantum_index < self.cfg.n_quanta {
            self.run_quantum();
        }
        self.into_result()
    }

    /// Admit a workload mid-run (open-loop churn): builds its profiler
    /// from the configured factory, spawns it via
    /// [`SystemState::spawn_workload`], and extends every per-workload
    /// accumulator so summaries stay index-aligned. Static runs never
    /// call this, so their results are byte-identical to before the
    /// churn subsystem existed.
    pub fn spawn_workload(&mut self, spec: WorkloadSpec) -> Result<usize, crate::SpawnError> {
        let profiler = (self.profiler_factory)(&spec);
        let i = self.state.spawn_workload(spec, profiler)?;
        self.planes.grow_to(self.state.n_workloads());
        self.cfi.grow_to(self.state.n_workloads());
        Ok(i)
    }

    /// Run all configured quanta and summarize.
    pub fn run(mut self) -> RunResult {
        for _ in 0..self.cfg.n_quanta {
            self.run_quantum();
        }
        self.into_result()
    }

    /// Execute a single quantum and return its typed outcome (exposed
    /// for step-wise drivers like the churn engine).
    ///
    /// The quantum is a fixed phase protocol:
    ///
    /// 1. **admit** — staggered arrivals, departures, and commits of
    ///    async transactions whose copy window elapsed;
    /// 2. **execute** — every thread of every started workload sweeps
    ///    its active window (sequentially, or sharded across
    ///    core-disjoint groups per [`SimConfig::shards`]), the
    ///    bandwidth contention rolls, and profiling epochs run;
    /// 3. **decide + migrate** — the policy observes the state and
    ///    issues migrations;
    /// 4. **account** — per-quantum stats roll into the planes, the
    ///    series, the CFI and the returned [`QuantumOutcome`].
    pub fn run_quantum(&mut self) -> QuantumOutcome {
        // Oracle builds: stamp divergence reports from anywhere below
        // this quantum with the simulated time it executed at.
        #[cfg(feature = "oracle")]
        vulcan_oracle::set_now(self.state.now.0);
        if self.state.quantum_index == 0 {
            self.policy.on_start(&mut self.state);
        }

        self.phase_admit();

        // Execute + profile (sharded when the determinism contract
        // holds; see `crate::shard`).
        let mode = shard::execute_quantum(
            &mut self.state,
            self.cfg.quantum_active,
            self.cfg.shards,
            self.cfg.batched_planes,
        );
        if let ExecuteMode::Sharded { .. } = mode {
            self.sharded_quanta += 1;
        }
        self.last_execute_mode = mode;

        // Policy decisions.
        let st = &mut self.state;
        self.policy.on_quantum(st);
        for w in 0..st.workloads.len() {
            st.recount_fast(w);
        }

        // Oracle builds: after the quantum's migrations and unmaps have
        // landed, every surviving walk-cache entry must still agree with
        // an uncached radix walk.
        #[cfg(feature = "oracle")]
        for ws in &st.workloads {
            ws.process.space.verify_walk_caches();
        }

        // Metrics and series.
        let mut outcome = self.record_quantum();
        self.quanta_counter.inc();
        self.publish_fault_stats();

        // The per-quantum page queues must be drained by the roll above:
        // policies consume them within the quantum they were filled, and
        // anything left over would accumulate without bound.
        debug_assert!(
            self.state.workloads.iter().all(
                |w| w.stats.hint_faulted_pages.is_empty() && w.stats.aborted_pages_q.is_empty()
            ),
            "per-quantum page queues not drained"
        );

        self.state.now += self.cfg.quantum_wall;
        self.state.quantum_index += 1;
        outcome.ended_at = self.state.now;
        outcome
    }

    /// How the most recent quantum's execute phase ran. Stays
    /// [`ExecuteMode::Sequential`] until the first quantum completes.
    pub fn last_execute_mode(&self) -> ExecuteMode {
        self.last_execute_mode
    }

    /// How many quanta so far took the sharded execute path.
    pub fn sharded_quanta(&self) -> u64 {
        self.sharded_quanta
    }

    /// Phase 1: staggered arrivals (§5.3), departures, and async-copy
    /// commits, all before any thread executes.
    fn phase_admit(&mut self) {
        let st = &mut self.state;

        // Workloads whose start time is zero were started at
        // construction; their arrival event is emitted on the first
        // quantum.
        for w in &mut st.workloads {
            let arrives_now = !w.started && !w.departed && w.spec.start <= st.now;
            if arrives_now {
                w.started = true;
            }
            if arrives_now || (st.quantum_index == 0 && w.started) {
                st.telemetry.emit(
                    st.now,
                    Some(&w.spec.name),
                    EventKind::WorkloadArrival {
                        rss_pages: w.spec.rss_pages(),
                    },
                );
            }
        }
        for wi in 0..st.workloads.len() {
            let due = st.workloads[wi]
                .spec
                .stop
                .is_some_and(|t| t <= st.now && st.workloads[wi].started);
            if due {
                st.teardown(wi);
            }
        }

        // Commit async transactions whose copy window elapsed before this
        // quantum runs: transactional migration completes in microseconds,
        // so its placement takes effect in the very next quantum, exactly
        // like a synchronous promotion (minus the stall).
        for wi in 0..st.workloads.len() {
            if st.workloads[wi].started && st.workloads[wi].async_migrator.inflight() > 0 {
                let mech = st.workloads[wi].async_mech;
                st.poll_async(wi, &mech);
            }
        }
    }

    /// Push this quantum's fault-injection and recovery deltas into the
    /// telemetry counters. Observational only; a disabled plan never
    /// accumulates, so this is a no-op in fault-free runs.
    fn publish_fault_stats(&mut self) {
        let plan = &self.state.machine.faults;
        if !plan.is_enabled() || !self.state.telemetry.is_enabled() {
            return;
        }
        let stats = plan.stats().clone();
        for site in FaultSite::ALL {
            let i = site.index();
            self.fault_injected[i].add(stats.injected[i] - self.published_faults.injected[i]);
            self.fault_recovered[i].add(stats.recovered[i] - self.published_faults.recovered[i]);
        }
        self.published_faults = stats;
    }

    fn record_quantum(&mut self) -> QuantumOutcome {
        let st = &mut self.state;
        let t = st.now.as_secs_f64();
        let wall_secs = self.cfg.quantum_wall.as_secs_f64();
        let started_count = st.workloads.iter().filter(|w| w.started).count().max(1);
        let gfmc = st.machine.allocator(TierKind::Fast).capacity() as f64 / started_count as f64;

        let mut allocs = Vec::with_capacity(st.workloads.len());
        let mut fthrs = Vec::with_capacity(st.workloads.len());
        let mut slices = Vec::with_capacity(st.workloads.len());
        let all_started = st.workloads.iter().all(|w| w.started);

        for (wi, ws) in st.workloads.iter_mut().enumerate() {
            if !ws.started {
                allocs.push(0.0);
                fthrs.push(0.0);
                slices.push(WorkloadQuantum::default());
                continue;
            }
            // Capture this quantum's rates before rolling.
            let ops_per_sec = ws.stats.ops_per_sec_q();
            let latency = ws.stats.mean_op_latency_q();
            let hit = ws.stats.quantum_hit_ratio();
            let active_s = ws.stats.active_q.as_secs_f64().max(1e-12);
            let rbw = ws.stats.read_bytes_q as f64 / active_s / 1e9;
            let wbw = ws.stats.write_bytes_q as f64 / active_s / 1e9;
            let (ops, fast_hits, slow_hits) = (ws.stats.ops_q, ws.stats.fast_q, ws.stats.slow_q);
            let stall = ws.stats.stall_q;
            self.ops_counter.add(ws.stats.ops_q);
            self.fast_hits_counter.add(ws.stats.fast_q);
            self.slow_hits_counter.add(ws.stats.slow_q);
            if ws.stats.ops_q > 0 {
                self.lat_hist.record(latency as u64);
            }
            ws.stats.roll_quantum();
            let fthr = ws.stats.fthr;
            let fast_pages = ws.stats.fast_used as f64;

            // Hot-page ratio: fraction of the hot set resident in fast.
            let hot_ratio = hot_page_ratio(ws);

            self.planes.push(
                wi,
                PlaneSample {
                    ops_per_sec,
                    latency_ns: latency,
                    fthr,
                    hot_ratio,
                    read_gbps: rbw,
                    write_gbps: wbw,
                },
            );

            allocs.push(fast_pages);
            fthrs.push(fthr);
            slices.push(WorkloadQuantum {
                live: true,
                ops,
                fast_hits,
                slow_hits,
                mean_latency_ns: latency,
                ops_per_sec,
                fthr,
                hot_ratio,
                stall,
            });

            if self.cfg.record_series {
                let name = ws.spec.name.clone();
                let rss = ws.rss_pages() as f64;
                let gpt = if rss == 0.0 {
                    1.0
                } else {
                    (gfmc / rss).min(1.0)
                };
                let slow_pages = rss - fast_pages;
                for (suffix, v) in [
                    ("fthr", fthr),
                    ("hit", hit),
                    ("gpt", gpt),
                    ("fast_pages", fast_pages),
                    ("slow_pages", slow_pages),
                    ("hot_ratio", hot_ratio),
                    ("ops_per_sec", ops_per_sec),
                    ("latency_ns", latency),
                    ("bw_read_gbps", rbw),
                    ("bw_write_gbps", wbw),
                ] {
                    self.series.entry(&format!("{name}.{suffix}")).push(t, v);
                }
            }
            let _ = wall_secs;
        }
        // CFI is accumulated over the full-co-location window: fairness
        // among N workloads is only defined once all N compete (solo
        // warm-up phases would otherwise dominate the cumulative X_i).
        if all_started {
            self.cfi.record(&allocs, &fthrs);
        }

        QuantumOutcome {
            quantum_index: st.quantum_index,
            // Stamped by `run_quantum` once the wall clock advances.
            ended_at: st.now,
            migrations: std::mem::take(&mut st.migrations_q),
            fast_free: st.fast_free(),
            fast_capacity: st.fast_capacity(),
            workloads: slices,
        }
    }

    /// Summarize without running further quanta (for step-wise drivers
    /// that interleave [`SimRunner::run_quantum`] with inspection).
    pub fn into_result(self) -> RunResult {
        // Release-mode counterpart of the per-quantum drain
        // `debug_assert` in `run_quantum`: a queue that survives to the
        // end of the run means some policy path is accumulating pages
        // without bound, and that must fail loudly even in optimized
        // benchmark builds.
        for ws in &self.state.workloads {
            assert!(
                ws.stats.hint_faulted_pages.is_empty() && ws.stats.aborted_pages_q.is_empty(),
                "workload {}: per-quantum page queues not drained at teardown",
                ws.spec.name
            );
        }
        let per_workload = self
            .state
            .workloads
            .iter()
            .enumerate()
            .map(|(wi, ws)| {
                let means = self.planes.means(wi);
                WorkloadResult {
                    name: ws.spec.name.clone(),
                    class: ws.spec.class,
                    mean_ops_per_sec: means.ops_per_sec,
                    mean_latency_ns: means.latency_ns,
                    mean_fthr: means.fthr,
                    mean_hot_ratio: means.hot_ratio,
                    mean_read_gbps: means.read_gbps,
                    mean_write_gbps: means.write_gbps,
                    ops_total: ws.stats.ops_total,
                    stall_cycles: ws.stats.stall_cycles,
                    replication_overhead_bytes: ws.process.space.replication_overhead_bytes(),
                }
            })
            .collect();
        RunResult {
            policy: self.policy.name().to_string(),
            per_workload,
            cfi: self.cfi.cfi(),
            series: self.series,
        }
    }
}

/// Figure 1's "hot page ratio": the fraction of a workload's resident
/// pages the tiering system currently classifies hot. Capacity-based
/// systems equate "hot" with fast-tier residency, so this is the
/// fast-resident share of the RSS — the quantity that collapses from
/// ~75% to <28% for Memcached under co-location (§2.2, Figure 1d).
pub fn hot_page_ratio(ws: &crate::state::WorkloadState) -> f64 {
    let rss = ws.rss_pages();
    if rss == 0 {
        return 0.0;
    }
    ws.stats.fast_used as f64 / rss as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{StaticPlacement, UniformPartition};
    use vulcan_profile::PebsProfiler;
    use vulcan_workloads::{microbench, MicroConfig};

    fn quick_cfg(n: u64) -> SimConfig {
        SimConfig {
            quantum_active: Nanos::micros(200),
            n_quanta: n,
            ..Default::default()
        }
    }

    fn micro_spec(name: &str, rss: u64, wss: u64) -> WorkloadSpec {
        microbench(
            name,
            MicroConfig {
                rss_pages: rss,
                wss_pages: wss,
                ..Default::default()
            },
            2,
        )
    }

    fn pebs_runner(
        machine: MachineSpec,
        specs: Vec<WorkloadSpec>,
        policy: Box<dyn TieringPolicy>,
        cfg: SimConfig,
    ) -> SimRunner {
        SimRunner::builder()
            .machine(machine)
            .workloads(specs)
            .profiler_factory(|_| Box::new(PebsProfiler::new(4)))
            .policy(policy)
            .config(cfg)
            .build()
    }

    #[test]
    fn run_completes_and_reports() {
        let runner = pebs_runner(
            MachineSpec::small(256, 2048, 8),
            vec![micro_spec("a", 512, 128)],
            Box::new(StaticPlacement),
            quick_cfg(5),
        );
        let res = runner.run();
        assert_eq!(res.policy, "static");
        let w = res.workload("a");
        assert!(w.ops_total > 0);
        assert!(w.mean_ops_per_sec > 0.0);
        assert!(w.mean_latency_ns > 0.0);
        assert!((0.0..=1.0).contains(&w.mean_fthr));
        assert!((0.0..=1.0).contains(&res.cfi));
        assert!(res.series.get("a.fthr").is_some());
        assert_eq!(res.series.get("a.fthr").unwrap().len(), 5);
    }

    #[test]
    fn first_touch_fills_fast_tier_first() {
        let runner = pebs_runner(
            MachineSpec::small(64, 2048, 8),
            vec![micro_spec("a", 512, 512)],
            Box::new(StaticPlacement),
            quick_cfg(3),
        );
        let res = runner.run();
        let fast = res.series.get("a.fast_pages").unwrap().last().unwrap();
        assert_eq!(fast, 64.0, "fast tier fully used before spilling");
    }

    #[test]
    fn small_wss_reaches_high_hit_ratio_in_fast() {
        // WSS (32 pages) fits the 256-page fast tier: nearly all accesses
        // should land fast even with static placement.
        let runner = pebs_runner(
            MachineSpec::small(256, 2048, 8),
            vec![micro_spec("a", 128, 32)],
            Box::new(StaticPlacement),
            quick_cfg(5),
        );
        let res = runner.run();
        assert!(
            res.workload("a").mean_fthr > 0.9,
            "fthr = {}",
            res.workload("a").mean_fthr
        );
    }

    #[test]
    fn staggered_workload_starts_late() {
        let specs = vec![
            micro_spec("early", 128, 32),
            micro_spec("late", 128, 32).starting_at(Nanos::secs(3)),
        ];
        let runner = pebs_runner(
            MachineSpec::small(256, 2048, 8),
            specs,
            Box::new(StaticPlacement),
            quick_cfg(6),
        );
        let res = runner.run();
        let early = res.workload("early").ops_total;
        let late = res.workload("late").ops_total;
        assert!(late > 0, "late workload eventually runs");
        assert!(early > late, "early ran more quanta: {early} vs {late}");
        // Late workload's series shows zero-activity leading quanta.
        let ops = &res.series.get("late.ops_per_sec").unwrap().points;
        assert_eq!(ops.len(), 3, "recorded only after start");
    }

    #[test]
    fn uniform_quota_limits_fast_usage() {
        let specs = vec![micro_spec("a", 512, 512), micro_spec("b", 512, 512)];
        let runner = pebs_runner(
            MachineSpec::small(128, 4096, 8),
            specs,
            Box::new(UniformPartition),
            quick_cfg(4),
        );
        let res = runner.run();
        for name in ["a", "b"] {
            let fast = res.series.get(&format!("{name}.fast_pages")).unwrap();
            assert!(
                fast.last().unwrap() <= 64.0 + 1.0,
                "{name} exceeded quota: {:?}",
                fast.last()
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            pebs_runner(
                MachineSpec::small(128, 1024, 8),
                vec![micro_spec("a", 256, 64)],
                Box::new(StaticPlacement),
                quick_cfg(3),
            )
            .run()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.workload("a").ops_total, b.workload("a").ops_total);
        assert_eq!(a.cfi, b.cfi);
    }

    #[test]
    fn per_quantum_page_queues_stay_bounded() {
        // Hint-fault-heavy profiler fills `hint_faulted_pages` every
        // quantum; the roll must drain it so its length never grows with
        // the quantum count (capacity stays bounded by one quantum's
        // worth of faults).
        let mut runner = SimRunner::builder()
            .machine(MachineSpec::small(128, 2048, 8))
            .workloads(vec![micro_spec("a", 512, 256)])
            .profiler_factory(|_| vulcan_profile::HintFaultProfiler::new(0.5))
            .policy(Box::new(StaticPlacement))
            .config(quick_cfg(0))
            .build();
        for q in 0..12 {
            runner.run_quantum();
            let stats = &runner.state.workloads[0].stats;
            assert!(
                stats.hint_faulted_pages.is_empty(),
                "hint queue drained after quantum {q}"
            );
            assert!(
                stats.aborted_pages_q.is_empty(),
                "abort queue drained after quantum {q}"
            );
            // Capacity is bounded by one quantum's fault volume (at most
            // every resident page, doubled by Vec growth) — were the
            // queue not drained, 12 quanta of faults would blow past it.
            assert!(
                stats.hint_faulted_pages.capacity() <= 2 * 512,
                "queue capacity {} grew beyond one quantum's faults",
                stats.hint_faulted_pages.capacity()
            );
        }
        assert!(runner.state.workloads[0].stats.hint_faults > 0);
    }

    #[test]
    fn performance_metric_by_class() {
        let mut w = WorkloadResult {
            name: "x".into(),
            class: WorkloadClass::BestEffort,
            mean_ops_per_sec: 100.0,
            mean_latency_ns: 1000.0,
            mean_fthr: 0.5,
            mean_hot_ratio: 0.5,
            mean_read_gbps: 0.0,
            mean_write_gbps: 0.0,
            ops_total: 1,
            stall_cycles: Cycles::ZERO,
            replication_overhead_bytes: 0,
        };
        assert_eq!(w.performance(), 100.0);
        w.class = WorkloadClass::LatencyCritical;
        assert_eq!(w.performance(), 1e6, "1e9/latency");
    }
}
