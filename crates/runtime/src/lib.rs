//! # vulcan-runtime — the simulation driver
//!
//! Drives co-located workloads against the simulated tiered-memory
//! machine: per-access TLB/page-table/tier simulation, demand paging,
//! staggered arrivals, FTHR tracking (equations 1–2), CFI accumulation
//! (equation 4), and the [`TieringPolicy`] trait that baselines
//! (`vulcan-policy`) and Vulcan itself (`vulcan-core`) implement.

#![warn(missing_docs)]
// Abnormal conditions on the runtime path must degrade gracefully
// (modeled stalls, typed errors), never panic: unwrap/expect are denied
// outside tests, with narrowly allow-listed invariant sites only
// (ISSUE 5 lint gate).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod access;
pub mod checkpoint;
pub mod policy;
pub mod runner;
pub mod shard;
pub mod state;

pub use checkpoint::{CheckpointError, CHECKPOINT_FORMAT, CHECKPOINT_VERSION};
pub use policy::{StaticPlacement, TieringPolicy, UniformPartition};
pub use runner::{
    hot_page_ratio, QuantumOutcome, RunResult, SimConfig, SimRunner, SimRunnerBuilder,
    WorkloadQuantum, WorkloadResult,
};
pub use shard::{plan_shards, ExecuteMode, ShardPlan};
pub use state::{
    MigrationCounts, SpawnError, SystemState, WorkloadState, WorkloadStats, FTHR_ALPHA,
};
