//! # vulcan-workloads — synthetic cloud workloads
//!
//! Generators reproducing the access signatures of the paper's evaluation
//! workloads (Table 2, §5.3): a latency-critical Memcached-like KV store,
//! a PageRank-like graph computation, a Liblinear-like best-effort
//! training sweep, and the Nomad-style Zipfian microbenchmark of §5.2.
//! RSS values are scaled 1 paper-GB → 256 pages (DESIGN.md §5).

#![warn(missing_docs)]

pub mod apps;
pub mod bufferpool;
pub mod gen;
pub mod microbench;
pub mod spec;
pub mod trace;
pub mod zipf;

pub use apps::{KvConfig, KvStore, PageRank, PrConfig, Sweep, SweepConfig};
pub use bufferpool::{BufferPool, BufferPoolConfig};
pub use gen::{shard, AccessGen, AccessPlan, PageAccess};
pub use microbench::{MicroConfig, Microbench, WssScenario};
pub use spec::{
    bufferpool, liblinear, memcached, microbench, pagerank, replay, WorkloadClass, WorkloadKind,
    WorkloadSpec,
};
pub use trace::{Trace, TraceOp, TraceReplayer};
pub use zipf::Zipf;
