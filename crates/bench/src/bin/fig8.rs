//! Figure 8: migration performance comparison between TPP, MEMTIS, NOMAD
//! and VULCAN across working-set sizes (higher is better).
//!
//! Methodology follows §5.2 / Nomad: data is allocated in the slow tier,
//! then a Zipfian reader/writer runs over the WSS; read and write
//! bandwidth is reported for the *migration-in-progress* phase (first
//! quanta after start, while hot pages move up) and the *migration
//! stable* phase (after placement converges).
//!
//! Paper anchor: Vulcan sustains the highest bandwidth, especially once
//! migration is stable.

use vulcan::prelude::*;
use vulcan_bench::{make_policy, save_json, POLICIES};

struct Cell {
    read_prog: f64,
    write_prog: f64,
    read_stable: f64,
    write_stable: f64,
}

fn run(policy: &str, scenario: WssScenario, seed: u64) -> Cell {
    let spec =
        microbench("mb", MicroConfig::fig8_scenario(scenario), 8).preallocated(TierKind::Slow);
    let res = SimRunner::new(
        MachineSpec::paper_testbed(),
        vec![spec],
        &mut |_| profiler_for(policy),
        make_policy(policy),
        SimConfig {
            n_quanta: 40,
            seed,
            ..Default::default()
        },
    )
    .run();
    let phase = |name: &str, lo: f64, hi: f64| {
        let s = res.series.get(name).expect("series");
        let vals: Vec<f64> = s
            .points
            .iter()
            .filter(|&&(t, _)| t >= lo && t < hi)
            .map(|&(_, v)| v)
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    Cell {
        read_prog: phase("mb.bw_read_gbps", 1.0, 10.0),
        write_prog: phase("mb.bw_write_gbps", 1.0, 10.0),
        read_stable: phase("mb.bw_read_gbps", 25.0, 40.0),
        write_stable: phase("mb.bw_write_gbps", 25.0, 40.0),
    }
}

fn main() {
    let mut table = Table::new(
        "Figure 8: microbench bandwidth (GB/s): in-migration vs stable",
        &[
            "wss",
            "policy",
            "read(prog)",
            "write(prog)",
            "read(stable)",
            "write(stable)",
        ],
    );
    let mut rows = Vec::new();
    for scenario in WssScenario::ALL {
        for policy in POLICIES {
            let mut agg = [
                vulcan::metrics::OnlineStats::new(),
                vulcan::metrics::OnlineStats::new(),
                vulcan::metrics::OnlineStats::new(),
                vulcan::metrics::OnlineStats::new(),
            ];
            for seed in 0..vulcan_bench::trials() {
                let c = run(policy, scenario, seed);
                agg[0].push(c.read_prog);
                agg[1].push(c.write_prog);
                agg[2].push(c.read_stable);
                agg[3].push(c.write_stable);
            }
            table.row(&[
                scenario.label().into(),
                policy.into(),
                format!("{:.2}", agg[0].mean()),
                format!("{:.2}", agg[1].mean()),
                format!("{:.2}", agg[2].mean()),
                format!("{:.2}", agg[3].mean()),
            ]);
            rows.push(vulcan_json::Value::Object(
                vulcan_json::Map::new()
                    .with("wss", scenario.label())
                    .with("policy", policy)
                    .with("read_in_progress", agg[0].mean())
                    .with("write_in_progress", agg[1].mean())
                    .with("read_stable", agg[2].mean())
                    .with("write_stable", agg[3].mean()),
            ));
        }
    }
    table.print();
    println!(
        "\nPaper: Vulcan shows superior read/write bandwidth, particularly \
         in the migration-stable phase, across all working-set sizes."
    );
    save_json("fig8", &rows);
}
