//! Four-level radix page tables with per-thread replication.
//!
//! Implements the structure of Figure 6: one **process-wide** table is
//! always maintained (the kernel's view, `process_pgd` in §4), and when
//! per-thread replication is enabled each thread additionally owns its own
//! upper-level tables (PGD/PUD/PMD) whose last-level entries point at
//! **shared leaf tables**. Leaf tables constitute the vast majority of
//! page-table memory, so sharing them keeps the replication overhead to
//! the (small) upper levels — the memory-efficiency argument of §3.4.
//!
//! Tables are arena-allocated inside the [`AddressSpace`]: inner nodes and
//! leaf tables live in two `Vec`s and reference each other by index, so a
//! leaf is "shared" simply by being reachable from several trees.

use crate::addr::{Vpn, FANOUT, LEVEL_BITS};
use crate::pte::{merge_owner, LocalTid, PageOwner, Pte};
use std::collections::BTreeSet;
use vulcan_sim::FrameId;

/// Slots in each software walk cache (power of two, direct-mapped).
const WALK_CACHE_SLOTS: usize = 128;

/// Tag marking an empty walk-cache slot. `u64::MAX >> LEVEL_BITS` regions
/// would need a 2^64-page address space, so the tag is unreachable.
const WALK_TAG_EMPTY: u64 = u64::MAX;

/// A direct-mapped software walk cache: memoizes the leaf-table arena
/// index per 2 MiB region (`vpn >> 9`), so repeated touches in the same
/// region skip the three-level radix descent. This mirrors hardware
/// paging-structure caches (and Virtuoso-style simulator walk caches):
/// it accelerates *translation to the leaf*, while PTE bits are always
/// read from and written to the leaf itself, keeping PTE state exact.
#[derive(Clone, Debug)]
struct WalkCache {
    tags: Box<[u64]>,
    leaves: Box<[u32]>,
}

impl WalkCache {
    fn new() -> WalkCache {
        WalkCache {
            tags: vec![WALK_TAG_EMPTY; WALK_CACHE_SLOTS].into_boxed_slice(),
            leaves: vec![0; WALK_CACHE_SLOTS].into_boxed_slice(),
        }
    }

    #[inline]
    fn get(&self, region: u64) -> Option<u32> {
        let i = (region as usize) & (WALK_CACHE_SLOTS - 1);
        (self.tags[i] == region).then(|| self.leaves[i])
    }

    #[inline]
    fn put(&mut self, region: u64, leaf: u32) {
        let i = (region as usize) & (WALK_CACHE_SLOTS - 1);
        self.tags[i] = region;
        self.leaves[i] = leaf;
    }

    fn invalidate(&mut self, region: u64) {
        let i = (region as usize) & (WALK_CACHE_SLOTS - 1);
        if self.tags[i] == region {
            self.tags[i] = WALK_TAG_EMPTY;
        }
    }

    fn flush(&mut self) {
        self.tags.fill(WALK_TAG_EMPTY);
    }
}

/// Reference held in an inner-node slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
enum Slot {
    /// Nothing mapped below this slot.
    #[default]
    Empty,
    /// A lower inner node (arena index).
    Node(u32),
    /// A leaf table (arena index) — only valid in level-1 nodes.
    Leaf(u32),
}

/// An inner page-table node (PGD, PUD or PMD).
#[derive(Clone, Debug)]
struct Node {
    slots: Box<[Slot]>,
}

impl Node {
    fn new() -> Node {
        Node {
            slots: vec![Slot::Empty; FANOUT].into_boxed_slice(),
        }
    }
}

/// A last-level page table holding 512 PTEs; shared across threads.
#[derive(Clone, Debug)]
struct Leaf {
    ptes: Box<[Pte]>,
    mapped: u32,
}

impl Leaf {
    fn new() -> Leaf {
        Leaf {
            ptes: vec![Pte::EMPTY; FANOUT].into_boxed_slice(),
            mapped: 0,
        }
    }
}

/// Outcome of a simulated memory touch through the page tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TouchOutcome {
    /// The PTE after the touch.
    pub pte: Pte,
    /// A per-thread upper-level path had to be created (costs a minor
    /// "replication fault" the first time a thread reaches a region).
    pub replication_fault: bool,
    /// The page transitioned from private to shared on this touch.
    pub became_shared: bool,
    /// The PTE was poisoned for hint-fault profiling; the poison has been
    /// cleared and the access owes a minor-fault latency.
    pub hint_fault: bool,
}

/// A process address space: process-wide table plus optional per-thread
/// replicas, with shared leaf tables.
///
/// ```
/// use vulcan_sim::{FrameId, TierKind};
/// use vulcan_vm::{AddressSpace, LocalTid, PageOwner, Vpn};
///
/// let mut space = AddressSpace::new(true); // per-thread replication on
/// let frame = FrameId { tier: TierKind::Slow, index: 7 };
/// space.map(Vpn(42), frame, LocalTid(0));
///
/// // First toucher owns the page; a second thread makes it shared.
/// space.touch(Vpn(42), LocalTid(0), false).unwrap();
/// assert_eq!(space.owner(Vpn(42)), Some(PageOwner::Private(LocalTid(0))));
/// space.touch(Vpn(42), LocalTid(1), true).unwrap();
/// assert_eq!(space.owner(Vpn(42)), Some(PageOwner::Shared));
/// assert!(space.pte(Vpn(42)).dirty());
/// ```
#[derive(Clone, Debug)]
pub struct AddressSpace {
    nodes: Vec<Node>,
    leaves: Vec<Leaf>,
    process_root: u32,
    /// `thread_roots[tid]` = arena index of the thread's private PGD.
    thread_roots: Vec<Option<u32>>,
    /// Whether per-thread replication is maintained (ablation switch;
    /// §3.6 suggests enabling/disabling it adaptively).
    replication: bool,
    /// All mapped VPNs, for iteration by profilers and policies.
    mapped: BTreeSet<u64>,
    /// Bases of ranges currently backed by transparent huge pages.
    huge_bases: BTreeSet<u64>,
    /// Walk cache over the process tree (region → leaf index).
    walk: WalkCache,
    /// Per-thread walk caches, parallel to `thread_roots`: a hit proves
    /// the thread's private upper levels already link the shared leaf,
    /// so the replication check skips its radix descent too.
    thread_walks: Vec<WalkCache>,
    /// Ablation/determinism switch: disable to force full radix walks.
    walk_enabled: bool,
}

impl AddressSpace {
    /// Create an address space; `replication` enables per-thread tables.
    pub fn new(replication: bool) -> AddressSpace {
        let root = Node::new();
        AddressSpace {
            nodes: vec![root],
            leaves: Vec::new(),
            process_root: 0,
            thread_roots: Vec::new(),
            replication,
            mapped: BTreeSet::new(),
            huge_bases: BTreeSet::new(),
            walk: WalkCache::new(),
            thread_walks: Vec::new(),
            walk_enabled: true,
        }
    }

    /// Enable or disable the software walk caches (ablation switch for
    /// determinism tests). Disabling flushes them.
    pub fn set_walk_cache_enabled(&mut self, enabled: bool) {
        self.walk_enabled = enabled;
        if !enabled {
            self.flush_walk_caches();
        }
    }

    /// Whether the software walk caches are active.
    pub fn walk_cache_enabled(&self) -> bool {
        self.walk_enabled
    }

    /// Flush every walk cache — the software analogue of a full TLB
    /// shootdown of paging-structure caches. Subsequent touches re-walk
    /// the radix trees and re-fill.
    pub fn flush_walk_caches(&mut self) {
        self.walk.flush();
        for wc in &mut self.thread_walks {
            wc.flush();
        }
    }

    /// Drop any cached walk for the region covering `vpn` from the
    /// process cache and every thread cache. Called on unmap and on
    /// migration's unmap-equivalent PTE transitions so cached structure
    /// never outlives the mapping it translated.
    fn invalidate_walk(&mut self, vpn: Vpn) {
        let region = vpn.0 >> LEVEL_BITS;
        self.walk.invalidate(region);
        for wc in &mut self.thread_walks {
            wc.invalidate(region);
        }
    }

    /// Whether per-thread replication is enabled.
    pub fn replication_enabled(&self) -> bool {
        self.replication
    }

    /// Oracle builds: prove every live walk-cache entry still agrees
    /// with an uncached radix walk — the staleness detector the runtime
    /// runs once per quantum, catching invalidations that should have
    /// happened (unmap, THP split, shootdown, teardown) but didn't.
    #[cfg(feature = "oracle")]
    pub fn verify_walk_caches(&self) {
        let check_one = |cache: &WalkCache, root: u32, who: &dyn Fn() -> String| {
            for (i, &tag) in cache.tags.iter().enumerate() {
                if tag == WALK_TAG_EMPTY {
                    continue;
                }
                let vpn = Vpn(tag << LEVEL_BITS);
                let want = self.leaf_index_ro(root, vpn);
                vulcan_oracle::check(
                    vulcan_oracle::Structure::Walk,
                    want == Some(cache.leaves[i]),
                    Some(vpn.0),
                    || {
                        format!(
                            "{} slot {i}: cached leaf {} for region {tag:#x} != \
                             uncached walk {want:?}",
                            who(),
                            cache.leaves[i]
                        )
                    },
                );
            }
        };
        check_one(&self.walk, self.process_root, &|| {
            "process walk cache".to_string()
        });
        for (ti, wc) in self.thread_walks.iter().enumerate() {
            if let Some(Some(root)) = self.thread_roots.get(ti) {
                check_one(wc, *root, &|| format!("thread {ti} walk cache"));
            }
        }
    }

    /// Register a thread; allocates its private root when replication is on.
    pub fn register_thread(&mut self, tid: LocalTid) {
        let idx = tid.0 as usize;
        if idx >= self.thread_roots.len() {
            self.thread_roots.resize(idx + 1, None);
        }
        if self.replication {
            if idx >= self.thread_walks.len() {
                self.thread_walks.resize_with(idx + 1, WalkCache::new);
            }
            if self.thread_roots[idx].is_none() {
                let root = self.alloc_node();
                self.thread_roots[idx] = Some(root);
            }
        }
    }

    fn alloc_node(&mut self) -> u32 {
        self.nodes.push(Node::new());
        u32::try_from(self.nodes.len() - 1)
            .expect("u32::MAX inner nodes would need a 16 TiB page-table arena")
    }

    fn alloc_leaf(&mut self) -> u32 {
        self.leaves.push(Leaf::new());
        u32::try_from(self.leaves.len() - 1)
            .expect("u32::MAX leaf tables would map a 2^50-page address space")
    }

    /// Walk (and optionally build) the path from `root` to the leaf table
    /// covering `vpn`. When building and no shared leaf exists yet, one is
    /// allocated; when a shared leaf already exists (reachable from another
    /// tree), it is linked, not duplicated.
    fn leaf_index(&mut self, root: u32, vpn: Vpn, build: bool, share: Option<u32>) -> Option<u32> {
        let mut node = root;
        for level in [3usize, 2] {
            let idx = vpn.index(level);
            node = match self.nodes[node as usize].slots[idx] {
                Slot::Node(n) => n,
                Slot::Empty if build => {
                    let n = self.alloc_node();
                    self.nodes[node as usize].slots[idx] = Slot::Node(n);
                    n
                }
                Slot::Empty => return None,
                Slot::Leaf(_) => unreachable!("leaf above level 1"),
            };
        }
        let idx = vpn.index(1);
        match self.nodes[node as usize].slots[idx] {
            Slot::Leaf(l) => Some(l),
            Slot::Empty if build => {
                let l = share.unwrap_or_else(|| self.alloc_leaf());
                self.nodes[node as usize].slots[idx] = Slot::Leaf(l);
                Some(l)
            }
            Slot::Empty => None,
            Slot::Node(_) => unreachable!("node at leaf level"),
        }
    }

    /// Read-only walk from `root` to the leaf covering `vpn`.
    fn leaf_index_ro(&self, root: u32, vpn: Vpn) -> Option<u32> {
        let mut node = root;
        for level in [3usize, 2] {
            match self.nodes[node as usize].slots[vpn.index(level)] {
                Slot::Node(n) => node = n,
                _ => return None,
            }
        }
        match self.nodes[node as usize].slots[vpn.index(1)] {
            Slot::Leaf(l) => Some(l),
            _ => None,
        }
    }

    /// Map `vpn` to `frame`, first-touched by `owner`.
    ///
    /// Walk caches need no invalidation here: misses are never cached,
    /// and a region's leaf table is stable once created, so any cached
    /// entry for this region already points at the leaf being filled.
    ///
    /// # Panics
    /// Panics if `vpn` is already mapped (the simulator must unmap first).
    pub fn map(&mut self, vpn: Vpn, frame: FrameId, owner: LocalTid) {
        let leaf = self
            .leaf_index(self.process_root, vpn, true, None)
            .expect("building walk always yields a leaf");
        let slot = vpn.index(0);
        let l = &mut self.leaves[leaf as usize];
        assert!(!l.ptes[slot].present(), "{vpn:?} already mapped");
        l.ptes[slot] = Pte::new(frame, owner);
        l.mapped += 1;
        self.mapped.insert(vpn.0);
    }

    /// Unmap `vpn`, returning the old PTE (migration step ②).
    pub fn unmap(&mut self, vpn: Vpn) -> Option<Pte> {
        let leaf = self.leaf_index_ro(self.process_root, vpn)?;
        let slot = vpn.index(0);
        let l = &mut self.leaves[leaf as usize];
        if !l.ptes[slot].present() {
            return None;
        }
        let old = l.ptes[slot];
        l.ptes[slot] = Pte::EMPTY;
        l.mapped -= 1;
        self.mapped.remove(&vpn.0);
        self.invalidate_walk(vpn);
        Some(old)
    }

    /// The PTE for `vpn` (EMPTY if unmapped).
    pub fn pte(&self, vpn: Vpn) -> Pte {
        let cached = self
            .walk_enabled
            .then(|| self.walk.get(vpn.0 >> LEVEL_BITS))
            .flatten();
        #[cfg(feature = "oracle")]
        if let Some(l) = cached {
            vulcan_oracle::check(
                vulcan_oracle::Structure::Walk,
                self.leaf_index_ro(self.process_root, vpn) == Some(l),
                Some(vpn.0),
                || {
                    format!(
                        "pte: process walk-cache hit leaf {l} != uncached walk {:?}",
                        self.leaf_index_ro(self.process_root, vpn)
                    )
                },
            );
        }
        cached
            .or_else(|| self.leaf_index_ro(self.process_root, vpn))
            .map(|leaf| self.leaves[leaf as usize].ptes[vpn.index(0)])
            .unwrap_or(Pte::EMPTY)
    }

    /// Overwrite the PTE for a mapped `vpn` (remap step ⑤, A/D updates).
    ///
    /// # Panics
    /// Panics if `vpn` has no leaf table yet.
    pub fn set_pte(&mut self, vpn: Vpn, pte: Pte) {
        let leaf = self
            .leaf_index_ro(self.process_root, vpn)
            .expect("set_pte on unmapped region");
        let slot = vpn.index(0);
        let l = &mut self.leaves[leaf as usize];
        let was = l.ptes[slot].present();
        l.ptes[slot] = pte;
        match (was, pte.present()) {
            (false, true) => {
                l.mapped += 1;
                self.mapped.insert(vpn.0);
            }
            (true, false) => {
                l.mapped -= 1;
                self.mapped.remove(&vpn.0);
                // Unmap-equivalent transition (migration step ②): cached
                // walks for the region must not outlive the mapping.
                self.invalidate_walk(vpn);
            }
            _ => {}
        }
    }

    /// Whether `vpn` is mapped.
    pub fn is_mapped(&self, vpn: Vpn) -> bool {
        self.mapped.contains(&vpn.0)
    }

    /// Simulate thread `tid` touching `vpn`: ensures the thread's private
    /// path reaches the shared leaf, updates A/D bits and the ownership
    /// lattice, and reports hint faults.
    ///
    /// Returns `None` when the page is unmapped (a major fault the caller
    /// must handle by allocating + [`map`](Self::map)).
    pub fn touch(&mut self, vpn: Vpn, tid: LocalTid, write: bool) -> Option<TouchOutcome> {
        let region = vpn.0 >> LEVEL_BITS;
        // Process-tree translation, via the walk cache when possible.
        // Misses (including unmapped regions) are never cached, so a
        // later `map` needs no invalidation to become visible.
        let leaf = match self.walk_enabled.then(|| self.walk.get(region)).flatten() {
            Some(l) => {
                // The hit claims to reproduce the uncached descent; in
                // oracle builds, prove it on every hit.
                #[cfg(feature = "oracle")]
                vulcan_oracle::check(
                    vulcan_oracle::Structure::Walk,
                    self.leaf_index_ro(self.process_root, vpn) == Some(l),
                    Some(vpn.0),
                    || {
                        format!(
                            "touch: process walk-cache hit leaf {l} != uncached walk {:?}",
                            self.leaf_index_ro(self.process_root, vpn)
                        )
                    },
                );
                l
            }
            None => {
                let l = self.leaf_index_ro(self.process_root, vpn)?;
                if self.walk_enabled {
                    self.walk.put(region, l);
                }
                l
            }
        };
        let slot = vpn.index(0);
        if !self.leaves[leaf as usize].ptes[slot].present() {
            return None;
        }

        // Link the thread's private upper levels to the shared leaf. A
        // thread-walk-cache hit on the same leaf proves the link already
        // exists, skipping the private-tree descent entirely.
        let mut replication_fault = false;
        if self.replication {
            self.register_thread(tid);
            let ti = tid.0 as usize;
            let cached = self.walk_enabled && self.thread_walks[ti].get(region) == Some(leaf);
            #[cfg(feature = "oracle")]
            if cached {
                let troot = self.thread_roots[ti].expect("cached entry implies registration");
                vulcan_oracle::check(
                    vulcan_oracle::Structure::Walk,
                    self.leaf_index_ro(troot, vpn) == Some(leaf),
                    Some(vpn.0),
                    || {
                        format!(
                            "touch: thread {ti} walk-cache hit leaf {leaf} != \
                             uncached private walk {:?}",
                            self.leaf_index_ro(troot, vpn)
                        )
                    },
                );
            }
            if !cached {
                let troot = self.thread_roots[ti].expect("registered above");
                let linked = self.leaf_index_ro(troot, vpn);
                if linked != Some(leaf) {
                    debug_assert!(linked.is_none(), "thread tree must share process leaves");
                    self.leaf_index(troot, vpn, true, Some(leaf));
                    replication_fault = true;
                }
                if self.walk_enabled {
                    self.thread_walks[ti].put(region, leaf);
                }
            }
        }

        let l = &mut self.leaves[leaf as usize];
        let mut pte = l.ptes[slot];
        let hint_fault = pte.poisoned();
        if hint_fault {
            pte = pte.with_poisoned(false);
        }
        let old_owner = pte.owner();
        let new_owner = merge_owner(old_owner, tid);
        let became_shared = old_owner != new_owner && new_owner == PageOwner::Shared;
        pte = pte.touch(write).with_owner(new_owner);
        l.ptes[slot] = pte;

        Some(TouchOutcome {
            pte,
            replication_fault,
            became_shared,
            hint_fault,
        })
    }

    /// The owner of a mapped page.
    pub fn owner(&self, vpn: Vpn) -> Option<PageOwner> {
        let pte = self.pte(vpn);
        pte.present().then(|| pte.owner())
    }

    /// Iterate all mapped VPNs in address order.
    pub fn mapped_vpns(&self) -> impl Iterator<Item = Vpn> + '_ {
        self.mapped.iter().map(|&v| Vpn(v))
    }

    /// Number of mapped pages (the process's RSS in pages).
    pub fn rss_pages(&self) -> u64 {
        self.mapped.len() as u64
    }

    // ---- transparent huge pages -------------------------------------------------

    /// Mark the 2 MiB range at `base` as THP-backed.
    pub fn mark_huge(&mut self, base: Vpn) {
        debug_assert_eq!(base.huge_offset(), 0, "huge base must be aligned");
        self.huge_bases.insert(base.0);
    }

    /// Whether `vpn` falls in a THP-backed range.
    #[inline]
    pub fn in_huge(&self, vpn: Vpn) -> bool {
        // Non-THP workloads ask this on every access; skip the hash when
        // no range was ever marked huge.
        !self.huge_bases.is_empty() && self.huge_bases.contains(&vpn.huge_base().0)
    }

    /// Split the huge page covering `vpn` into base pages (Memtis-style
    /// pre-promotion split, §3.4/§3.5). Returns true if a split occurred.
    pub fn split_huge(&mut self, vpn: Vpn) -> bool {
        self.huge_bases.remove(&vpn.huge_base().0)
    }

    /// Number of THP-backed ranges.
    pub fn huge_count(&self) -> usize {
        self.huge_bases.len()
    }

    // ---- replication overhead accounting (§3.6 limitation) ---------------------

    /// Total inner nodes across all trees.
    pub fn inner_node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Leaf tables (shared across trees; counted once).
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Bytes of extra page-table memory attributable to per-thread
    /// replication: every node beyond what a single process-wide tree
    /// would need. Each node/leaf occupies 4 KiB like a real page table.
    pub fn replication_overhead_bytes(&self) -> u64 {
        // Count the nodes reachable from the process tree alone.
        let mut process_nodes = 1u64; // the root
        let mut stack = vec![self.process_root];
        while let Some(n) = stack.pop() {
            for slot in self.nodes[n as usize].slots.iter() {
                if let Slot::Node(c) = slot {
                    process_nodes += 1;
                    stack.push(*c);
                }
            }
        }
        let total = self.nodes.len() as u64;
        (total - process_nodes) * 4096
    }
}

/// Tagged slot encoding for checkpoints: `Empty` = 0, `Node(i)` = tag 1,
/// `Leaf(i)` = tag 2, with the arena index in the low 32 bits. Arena
/// indices are `u32`, so the tag never collides with an index.
const SLOT_TAG_NODE: u64 = 1 << 32;
const SLOT_TAG_LEAF: u64 = 2 << 32;

fn slot_code(s: Slot) -> u64 {
    match s {
        Slot::Empty => 0,
        Slot::Node(i) => SLOT_TAG_NODE | i as u64,
        Slot::Leaf(i) => SLOT_TAG_LEAF | i as u64,
    }
}

fn slot_decode(code: u64) -> Result<Slot, String> {
    let idx = (code & 0xFFFF_FFFF) as u32;
    match code & !0xFFFF_FFFF {
        0 if code == 0 => Ok(Slot::Empty),
        SLOT_TAG_NODE => Ok(Slot::Node(idx)),
        SLOT_TAG_LEAF => Ok(Slot::Leaf(idx)),
        _ => Err(format!("bad slot code {code:#x}")),
    }
}

/// Sentinel for an absent `thread_roots` entry in checkpoints.
const NO_ROOT: u64 = u64::MAX;

impl vulcan_json::Snapshot for AddressSpace {
    /// Serializes both arenas verbatim — slot graphs, leaf PTE words and
    /// per-leaf mapped counts — in arena order, so restored arena indices
    /// (and hence future arena allocations) are identical. The software
    /// walk caches are deliberately **not** serialized: they are
    /// memoization only (the `walk_cache_disabled_matches_enabled` test
    /// proves behavioral equivalence), so restore rebuilds them empty and
    /// they re-fill on first touch.
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::{snap, Value};
        let nodes: Vec<Value> = self
            .nodes
            .iter()
            .map(|n| {
                let codes: Vec<u64> = n.slots.iter().map(|&s| slot_code(s)).collect();
                snap::u64_array(&codes)
            })
            .collect();
        let leaves: Vec<Value> = self
            .leaves
            .iter()
            .map(|l| {
                let ptes: Vec<u64> = l.ptes.iter().map(|p| p.0).collect();
                snap::obj(vec![
                    ("ptes", snap::u64_array(&ptes)),
                    ("mapped", snap::u64_value(l.mapped as u64)),
                ])
            })
            .collect();
        let roots: Vec<u64> = self
            .thread_roots
            .iter()
            .map(|r| r.map_or(NO_ROOT, |i| i as u64))
            .collect();
        let mapped: Vec<u64> = self.mapped.iter().copied().collect();
        let huge: Vec<u64> = self.huge_bases.iter().copied().collect();
        snap::obj(vec![
            ("nodes", Value::Array(nodes)),
            ("leaves", Value::Array(leaves)),
            ("process_root", snap::u64_value(self.process_root as u64)),
            ("thread_roots", snap::u64_array(&roots)),
            ("replication", Value::Bool(self.replication)),
            ("mapped", snap::u64_array(&mapped)),
            ("huge_bases", snap::u64_array(&huge)),
            ("walk_enabled", Value::Bool(self.walk_enabled)),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        let nodes: Vec<Node> = snap::field_array(v, "nodes")?
            .iter()
            .map(|nv| {
                let codes = snap::array_u64(nv)?;
                if codes.len() != FANOUT {
                    return Err(format!("node needs {FANOUT} slots, got {}", codes.len()));
                }
                let slots: Result<Vec<Slot>, String> = codes.into_iter().map(slot_decode).collect();
                Ok(Node {
                    slots: slots?.into_boxed_slice(),
                })
            })
            .collect::<Result<_, String>>()?;
        let leaves: Vec<Leaf> = snap::field_array(v, "leaves")?
            .iter()
            .map(|lv| {
                let ptes = snap::array_u64(snap::field(lv, "ptes")?)?;
                if ptes.len() != FANOUT {
                    return Err(format!("leaf needs {FANOUT} ptes, got {}", ptes.len()));
                }
                let mapped = u32::try_from(snap::field_u64(lv, "mapped")?)
                    .map_err(|_| "leaf mapped count out of u32 range".to_string())?;
                Ok(Leaf {
                    ptes: ptes
                        .into_iter()
                        .map(Pte)
                        .collect::<Vec<_>>()
                        .into_boxed_slice(),
                    mapped,
                })
            })
            .collect::<Result<_, String>>()?;
        let process_root = u32::try_from(snap::field_u64(v, "process_root")?)
            .ok()
            .filter(|&r| (r as usize) < nodes.len())
            .ok_or_else(|| "process_root out of arena range".to_string())?;
        let thread_roots: Vec<Option<u32>> = snap::array_u64(snap::field(v, "thread_roots")?)?
            .into_iter()
            .map(|r| {
                if r == NO_ROOT {
                    Ok(None)
                } else {
                    u32::try_from(r)
                        .ok()
                        .filter(|&r| (r as usize) < nodes.len())
                        .map(Some)
                        .ok_or_else(|| format!("thread root {r} out of arena range"))
                }
            })
            .collect::<Result<_, String>>()?;
        let thread_walks = thread_roots.iter().map(|_| WalkCache::new()).collect();
        Ok(AddressSpace {
            nodes,
            leaves,
            process_root,
            thread_roots,
            replication: snap::field_bool(v, "replication")?,
            mapped: snap::array_u64(snap::field(v, "mapped")?)?
                .into_iter()
                .collect(),
            huge_bases: snap::array_u64(snap::field(v, "huge_bases")?)?
                .into_iter()
                .collect(),
            walk: WalkCache::new(),
            thread_walks,
            walk_enabled: snap::field_bool(v, "walk_enabled")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulcan_sim::TierKind;

    fn frame(index: u32) -> FrameId {
        FrameId {
            tier: TierKind::Slow,
            index,
        }
    }

    fn space() -> AddressSpace {
        AddressSpace::new(true)
    }

    #[test]
    fn map_translate_unmap() {
        let mut s = space();
        let vpn = Vpn(0x12345);
        s.map(vpn, frame(7), LocalTid(0));
        assert!(s.is_mapped(vpn));
        assert_eq!(s.pte(vpn).frame(), Some(frame(7)));
        assert_eq!(s.rss_pages(), 1);
        let old = s.unmap(vpn).unwrap();
        assert_eq!(old.frame(), Some(frame(7)));
        assert!(!s.is_mapped(vpn));
        assert_eq!(s.pte(vpn), Pte::EMPTY);
    }

    #[test]
    fn unmap_unmapped_is_none() {
        let mut s = space();
        assert_eq!(s.unmap(Vpn(5)), None);
    }

    #[test]
    #[should_panic(expected = "already mapped")]
    fn double_map_panics() {
        let mut s = space();
        s.map(Vpn(1), frame(1), LocalTid(0));
        s.map(Vpn(1), frame(2), LocalTid(0));
    }

    #[test]
    fn touch_unmapped_is_major_fault() {
        let mut s = space();
        assert_eq!(s.touch(Vpn(9), LocalTid(0), false), None);
    }

    #[test]
    fn first_touch_sets_private_owner() {
        let mut s = space();
        s.map(Vpn(1), frame(1), LocalTid(3));
        let out = s.touch(Vpn(1), LocalTid(3), false).unwrap();
        assert_eq!(out.pte.owner(), PageOwner::Private(LocalTid(3)));
        assert!(!out.became_shared);
    }

    #[test]
    fn second_thread_shares_page() {
        let mut s = space();
        s.map(Vpn(1), frame(1), LocalTid(0));
        s.touch(Vpn(1), LocalTid(0), false).unwrap();
        let out = s.touch(Vpn(1), LocalTid(1), false).unwrap();
        assert!(out.became_shared);
        assert_eq!(s.owner(Vpn(1)), Some(PageOwner::Shared));
        // Further touches keep it shared without re-reporting.
        let again = s.touch(Vpn(1), LocalTid(0), false).unwrap();
        assert!(!again.became_shared);
    }

    #[test]
    fn replication_fault_once_per_thread_region() {
        let mut s = space();
        s.map(Vpn(1), frame(1), LocalTid(0));
        let first = s.touch(Vpn(1), LocalTid(0), false).unwrap();
        assert!(first.replication_fault);
        let second = s.touch(Vpn(1), LocalTid(0), false).unwrap();
        assert!(!second.replication_fault);
        // A different thread pays its own replication fault.
        let other = s.touch(Vpn(1), LocalTid(1), false).unwrap();
        assert!(other.replication_fault);
    }

    #[test]
    fn no_replication_faults_when_disabled() {
        let mut s = AddressSpace::new(false);
        s.map(Vpn(1), frame(1), LocalTid(0));
        let out = s.touch(Vpn(1), LocalTid(0), false).unwrap();
        assert!(!out.replication_fault);
        assert_eq!(s.replication_overhead_bytes(), 0);
    }

    #[test]
    fn leaf_tables_are_shared_not_duplicated() {
        let mut s = space();
        // Two threads touching pages in the same 2 MiB region share a leaf.
        s.map(Vpn(0), frame(1), LocalTid(0));
        s.map(Vpn(1), frame(2), LocalTid(1));
        s.touch(Vpn(0), LocalTid(0), false).unwrap();
        s.touch(Vpn(1), LocalTid(1), false).unwrap();
        assert_eq!(s.leaf_count(), 1, "one shared leaf only");
        // Upper levels are replicated: process + 2 thread trees, 3 nodes
        // each (root, L3, L2).
        assert_eq!(s.inner_node_count(), 9);
        assert_eq!(s.replication_overhead_bytes(), 6 * 4096);
    }

    #[test]
    fn dirty_bit_via_write_touch() {
        let mut s = space();
        s.map(Vpn(4), frame(4), LocalTid(0));
        s.touch(Vpn(4), LocalTid(0), false).unwrap();
        assert!(!s.pte(Vpn(4)).dirty());
        s.touch(Vpn(4), LocalTid(0), true).unwrap();
        assert!(s.pte(Vpn(4)).dirty());
    }

    #[test]
    fn hint_fault_fires_once() {
        let mut s = space();
        s.map(Vpn(2), frame(2), LocalTid(0));
        let pte = s.pte(Vpn(2)).with_poisoned(true);
        s.set_pte(Vpn(2), pte);
        let out = s.touch(Vpn(2), LocalTid(0), false).unwrap();
        assert!(out.hint_fault);
        let out2 = s.touch(Vpn(2), LocalTid(0), false).unwrap();
        assert!(!out2.hint_fault, "poison cleared by first fault");
    }

    #[test]
    fn set_pte_maintains_mapped_set() {
        let mut s = space();
        s.map(Vpn(3), frame(3), LocalTid(0));
        let pte = s.pte(Vpn(3));
        s.set_pte(Vpn(3), Pte::EMPTY);
        assert!(!s.is_mapped(Vpn(3)));
        s.set_pte(Vpn(3), pte);
        assert!(s.is_mapped(Vpn(3)));
        assert_eq!(s.rss_pages(), 1);
    }

    #[test]
    fn mapped_vpns_in_order() {
        let mut s = space();
        for v in [5u64, 1, 3] {
            s.map(Vpn(v), frame(v as u32), LocalTid(0));
        }
        let got: Vec<_> = s.mapped_vpns().map(|v| v.0).collect();
        assert_eq!(got, vec![1, 3, 5]);
    }

    #[test]
    fn huge_page_bookkeeping() {
        let mut s = space();
        s.mark_huge(Vpn(512));
        assert!(s.in_huge(Vpn(512 + 100)));
        assert!(!s.in_huge(Vpn(100)));
        assert_eq!(s.huge_count(), 1);
        assert!(s.split_huge(Vpn(700)));
        assert!(!s.in_huge(Vpn(700)));
        assert!(!s.split_huge(Vpn(700)), "second split is a no-op");
    }

    #[test]
    fn distant_vpns_use_distinct_leaves() {
        let mut s = space();
        s.map(Vpn(0), frame(1), LocalTid(0));
        s.map(Vpn(1 << 20), frame(2), LocalTid(0));
        assert_eq!(s.leaf_count(), 2);
    }

    #[test]
    fn walk_cache_hit_returns_same_translation() {
        let mut s = space();
        s.map(Vpn(10), frame(1), LocalTid(0));
        let cold = s.touch(Vpn(10), LocalTid(0), false).unwrap();
        // Second touch is a process- and thread-cache hit.
        let warm = s.touch(Vpn(10), LocalTid(0), false).unwrap();
        assert_eq!(cold.pte.frame(), warm.pte.frame());
        assert!(!warm.replication_fault, "cached link, no fault");
        // Same region, different page: still served by the cached leaf.
        s.map(Vpn(11), frame(2), LocalTid(0));
        let sibling = s.touch(Vpn(11), LocalTid(0), false).unwrap();
        assert_eq!(sibling.pte.frame(), Some(frame(2)));
    }

    #[test]
    fn walk_cache_sees_new_pte_after_unmap() {
        let mut s = space();
        s.map(Vpn(7), frame(1), LocalTid(0));
        s.touch(Vpn(7), LocalTid(0), false).unwrap(); // cache the region
        s.unmap(Vpn(7)).unwrap();
        assert_eq!(s.touch(Vpn(7), LocalTid(0), false), None, "major fault");
        assert_eq!(s.pte(Vpn(7)), Pte::EMPTY);
        // Remap to a different frame: the touch must see the new PTE.
        s.map(Vpn(7), frame(9), LocalTid(0));
        let out = s.touch(Vpn(7), LocalTid(0), false).unwrap();
        assert_eq!(out.pte.frame(), Some(frame(9)));
    }

    #[test]
    fn walk_cache_sees_new_pte_after_migration_remap() {
        // Migration's unmap-equivalent transition goes through set_pte:
        // present → EMPTY (step ②), then EMPTY → new frame (step ⑤).
        let mut s = space();
        s.map(Vpn(20), frame(3), LocalTid(0));
        s.touch(Vpn(20), LocalTid(0), true).unwrap(); // cache + dirty
        let old = s.pte(Vpn(20));
        s.set_pte(Vpn(20), Pte::EMPTY);
        assert_eq!(s.touch(Vpn(20), LocalTid(0), false), None);
        let new_frame = FrameId {
            tier: TierKind::Fast,
            index: 77,
        };
        s.set_pte(Vpn(20), old.with_frame(new_frame).clear_dirty());
        let out = s.touch(Vpn(20), LocalTid(0), false).unwrap();
        assert_eq!(
            out.pte.frame(),
            Some(new_frame),
            "stale walk would miss this"
        );
        assert_eq!(s.pte(Vpn(20)).frame(), Some(new_frame));
    }

    #[test]
    fn walk_cache_flush_is_transparent() {
        let mut s = space();
        s.map(Vpn(30), frame(4), LocalTid(1));
        s.touch(Vpn(30), LocalTid(1), false).unwrap();
        s.flush_walk_caches(); // software shootdown
        let out = s.touch(Vpn(30), LocalTid(1), true).unwrap();
        assert_eq!(out.pte.frame(), Some(frame(4)));
        assert!(out.pte.dirty());
        assert!(
            !out.replication_fault,
            "private path still linked after flush"
        );
    }

    #[test]
    fn walk_cache_disabled_matches_enabled() {
        // The cache is a wall-clock optimization only: a cached and an
        // uncached space driven by the same op sequence must agree on
        // every outcome and every PTE.
        let mut cached = space();
        let mut plain = space();
        plain.set_walk_cache_enabled(false);
        assert!(!plain.walk_cache_enabled());
        let ops: Vec<(u64, u8, bool)> = (0..600)
            .map(|i| {
                let x = (i as u64).wrapping_mul(2_654_435_761) >> 7;
                (x % 1_500, (x % 3) as u8, x.is_multiple_of(5))
            })
            .collect();
        for &(v, t, w) in &ops {
            if !cached.is_mapped(Vpn(v)) {
                cached.map(Vpn(v), frame(v as u32), LocalTid(t));
                plain.map(Vpn(v), frame(v as u32), LocalTid(t));
            }
            let a = cached.touch(Vpn(v), LocalTid(t), w);
            let b = plain.touch(Vpn(v), LocalTid(t), w);
            assert_eq!(a, b, "vpn {v} tid {t} write {w}");
        }
        for &(v, _, _) in &ops {
            assert_eq!(cached.pte(Vpn(v)), plain.pte(Vpn(v)));
        }
    }

    #[test]
    fn walk_cache_collision_eviction_is_safe() {
        // Two regions that collide in the direct-mapped cache (same slot
        // modulo WALK_CACHE_SLOTS) keep evicting each other; translations
        // must stay exact throughout.
        let mut s = space();
        let a = Vpn(5);
        let b = Vpn(5 + (WALK_CACHE_SLOTS as u64) * FANOUT as u64);
        s.map(a, frame(1), LocalTid(0));
        s.map(b, frame(2), LocalTid(0));
        for _ in 0..4 {
            assert_eq!(
                s.touch(a, LocalTid(0), false).unwrap().pte.frame(),
                Some(frame(1))
            );
            assert_eq!(
                s.touch(b, LocalTid(0), false).unwrap().pte.frame(),
                Some(frame(2))
            );
        }
    }

    #[test]
    fn remap_preserves_owner_and_flags() {
        let mut s = space();
        s.map(Vpn(8), frame(9), LocalTid(2));
        s.touch(Vpn(8), LocalTid(2), true).unwrap();
        let new_frame = FrameId {
            tier: TierKind::Fast,
            index: 42,
        };
        let pte = s.pte(Vpn(8)).with_frame(new_frame);
        s.set_pte(Vpn(8), pte);
        let after = s.pte(Vpn(8));
        assert_eq!(after.frame(), Some(new_frame));
        assert_eq!(after.owner(), PageOwner::Private(LocalTid(2)));
        assert!(after.dirty());
    }

    /// ISSUE 10 satellite (walk-cache audit): a restored space starts
    /// with **empty** walk caches, yet must behave identically to the
    /// original whose caches are warm — and continue allocating arena
    /// indices identically, so later snapshots still match.
    #[test]
    fn snapshot_roundtrip_with_cold_walk_caches_matches_warm_original() {
        use vulcan_json::Snapshot;
        let mut orig = space();
        let ops: Vec<(u64, u8, bool)> = (0..600)
            .map(|i| {
                let x = (i as u64).wrapping_mul(2_654_435_761) >> 7;
                (x % 1_500, (x % 3) as u8, x.is_multiple_of(5))
            })
            .collect();
        for &(v, t, w) in &ops[..400] {
            if !orig.is_mapped(Vpn(v)) {
                orig.map(Vpn(v), frame(v as u32), LocalTid(t));
            }
            orig.touch(Vpn(v), LocalTid(t), w);
        }
        orig.mark_huge(Vpn(512 * 9));
        let snap = orig.snapshot();
        let mut back = AddressSpace::restore(&snap).expect("restore");
        // Idempotency: re-snapshotting the restored space is bit-identical.
        assert_eq!(back.snapshot(), snap);
        // Continue both with the tail ops (cold caches vs warm).
        for &(v, t, w) in &ops[400..] {
            if !orig.is_mapped(Vpn(v)) {
                orig.map(Vpn(v), frame(v as u32), LocalTid(t));
                back.map(Vpn(v), frame(v as u32), LocalTid(t));
            }
            assert_eq!(
                orig.touch(Vpn(v), LocalTid(t), w),
                back.touch(Vpn(v), LocalTid(t), w),
                "vpn {v} tid {t} write {w}"
            );
        }
        for &(v, _, _) in &ops {
            assert_eq!(orig.pte(Vpn(v)), back.pte(Vpn(v)));
        }
        assert_eq!(orig.inner_node_count(), back.inner_node_count());
        assert_eq!(orig.leaf_count(), back.leaf_count());
        assert_eq!(back.snapshot(), orig.snapshot(), "states stay in lockstep");
    }

    #[test]
    fn restore_rejects_dangling_root() {
        use vulcan_json::Snapshot;
        let s = space();
        let mut v = s.snapshot();
        if let vulcan_json::Value::Object(m) = &mut v {
            m.insert("process_root".to_string(), vulcan_json::snap::u64_value(99));
        }
        assert!(AddressSpace::restore(&v)
            .unwrap_err()
            .contains("process_root"));
    }
}
