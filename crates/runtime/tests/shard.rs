//! The sharded-sweep contract (ISSUE 7): shard count is a throughput
//! knob, never a results knob.
//!
//! * `plan_shards` partitions started workloads into core-disjoint
//!   groups (core-sharing workloads co-shard — per-core TLBs couple
//!   them) and round-robins the groups onto the requested shards.
//! * Stepping a cell through `run_quantum` yields equal
//!   [`QuantumOutcome`]s — including migration tallies and stall
//!   charges — at 1, 2 and 4 shards, while `sharded_quanta` proves the
//!   parallel path actually ran.

use vulcan_migrate::MechanismConfig;
use vulcan_profile::PebsProfiler;
use vulcan_runtime::{
    plan_shards, ExecuteMode, QuantumOutcome, SimConfig, SimRunner, SystemState, TieringPolicy,
};
use vulcan_sim::{Machine, MachineSpec, Nanos, TierKind};
use vulcan_vm::Vpn;
use vulcan_workloads::{microbench, MicroConfig, WorkloadSpec};

fn micro_spec(name: &str, rss: u64, wss: u64, threads: usize) -> WorkloadSpec {
    microbench(
        name,
        MicroConfig {
            rss_pages: rss,
            wss_pages: wss,
            ..Default::default()
        },
        threads,
    )
}

fn state(specs: Vec<WorkloadSpec>, machine: MachineSpec) -> SystemState {
    SystemState::new(
        Machine::new(machine),
        specs,
        &mut |_| PebsProfiler::new(4).into(),
        true,
        1,
    )
}

#[test]
fn core_sharing_workloads_co_shard() {
    // Two 2-thread workloads on a 2-core machine: both pin cores {0,1},
    // so they must sweep on the same shard no matter how many were
    // requested.
    let st = state(
        vec![micro_spec("a", 128, 64, 2), micro_spec("b", 128, 64, 2)],
        MachineSpec::small(512, 1_024, 2),
    );
    let plan = plan_shards(&st, 4);
    assert_eq!(plan.groups, vec![vec![0, 1]]);
    assert_eq!(plan.shards, vec![vec![0, 1]]);
}

#[test]
fn disjoint_groups_round_robin_onto_shards() {
    // Four 2-thread workloads on 8 cores pin disjoint ranges, so each
    // is its own group; two shards take the groups alternately.
    let st = state(
        vec![
            micro_spec("a", 128, 64, 2),
            micro_spec("b", 128, 64, 2),
            micro_spec("c", 128, 64, 2),
            micro_spec("d", 128, 64, 2),
        ],
        MachineSpec::small(2_048, 4_096, 8),
    );
    let plan = plan_shards(&st, 2);
    assert_eq!(plan.groups, vec![vec![0], vec![1], vec![2], vec![3]]);
    assert_eq!(plan.shards, vec![vec![0, 2], vec![1, 3]]);
    // More shards than groups degenerate to one group per shard.
    assert_eq!(plan_shards(&st, 8).shards.len(), 4);
}

#[test]
fn unstarted_workloads_are_not_planned() {
    let mut st = state(
        vec![
            micro_spec("a", 128, 64, 2),
            micro_spec("b", 128, 64, 2),
            micro_spec("c", 128, 64, 2),
        ],
        MachineSpec::small(2_048, 4_096, 8),
    );
    st.workloads[1].started = false;
    let plan = plan_shards(&st, 4);
    assert_eq!(plan.groups, vec![vec![0], vec![2]]);
}

/// A deterministic policy that actually migrates every quantum: promote
/// up to 8 slow-resident pages per workload synchronously and demote up
/// to 4 fast-resident pages in the background, lowest VPNs first. Runs
/// in the (sequential) decide phase, so if execute left identical state
/// it issues identical migrations at any shard count.
struct Shuttle {
    mech: MechanismConfig,
}

impl Shuttle {
    fn resident(st: &SystemState, w: usize, tier: TierKind, cap: usize) -> Vec<Vpn> {
        let space = &st.workloads[w].process.space;
        space
            .mapped_vpns()
            .filter(|&v| space.pte(v).tier() == Some(tier))
            .take(cap)
            .collect()
    }
}

impl TieringPolicy for Shuttle {
    fn name(&self) -> &'static str {
        "shuttle"
    }

    fn on_quantum(&mut self, st: &mut SystemState) {
        for w in 0..st.n_workloads() {
            if !st.workloads[w].started {
                continue;
            }
            let up = Self::resident(st, w, TierKind::Slow, 8);
            if !up.is_empty() {
                st.migrate_sync(w, &up, TierKind::Fast, &self.mech);
            }
            let down = Self::resident(st, w, TierKind::Fast, 4);
            if !down.is_empty() {
                st.migrate_background(w, &down, TierKind::Slow, &self.mech);
            }
        }
    }
}

/// Four core-disjoint 2-thread tenants; nothing preallocated, so the
/// first quantum demand-faults through the shard leases, and `Shuttle`
/// keeps sync + background migrations flowing every quantum after.
fn cell(shards: usize) -> SimRunner {
    let specs = vec![
        micro_spec("a", 256, 96, 2),
        micro_spec("b", 256, 96, 2),
        micro_spec("c", 256, 96, 2),
        micro_spec("d", 256, 96, 2),
    ];
    SimRunner::builder()
        .machine(MachineSpec::small(4_096, 8_192, 8))
        .workloads(specs)
        .profiler_factory(|_| Box::new(PebsProfiler::new(4)))
        .policy(Box::new(Shuttle {
            mech: MechanismConfig::linux_baseline(),
        }))
        .config(SimConfig {
            n_quanta: 0,
            quantum_active: Nanos::micros(200),
            seed: 7,
            shards,
            ..Default::default()
        })
        .build()
}

fn step(runner: &mut SimRunner, quanta: u64) -> Vec<QuantumOutcome> {
    (0..quanta).map(|_| runner.run_quantum()).collect()
}

#[test]
fn quantum_outcomes_identical_across_shard_counts() {
    const QUANTA: u64 = 12;
    let mut seq = cell(1);
    let baseline = step(&mut seq, QUANTA);
    assert_eq!(seq.sharded_quanta(), 0, "shards=1 must stay sequential");
    assert_eq!(seq.last_execute_mode(), ExecuteMode::Sequential);

    // The baseline must exercise what the merge has to preserve:
    // migrations in both directions and sync-migration stall.
    assert!(
        baseline.iter().any(|o| o.migrations.promoted > 0),
        "test cell never promoted"
    );
    assert!(
        baseline.iter().any(|o| o.migrations.demoted > 0),
        "test cell never demoted"
    );
    assert!(
        baseline
            .iter()
            .any(|o| o.workloads.iter().any(|w| w.stall > vulcan_sim::Cycles(0))),
        "test cell never charged migration stall"
    );

    for shards in [2, 4] {
        let mut par = cell(shards);
        let outcomes = step(&mut par, QUANTA);
        assert_eq!(
            par.sharded_quanta(),
            QUANTA,
            "every quantum should take the sharded path at {shards} shards"
        );
        assert_eq!(par.last_execute_mode(), ExecuteMode::Sharded { shards });
        for (q, (s, p)) in baseline.iter().zip(&outcomes).enumerate() {
            assert_eq!(s, p, "quantum {q} diverged at {shards} shards");
        }
    }
}

#[test]
fn run_results_identical_across_shard_counts() {
    const QUANTA: u64 = 10;
    let mut seq = cell(1);
    step(&mut seq, QUANTA);
    let base = seq.into_result();
    for shards in [2, 4] {
        let mut par = cell(shards);
        step(&mut par, QUANTA);
        let res = par.into_result();
        assert_eq!(base.cfi, res.cfi, "CFI diverged at {shards} shards");
        for (b, r) in base.per_workload.iter().zip(&res.per_workload) {
            assert_eq!(b.ops_total, r.ops_total, "{}: ops diverged", b.name);
            assert_eq!(b.mean_ops_per_sec, r.mean_ops_per_sec, "{}", b.name);
            assert_eq!(b.mean_latency_ns, r.mean_latency_ns, "{}", b.name);
            assert_eq!(b.mean_fthr, r.mean_fthr, "{}", b.name);
        }
        assert_eq!(
            base.series.to_json(),
            res.series.to_json(),
            "series diverged at {shards} shards"
        );
    }
}

#[test]
fn telemetry_forces_the_sequential_path() {
    use vulcan_telemetry::Telemetry;
    let specs = vec![micro_spec("a", 128, 64, 2), micro_spec("b", 128, 64, 2)];
    let mut runner = SimRunner::builder()
        .machine(MachineSpec::small(2_048, 4_096, 8))
        .workloads(specs)
        .profiler_factory(|_| Box::new(PebsProfiler::new(4)))
        .policy(Box::new(vulcan_runtime::StaticPlacement))
        .config(SimConfig {
            n_quanta: 0,
            quantum_active: Nanos::micros(200),
            telemetry: Telemetry::enabled(),
            shards: 4,
            ..Default::default()
        })
        .build();
    runner.run_quantum();
    assert_eq!(runner.sharded_quanta(), 0);
    assert_eq!(runner.last_execute_mode(), ExecuteMode::Sequential);
}
