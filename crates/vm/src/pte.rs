//! Page-table entries with Vulcan's thread-ownership bits.
//!
//! The paper's implementation (§4) adds a 7-bit `thread_id` field to PTEs
//! using the architecturally ignored bits 52–58 of x86-64 leaf entries,
//! encoding either the owning thread's id or the all-ones pattern (0x7F)
//! for shared pages. We pack the same layout into a `u64`:
//!
//! ```text
//! bit  0      present
//! bit  1      writable
//! bit  5      accessed      (hardware A bit, used by table scanning)
//! bit  6      dirty         (hardware D bit, used by migration copy)
//! bit  8      hint-poisoned (reserved-bit NUMA hinting fault, §2.1)
//! bits 9–10   frame tier    (chain index: 00 = fast, 01 = slow, 10 = nvm)
//! bits 12–51  frame index
//! bits 52–58  thread owner  (0x7F = shared)
//! ```

use vulcan_sim::{FrameId, TierKind};

/// A thread id local to one process, fitting in the PTE's 7-bit field.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocalTid(pub u8);

/// Owner encoding stored in PTE bits 52–58.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PageOwner {
    /// Exactly one thread has ever touched the page.
    Private(LocalTid),
    /// Two or more threads share the page (encoded 0x7F).
    Shared,
}

/// The all-ones owner pattern marking a shared page.
pub const SHARED_TID: u8 = 0x7F;

/// Maximum usable per-process thread id (0x7E; 0x7F is reserved).
pub const MAX_LOCAL_TID: u8 = SHARED_TID - 1;

const PRESENT: u64 = 1 << 0;
const WRITABLE: u64 = 1 << 1;
const ACCESSED: u64 = 1 << 5;
const DIRTY: u64 = 1 << 6;
const POISONED: u64 = 1 << 8;
// Two-bit tier field holding the frame's chain index. Fast (00) and
// Slow (01) keep the layout of the original single TIER_SLOW bit; Nvm
// (10) extends into previously-unused bit 10.
const TIER_SHIFT: u32 = 9;
const TIER_MASK: u64 = 0b11 << TIER_SHIFT;
const FRAME_SHIFT: u32 = 12;
const FRAME_MASK: u64 = ((1u64 << 40) - 1) << FRAME_SHIFT;
const OWNER_SHIFT: u32 = 52;
const OWNER_MASK: u64 = 0x7F << OWNER_SHIFT;

/// A packed page-table entry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Pte(pub u64);

impl Pte {
    /// The canonical not-present entry.
    pub const EMPTY: Pte = Pte(0);

    /// Build a present, writable entry mapping `frame` owned by `owner`.
    pub fn new(frame: FrameId, owner: LocalTid) -> Pte {
        assert!(
            owner.0 <= MAX_LOCAL_TID,
            "tid {owner:?} exceeds 7-bit field"
        );
        let mut bits = PRESENT | WRITABLE;
        bits |= (frame.index as u64) << FRAME_SHIFT;
        bits |= (frame.tier.index() as u64) << TIER_SHIFT;
        bits |= (owner.0 as u64) << OWNER_SHIFT;
        Pte(bits)
    }

    /// Whether the entry maps a frame.
    pub fn present(self) -> bool {
        self.0 & PRESENT != 0
    }

    /// The mapped frame, if present.
    pub fn frame(self) -> Option<FrameId> {
        if !self.present() {
            return None;
        }
        let raw = ((self.0 & TIER_MASK) >> TIER_SHIFT) as usize;
        let tier = TierKind::try_from(raw)
            .unwrap_or_else(|i| panic!("PTE tier field {i} is not a valid chain index"));
        Some(FrameId {
            tier,
            index: ((self.0 & FRAME_MASK) >> FRAME_SHIFT) as u32,
        })
    }

    /// Replace the mapped frame, keeping flags and owner (remap step ⑤).
    pub fn with_frame(self, frame: FrameId) -> Pte {
        let mut bits = self.0 & !(FRAME_MASK | TIER_MASK);
        bits |= (frame.index as u64) << FRAME_SHIFT;
        bits |= (frame.tier.index() as u64) << TIER_SHIFT;
        Pte(bits)
    }

    /// The owner field.
    pub fn owner(self) -> PageOwner {
        let raw = ((self.0 & OWNER_MASK) >> OWNER_SHIFT) as u8;
        if raw == SHARED_TID {
            PageOwner::Shared
        } else {
            PageOwner::Private(LocalTid(raw))
        }
    }

    /// Set the owner field.
    pub fn with_owner(self, owner: PageOwner) -> Pte {
        let raw = match owner {
            PageOwner::Private(t) => {
                assert!(t.0 <= MAX_LOCAL_TID);
                t.0
            }
            PageOwner::Shared => SHARED_TID,
        };
        Pte((self.0 & !OWNER_MASK) | ((raw as u64) << OWNER_SHIFT))
    }

    /// Hardware accessed bit.
    pub fn accessed(self) -> bool {
        self.0 & ACCESSED != 0
    }

    /// Hardware dirty bit.
    pub fn dirty(self) -> bool {
        self.0 & DIRTY != 0
    }

    /// Record an access (sets A, and D when `write`).
    pub fn touch(self, write: bool) -> Pte {
        let mut bits = self.0 | ACCESSED;
        if write {
            bits |= DIRTY;
        }
        Pte(bits)
    }

    /// Clear the accessed bit (page-table scanning profiler).
    pub fn clear_accessed(self) -> Pte {
        Pte(self.0 & !ACCESSED)
    }

    /// Clear the dirty bit (after a successful copy).
    pub fn clear_dirty(self) -> Pte {
        Pte(self.0 & !DIRTY)
    }

    /// Whether the entry is poisoned for NUMA-hinting faults.
    pub fn poisoned(self) -> bool {
        self.0 & POISONED != 0
    }

    /// Poison / unpoison for hint-fault profiling (§2.1).
    pub fn with_poisoned(self, p: bool) -> Pte {
        if p {
            Pte(self.0 | POISONED)
        } else {
            Pte(self.0 & !POISONED)
        }
    }

    /// The tier the mapped frame lives in, if present.
    pub fn tier(self) -> Option<TierKind> {
        self.frame().map(|f| f.tier)
    }
}

/// Ownership-lattice transition applied when `tid` touches a page:
/// unowned → private(tid) → shared. Returns the new owner.
pub fn merge_owner(current: PageOwner, tid: LocalTid) -> PageOwner {
    match current {
        PageOwner::Private(t) if t == tid => current,
        PageOwner::Private(_) => PageOwner::Shared,
        PageOwner::Shared => PageOwner::Shared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(tier: TierKind, index: u32) -> FrameId {
        FrameId { tier, index }
    }

    #[test]
    fn roundtrip_fast_frame() {
        let f = frame(TierKind::Fast, 0xABCDE);
        let pte = Pte::new(f, LocalTid(5));
        assert!(pte.present());
        assert_eq!(pte.frame(), Some(f));
        assert_eq!(pte.owner(), PageOwner::Private(LocalTid(5)));
        assert_eq!(pte.tier(), Some(TierKind::Fast));
    }

    #[test]
    fn roundtrip_slow_frame() {
        let f = frame(TierKind::Slow, 7);
        let pte = Pte::new(f, LocalTid(0));
        assert_eq!(pte.frame(), Some(f));
        assert_eq!(pte.tier(), Some(TierKind::Slow));
    }

    #[test]
    fn roundtrip_nvm_frame() {
        let f = frame(TierKind::Nvm, 42);
        let pte = Pte::new(f, LocalTid(2)).touch(true);
        assert_eq!(pte.frame(), Some(f));
        assert_eq!(pte.tier(), Some(TierKind::Nvm));
        // Two-tier encodings are unchanged: the Nvm bit never appears in
        // fast/slow entries, and remapping down-chain clears it.
        let back = pte.with_frame(frame(TierKind::Slow, 7));
        assert_eq!(back.tier(), Some(TierKind::Slow));
        assert!(back.dirty(), "flags survive the remap");
    }

    #[test]
    fn empty_is_not_present() {
        assert!(!Pte::EMPTY.present());
        assert_eq!(Pte::EMPTY.frame(), None);
        assert_eq!(Pte::EMPTY.tier(), None);
    }

    #[test]
    fn with_frame_preserves_flags_and_owner() {
        let pte = Pte::new(frame(TierKind::Slow, 3), LocalTid(9)).touch(true);
        let moved = pte.with_frame(frame(TierKind::Fast, 100));
        assert_eq!(moved.frame(), Some(frame(TierKind::Fast, 100)));
        assert_eq!(moved.owner(), PageOwner::Private(LocalTid(9)));
        assert!(moved.accessed() && moved.dirty());
    }

    #[test]
    fn accessed_and_dirty_bits() {
        let pte = Pte::new(frame(TierKind::Fast, 1), LocalTid(0));
        assert!(!pte.accessed() && !pte.dirty());
        let read = pte.touch(false);
        assert!(read.accessed() && !read.dirty());
        let written = read.touch(true);
        assert!(written.accessed() && written.dirty());
        assert!(!written.clear_accessed().accessed());
        assert!(!written.clear_dirty().dirty());
        // Clearing one bit leaves the other.
        assert!(written.clear_accessed().dirty());
    }

    #[test]
    fn owner_encoding_boundaries() {
        let pte = Pte::new(frame(TierKind::Fast, 1), LocalTid(MAX_LOCAL_TID));
        assert_eq!(pte.owner(), PageOwner::Private(LocalTid(0x7E)));
        let shared = pte.with_owner(PageOwner::Shared);
        assert_eq!(shared.owner(), PageOwner::Shared);
        // Frame untouched by owner update.
        assert_eq!(shared.frame(), pte.frame());
    }

    #[test]
    #[should_panic(expected = "7-bit field")]
    fn tid_0x7f_is_reserved() {
        Pte::new(frame(TierKind::Fast, 0), LocalTid(SHARED_TID));
    }

    #[test]
    fn poison_bit() {
        let pte = Pte::new(frame(TierKind::Slow, 2), LocalTid(1));
        assert!(!pte.poisoned());
        let p = pte.with_poisoned(true);
        assert!(p.poisoned());
        assert!(p.present(), "poisoning must not unmap");
        assert!(!p.with_poisoned(false).poisoned());
    }

    #[test]
    fn owner_lattice() {
        let a = LocalTid(1);
        let b = LocalTid(2);
        assert_eq!(merge_owner(PageOwner::Private(a), a), PageOwner::Private(a));
        assert_eq!(merge_owner(PageOwner::Private(a), b), PageOwner::Shared);
        assert_eq!(merge_owner(PageOwner::Shared, a), PageOwner::Shared);
    }

    #[test]
    fn large_frame_index_survives() {
        let f = frame(TierKind::Fast, u32::MAX);
        let pte = Pte::new(f, LocalTid(3));
        assert_eq!(pte.frame(), Some(f));
        assert_eq!(pte.owner(), PageOwner::Private(LocalTid(3)));
    }
}
