//! Property-based tests for the migration engines: conservation and
//! mapping integrity under arbitrary migration sequences.

use proptest::prelude::*;
use vulcan_migrate::{migrate_sync, AsyncMigrator, MechanismConfig, ShadowRegistry};
use vulcan_sim::{CoreId, Machine, MachineSpec, Nanos, SimThreadId, TierKind};
use vulcan_vm::{Asid, LocalTid, Process, TlbArray, Vpn};

fn setup(fast: u64, slow: u64, pages: u64) -> (Process, Machine, TlbArray, ShadowRegistry) {
    let mut machine = Machine::new(MachineSpec::small(fast, slow, 8));
    let mut process = Process::new(Asid(1), true);
    for i in 0..4u32 {
        process.spawn_thread(SimThreadId(i));
        machine.topology.pin(SimThreadId(i), CoreId(i as u16));
    }
    for v in 0..pages {
        let frame = machine.alloc(TierKind::Slow).expect("slow capacity");
        let tid = LocalTid((v % 4) as u8);
        process.space.map(Vpn(v), frame, tid);
        process.space.touch(Vpn(v), tid, false).unwrap();
    }
    (process, machine, TlbArray::new(8), ShadowRegistry::new())
}

fn check_consistency(p: &Process, m: &Machine, s: &ShadowRegistry, am: Option<&AsyncMigrator>) {
    let mut seen = std::collections::HashSet::new();
    for vpn in p.space.mapped_vpns() {
        let f = p.space.pte(vpn).frame().expect("mapped");
        assert!(
            m.allocator(f.tier).is_allocated(f.index),
            "{vpn:?} -> freed frame"
        );
        assert!(seen.insert((f.tier, f.index)), "frame aliased");
    }
    let used =
        m.allocator(TierKind::Fast).used_frames() + m.allocator(TierKind::Slow).used_frames();
    let expected = p.space.rss_pages() + s.len() as u64 + am.map_or(0, |a| a.inflight() as u64);
    assert_eq!(used, expected, "frame conservation");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary interleavings of sync promotions/demotions over random
    /// page subsets keep mappings and frame accounting consistent, under
    /// both the Linux and the Vulcan mechanism, with or without room.
    #[test]
    fn sync_migration_storm(
        moves in proptest::collection::vec(
            (proptest::collection::vec(0u64..64, 1..16), any::<bool>(), any::<bool>()),
            1..12,
        ),
        fast in 8u64..80,
    ) {
        let (mut p, mut m, mut t, mut s) = setup(fast, 256, 64);
        for (pages, promote, vulcan_mech) in moves {
            let cfg = if vulcan_mech {
                MechanismConfig::vulcan()
            } else {
                MechanismConfig::linux_baseline()
            };
            let vpns: Vec<Vpn> = pages.into_iter().map(Vpn).collect();
            let dest = if promote { TierKind::Fast } else { TierKind::Slow };
            let out = migrate_sync(&mut p, &mut m, &mut t, &mut s, &vpns, dest, &cfg);
            // Moved pages are in the destination; skipped pages are mapped.
            for &vpn in &out.moved {
                prop_assert_eq!(p.space.pte(vpn).tier(), Some(dest));
            }
            for &vpn in &out.skipped {
                prop_assert!(p.space.is_mapped(vpn));
            }
            // Failed pages (e.g. destination full) had their mappings
            // restored; nothing ran with fault injection here so only
            // transient capacity failures can appear.
            for &(vpn, err) in &out.failed {
                prop_assert!(err.is_transient());
                prop_assert!(p.space.is_mapped(vpn));
            }
            check_consistency(&p, &m, &s, None);
        }
        prop_assert_eq!(p.space.rss_pages(), 64, "no page lost");
    }

    /// Async transactions interleaved with sync migrations of the same
    /// pages never leak frames or alias mappings, whatever commits,
    /// retries or aborts.
    #[test]
    fn async_sync_interleaving(
        rounds in proptest::collection::vec(
            (proptest::collection::vec(0u64..48, 1..12), 0u8..3, any::<bool>()),
            1..10,
        ),
    ) {
        let cfg = MechanismConfig::vulcan();
        let (mut p, mut m, mut t, mut s) = setup(32, 256, 48);
        let mut am = AsyncMigrator::new();
        let mut now = Nanos(0);
        for (pages, action, dirty) in rounds {
            now += Nanos::millis(1);
            let vpns: Vec<Vpn> = pages.into_iter().map(Vpn).collect();
            match action {
                0 => {
                    am.start(&mut p, &mut m, &mut t, &vpns, TierKind::Fast, now);
                }
                1 => {
                    migrate_sync(&mut p, &mut m, &mut t, &mut s, &vpns, TierKind::Fast, &cfg);
                }
                _ => {
                    migrate_sync(&mut p, &mut m, &mut t, &mut s, &vpns, TierKind::Slow, &cfg);
                }
            }
            let prob = if dirty { 1.0 } else { 0.0 };
            am.poll(&mut p, &mut m, &mut t, &mut s, now + Nanos::millis(1), &cfg, &mut |_| prob);
            check_consistency(&p, &m, &s, Some(&am));
        }
        am.abort_all(&mut m);
        check_consistency(&p, &m, &s, Some(&am));
        prop_assert_eq!(p.space.rss_pages(), 48);
    }
}
