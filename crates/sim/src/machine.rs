//! The simulated tiered-memory machine: tiers, allocators, bandwidth,
//! topology and cost models in one place.
//!
//! Tiers form an ordered demotion chain (see `tier.rs`); the classic
//! two-tier paper testbed is simply the chain `[Fast, Slow]`. Per-tier
//! state lives in `MAX_TIERS`-sized arrays indexed by
//! [`TierKind::index`]; tiers absent from the chain hold zero-capacity
//! allocators and placeholder bandwidth, so they can never satisfy an
//! allocation and never perturb two-tier results.

use crate::bandwidth::BandwidthTracker;
use crate::costs::{AccessCosts, MigrationCosts};
use crate::faults::{FaultPlan, FaultSite};
use crate::frame::{FrameAllocator, FrameId, OutOfFrames};
use crate::tier::{validate_chain, TierKind, TierSpec, MAX_TIERS, PAGE_SIZE};
use crate::time::Nanos;
use crate::topology::Topology;

/// Configuration of a simulated machine.
#[derive(Clone, Debug)]
pub struct MachineSpec {
    /// Ordered demotion chain, fastest first — a non-empty prefix of
    /// [`TierKind::ALL`] (validated when a [`Machine`] is built).
    pub tiers: Vec<TierSpec>,
    /// Cores on the socket.
    pub n_cores: u16,
    /// Demand-access cost model.
    pub access_costs: AccessCosts,
    /// Migration cost model.
    pub migration_costs: MigrationCosts,
}

impl MachineSpec {
    /// The paper's testbed: one 32-core socket, 32 GB fast / 256 GB slow
    /// (scaled), 70 ns / 162 ns (§5.1).
    pub fn paper_testbed() -> MachineSpec {
        MachineSpec {
            tiers: vec![TierSpec::paper_fast(), TierSpec::paper_slow()],
            n_cores: 32,
            access_costs: AccessCosts::default(),
            migration_costs: MigrationCosts::default(),
        }
    }

    /// The testbed extended with an NVM-class third tier — the
    /// DRAM→CXL→NVM demotion chain of ROADMAP item 4.
    pub fn paper_3tier() -> MachineSpec {
        MachineSpec {
            tiers: vec![
                TierSpec::paper_fast(),
                TierSpec::paper_slow(),
                TierSpec::paper_nvm(),
            ],
            n_cores: 32,
            access_costs: AccessCosts::default(),
            migration_costs: MigrationCosts::default(),
        }
    }

    /// A small two-tier machine for tests: `fast_pages` / `slow_pages`.
    pub fn small(fast_pages: u64, slow_pages: u64, n_cores: u16) -> MachineSpec {
        MachineSpec {
            tiers: vec![
                TierSpec::test_tier(TierKind::Fast, fast_pages),
                TierSpec::test_tier(TierKind::Slow, slow_pages),
            ],
            n_cores,
            access_costs: AccessCosts::default(),
            migration_costs: MigrationCosts::default(),
        }
    }

    /// A small three-tier machine for tests.
    pub fn small3(fast_pages: u64, slow_pages: u64, nvm_pages: u64, n_cores: u16) -> MachineSpec {
        MachineSpec {
            tiers: vec![
                TierSpec::test_tier(TierKind::Fast, fast_pages),
                TierSpec::test_tier(TierKind::Slow, slow_pages),
                TierSpec::test_tier(TierKind::Nvm, nvm_pages),
            ],
            n_cores,
            access_costs: AccessCosts::default(),
            migration_costs: MigrationCosts::default(),
        }
    }

    /// Number of tiers in the chain.
    pub fn n_tiers(&self) -> usize {
        self.tiers.len()
    }

    /// The chain's tier kinds, fastest first.
    pub fn chain(&self) -> &'static [TierKind] {
        &TierKind::ALL[..self.tiers.len()]
    }

    /// Whether `kind` is part of this machine's chain.
    pub fn has_tier(&self, kind: TierKind) -> bool {
        kind.index() < self.tiers.len()
    }

    /// Spec of one tier; panics if the tier is not in the chain.
    pub fn tier(&self, kind: TierKind) -> &TierSpec {
        self.tiers
            .get(kind.index())
            .unwrap_or_else(|| panic!("tier {kind:?} absent from {}-tier chain", self.tiers.len()))
    }

    /// Mutable spec of one tier; panics if the tier is not in the chain.
    pub fn tier_mut(&mut self, kind: TierKind) -> &mut TierSpec {
        let n = self.tiers.len();
        self.tiers
            .get_mut(kind.index())
            .unwrap_or_else(|| panic!("tier {kind:?} absent from {n}-tier chain"))
    }

    /// One hop down this machine's demotion chain, or `None` at the end.
    pub fn demote_target(&self, tier: TierKind) -> Option<TierKind> {
        tier.demote_target(self.tiers.len())
    }

    /// One hop up this machine's demotion chain, or `None` at the top.
    pub fn promote_target(&self, tier: TierKind) -> Option<TierKind> {
        tier.promote_target()
    }
}

impl vulcan_json::Snapshot for MachineSpec {
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::{snap, Snapshot, Value};
        snap::obj(vec![
            (
                "tiers",
                Value::Array(self.tiers.iter().map(Snapshot::snapshot).collect()),
            ),
            ("n_cores", snap::u64_value(self.n_cores as u64)),
            ("access_costs", self.access_costs.snapshot()),
            ("migration_costs", self.migration_costs.snapshot()),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        let tiers = snap::field_array(v, "tiers")?
            .iter()
            .map(TierSpec::restore)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MachineSpec {
            tiers,
            n_cores: u16::try_from(snap::field_u64(v, "n_cores")?)
                .map_err(|_| "n_cores out of u16 range".to_string())?,
            access_costs: AccessCosts::restore(snap::field(v, "access_costs")?)?,
            migration_costs: MigrationCosts::restore(snap::field(v, "migration_costs")?)?,
        })
    }
}

/// The live machine state.
#[derive(Clone, Debug)]
pub struct Machine {
    spec: MachineSpec,
    allocators: [FrameAllocator; MAX_TIERS],
    /// Per-tier bandwidth accounting and contention.
    pub bandwidth: BandwidthTracker,
    /// Cores and thread pinning.
    pub topology: Topology,
    /// Per-tier inflated demand latency, recomputed once per quantum —
    /// inflation only changes at [`Machine::end_quantum`], so the f64
    /// multiply-and-round is hoisted off the per-access path.
    loaded_latency: [Nanos; MAX_TIERS],
    /// Seeded fault-injection schedule (disabled by default; installed by
    /// the runtime after construction so preallocation is unaffected).
    pub faults: FaultPlan,
    /// Extra loaded-latency multiplier while a transient throttle fault
    /// is active this quantum; exactly 1.0 otherwise.
    throttle_now: f64,
    /// Whether the most recent [`Machine::alloc`] failure was injected
    /// by the fault plan (consumers use this to attribute recoveries).
    last_alloc_injected: bool,
}

impl Machine {
    /// Build a machine from a spec. Panics if the spec's tiers do not
    /// form a valid demotion chain (non-empty prefix of `TierKind::ALL`).
    pub fn new(spec: MachineSpec) -> Machine {
        let kinds: Vec<TierKind> = spec.tiers.iter().map(|t| t.kind).collect();
        validate_chain(&kinds);
        // Absent tiers get zero-capacity allocators: every alloc fails,
        // free_pages reads 0, and teardown audits see them empty.
        let allocators = TierKind::ALL.map(|kind| {
            FrameAllocator::new(
                kind,
                spec.tiers.get(kind.index()).map_or(0, |t| t.capacity_pages),
            )
        });
        let peaks: Vec<f64> = spec
            .tiers
            .iter()
            .map(|t| t.bandwidth_bytes_per_ns)
            .collect();
        let bandwidth = BandwidthTracker::new(&peaks);
        let topology = Topology::new(spec.n_cores);
        // Inflation starts at 1.0, so the loaded latency is the unloaded
        // one (inflate(x, 1.0) rounds back to x exactly).
        let loaded_latency = TierKind::ALL.map(|kind| spec.access_costs.tier_latency(kind));
        Machine {
            spec,
            allocators,
            bandwidth,
            topology,
            loaded_latency,
            faults: FaultPlan::disabled(),
            throttle_now: 1.0,
            last_alloc_injected: false,
        }
    }

    /// The machine's static spec.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Number of tiers in the demotion chain.
    pub fn n_tiers(&self) -> usize {
        self.spec.tiers.len()
    }

    /// The chain's tier kinds, fastest first.
    pub fn chain(&self) -> &'static [TierKind] {
        self.spec.chain()
    }

    /// The frame allocator for one tier.
    pub fn allocator(&self, tier: TierKind) -> &FrameAllocator {
        &self.allocators[tier.index()]
    }

    /// Mutable access to one tier's allocator.
    pub fn allocator_mut(&mut self, tier: TierKind) -> &mut FrameAllocator {
        &mut self.allocators[tier.index()]
    }

    /// Allocate a frame in `tier`.
    ///
    /// Subject to fault injection: an active [`FaultPlan`] may report
    /// exhaustion even while frames remain. Recovery paths that have
    /// already absorbed the fault (modeled a stall, reclaimed space)
    /// should retry through [`Machine::alloc_uninjected`].
    pub fn alloc(&mut self, tier: TierKind) -> Result<FrameId, OutOfFrames> {
        self.last_alloc_injected = false;
        if self.faults.alloc_fails(tier) {
            self.last_alloc_injected = true;
            return Err(OutOfFrames { tier });
        }
        self.allocators[tier.index()].alloc()
    }

    /// Whether the most recent [`Machine::alloc`] failure was an injected
    /// fault rather than genuine exhaustion. (For `alloc_with_fallback`
    /// this reports on the final attempt.)
    pub fn last_alloc_injected(&self) -> bool {
        self.last_alloc_injected
    }

    /// Allocate a frame in `tier`, bypassing fault injection — the
    /// degraded-path retry after a consumer has handled an injected
    /// exhaustion fault.
    pub fn alloc_uninjected(&mut self, tier: TierKind) -> Result<FrameId, OutOfFrames> {
        self.allocators[tier.index()].alloc()
    }

    /// Spill order after `preferred` fails: the rest of the chain in
    /// demotion order below `preferred` first (new allocations spill
    /// *down* — first-touch behaviour of tiered systems), then upward —
    /// every tier is tried before exhaustion is reported, so a chain
    /// never skips its middle tiers.
    fn spill_order(&self, preferred: TierKind) -> impl Iterator<Item = TierKind> {
        let n = self.spec.tiers.len();
        let p = preferred.index();
        debug_assert!(
            p < n,
            "preferred tier {preferred:?} absent from {n}-tier chain"
        );
        let down = TierKind::ALL[p + 1..n].iter().copied();
        let up = TierKind::ALL[..p].iter().rev().copied();
        down.chain(up)
    }

    /// The last tier [`Machine::alloc_with_fallback`] attempts for
    /// `preferred` — the tier whose fault site an all-tiers-failed
    /// outcome reports on. `preferred` itself on a single-tier chain.
    pub fn spill_terminus(&self, preferred: TierKind) -> TierKind {
        self.spill_order(preferred).last().unwrap_or(preferred)
    }

    /// Allocate in `tier` if possible, else walk the remaining chain
    /// tiers (downward in demotion order, then upward) and only report
    /// exhaustion once every tier has failed.
    ///
    /// A successful spill after an *injected* exhaustion of the
    /// preferred tier is itself the degraded path, so it is tallied as
    /// a recovery; callers only handle the case where all tiers fail.
    pub fn alloc_with_fallback(&mut self, tier: TierKind) -> Result<FrameId, OutOfFrames> {
        let mut res = self.alloc(tier);
        if res.is_ok() {
            return res;
        }
        let preferred_injected = self.last_alloc_injected;
        for next in self.spill_order(tier).collect::<Vec<_>>() {
            res = self.alloc(next);
            if res.is_ok() {
                if preferred_injected {
                    self.faults.note_recovery(FaultSite::alloc_for(tier));
                }
                return res;
            }
        }
        res
    }

    /// Fallback allocation bypassing fault injection (degraded-path
    /// retry; see [`Machine::alloc_uninjected`]).
    pub fn alloc_with_fallback_uninjected(
        &mut self,
        tier: TierKind,
    ) -> Result<FrameId, OutOfFrames> {
        let mut res = self.alloc_uninjected(tier);
        if res.is_ok() {
            return res;
        }
        for next in self.spill_order(tier).collect::<Vec<_>>() {
            res = self.alloc_uninjected(next);
            if res.is_ok() {
                return res;
            }
        }
        res
    }

    /// Free a frame back to its tier.
    pub fn free(&mut self, frame: FrameId) {
        self.allocators[frame.tier.index()].free(frame);
    }

    /// Loaded latency of a demand access to `tier`, including current
    /// bandwidth-contention inflation (recomputed once per quantum).
    #[inline]
    pub fn access_latency(&self, tier: TierKind) -> Nanos {
        // Inflation only changes at `end_quantum`, so recomputing from
        // scratch mid-quantum must reproduce the cache exactly.
        #[cfg(feature = "oracle")]
        {
            let want = Self::apply_throttle(
                self.bandwidth
                    .inflate(tier, self.spec.access_costs.tier_latency(tier)),
                self.throttle_now,
            );
            vulcan_oracle::check(
                vulcan_oracle::Structure::Latency,
                self.loaded_latency[tier.index()] == want,
                None,
                || {
                    format!(
                        "cached loaded latency {:?} != recomputed {want:?} for {tier:?}",
                        self.loaded_latency[tier.index()]
                    )
                },
            );
        }
        self.loaded_latency[tier.index()]
    }

    /// Record one cache-line demand access against `tier`'s bandwidth.
    #[inline]
    pub fn record_access(&mut self, tier: TierKind) {
        self.bandwidth.record(tier, 64);
    }

    /// Record `n` cache-line demand accesses against `tier`'s bandwidth
    /// in one call. Byte counters are plain sums, so this is exactly
    /// `n` calls to [`record_access`](Self::record_access).
    #[inline]
    pub fn record_accesses(&mut self, tier: TierKind, n: u64) {
        self.bandwidth.record(tier, 64 * n);
    }

    /// Record a page copy (reads source tier, writes destination tier).
    pub fn record_page_copy(&mut self, from: TierKind, to: TierKind) {
        self.bandwidth.record(from, PAGE_SIZE as u64);
        self.bandwidth.record(to, PAGE_SIZE as u64);
    }

    /// Close a quantum of length `quantum`: roll bandwidth contention
    /// over, draw the next transient-throttle fault decision, and refresh
    /// the cached loaded latencies for every chain tier.
    pub fn end_quantum(&mut self, quantum: Nanos) {
        self.bandwidth.end_quantum(quantum);
        // One throttle decision per quantum; with faults disabled this is
        // a no-op and the factor stays exactly 1.0 (byte-identity).
        self.throttle_now = if self.faults.quantum_throttled() {
            self.faults.config().throttle_factor
        } else {
            1.0
        };
        for &tier in self.spec.chain() {
            self.loaded_latency[tier.index()] = Self::apply_throttle(
                self.bandwidth
                    .inflate(tier, self.spec.access_costs.tier_latency(tier)),
                self.throttle_now,
            );
        }
    }

    /// Re-parameterize the machine in place for a what-if fork: swap
    /// latency, bandwidth and cost-model parameters without touching any
    /// *state* (allocator frame maps, bandwidth windows, fault plan). The
    /// new spec must keep the same tier chain, per-tier capacities and
    /// core count — frame numbering, placement and thread pinning stay
    /// valid — otherwise the machine is left unchanged and an error
    /// describes the mismatch. Cached loaded latencies are refreshed
    /// under the current inflation and throttle factors, exactly as
    /// [`end_quantum`](Machine::end_quantum) would compute them.
    pub fn reconfigure(&mut self, spec: MachineSpec) -> Result<(), String> {
        let shape = |s: &MachineSpec| -> Vec<(TierKind, u64)> {
            s.tiers.iter().map(|t| (t.kind, t.capacity_pages)).collect()
        };
        if shape(&spec) != shape(&self.spec) {
            return Err(format!(
                "what-if spec changes the tier shape: {:?} -> {:?} (only \
                 latency/bandwidth/cost parameters may change on a fork)",
                shape(&self.spec),
                shape(&spec)
            ));
        }
        if spec.n_cores != self.spec.n_cores {
            return Err(format!(
                "what-if spec changes the core count: {} -> {}",
                self.spec.n_cores, spec.n_cores
            ));
        }
        self.spec = spec;
        let peaks: Vec<f64> = self
            .spec
            .tiers
            .iter()
            .map(|t| t.bandwidth_bytes_per_ns)
            .collect();
        self.bandwidth.set_peaks(&peaks);
        for &tier in self.spec.chain() {
            self.loaded_latency[tier.index()] = Self::apply_throttle(
                self.bandwidth
                    .inflate(tier, self.spec.access_costs.tier_latency(tier)),
                self.throttle_now,
            );
        }
        Ok(())
    }

    /// Whether a transient bandwidth-throttle fault is active this
    /// quantum.
    pub fn throttled(&self) -> bool {
        self.throttle_now > 1.0
    }

    /// Scale a loaded latency by the active throttle factor. Exact
    /// identity when the factor is 1.0 so the disabled path never
    /// perturbs latencies through f64 rounding.
    fn apply_throttle(base: Nanos, factor: f64) -> Nanos {
        if factor == 1.0 {
            return base;
        }
        Nanos((base.0 as f64 * factor).round() as u64)
    }

    /// Free pages remaining in `tier`.
    pub fn free_pages(&self, tier: TierKind) -> u64 {
        self.allocator(tier).free_frames()
    }

    /// Build a shard-local view of this machine backed by pre-reserved
    /// frame leases (one lease slice per chain tier, fastest first):
    /// same spec, topology, cost model and *cached loaded latencies* (so
    /// per-access latency inside the shard is identical to the
    /// sequential schedule), but
    ///
    /// - each tier's allocator hands out only the leased frames, and
    /// - the bandwidth tracker's byte counters start at zero, so the
    ///   view's end-of-quantum counts are directly the deltas to merge.
    ///
    /// Fault injection is never active on a view (the sharded execute
    /// path is only taken with faults disabled — per-site fault counters
    /// are schedule-order-sensitive).
    pub fn shard_view(&self, leases: &[Vec<FrameId>]) -> Machine {
        debug_assert!(
            !self.faults.is_enabled(),
            "shard views require fault injection disabled"
        );
        assert_eq!(
            leases.len(),
            self.spec.tiers.len(),
            "one lease per chain tier"
        );
        let mut bandwidth = self.bandwidth.clone();
        bandwidth.reset_bytes();
        static EMPTY: &[FrameId] = &[];
        let allocators = TierKind::ALL.map(|kind| {
            let lease = leases.get(kind.index()).map_or(EMPTY, |l| l.as_slice());
            let capacity = self
                .spec
                .tiers
                .get(kind.index())
                .map_or(0, |t| t.capacity_pages);
            FrameAllocator::lease_view(kind, capacity, lease)
        });
        Machine {
            spec: self.spec.clone(),
            allocators,
            bandwidth,
            topology: self.topology.clone(),
            loaded_latency: self.loaded_latency,
            faults: FaultPlan::disabled(),
            throttle_now: self.throttle_now,
            last_alloc_injected: false,
        }
    }

    /// Merge a finished shard view back: add its bandwidth byte deltas
    /// to this machine's in-quantum counters and return every unused
    /// lease frame to the shared allocators. Called in fixed shard order
    /// so the merged state is independent of shard execution timing.
    pub fn absorb_shard_view(&mut self, mut view: Machine) {
        for &tier in self.spec().chain() {
            let bytes = view.bandwidth.bytes_this_quantum(tier);
            if bytes > 0 {
                self.bandwidth.record(tier, bytes);
            }
            // Drain the view's remaining lease back to the shared pool.
            while let Ok(f) = view.alloc_uninjected(tier) {
                self.free(f);
            }
        }
    }
}

impl vulcan_json::Snapshot for Machine {
    /// Serializes the *live* machine, including the three fields the
    /// ISSUE 10 hidden-state audit flagged: the per-quantum cached loaded
    /// latencies (refreshed at [`Machine::end_quantum`], consumed all
    /// next quantum), the active throttle factor, and the
    /// last-alloc-injected attribution bit. Rebuilding any of them from
    /// the spec would silently diverge a restored run.
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::{snap, Snapshot, Value};
        let latencies: Vec<u64> = self.loaded_latency.iter().map(|n| n.0).collect();
        snap::obj(vec![
            ("spec", self.spec.snapshot()),
            (
                "allocators",
                Value::Array(self.allocators.iter().map(Snapshot::snapshot).collect()),
            ),
            ("bandwidth", self.bandwidth.snapshot()),
            ("topology", self.topology.snapshot()),
            ("loaded_latency", snap::u64_array(&latencies)),
            ("faults", self.faults.snapshot()),
            ("throttle_now", snap::f64_value(self.throttle_now)),
            ("last_alloc_injected", Value::Bool(self.last_alloc_injected)),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        let spec = MachineSpec::restore(snap::field(v, "spec")?)?;
        let kinds: Vec<TierKind> = spec.tiers.iter().map(|t| t.kind).collect();
        validate_chain(&kinds);
        let allocs = snap::field_array(v, "allocators")?;
        if allocs.len() != MAX_TIERS {
            return Err(format!(
                "\"allocators\" needs {MAX_TIERS} entries, got {}",
                allocs.len()
            ));
        }
        let mut allocators = Vec::with_capacity(MAX_TIERS);
        for (kind, a) in TierKind::ALL.into_iter().zip(allocs) {
            let a = FrameAllocator::restore(a)?;
            if a.tier() != kind {
                return Err(format!("allocator {} out of chain order", a.tier().name()));
            }
            allocators.push(a);
        }
        let allocators: [FrameAllocator; MAX_TIERS] =
            allocators.try_into().expect("length checked above");
        let lat = snap::array_u64(snap::field(v, "loaded_latency")?)?;
        let loaded_latency: [Nanos; MAX_TIERS] = <[u64; MAX_TIERS]>::try_from(lat)
            .map_err(|l| {
                format!(
                    "\"loaded_latency\" needs {MAX_TIERS} entries, got {}",
                    l.len()
                )
            })?
            .map(Nanos);
        Ok(Machine {
            spec,
            allocators,
            bandwidth: BandwidthTracker::restore(snap::field(v, "bandwidth")?)?,
            topology: Topology::restore(snap::field(v, "topology")?)?,
            loaded_latency,
            faults: FaultPlan::restore(snap::field(v, "faults")?)?,
            throttle_now: snap::field_f64(v, "throttle_now")?,
            last_alloc_injected: snap::field_bool(v, "last_alloc_injected")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_snapshot_roundtrips_live_state() {
        use vulcan_json::Snapshot;
        let mut m = Machine::new(MachineSpec::small3(8, 8, 8, 4));
        m.topology.pin(crate::SimThreadId(3), crate::CoreId(1));
        let keep = m.alloc(TierKind::Fast).unwrap();
        let f = m.alloc(TierKind::Fast).unwrap();
        m.free(f); // free-list order now differs from a fresh machine
        for _ in 0..50_000 {
            m.record_access(TierKind::Slow);
        }
        m.end_quantum(Nanos::micros(10)); // non-trivial inflation + cache
        let text = m.snapshot().to_json();
        let back = Machine::restore(&vulcan_json::parse(&text).unwrap()).unwrap();
        assert_eq!(
            back.access_latency(TierKind::Slow),
            m.access_latency(TierKind::Slow)
        );
        assert_eq!(
            back.bandwidth.inflation(TierKind::Slow).to_bits(),
            m.bandwidth.inflation(TierKind::Slow).to_bits()
        );
        assert_eq!(
            back.free_pages(TierKind::Fast),
            m.free_pages(TierKind::Fast)
        );
        assert!(back.allocator(TierKind::Fast).is_allocated(keep.index));
        assert_eq!(
            back.topology.core_of(crate::SimThreadId(3)),
            Some(crate::CoreId(1))
        );
        // The next allocation must hand out the same frame.
        let mut a = m;
        let mut b = back;
        assert_eq!(a.alloc(TierKind::Fast), b.alloc(TierKind::Fast));
    }

    #[test]
    fn paper_testbed_dimensions() {
        let m = Machine::new(MachineSpec::paper_testbed());
        assert_eq!(m.allocator(TierKind::Fast).capacity(), 8192);
        assert_eq!(m.allocator(TierKind::Slow).capacity(), 65536);
        assert_eq!(m.allocator(TierKind::Nvm).capacity(), 0, "absent tier");
        assert_eq!(m.topology.n_cores(), 32);
        assert_eq!(m.n_tiers(), 2);
    }

    #[test]
    fn three_tier_testbed_dimensions() {
        let m = Machine::new(MachineSpec::paper_3tier());
        assert_eq!(m.n_tiers(), 3);
        assert_eq!(m.allocator(TierKind::Nvm).capacity(), 131072);
        assert_eq!(m.spec().demote_target(TierKind::Slow), Some(TierKind::Nvm));
        assert_eq!(m.spec().demote_target(TierKind::Nvm), None);
    }

    #[test]
    fn fallback_allocation_spills_to_slow() {
        let mut m = Machine::new(MachineSpec::small(1, 4, 2));
        let a = m.alloc_with_fallback(TierKind::Fast).unwrap();
        assert_eq!(a.tier, TierKind::Fast);
        let b = m.alloc_with_fallback(TierKind::Fast).unwrap();
        assert_eq!(b.tier, TierKind::Slow);
    }

    #[test]
    fn alloc_storm_walks_the_whole_chain_in_order() {
        // Regression (ISSUE 9 satellite): the spill path used to be
        // hard-wired to `tier.other()` — on a 3-tier chain it must visit
        // fast, then the MIDDLE tier, then nvm, and only then give up.
        let mut m = Machine::new(MachineSpec::small3(2, 2, 2, 2));
        let tiers: Vec<TierKind> = (0..6)
            .map(|_| m.alloc_with_fallback(TierKind::Fast).unwrap().tier)
            .collect();
        assert_eq!(
            tiers,
            [
                TierKind::Fast,
                TierKind::Fast,
                TierKind::Slow,
                TierKind::Slow,
                TierKind::Nvm,
                TierKind::Nvm
            ],
            "middle tier skipped"
        );
        assert!(m.alloc_with_fallback(TierKind::Fast).is_err());
    }

    #[test]
    fn spill_prefers_down_chain_before_up() {
        // From the middle of the chain, spill goes down (Nvm) before up.
        let mut m = Machine::new(MachineSpec::small3(4, 1, 1, 2));
        m.alloc(TierKind::Slow).unwrap();
        assert_eq!(
            m.alloc_with_fallback(TierKind::Slow).map(|f| f.tier),
            Ok(TierKind::Nvm)
        );
        // Nvm now full too: next spill climbs to Fast.
        assert_eq!(
            m.alloc_with_fallback(TierKind::Slow).map(|f| f.tier),
            Ok(TierKind::Fast)
        );
    }

    #[test]
    fn uninjected_fallback_walks_the_chain_too() {
        let mut m = Machine::new(MachineSpec::small3(1, 1, 1, 2));
        assert_eq!(
            m.alloc_with_fallback_uninjected(TierKind::Slow)
                .map(|f| f.tier),
            Ok(TierKind::Slow)
        );
        assert_eq!(
            m.alloc_with_fallback_uninjected(TierKind::Slow)
                .map(|f| f.tier),
            Ok(TierKind::Nvm)
        );
        assert_eq!(
            m.alloc_with_fallback_uninjected(TierKind::Slow)
                .map(|f| f.tier),
            Ok(TierKind::Fast)
        );
        assert!(m.alloc_with_fallback_uninjected(TierKind::Slow).is_err());
    }

    #[test]
    fn exhausting_both_tiers_errors() {
        let mut m = Machine::new(MachineSpec::small(1, 1, 2));
        m.alloc_with_fallback(TierKind::Fast).unwrap();
        m.alloc_with_fallback(TierKind::Fast).unwrap();
        assert!(m.alloc_with_fallback(TierKind::Fast).is_err());
    }

    #[test]
    fn latency_reflects_contention() {
        let mut m = Machine::new(MachineSpec::small(64, 64, 2));
        let unloaded = m.access_latency(TierKind::Slow);
        assert_eq!(unloaded, Nanos(162));
        // Saturate the slow tier for one quantum.
        for _ in 0..100_000 {
            m.record_access(TierKind::Slow);
        }
        m.end_quantum(Nanos::micros(10));
        assert!(m.access_latency(TierKind::Slow) > unloaded);
    }

    #[test]
    fn free_returns_capacity() {
        let mut m = Machine::new(MachineSpec::small(2, 2, 2));
        let f = m.alloc(TierKind::Fast).unwrap();
        assert_eq!(m.free_pages(TierKind::Fast), 1);
        m.free(f);
        assert_eq!(m.free_pages(TierKind::Fast), 2);
    }

    #[test]
    fn injected_alloc_fault_reports_exhaustion_with_frames_free() {
        use crate::faults::{FaultConfig, FaultPlan, FaultSite};
        let mut m = Machine::new(MachineSpec::small(4, 4, 2));
        m.faults = FaultPlan::new(1, FaultConfig::single(FaultSite::AllocFast, 1.0));
        assert!(m.alloc(TierKind::Fast).is_err(), "injected exhaustion");
        assert_eq!(m.free_pages(TierKind::Fast), 4, "no frame consumed");
        assert!(m.alloc_uninjected(TierKind::Fast).is_ok(), "bypass works");
        // Fallback rolls per tier: fast injected, slow clean.
        assert_eq!(
            m.alloc_with_fallback(TierKind::Fast).map(|f| f.tier),
            Ok(TierKind::Slow)
        );
    }

    #[test]
    fn injected_nvm_fault_spills_back_up_the_chain() {
        use crate::faults::{FaultConfig, FaultPlan, FaultSite};
        let mut m = Machine::new(MachineSpec::small3(4, 4, 4, 2));
        m.faults = FaultPlan::new(7, FaultConfig::single(FaultSite::AllocNvm, 1.0));
        assert!(m.alloc(TierKind::Nvm).is_err(), "injected exhaustion");
        assert!(m.last_alloc_injected());
        // Bottom of the chain: spill climbs upward and tallies recovery.
        assert_eq!(
            m.alloc_with_fallback(TierKind::Nvm).map(|f| f.tier),
            Ok(TierKind::Slow)
        );
        assert_eq!(m.faults.stats().recovered[FaultSite::AllocNvm.index()], 1);
    }

    #[test]
    fn throttle_fault_scales_loaded_latency() {
        use crate::faults::{FaultConfig, FaultPlan, FaultSite};
        let mut m = Machine::new(MachineSpec::small(64, 64, 2));
        let base = m.access_latency(TierKind::Slow);
        let mut cfg = FaultConfig::single(FaultSite::Throttle, 1.0);
        cfg.throttle_factor = 3.0;
        m.faults = FaultPlan::new(9, cfg);
        m.end_quantum(Nanos::micros(10));
        assert!(m.throttled());
        assert_eq!(m.access_latency(TierKind::Slow), Nanos(base.0 * 3));
    }

    #[test]
    fn disabled_faults_leave_end_quantum_latency_exact() {
        let mut m = Machine::new(MachineSpec::small(64, 64, 2));
        let base = m.access_latency(TierKind::Fast);
        m.end_quantum(Nanos::micros(10));
        assert!(!m.throttled());
        assert_eq!(m.access_latency(TierKind::Fast), base);
    }

    #[test]
    fn page_copy_charges_both_tiers() {
        let mut m = Machine::new(MachineSpec::small(2, 2, 2));
        m.record_page_copy(TierKind::Slow, TierKind::Fast);
        assert_eq!(m.bandwidth.bytes_this_quantum(TierKind::Slow), 4096);
        assert_eq!(m.bandwidth.bytes_this_quantum(TierKind::Fast), 4096);
    }

    #[test]
    #[should_panic(expected = "prefix of TierKind::ALL")]
    fn machine_rejects_invalid_chains() {
        let mut spec = MachineSpec::small(2, 2, 2);
        spec.tiers.remove(0); // [Slow] is not a prefix of ALL
        Machine::new(spec);
    }
}
