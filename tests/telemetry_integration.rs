//! Integration test: the telemetry subsystem end to end.
//!
//! A co-located run with tracing enabled must emit the full workload
//! lifecycle — arrival, promotion, demotion, CBFRP rounds, departure —
//! as a deterministic event stream, and enabling telemetry must not
//! perturb the simulation itself: the same seed yields byte-identical
//! results with tracing on or off.

use vulcan::prelude::*;

fn specs() -> Vec<WorkloadSpec> {
    vec![
        microbench(
            "stayer",
            MicroConfig {
                rss_pages: 2_048,
                wss_pages: 1_024,
                ..Default::default()
            },
            4,
        )
        .preallocated(TierKind::Slow),
        microbench(
            "leaver",
            MicroConfig {
                rss_pages: 2_048,
                wss_pages: 1_024,
                ..Default::default()
            },
            4,
        )
        .preallocated(TierKind::Slow)
        .stopping_at(Nanos::secs(12)),
    ]
}

fn run_with(telemetry: Telemetry) -> RunResult {
    vulcan::runtime::SimRunner::builder()
        .machine(MachineSpec::small(1_024, 8_192, 16))
        .workloads(specs())
        .profiler_factory(|_| Box::new(HybridProfiler::vulcan_default()))
        .policy(Box::new(VulcanPolicy::new()))
        .config(SimConfig {
            quantum_active: Nanos::millis(1),
            n_quanta: 25,
            telemetry,
            ..Default::default()
        })
        .build()
        .run()
}

#[test]
fn trace_covers_the_workload_lifecycle() {
    let tel = Telemetry::enabled();
    run_with(tel.clone());
    let snap = tel.snapshot();
    let counts = snap.event_counts();

    for kind in [
        "workload_arrival",
        "pages_promoted",
        "pages_demoted",
        "cbfrp_round",
        "workload_departure",
    ] {
        assert!(
            counts.get(kind).copied().unwrap_or(0) > 0,
            "expected at least one {kind} event, got {counts:?}"
        );
    }
    assert!(counts.len() >= 5, "fewer than 5 distinct kinds: {counts:?}");
    assert_eq!(
        counts["workload_arrival"], 2,
        "both workloads announce themselves"
    );
    assert_eq!(counts["workload_departure"], 1, "only the leaver departs");

    // Sequence numbers are dense and increasing; the ring never dropped.
    assert_eq!(snap.dropped_events, 0);
    for (i, e) in snap.events.iter().enumerate() {
        assert_eq!(e.seq, i as u64, "dense sequence numbers");
    }

    // The access-path counters and migration phase spans filled in.
    assert!(snap.counters["sim.ops"] > 0);
    assert!(snap.counters["sim.quanta"] >= 25);
    let globals = snap.global_spans();
    assert!(globals.contains_key("migrate.copy"), "spans: {globals:?}");
    assert!(globals["migrate.copy"].count > 0);
}

#[test]
fn telemetry_does_not_perturb_the_simulation() {
    let plain = run_with(Telemetry::disabled());
    let traced = run_with(Telemetry::enabled());

    assert_eq!(plain.cfi, traced.cfi, "CFI must match bit-for-bit");
    assert_eq!(plain.per_workload.len(), traced.per_workload.len());
    for (a, b) in plain.per_workload.iter().zip(&traced.per_workload) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.ops_total, b.ops_total, "{}: ops diverged", a.name);
        assert_eq!(a.mean_fthr, b.mean_fthr, "{}: FTHR diverged", a.name);
        assert_eq!(
            a.stall_cycles, b.stall_cycles,
            "{}: stalls diverged",
            a.name
        );
    }
}

#[test]
fn traces_are_deterministic_across_runs() {
    let t1 = Telemetry::enabled();
    run_with(t1.clone());
    let t2 = Telemetry::enabled();
    run_with(t2.clone());
    let j1 = t1.events_jsonl();
    assert_eq!(j1, t2.events_jsonl(), "same seed, same trace");
    assert!(!j1.is_empty());

    // Every line is a standalone JSON object with the envelope fields.
    for line in j1.lines() {
        let v = vulcan_json::parse(line).expect("valid JSON line");
        let obj = v.as_object().expect("object per line");
        assert!(obj.get("seq").is_some());
        assert!(obj.get("t_ns").is_some());
        assert!(obj.get("event").is_some());
    }
}
