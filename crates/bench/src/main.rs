//! `vulcan-bench` — drive the evaluation's simulation grids through one
//! code path.
//!
//! ```text
//! vulcan-bench suite                      run every simulation grid
//! vulcan-bench suite fig10 ablation       run a subset
//! vulcan-bench suite --quick --threads 2  CI-scale run on two threads
//! vulcan-bench suite --list               index of all 14 targets
//! ```
//!
//! The figure binaries (`fig10`, `ablation`, …) render full tables and
//! figure artifacts; this driver replays their grids (same cells, same
//! seeds) and writes a per-cell summary to
//! `target/experiments/suite.json`. Wall-clock timings are deliberately
//! excluded from the artifact so it is deterministic across machines and
//! thread counts.

use vulcan_bench::suite::{SuiteOpts, SUITE};

const USAGE: &str = "\
vulcan-bench — evaluation suite driver (Vulcan reproduction)

USAGE:
    vulcan-bench suite [TARGETS...] [OPTIONS]   run simulation grids
    vulcan-bench chaos [OPTIONS]                fault-injection sweep: every
                                                fault site × rates × the four
                                                policies, asserting the
                                                degradation contract
    vulcan-bench churn [OPTIONS]                open-loop tenancy sweep:
                                                arrival rates × the four
                                                policies, hundreds of tenant
                                                lifetimes per cell
    vulcan-bench tiers [OPTIONS]                chain-shape sweep: the policy
                                                registry raced over {2,3}-tier
                                                machines, frame conservation
                                                audited on every chain tier
    vulcan-bench tournament [OPTIONS]           fork one mid-run checkpoint
                                                across the policy registry ×
                                                what-if machine knobs; ranked
                                                report with deltas vs the
                                                origin policy
    vulcan-bench oracle [TARGETS...] [OPTIONS]  run grids in lockstep with
                                                reference models (requires
                                                a --features oracle build)
    vulcan-bench help                           this text

OPTIONS (suite, oracle):
    --quick        CI scale: 1 trial per point, quanta capped at 20
    --threads <N>  thread-pool size (RAYON_NUM_THREADS is the env knob)
    --shards <N>   intra-cell shards for the execute phase (default 1);
                   artifacts are byte-identical for any value
    --list         list all 14 targets and exit

OPTIONS (chaos):
    --quick        CI scale: 2 fault rates, 12 quanta per cell
    --threads <N>  thread-pool size
                   (--shards is rejected: fault schedules are ordered
                   across workloads, so chaos cells always run the
                   sequential sweep)

OPTIONS (churn):
    --quick        CI scale: 1 arrival rate, 16 quanta per cell
    --threads <N>  thread-pool size
    --shards <N>   intra-cell shards (default 1); rows byte-identical

OPTIONS (tiers):
    --quick        CI scale: paper policies only, 10 quanta per cell
    --threads <N>  thread-pool size
    --shards <N>   intra-cell shards (default 1); rows byte-identical

OPTIONS (tournament):
    --quick        CI scale: shorter prefix and continuations (the full
                   registry races either way)
    --threads <N>  thread-pool size (forks run concurrently)
    --shards <N>   intra-cell shards for the origin prefix (default 1);
                   rows byte-identical

--threads sizes the pool running whole cells concurrently; --shards
splits the workloads inside each cell across core-disjoint sweeps with
a deterministic quantum-boundary merge. The two compose.

The chaos sweep exits non-zero if any cell panics, leaks a frame at
teardown, lets Vulcan's FTHR drop below GPT, or produces rate-0 output
that differs from a run with no fault plan installed. Results land in
target/experiments/chaos.json.

The churn sweep drives Poisson arrivals with Pareto lifetimes through
capacity-gated admission against every paper policy, and exits non-zero
if any cell panics, leaks a frame after the final teardown sweep, falls
short of the tenant floor (full scale), or produces a rate-0 control
that differs from the plain static run. Results land in
target/experiments/churn.json.

The tiers sweep races the policy registry over 2- and 3-tier machine
shapes (the buffer-pool family under THP plus a latency-critical front
end), and exits non-zero if any cell leaks a frame on any chain tier at
teardown. Results land in target/experiments/tiers.json.

Targets default to every simulation grid; analytic targets (fig2, fig3,
fig7, table1, table2) have no grid and are skipped with a note.

The oracle subcommand replays the same grids with every optimized hot-path
structure (heat map, walk caches, Zipf sampler, loaded-latency cache)
diffed against a naive reference model at each step; the first divergence
aborts the run with the structure, VPN and simulated time identified.
";

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

/// Options shared by the `suite` and `oracle` grid drivers.
struct GridArgs {
    quick: bool,
    list: bool,
    /// Intra-cell shard count; `None` leaves each cell's own value
    /// (1 unless a grid sets otherwise). Zero fails at parse time.
    shards: Option<usize>,
    names: Vec<String>,
}

fn parse_shards(v: Option<&str>) -> usize {
    match v.and_then(|v| v.parse::<usize>().ok()) {
        Some(0) => usage_error("--shards must be at least 1 (1 = sequential sweep)"),
        Some(n) => n,
        None => usage_error("--shards needs a positive integer"),
    }
}

fn parse_grid_args(args: &[String]) -> GridArgs {
    let mut parsed = GridArgs {
        quick: false,
        list: false,
        shards: None,
        names: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => parsed.quick = true,
            "--list" => parsed.list = true,
            "--threads" => {
                let n = it
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or_else(|| usage_error("--threads needs a positive integer"));
                rayon::pool::set_num_threads(n);
            }
            flag if flag.starts_with("--threads=") => {
                let n = flag["--threads=".len()..]
                    .parse::<usize>()
                    .unwrap_or_else(|_| usage_error("--threads needs a positive integer"));
                rayon::pool::set_num_threads(n);
            }
            "--shards" => parsed.shards = Some(parse_shards(it.next().map(String::as_str))),
            flag if flag.starts_with("--shards=") => {
                parsed.shards = Some(parse_shards(Some(&flag["--shards=".len()..])));
            }
            flag if flag.starts_with("--") => usage_error(&format!("unknown option '{flag}'")),
            name => parsed.names.push(name.to_string()),
        }
    }
    parsed
}

fn print_target_list() {
    for entry in SUITE.iter() {
        let kind = if entry.build.is_some() {
            "simulation grid"
        } else {
            "analytic (no grid)"
        };
        println!("{:<18} {kind}", entry.name);
    }
}

fn selected_entries(names: &[String]) -> Vec<&'static vulcan_bench::suite::SuiteEntry> {
    for name in names {
        if !SUITE.iter().any(|e| e.name == name.as_str()) {
            let all: Vec<&str> = SUITE.iter().map(|e| e.name).collect();
            usage_error(&format!(
                "unknown target '{name}' (expected one of: {})",
                all.join(", ")
            ));
        }
    }
    SUITE
        .iter()
        .filter(|e| names.is_empty() || names.iter().any(|n| n == e.name))
        .collect()
}

fn cmd_suite(args: &[String]) {
    let GridArgs {
        quick,
        list,
        shards,
        names,
    } = parse_grid_args(args);
    if list {
        print_target_list();
        return;
    }
    let opts = if quick {
        SuiteOpts::quick()
    } else {
        SuiteOpts::full()
    };
    let selected = selected_entries(&names);

    let mut table = vulcan::metrics::Table::new(
        format!(
            "suite: per-cell results ({} threads)",
            rayon::pool::current_num_threads()
        ),
        &["experiment", "cell", "policy", "seed", "quanta", "CFI"],
    );
    let mut rows = Vec::new();
    for entry in selected {
        let Some(build) = entry.build else {
            eprintln!(
                "[suite] {}: analytic target, no simulation grid (run its binary)",
                entry.name
            );
            continue;
        };
        let mut exp = build(&opts);
        if let Some(n) = shards {
            for cell in &mut exp.cells {
                cell.shards = n;
            }
        }
        let results = exp.run();
        for (cell, res) in exp.cells.iter().zip(&results) {
            table.row(&[
                exp.name.clone(),
                cell.label.clone(),
                res.policy.clone(),
                cell.seed.to_string(),
                cell.quanta.to_string(),
                format!("{:.3}", res.cfi),
            ]);
            rows.push(vulcan_json::Value::Object(
                vulcan_json::Map::new()
                    .with("experiment", exp.name.as_str())
                    .with("cell", cell.label.as_str())
                    .with("policy", res.policy.as_str())
                    .with("seed", cell.seed)
                    .with("quanta", cell.quanta)
                    .with("cfi", res.cfi),
            ));
        }
    }
    table.print();
    vulcan_bench::save_json_or_exit("suite", &rows);
}

fn cmd_chaos(args: &[String]) {
    let GridArgs {
        quick,
        list,
        shards,
        names,
    } = parse_grid_args(args);
    if list || !names.is_empty() {
        usage_error("chaos takes no targets (it runs one fixed grid)");
    }
    if shards.is_some() {
        usage_error(
            "chaos does not accept --shards: fault schedules are ordered across \
             workloads, so chaos cells always run the sequential sweep",
        );
    }
    let opts = if quick {
        vulcan_bench::chaos::ChaosOpts::quick()
    } else {
        vulcan_bench::chaos::ChaosOpts::full()
    };
    let report = vulcan_bench::chaos::run_chaos(&opts);
    vulcan_bench::chaos::chaos_table(&report.rows).print();
    if !report.violations.is_empty() {
        for v in &report.violations {
            eprintln!("chaos: VIOLATION: {v}");
        }
        eprintln!(
            "chaos: {} degradation-contract violation(s)",
            report.violations.len()
        );
        std::process::exit(1);
    }
    println!(
        "chaos: {} cells, zero panics, frames conserved, rate-0 identical",
        report.rows.len()
    );
    vulcan_bench::save_json_or_exit("chaos", &report.rows);
}

fn cmd_churn(args: &[String]) {
    let GridArgs {
        quick,
        list,
        shards,
        names,
    } = parse_grid_args(args);
    if list || !names.is_empty() {
        usage_error("churn takes no targets (it runs one fixed grid)");
    }
    let mut opts = if quick {
        vulcan_bench::churn::ChurnOpts::quick()
    } else {
        vulcan_bench::churn::ChurnOpts::full()
    };
    if let Some(n) = shards {
        opts = opts.with_shards(n);
    }
    let report = vulcan_bench::churn::run_churn(&opts);
    vulcan_bench::churn::churn_table(&report.rows).print();
    if !report.violations.is_empty() {
        for v in &report.violations {
            eprintln!("churn: VIOLATION: {v}");
        }
        eprintln!("churn: {} contract violation(s)", report.violations.len());
        std::process::exit(1);
    }
    println!(
        "churn: {} cells, zero panics, frames conserved, rate-0 identical to static",
        report.rows.len()
    );
    vulcan_bench::save_json_or_exit("churn", &report.rows);
}

fn cmd_tiers(args: &[String]) {
    let GridArgs {
        quick,
        list,
        shards,
        names,
    } = parse_grid_args(args);
    if list || !names.is_empty() {
        usage_error("tiers takes no targets (it runs one fixed grid)");
    }
    let mut opts = if quick {
        vulcan_bench::tiers::TiersOpts::quick()
    } else {
        vulcan_bench::tiers::TiersOpts::full()
    };
    if let Some(n) = shards {
        opts = opts.with_shards(n);
    }
    let report = vulcan_bench::tiers::run_tiers(&opts);
    vulcan_bench::tiers::tiers_table(&report.rows).print();
    if !report.violations.is_empty() {
        for v in &report.violations {
            eprintln!("tiers: VIOLATION: {v}");
        }
        eprintln!("tiers: {} contract violation(s)", report.violations.len());
        std::process::exit(1);
    }
    println!(
        "tiers: {} cells, zero panics, frames conserved on every chain tier",
        report.rows.len()
    );
    vulcan_bench::save_json_or_exit("tiers", &report.rows);
}

fn cmd_tournament(args: &[String]) {
    let GridArgs {
        quick,
        list,
        shards,
        names,
    } = parse_grid_args(args);
    if list || !names.is_empty() {
        usage_error("tournament takes no targets (it runs one fixed grid)");
    }
    let mut opts = if quick {
        vulcan_bench::tournament::TournamentOpts::quick()
    } else {
        vulcan_bench::tournament::TournamentOpts::full()
    };
    if let Some(n) = shards {
        opts = opts.with_shards(n);
    }
    let report = vulcan_bench::tournament::run_tournament(&opts);
    vulcan_bench::tournament::tournament_table(&report.rows).print();
    if !report.violations.is_empty() {
        for v in &report.violations {
            eprintln!("tournament: VIOLATION: {v}");
        }
        eprintln!(
            "tournament: {} contract violation(s)",
            report.violations.len()
        );
        std::process::exit(1);
    }
    println!(
        "tournament: {} forks from one checkpoint at quantum {}, zero \
         frame-conservation violations",
        report.rows.len(),
        opts.fork_at
    );
    vulcan_bench::save_json_or_exit("tournament", &report.rows);
}

/// Lockstep differential run: replay the suite grids with the reference
/// models checking every hot-path structure at every step. Only does
/// anything in a `--features oracle` build — the checks are compiled
/// out otherwise, so running the plain binary would silently verify
/// nothing; refuse instead of pretending.
#[cfg(not(feature = "oracle"))]
fn cmd_oracle(_args: &[String]) {
    eprintln!(
        "error: this binary was built without the `oracle` feature, so the \
         lockstep checks are compiled out and an oracle run would verify \
         nothing.\n\nRebuild with:\n    cargo run --release -p vulcan-bench \
         --features oracle -- oracle --quick"
    );
    std::process::exit(2);
}

#[cfg(feature = "oracle")]
fn cmd_oracle(args: &[String]) {
    let GridArgs {
        quick,
        list,
        shards,
        names,
    } = parse_grid_args(args);
    if list {
        print_target_list();
        return;
    }
    let opts = if quick {
        SuiteOpts::quick()
    } else {
        SuiteOpts::full()
    };
    let selected = selected_entries(&names);

    vulcan_oracle::reset_checks();
    let mut cells = 0usize;
    for entry in selected {
        let Some(build) = entry.build else {
            eprintln!(
                "[oracle] {}: analytic target, no simulation grid to verify",
                entry.name
            );
            continue;
        };
        let mut exp = build(&opts);
        if let Some(n) = shards {
            for cell in &mut exp.cells {
                cell.shards = n;
            }
        }
        cells += exp.cells.len();
        // A divergence panics inside the grid run with the structure,
        // VPN and simulated time identified; completion means every
        // lockstep comparison in every cell agreed.
        let _ = exp.run();
    }

    let mut table = vulcan::metrics::Table::new(
        format!("oracle: lockstep checks performed across {cells} cells"),
        &["structure", "checks"],
    );
    let mut rows = Vec::new();
    for s in vulcan_oracle::Structure::ALL {
        table.row(&[s.name().to_string(), vulcan_oracle::checks(s).to_string()]);
        rows.push(vulcan_json::Value::Object(
            vulcan_json::Map::new()
                .with("structure", s.name())
                .with("checks", vulcan_oracle::checks(s)),
        ));
    }
    table.print();
    println!(
        "oracle: {} lockstep checks, zero divergences",
        vulcan_oracle::total_checks()
    );
    vulcan_bench::save_json_or_exit("oracle", &rows);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("suite") => cmd_suite(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        Some("churn") => cmd_churn(&args[1..]),
        Some("tiers") => cmd_tiers(&args[1..]),
        Some("tournament") => cmd_tournament(&args[1..]),
        Some("oracle") => cmd_oracle(&args[1..]),
        Some("help") | Some("--help") | Some("-h") => print!("{USAGE}"),
        None => usage_error("missing subcommand"),
        Some(other) => usage_error(&format!("unknown subcommand '{other}'")),
    }
}
