//! Fault-injection and departure regression tests (ISSUE 5): the
//! degradation contract of the runtime layer, exercised through the
//! public crate API.
//!
//! * Allocation exhaustion — injected or genuine — degrades to a
//!   modeled stall plus retry (4 KiB) or an unwound fallback (THP),
//!   never a panic, and never leaks a frame.
//! * A workload departing with async transactions in flight has those
//!   transactions aborted and *attributed to itself*: survivors' abort
//!   statistics are untouched and their frames conserved.

use vulcan_profile::PebsProfiler;
use vulcan_runtime::{SimConfig, SimRunner, StaticPlacement, SystemState, TieringPolicy};
use vulcan_sim::{FaultConfig, FaultSite, MachineSpec, Nanos, TierKind};
use vulcan_vm::Vpn;
use vulcan_workloads::{microbench, MicroConfig, WorkloadSpec};

fn runner(
    machine: MachineSpec,
    specs: Vec<WorkloadSpec>,
    policy: Box<dyn TieringPolicy>,
    cfg: SimConfig,
) -> SimRunner {
    SimRunner::builder()
        .machine(machine)
        .workloads(specs)
        .profiler_factory(|_| Box::new(PebsProfiler::new(4)))
        .policy(policy)
        .config(cfg)
        .build()
}

fn micro_spec(name: &str, rss: u64, wss: u64) -> WorkloadSpec {
    microbench(
        name,
        MicroConfig {
            rss_pages: rss,
            wss_pages: wss,
            ..Default::default()
        },
        2,
    )
}

fn faulty_cfg(site: FaultSite, rate: f64, n_quanta: u64) -> SimConfig {
    SimConfig {
        quantum_active: Nanos::micros(200),
        n_quanta,
        faults: FaultConfig::single(site, rate),
        ..Default::default()
    }
}

/// Tear down every workload and assert both allocators drained to zero.
fn assert_frames_conserved(state: &mut SystemState) {
    for w in 0..state.workloads.len() {
        state.teardown(w);
    }
    for tier in [TierKind::Fast, TierKind::Slow] {
        assert_eq!(
            state.machine.allocator(tier).used_frames(),
            0,
            "{tier:?} frames leaked after teardown"
        );
    }
}

/// Regression (ISSUE 5): before the typed-error rework, an injected
/// fast-tier exhaustion on the major-fault path hit an `expect` deep in
/// the allocator plumbing and killed the run. It now stalls, retries
/// uninjected, and completes.
#[test]
fn injected_alloc_exhaustion_degrades_to_stall_and_retry() {
    let mut r = runner(
        MachineSpec::small(256, 4_096, 8),
        vec![micro_spec("a", 512, 128), micro_spec("b", 512, 128)],
        Box::new(StaticPlacement),
        faulty_cfg(FaultSite::AllocFast, 0.8, 8),
    );
    for _ in 0..8 {
        r.run_quantum();
    }
    let stats = r.state.machine.faults.stats().clone();
    let idx = FaultSite::AllocFast.index();
    assert!(stats.injected[idx] > 0, "faults were scheduled");
    assert!(stats.recovered[idx] > 0, "every exhaustion was recovered");
    assert_frames_conserved(&mut r.state);
    let res = r.into_result();
    assert!(res.workload("a").ops_total > 0);
    assert!(res.workload("b").ops_total > 0);
}

/// A THP allocation that faults mid-region unwinds the partially built
/// huge mapping (regression: the unwind used to leak the already-mapped
/// base frames) and falls back to 4 KiB pages.
#[test]
fn thp_fault_unwinds_and_falls_back_to_base_pages() {
    use vulcan_sim::HUGE_PAGE_PAGES;
    let spec = microbench(
        "thp",
        MicroConfig {
            rss_pages: 8 * HUGE_PAGE_PAGES as u64,
            wss_pages: 4 * HUGE_PAGE_PAGES as u64,
            skew: 0.6,
            ..Default::default()
        },
        2,
    )
    .with_thp();
    let mut r = runner(
        MachineSpec::small(4 * HUGE_PAGE_PAGES as u64, 32 * HUGE_PAGE_PAGES as u64, 8),
        vec![spec],
        Box::new(StaticPlacement),
        faulty_cfg(FaultSite::AllocFast, 0.5, 6),
    );
    for _ in 0..6 {
        r.run_quantum();
    }
    let stats = r.state.machine.faults.stats().clone();
    let idx = FaultSite::AllocFast.index();
    assert!(stats.injected[idx] > 0);
    assert!(stats.recovered[idx] > 0);
    assert_frames_conserved(&mut r.state);
    assert!(r.into_result().workload("thp").ops_total > 0);
}

/// Promotes a batch of slow-resident pages asynchronously every quantum
/// — enough to keep transactions in flight across quantum boundaries.
struct AsyncPromoter;

impl TieringPolicy for AsyncPromoter {
    fn name(&self) -> &'static str {
        "async-promoter"
    }

    fn on_quantum(&mut self, state: &mut SystemState) {
        for w in 0..state.n_workloads() {
            let pages: Vec<Vpn> = {
                let ws = &state.workloads[w];
                ws.process
                    .space
                    .mapped_vpns()
                    .filter(|&v| {
                        ws.process.space.pte(v).tier() == Some(TierKind::Slow)
                            && !ws.async_migrator.is_inflight(v)
                    })
                    .take(32)
                    .collect()
            };
            if !pages.is_empty() {
                state.migrate_async(w, &pages, TierKind::Fast);
            }
        }
    }
}

/// Satellite 3: tearing a workload down while its async transactions are
/// in flight aborts them, charges the aborts to the *departing*
/// workload's statistics, and conserves every frame.
#[test]
fn departure_with_inflight_async_attributes_aborts_to_departing_workload() {
    let specs = vec![
        micro_spec("dep", 512, 64).preallocated(TierKind::Slow),
        micro_spec("stay", 512, 64).preallocated(TierKind::Slow),
    ];
    let mut r = runner(
        MachineSpec::small(2_048, 4_096, 8),
        specs,
        Box::new(AsyncPromoter),
        SimConfig {
            quantum_active: Nanos::micros(200),
            n_quanta: 0,
            ..Default::default()
        },
    );
    r.run_quantum();
    assert!(
        r.state.workloads[0].async_migrator.inflight() > 0,
        "promoter keeps transactions in flight across the boundary"
    );
    let survivor_aborts = r.state.workloads[1].async_migrator.stats.aborted;

    r.state.teardown(0);

    let dep = &r.state.workloads[0];
    assert!(dep.departed);
    assert!(
        dep.async_migrator.stats.aborted > 0,
        "in-flight transactions abort on departure"
    );
    assert_eq!(dep.async_migrator.inflight(), 0);
    assert_eq!(
        r.state.workloads[1].async_migrator.stats.aborted, survivor_aborts,
        "survivor is not charged for the departing workload's aborts"
    );

    // The survivor keeps running normally after the departure.
    let before = r.state.workloads[1].stats.ops_total;
    r.run_quantum();
    assert!(r.state.workloads[1].stats.ops_total > before);
    assert_frames_conserved(&mut r.state);
}

/// The same departure driven by the runner itself (`stopping_at`), under
/// fault injection for good measure: the run completes, the departed
/// workload stays down, and teardown conserves frames.
#[test]
fn runner_driven_departure_with_faults_conserves_frames() {
    let specs = vec![
        micro_spec("dep", 512, 64)
            .preallocated(TierKind::Slow)
            .stopping_at(Nanos::micros(600)),
        micro_spec("stay", 512, 64).preallocated(TierKind::Slow),
    ];
    let mut r = runner(
        MachineSpec::small(2_048, 4_096, 8),
        specs,
        Box::new(AsyncPromoter),
        faulty_cfg(FaultSite::CopyFail, 0.3, 6),
    );
    for _ in 0..6 {
        r.run_quantum();
    }
    assert!(r.state.workloads[0].departed, "stop time passed mid-run");
    assert!(!r.state.workloads[1].departed);
    assert!(r.state.workloads[1].stats.ops_total > 0);
    assert_frames_conserved(&mut r.state);
}
