//! Strict recursive-descent JSON parser.

use crate::{Map, Value};

/// A parse failure with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require a low surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid unicode escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so slicing on a
                    // char boundary is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unexpected end"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-42").unwrap(), Value::Int(-42));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": "\u00e9\ud83d\ude00"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("c").unwrap().as_str(), Some("é😀"));
    }

    #[test]
    fn big_u64_becomes_float() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_f64(), Some(u64::MAX as f64));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"\\x\"").is_err());
        assert!(parse("nul").is_err());
    }
}
