//! Property-based tests for the simulation runtime: conservation laws
//! and metric bounds must hold for arbitrary workload mixes.

use proptest::prelude::*;
use vulcan_profile::PebsProfiler;
use vulcan_runtime::checkpoint::parse_checkpoint;
use vulcan_runtime::{SimConfig, SimRunner, StaticPlacement, TieringPolicy, UniformPartition};
use vulcan_sim::{MachineSpec, Nanos, TierKind};
use vulcan_workloads::{microbench, MicroConfig, WorkloadSpec};

fn mix(sizes: &[(u64, u64)], prealloc: bool) -> Vec<WorkloadSpec> {
    sizes
        .iter()
        .enumerate()
        .map(|(i, &(rss, wss))| {
            let spec = microbench(
                &format!("w{i}"),
                MicroConfig {
                    rss_pages: rss,
                    wss_pages: wss,
                    ..Default::default()
                },
                2,
            );
            if prealloc {
                spec.preallocated(TierKind::Slow)
            } else {
                spec
            }
        })
        .collect()
}

fn arb_sizes() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec(
        (64u64..512).prop_flat_map(|rss| (Just(rss), 8u64..=rss.min(256))),
        1..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// After any run: frame accounting balances exactly (mapped pages +
    /// shadows + async reservations = used frames), every FTHR/CFI stays
    /// in range, and all workloads make progress.
    #[test]
    fn conservation_and_bounds(
        sizes in arb_sizes(),
        prealloc in any::<bool>(),
        seed in 0u64..1_000,
        uniform in any::<bool>(),
    ) {
        let policy: Box<dyn TieringPolicy> = if uniform {
            Box::new(UniformPartition)
        } else {
            Box::new(StaticPlacement)
        };
        let mut runner = SimRunner::builder()
            .machine(MachineSpec::small(256, 4_096, 8))
            .workloads(mix(&sizes, prealloc))
            .profiler_factory(|_| Box::new(PebsProfiler::new(8)))
            .policy(policy)
            .config(SimConfig {
                quantum_active: Nanos::micros(200),
                n_quanta: 0,
                seed,
                ..Default::default()
            })
            .build();
        for _ in 0..5 {
            runner.run_quantum();
        }
        let st = &runner.state;
        let used = st.machine.allocator(TierKind::Fast).used_frames()
            + st.machine.allocator(TierKind::Slow).used_frames();
        let expected: u64 = st
            .workloads
            .iter()
            .map(|w| {
                w.rss_pages() + w.shadows.len() as u64 + w.async_migrator.inflight() as u64
            })
            .sum();
        prop_assert_eq!(used, expected, "frame conservation");

        for w in &st.workloads {
            prop_assert!(w.stats.ops_total > 0);
            prop_assert!((0.0..=1.0).contains(&w.stats.fthr));
            // Incremental fast-used counter equals an authoritative scan.
            let scan = w
                .process
                .space
                .mapped_vpns()
                .filter(|&v| w.process.space.pte(v).tier() == Some(TierKind::Fast))
                .count() as u64;
            prop_assert_eq!(w.stats.fast_used, scan, "fast_used counter drift");
        }

        let res = runner.run();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&res.cfi));
    }

    /// Identical (seed, mix, policy) runs agree bit-for-bit on every
    /// reported metric.
    #[test]
    fn full_determinism(sizes in arb_sizes(), seed in 0u64..1_000) {
        let make = || {
            SimRunner::builder()
                .machine(MachineSpec::small(256, 4_096, 8))
                .workloads(mix(&sizes, true))
                .profiler_factory(|_| Box::new(PebsProfiler::new(8)))
                .policy(Box::new(UniformPartition))
                .config(SimConfig {
                    quantum_active: Nanos::micros(200),
                    n_quanta: 4,
                    seed,
                    ..Default::default()
                })
                .build()
                .run()
        };
        let (a, b) = (make(), make());
        prop_assert_eq!(a.cfi, b.cfi);
        for (x, y) in a.per_workload.iter().zip(&b.per_workload) {
            prop_assert_eq!(x.ops_total, y.ops_total);
            prop_assert_eq!(x.mean_fthr, y.mean_fthr);
            prop_assert_eq!(x.mean_latency_ns, y.mean_latency_ns);
        }
    }

    /// ISSUE 10: checkpoint → restore → run is indistinguishable from the
    /// straight run, for arbitrary (policy × tier shape × seed × quantum)
    /// tuples — and re-checkpointing a just-restored runner reproduces
    /// the checkpoint byte-for-byte (idempotency).
    #[test]
    fn checkpoint_restore_replay_identity(
        sizes in arb_sizes(),
        seed in 0u64..1_000,
        uniform in any::<bool>(),
        three_tier in any::<bool>(),
        restore_at in 0u64..6,
        shards in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let total = 7u64;
        let machine = if three_tier {
            MachineSpec::small3(192, 2_048, 4_096, 8)
        } else {
            MachineSpec::small(192, 4_096, 8)
        };
        let policy = move || -> Box<dyn TieringPolicy> {
            if uniform {
                Box::new(UniformPartition)
            } else {
                Box::new(StaticPlacement)
            }
        };
        let mk = || {
            SimRunner::builder()
                .machine(machine.clone())
                .workloads(mix(&sizes, false))
                .profiler_factory(|_| Box::new(PebsProfiler::new(8)))
                .policy(policy())
                .config(SimConfig {
                    quantum_active: Nanos::micros(200),
                    n_quanta: total,
                    seed,
                    shards,
                    ..Default::default()
                })
                .build()
        };
        let mut straight = mk();
        let mut straight_out = Vec::new();
        for _ in 0..total {
            straight_out.push(straight.run_quantum());
        }
        let mut r = mk();
        let mut resumed_out = Vec::new();
        for q in 0..total {
            resumed_out.push(r.run_quantum());
            if q == restore_at {
                let text = r.checkpoint().expect("checkpoint").to_json();
                let v = parse_checkpoint(&text).expect("reparse");
                r = SimRunner::restore(&v, policy(), |_| Box::new(PebsProfiler::new(8)))
                    .expect("restore");
                // Idempotency: checkpoint(restore(c)) == c.
                let again = r.checkpoint().expect("re-checkpoint").to_json();
                prop_assert_eq!(again, text, "checkpoint not idempotent under restore");
            }
        }
        prop_assert_eq!(resumed_out, straight_out, "replay diverged");
        prop_assert_eq!(
            r.checkpoint().expect("final checkpoint").to_json(),
            straight.checkpoint().expect("final checkpoint").to_json(),
            "final state diverged"
        );
    }

    /// Different seeds perturb the run (the trials in Figure 10 are
    /// genuinely independent samples). The working set must exceed the
    /// fast tier so placement — and therefore cost — depends on the
    /// seed-driven first-touch order.
    #[test]
    fn seeds_actually_vary(seed_a in 0u64..500, offset in 1u64..500) {
        let make = |seed| {
            SimRunner::builder()
                .machine(MachineSpec::small(128, 4_096, 8))
                .workloads(mix(&[(512, 256)], false))
                .profiler_factory(|_| Box::new(PebsProfiler::new(8)))
                .policy(Box::new(StaticPlacement))
                .config(SimConfig {
                    quantum_active: Nanos::micros(200),
                    n_quanta: 3,
                    seed,
                    ..Default::default()
                })
                .build()
                .run()
        };
        let a = make(seed_a);
        let b = make(seed_a + offset);
        let same = a
            .per_workload
            .iter()
            .zip(&b.per_workload)
            .all(|(x, y)| x.ops_total == y.ops_total);
        prop_assert!(!same, "different seeds must differ somewhere");
    }
}
