//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this local shim
//! provides the (small) subset of the `rand` 0.8 API the workspace uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`] and [`rngs::SmallRng`]. The generator is
//! xoshiro256** seeded through SplitMix64 — high quality, fast, and
//! fully deterministic for a given seed (which is all the simulator
//! requires; it never needs to reproduce upstream `rand` streams).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an RNG ("standard"
/// distribution in upstream `rand`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs that can be constructed from seeds.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Construct from OS entropy. The shim has no entropy source; this is
    /// a fixed-seed construction kept only for API compatibility.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x5eed_5eed_5eed_5eed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256**).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// The raw xoshiro256** state, for checkpointing. Restoring via
        /// [`SmallRng::from_state`] continues the stream exactly where
        /// this generator left off.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a [`SmallRng::state`] snapshot.
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API compatibility: the shim's "standard" RNG is the
    /// same deterministic generator.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(3u8..=5);
            assert!((3..=5).contains(&y));
            let z = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(7);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn state_snapshot_continues_the_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        for _ in 0..17 {
            a.gen::<u64>();
        }
        let mut b = SmallRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "bucket count {c}");
        }
    }
}
