//! Typed migration failures.
//!
//! Every abnormal condition on the migration path is reported as a
//! [`MigrateError`] instead of panicking; the engine guarantees that by
//! the time an error is returned the page mapping is restored (or the
//! page was already unmapped by a racing teardown) and no frame has
//! leaked. Transient errors are requeue candidates for the policy's
//! MLFQ; permanent ones mean the page is gone and must be dropped.

use vulcan_sim::TierKind;
use vulcan_vm::Vpn;

/// Why a page failed to migrate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MigrateError {
    /// The page was unmapped between the eligibility check and the
    /// unmap (raced with teardown or another migration). Permanent —
    /// there is nothing left to migrate.
    Unmapped(Vpn),
    /// The PTE lost its frame between check and unmap (racing remap).
    /// The original PTE was restored. Permanent for this batch.
    NoFrame(Vpn),
    /// The destination tier had no free frame; the source mapping was
    /// restored. Transient — retry when capacity frees up.
    DestFull {
        /// The page whose migration was rolled back.
        vpn: Vpn,
        /// The exhausted destination tier.
        dest: TierKind,
    },
    /// The page copy failed (injected or transient hardware fault); the
    /// destination frame was released and the source mapping restored.
    /// Transient — safe to retry.
    CopyFailed(Vpn),
}

impl MigrateError {
    /// The page the error is about.
    pub fn vpn(&self) -> Vpn {
        match *self {
            MigrateError::Unmapped(v) | MigrateError::NoFrame(v) | MigrateError::CopyFailed(v) => v,
            MigrateError::DestFull { vpn, .. } => vpn,
        }
    }

    /// Whether retrying the same migration later can succeed.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            MigrateError::DestFull { .. } | MigrateError::CopyFailed(_)
        )
    }
}

impl std::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            MigrateError::Unmapped(v) => write!(f, "page {v:?} unmapped before migration"),
            MigrateError::NoFrame(v) => write!(f, "page {v:?} lost its frame before migration"),
            MigrateError::DestFull { vpn, dest } => {
                write!(f, "no free {dest:?} frame for {vpn:?} (mapping restored)")
            }
            MigrateError::CopyFailed(v) => write!(f, "copy of {v:?} failed (mapping restored)"),
        }
    }
}

impl std::error::Error for MigrateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_classification() {
        assert!(!MigrateError::Unmapped(Vpn(1)).is_transient());
        assert!(!MigrateError::NoFrame(Vpn(1)).is_transient());
        assert!(MigrateError::DestFull {
            vpn: Vpn(1),
            dest: TierKind::Fast
        }
        .is_transient());
        assert!(MigrateError::CopyFailed(Vpn(1)).is_transient());
        assert_eq!(MigrateError::CopyFailed(Vpn(7)).vpn(), Vpn(7));
    }

    #[test]
    fn display_is_informative() {
        let e = MigrateError::DestFull {
            vpn: Vpn(3),
            dest: TierKind::Fast,
        };
        assert!(e.to_string().contains("mapping restored"));
    }
}
