//! A database buffer-pool workload: phase-alternating table scans and
//! point lookups over a paged relation.
//!
//! Storage engines stress a tiered memory system differently from the
//! Table 2 applications: the same relation is periodically swept end to
//! end (analytic scans, vacuum/compaction passes) and, between sweeps,
//! hammered by skewed point lookups whose hot set *moves* as the
//! workload's key popularity drifts. A hotness ranker that has just
//! watched a scan believes every relation page is warm; a ranker tuned
//! to the previous lookup phase keeps promoting last phase's hot window.
//! The phase shift is what makes this family a good probe of N-tier
//! demotion chains — cold relation pages should sink *past* the slow
//! tier rather than pinning capacity there.
//!
//! The scan phase reads sequentially through each thread's private
//! extent, which is exactly the access shape that rewards transparent
//! huge pages (one TLB entry per 2 MiB extent); pair the spec with
//! [`WorkloadSpec::with_thp`](crate::WorkloadSpec::with_thp) to measure
//! that sensitivity.

use crate::gen::{shard, AccessGen, PageAccess};
use crate::zipf::Zipf;
use rand::rngs::SmallRng;
use rand::Rng;
use vulcan_sim::Nanos;

/// Configuration of the buffer-pool workload.
#[derive(Clone, Debug)]
pub struct BufferPoolConfig {
    /// Total resident pages (relation + catalog/metadata).
    pub rss_pages: u64,
    /// Worker threads (scan extents are per-thread; lookups are shared).
    pub n_threads: usize,
    /// Fraction of RSS holding the (shared, always-hot) catalog pages.
    pub meta_fraction: f64,
    /// Operations per phase before a thread flips scan ↔ lookup.
    pub phase_ops: u64,
    /// Sequential relation reads per scan op.
    pub scan_reads: usize,
    /// Skewed relation reads per point-lookup op.
    pub lookup_reads: usize,
    /// Fraction of the relation forming the lookup phase's hot window.
    pub hot_fraction: f64,
    /// Zipf exponent of lookups within the hot window.
    pub lookup_skew: f64,
    /// Pages the hot window slides per completed scan+lookup cycle
    /// (the phase-shifting hot set), as a fraction of the relation.
    pub shift_fraction: f64,
    /// Probability a point lookup dirties the page (update-in-place).
    pub write_prob: f64,
    /// Off-memory time per op (latch/WAL/plan overhead).
    pub fixed_op: Nanos,
}

impl Default for BufferPoolConfig {
    fn default() -> Self {
        BufferPoolConfig {
            rss_pages: 12_288, // 48 GB scaled
            n_threads: 8,
            meta_fraction: 0.02,
            phase_ops: 512,
            scan_reads: 8,
            lookup_reads: 4,
            hot_fraction: 0.1,
            lookup_skew: 0.99,
            shift_fraction: 0.25,
            write_prob: 0.2,
            fixed_op: Nanos(800),
        }
    }
}

/// The execution phase a thread is currently in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Sequential sweep of the thread's private relation extent.
    Scan,
    /// Skewed point lookups into the shared hot window.
    Lookup,
}

/// Buffer-pool generator. Not batchable: the per-op phase bookkeeping
/// (phase flips, hot-window slides) is stateful in a way the batched
/// planes deliberately do not model, so the runtime drives it through
/// the scalar per-op loop.
#[derive(Clone, Debug)]
pub struct BufferPool {
    cfg: BufferPoolConfig,
    meta_pages: u64,
    relation_pages: u64,
    hot_window: u64,
    lookup_zipf: Zipf,
    meta_zipf: Zipf,
    /// Per-thread op count within the current phase.
    phase_op: Vec<u64>,
    /// Per-thread current phase.
    phase: Vec<Phase>,
    /// Per-thread sequential cursor within its scan extent.
    scan_cursor: Vec<u64>,
    /// Per-thread completed scan+lookup cycles (slides the hot window).
    cycles: Vec<u64>,
}

impl BufferPool {
    /// Build from config.
    pub fn new(cfg: BufferPoolConfig) -> Self {
        assert!(cfg.n_threads > 0);
        assert!(cfg.rss_pages >= 64, "buffer pool needs a non-trivial RSS");
        assert!(cfg.phase_ops > 0);
        let meta_pages = ((cfg.rss_pages as f64 * cfg.meta_fraction) as u64).max(1);
        let relation_pages = cfg.rss_pages - meta_pages;
        let hot_window = ((relation_pages as f64 * cfg.hot_fraction) as u64).max(1);
        let lookup_zipf = Zipf::new(hot_window, cfg.lookup_skew);
        let meta_zipf = Zipf::new(meta_pages, 0.6);
        BufferPool {
            phase_op: vec![0; cfg.n_threads],
            phase: vec![Phase::Scan; cfg.n_threads],
            scan_cursor: vec![0; cfg.n_threads],
            cycles: vec![0; cfg.n_threads],
            cfg,
            meta_pages,
            relation_pages,
            hot_window,
            lookup_zipf,
            meta_zipf,
        }
    }

    /// Pages in the lookup phase's hot window (for test assertions).
    pub fn hot_window_pages(&self) -> u64 {
        self.hot_window
    }

    /// The hot window's base offset within the relation for thread state
    /// after `cycles` completed phase cycles.
    fn hot_base(&self, cycles: u64) -> u64 {
        let shift = ((self.relation_pages as f64 * self.cfg.shift_fraction) as u64).max(1);
        (cycles * shift) % self.relation_pages
    }

    /// Advance thread `tid`'s phase bookkeeping by one op.
    fn advance_phase(&mut self, tid: usize) {
        self.phase_op[tid] += 1;
        if self.phase_op[tid] < self.cfg.phase_ops {
            return;
        }
        self.phase_op[tid] = 0;
        self.phase[tid] = match self.phase[tid] {
            Phase::Scan => Phase::Lookup,
            Phase::Lookup => {
                self.cycles[tid] += 1;
                Phase::Scan
            }
        };
    }
}

impl AccessGen for BufferPool {
    fn next_op(&mut self, tid: usize, rng: &mut SmallRng, out: &mut Vec<PageAccess>) {
        // Catalog touch: plan/latch metadata, always read-hot.
        out.push(PageAccess::read(self.meta_zipf.sample(rng)));
        match self.phase[tid] {
            Phase::Scan => {
                let (s, e) = shard(self.relation_pages, self.cfg.n_threads, tid);
                let span = (e - s).max(1);
                for _ in 0..self.cfg.scan_reads {
                    let off = self.meta_pages + s + self.scan_cursor[tid] % span;
                    out.push(PageAccess::read(off));
                    self.scan_cursor[tid] += 1;
                }
            }
            Phase::Lookup => {
                let base = self.hot_base(self.cycles[tid]);
                for _ in 0..self.cfg.lookup_reads {
                    let within = self.lookup_zipf.sample(rng);
                    let off = self.meta_pages + (base + within) % self.relation_pages;
                    let write = rng.gen::<f64>() < self.cfg.write_prob;
                    out.push(PageAccess { offset: off, write });
                }
            }
        }
        self.advance_phase(tid);
    }

    fn rss_pages(&self) -> u64 {
        self.cfg.rss_pages
    }

    fn fixed_op_nanos(&self) -> Nanos {
        self.cfg.fixed_op
    }

    fn snapshot_state(&self) -> vulcan_json::Value {
        use vulcan_json::snap;
        let phases: Vec<u64> = self
            .phase
            .iter()
            .map(|p| match p {
                Phase::Scan => 0,
                Phase::Lookup => 1,
            })
            .collect();
        snap::obj(vec![
            ("phase_op", snap::u64_array(&self.phase_op)),
            ("phase", snap::u64_array(&phases)),
            ("scan_cursor", snap::u64_array(&self.scan_cursor)),
            ("cycles", snap::u64_array(&self.cycles)),
        ])
    }

    fn restore_state(&mut self, v: &vulcan_json::Value) -> Result<(), String> {
        use vulcan_json::snap;
        let phase_op = snap::array_u64(snap::field(v, "phase_op")?)?;
        let phases = snap::array_u64(snap::field(v, "phase")?)?;
        let scan_cursor = snap::array_u64(snap::field(v, "scan_cursor")?)?;
        let cycles = snap::array_u64(snap::field(v, "cycles")?)?;
        let n = self.cfg.n_threads;
        if phase_op.len() != n || phases.len() != n || scan_cursor.len() != n || cycles.len() != n {
            return Err("buffer-pool state arrays do not match thread count".to_string());
        }
        if phase_op.iter().any(|&c| c >= self.cfg.phase_ops) {
            return Err("buffer-pool phase_op exceeds phase_ops".to_string());
        }
        let mut phase = Vec::with_capacity(n);
        for &p in &phases {
            phase.push(match p {
                0 => Phase::Scan,
                1 => Phase::Lookup,
                other => return Err(format!("unknown buffer-pool phase code {other}")),
            });
        }
        self.phase_op = phase_op;
        self.phase = phase;
        self.scan_cursor = scan_cursor;
        self.cycles = cycles;
        Ok(())
    }
}

impl vulcan_json::Snapshot for BufferPoolConfig {
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::snap;
        snap::obj(vec![
            ("rss_pages", snap::u64_value(self.rss_pages)),
            ("n_threads", snap::u64_value(self.n_threads as u64)),
            ("meta_fraction", snap::f64_value(self.meta_fraction)),
            ("phase_ops", snap::u64_value(self.phase_ops)),
            ("scan_reads", snap::u64_value(self.scan_reads as u64)),
            ("lookup_reads", snap::u64_value(self.lookup_reads as u64)),
            ("hot_fraction", snap::f64_value(self.hot_fraction)),
            ("lookup_skew", snap::f64_value(self.lookup_skew)),
            ("shift_fraction", snap::f64_value(self.shift_fraction)),
            ("write_prob", snap::f64_value(self.write_prob)),
            ("fixed_op", snap::u64_value(self.fixed_op.0)),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        Ok(BufferPoolConfig {
            rss_pages: snap::field_u64(v, "rss_pages")?,
            n_threads: snap::field_usize(v, "n_threads")?,
            meta_fraction: snap::field_f64(v, "meta_fraction")?,
            phase_ops: snap::field_u64(v, "phase_ops")?,
            scan_reads: snap::field_usize(v, "scan_reads")?,
            lookup_reads: snap::field_usize(v, "lookup_reads")?,
            hot_fraction: snap::field_f64(v, "hot_fraction")?,
            lookup_skew: snap::field_f64(v, "lookup_skew")?,
            shift_fraction: snap::field_f64(v, "shift_fraction")?,
            write_prob: snap::field_f64(v, "write_prob")?,
            fixed_op: Nanos(snap::field_u64(v, "fixed_op")?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn run_ops(g: &mut BufferPool, tid: usize, n: usize) -> Vec<PageAccess> {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut all = Vec::new();
        let mut op = Vec::new();
        for _ in 0..n {
            op.clear();
            g.next_op(tid, &mut rng, &mut op);
            assert!(!op.is_empty());
            all.extend_from_slice(&op);
        }
        all
    }

    #[test]
    fn offsets_stay_in_rss() {
        let mut bp = BufferPool::new(BufferPoolConfig::default());
        for a in run_ops(&mut bp, 0, 5_000) {
            assert!(a.offset < bp.rss_pages());
        }
    }

    #[test]
    fn phases_alternate_scan_and_lookup() {
        let cfg = BufferPoolConfig {
            phase_ops: 16,
            ..Default::default()
        };
        let meta = ((cfg.rss_pages as f64 * cfg.meta_fraction) as u64).max(1);
        let mut bp = BufferPool::new(cfg);
        // First 16 ops: pure sequential scan of thread 0's extent.
        let scan = run_ops(&mut bp, 0, 16);
        let (s, _) = shard(bp.relation_pages, 8, 0);
        let seq: Vec<u64> = scan
            .iter()
            .filter(|a| a.offset >= meta)
            .map(|a| a.offset)
            .collect();
        assert_eq!(seq.len(), 16 * 8, "8 scan reads per scan op");
        assert_eq!(seq[0], meta + s, "scan starts at the extent base");
        assert!(
            seq.windows(2).all(|w| w[1] == w[0] + 1),
            "strictly sequential"
        );
        assert!(scan.iter().all(|a| !a.write), "scans never dirty pages");
        // Next 16 ops: skewed lookups confined to the hot window.
        let lookups = run_ops(&mut bp, 0, 16);
        let data: Vec<&PageAccess> = lookups.iter().filter(|a| a.offset >= meta).collect();
        assert_eq!(data.len(), 16 * 4, "4 lookup reads per lookup op");
        for a in &data {
            assert!(a.offset - meta < bp.hot_window_pages(), "inside hot window");
        }
        assert!(data.iter().any(|a| a.write), "some lookups update in place");
    }

    #[test]
    fn hot_window_shifts_between_cycles() {
        let cfg = BufferPoolConfig {
            phase_ops: 8,
            ..Default::default()
        };
        let mut bp = BufferPool::new(cfg);
        let b0 = bp.hot_base(0);
        let b1 = bp.hot_base(1);
        assert_ne!(b0, b1, "each cycle slides the hot window");
        // Drive thread 0 through a full scan+lookup cycle; the next
        // lookup phase must sample from the shifted window.
        run_ops(&mut bp, 0, 16);
        assert_eq!(bp.cycles[0], 1);
        // The slide eventually wraps instead of walking off the relation.
        let far = bp.hot_base(1_000_003);
        assert!(far < bp.relation_pages);
    }

    #[test]
    fn threads_scan_disjoint_extents() {
        let mut bp = BufferPool::new(BufferPoolConfig::default());
        let meta = bp.meta_pages;
        let a0: std::collections::BTreeSet<u64> = run_ops(&mut bp, 0, 64)
            .iter()
            .filter(|a| a.offset >= meta)
            .map(|a| a.offset)
            .collect();
        let a5: std::collections::BTreeSet<u64> = run_ops(&mut bp, 5, 64)
            .iter()
            .filter(|a| a.offset >= meta)
            .map(|a| a.offset)
            .collect();
        assert!(a0.is_disjoint(&a5), "scan extents are private");
    }

    #[test]
    fn not_batchable() {
        let bp = BufferPool::new(BufferPoolConfig::default());
        assert!(!bp.batchable(), "phase state forces the scalar loop");
    }
}
