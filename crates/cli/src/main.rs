//! `vulcan-sim` — run tiered-memory experiments from a JSON config.

use vulcan_cli::{report, ExperimentConfig};

const USAGE: &str = "\
vulcan-sim — tiered-memory simulation runner (Vulcan reproduction)

USAGE:
    vulcan-sim run <config.json>       run the config's policy
    vulcan-sim compare <config.json>   run tpp, memtis, nomad and vulcan
    vulcan-sim example                 print an example config
    vulcan-sim help                    this text
";

fn load(path: &str) -> Result<ExperimentConfig, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    ExperimentConfig::from_json(&text)
}

fn dump_series(cfg: &ExperimentConfig, res: &vulcan::prelude::RunResult) -> Result<(), String> {
    if let Some(path) = &cfg.series_out {
        std::fs::write(path, res.series.to_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("[series written to {path}]");
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => args
            .get(1)
            .ok_or_else(|| "run needs a config path".to_string())
            .and_then(|p| load(p))
            .and_then(|cfg| {
                let res = cfg.run(None)?;
                print!("{}", report(&res));
                dump_series(&cfg, &res)
            }),
        Some("compare") => args
            .get(1)
            .ok_or_else(|| "compare needs a config path".to_string())
            .and_then(|p| load(p))
            .and_then(|cfg| {
                for policy in ["tpp", "memtis", "nomad", "vulcan"] {
                    let res = cfg.run(Some(policy))?;
                    print!("{}", report(&res));
                    println!();
                }
                Ok(())
            }),
        Some("example") => {
            println!("{}", ExperimentConfig::example());
            Ok(())
        }
        Some("help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand '{other}'\n\n{USAGE}")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
