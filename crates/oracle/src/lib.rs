//! # vulcan-oracle — lockstep differential checking for the hot path
//!
//! PR 3 rebuilt the per-access hot path (flat epoch-versioned heat
//! table, per-ASID walk caches, branchless Zipf sampling, per-quantum
//! loaded-latency caching) under a byte-identity contract. Whole-run
//! sha256 comparison enforces that contract only in aggregate: it cannot
//! localize a divergence, it passes when two bugs cancel out, and it
//! goes stale the moment baselines are regenerated.
//!
//! This crate is the spine of a *structural* alternative, in the spirit
//! of Virtuoso's imitation-based validation of its fast VM models: each
//! optimized structure runs beside a naive, obviously-correct reference
//! and their states are diffed **at every step**, not at the end of the
//! run. The checks live inside the optimized crates behind their
//! `oracle` cargo feature (zero code, zero cost when disabled); this
//! crate provides what they share:
//!
//! - [`check`] / [`fail`]: divergence reporting that identifies the
//!   *structure*, the *VPN* and the *simulated time* of the first
//!   mismatch, so a failure localizes to one update of one structure.
//! - [`Structure`] check counters, so drivers (`vulcan-bench oracle`)
//!   can prove how many lockstep comparisons a run actually performed.
//! - [`set_now`]: a thread-local simulated clock the runtime advances
//!   every quantum, giving deep call sites a timestamp without threading
//!   one through every signature.
//! - [`RefHeat`]: the reference heat model — the exact `HashMap`
//!   semantics the flat table replaced.
//!
//! # Adding a reference model for a future optimization
//!
//! 1. Add a variant to [`Structure`] (and its name in
//!    [`Structure::name`]).
//! 2. In the optimized crate, gate a shadow reference model (or an
//!    inline recomputation) behind `#[cfg(feature = "oracle")]` and
//!    compare after every mutation via [`check`], passing the VPN (or
//!    other key) when one exists.
//! 3. Forward the crate's `oracle` feature from `vulcan-runtime` (and
//!    so from `vulcan` / `vulcan-bench`) so `vulcan-bench oracle`
//!    exercises it across the whole evaluation grid.

#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// The optimized structures under lockstep verification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Structure {
    /// `profile::heat::HeatMap` (flat epoch-versioned table + spill) vs
    /// the reference `HashMap` model ([`RefHeat`]).
    Heat,
    /// `vm::table`'s software walk caches vs the uncached radix walk.
    Walk,
    /// `workloads::zipf`'s branchless/indexed sampler vs a full-range
    /// `partition_point`.
    Zipf,
    /// `sim::machine`'s per-quantum loaded-latency cache vs a
    /// recomputed-from-scratch inflation.
    Latency,
    /// `profile::engine`'s specialized per-profiler batch sweep
    /// (`on_access_batch`) vs a scalar replay of the same access plane
    /// through `on_access`/`on_hint_fault` on a cloned profiler.
    Batch,
}

impl Structure {
    /// All structures, in display order.
    pub const ALL: [Structure; 5] = [
        Structure::Heat,
        Structure::Walk,
        Structure::Zipf,
        Structure::Latency,
        Structure::Batch,
    ];

    /// Human-readable structure name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Structure::Heat => "heat-map",
            Structure::Walk => "walk-cache",
            Structure::Zipf => "zipf-sampler",
            Structure::Latency => "loaded-latency",
            Structure::Batch => "access-batch",
        }
    }

    fn index(self) -> usize {
        match self {
            Structure::Heat => 0,
            Structure::Walk => 1,
            Structure::Zipf => 2,
            Structure::Latency => 3,
            Structure::Batch => 4,
        }
    }
}

/// Lockstep comparisons performed, per structure. Global (not
/// thread-local): experiment grids run cells on a thread pool and the
/// driver wants one total.
static CHECKS: [AtomicU64; 5] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

thread_local! {
    /// Simulated time (ns) of the quantum currently executing on this
    /// thread, if the runtime set one.
    static NOW: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Set the simulated clock for divergence reports from this thread.
/// The runtime calls this at every quantum boundary.
pub fn set_now(ns: u64) {
    NOW.with(|c| c.set(Some(ns)));
}

/// Clear the simulated clock (e.g. when a run finishes).
pub fn clear_now() {
    NOW.with(|c| c.set(None));
}

/// The simulated time of the last [`set_now`] on this thread.
pub fn now() -> Option<u64> {
    NOW.with(|c| c.get())
}

/// Number of lockstep checks performed against `structure` since the
/// last [`reset_checks`].
pub fn checks(structure: Structure) -> u64 {
    CHECKS[structure.index()].load(Ordering::Relaxed)
}

/// Total lockstep checks across all structures.
pub fn total_checks() -> u64 {
    Structure::ALL.iter().map(|&s| checks(s)).sum()
}

/// Reset every check counter to zero (drivers call this before a run).
pub fn reset_checks() {
    for c in &CHECKS {
        c.store(0, Ordering::Relaxed);
    }
}

/// Report a divergence and abort: the optimized `structure` disagrees
/// with its reference model. Never returns; the panic message carries
/// the structure, the VPN (when the check is keyed by one) and the
/// simulated time, which is everything needed to replay the failing
/// step under a debugger.
#[cold]
#[inline(never)]
pub fn fail(structure: Structure, vpn: Option<u64>, detail: &str) -> ! {
    let vpn = match vpn {
        Some(v) => format!("vpn {v:#x}"),
        None => "no vpn".to_string(),
    };
    let when = match now() {
        Some(ns) => format!("simulated time {ns} ns"),
        None => "simulated time unset".to_string(),
    };
    panic!(
        "oracle divergence [{}] at {when}, {vpn}: {detail}",
        structure.name()
    );
}

/// Count one lockstep comparison against `structure`; if `ok` is false,
/// report the divergence via [`fail`]. `detail` is only evaluated on
/// failure, so call sites can format rich diffs without hot-path cost
/// beyond the comparison itself.
#[inline]
pub fn check(structure: Structure, ok: bool, vpn: Option<u64>, detail: impl FnOnce() -> String) {
    CHECKS[structure.index()].fetch_add(1, Ordering::Relaxed);
    if !ok {
        fail(structure, vpn, &detail());
    }
}

/// Per-page statistics of the reference heat model. Field-for-field the
/// optimized `PageStats` (kept dependency-free: this crate sits below
/// `vulcan-profile`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RefStats {
    /// Decayed access heat.
    pub heat: f64,
    /// Decayed sampled reads.
    pub reads: f64,
    /// Decayed sampled writes.
    pub writes: f64,
}

/// The reference heat model: the exact `HashMap` semantics
/// `profile::heat::HeatMap` replaced with its flat epoch-versioned
/// table. Every operation mirrors the pre-optimization implementation —
/// same arithmetic, same order — so a correct flat table must match it
/// *bitwise*, not approximately.
#[derive(Clone, Debug, Default)]
pub struct RefHeat {
    map: std::collections::HashMap<u64, RefStats>,
}

impl RefHeat {
    /// An empty reference model.
    pub fn new() -> RefHeat {
        RefHeat::default()
    }

    /// Record `weight` accesses to `key` (`HashMap::entry().or_default()`).
    pub fn record(&mut self, key: u64, is_write: bool, weight: f64) {
        let s = self.map.entry(key).or_default();
        s.heat += weight;
        if is_write {
            s.writes += weight;
        } else {
            s.reads += weight;
        }
    }

    /// One epoch of exponential decay with pruning below `threshold`
    /// (`HashMap::retain` semantics).
    pub fn decay(&mut self, decay: f64, threshold: f64) {
        self.map.retain(|_, s| {
            s.heat *= decay;
            s.reads *= decay;
            s.writes *= decay;
            s.heat >= threshold
        });
    }

    /// Remove `key` (`HashMap::remove`).
    pub fn forget(&mut self, key: u64) {
        self.map.remove(&key);
    }

    /// Install exact statistics for `key`, bypassing the arithmetic
    /// path — checkpoint restore rebuilds the shadow model bitwise from
    /// serialized state, so subsequent oracle diffs stay exact.
    pub fn set_exact(&mut self, key: u64, stats: RefStats) {
        self.map.insert(key, stats);
    }

    /// Statistics for `key`; zero when untracked.
    pub fn get(&self, key: u64) -> RefStats {
        self.map.get(&key).copied().unwrap_or_default()
    }

    /// Whether `key` is tracked.
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    /// Tracked keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no keys are tracked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate `(key, stats)` in arbitrary (hash) order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &RefStats)> {
        self.map.iter().map(|(&k, s)| (k, s))
    }

    /// The `n` extreme keys under heat, best first, ties broken by key —
    /// a full sort of the whole model, the obviously-correct selection
    /// the optimized `select_nth_unstable_by` path must reproduce.
    pub fn top_heat(&self, n: usize, hottest: bool) -> Vec<(u64, f64)> {
        let mut v: Vec<(u64, f64)> = self.map.iter().map(|(&k, s)| (k, s.heat)).collect();
        v.sort_by(|a, b| {
            let ord = a.1.partial_cmp(&b.1).expect("heat is never NaN");
            let ord = if hottest { ord.reverse() } else { ord };
            ord.then(a.0.cmp(&b.0))
        });
        v.truncate(n);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        reset_checks();
        check(Structure::Zipf, true, None, || unreachable!());
        check(Structure::Zipf, true, Some(4), || unreachable!());
        check(Structure::Heat, true, None, || unreachable!());
        assert_eq!(checks(Structure::Zipf), 2);
        assert_eq!(checks(Structure::Heat), 1);
        assert_eq!(total_checks(), 3);
        reset_checks();
        assert_eq!(total_checks(), 0);
    }

    #[test]
    fn failing_check_reports_structure_vpn_and_time() {
        set_now(1_234);
        let err = std::panic::catch_unwind(|| {
            check(Structure::Walk, false, Some(0x42), || {
                "leaf 7 != leaf 9".into()
            });
        })
        .unwrap_err();
        clear_now();
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries a String");
        assert!(msg.contains("walk-cache"), "{msg}");
        assert!(msg.contains("vpn 0x42"), "{msg}");
        assert!(msg.contains("1234 ns"), "{msg}");
        assert!(msg.contains("leaf 7 != leaf 9"), "{msg}");
    }

    #[test]
    fn ref_heat_matches_hashmap_semantics() {
        let mut h = RefHeat::new();
        h.record(1, false, 2.0);
        h.record(1, true, 3.0);
        h.record(2, false, 0.001);
        assert_eq!(
            h.get(1),
            RefStats {
                heat: 5.0,
                reads: 2.0,
                writes: 3.0
            }
        );
        assert_eq!(h.len(), 2);
        h.decay(0.5, 1e-3);
        assert_eq!(h.get(1).heat, 2.5);
        assert!(!h.contains(2), "negligible key pruned");
        h.forget(1);
        assert!(h.is_empty());
        assert_eq!(h.get(1), RefStats::default());
    }

    #[test]
    fn top_heat_orders_with_key_tiebreak() {
        let mut h = RefHeat::new();
        for (k, w) in [(3u64, 5.0), (1, 9.0), (2, 5.0)] {
            h.record(k, false, w);
        }
        assert_eq!(h.top_heat(3, true), vec![(1, 9.0), (2, 5.0), (3, 5.0)]);
        assert_eq!(h.top_heat(2, false), vec![(2, 5.0), (3, 5.0)]);
    }
}
