//! Named time series for the timeline figures (Figures 1 and 9).

use vulcan_json::{Map, Value};

/// A named series of `(time_seconds, value)` points.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    /// Series label (e.g. `"memcached.fthr"`).
    pub name: String,
    /// Samples in time order.
    pub points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a sample; time must not go backwards.
    pub fn push(&mut self, t_secs: f64, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            debug_assert!(t_secs >= last, "time series must be monotone");
        }
        self.points.push((t_secs, value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of the values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
    }

    /// Mean of values with `t >= from` (0 when no samples qualify).
    pub fn mean_after(&self, from: f64) -> f64 {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|&&(t, _)| t >= from)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// The last value (None when empty).
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// JSON form: `{"name": ..., "points": [[t, v], ...]}`.
    pub fn to_value(&self) -> Value {
        Value::Object(
            Map::new()
                .with("name", &self.name)
                .with("points", vulcan_json::pairs_to_value(&self.points)),
        )
    }

    fn from_value(v: &Value) -> Result<TimeSeries, String> {
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("series missing \"name\"")?
            .to_string();
        let mut points = Vec::new();
        for p in v
            .get("points")
            .and_then(Value::as_array)
            .ok_or("series missing \"points\"")?
        {
            match p.as_array() {
                Some([t, v]) => points.push((
                    t.as_f64().ok_or("non-numeric point")?,
                    v.as_f64().ok_or("non-numeric point")?,
                )),
                _ => return Err("point is not a [t, v] pair".into()),
            }
        }
        Ok(TimeSeries { name, points })
    }
}

/// A collection of series keyed by name, dumped as JSON for EXPERIMENTS.md.
#[derive(Clone, Debug, Default)]
pub struct SeriesSet {
    /// All series, in creation order.
    pub series: Vec<TimeSeries>,
}

impl SeriesSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create a series by name.
    pub fn entry(&mut self, name: &str) -> &mut TimeSeries {
        if let Some(i) = self.series.iter().position(|s| s.name == name) {
            &mut self.series[i]
        } else {
            self.series.push(TimeSeries::new(name));
            self.series.last_mut().expect("just pushed")
        }
    }

    /// Look up a series by name.
    pub fn get(&self, name: &str) -> Option<&TimeSeries> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Serialize the whole set as pretty JSON.
    pub fn to_json(&self) -> String {
        self.to_value().to_json_pretty()
    }

    /// JSON form: `{"series": [...]}` (the layout serde produced before
    /// the workspace went dependency-free).
    pub fn to_value(&self) -> Value {
        Value::Object(
            Map::new().with(
                "series",
                self.series
                    .iter()
                    .map(TimeSeries::to_value)
                    .collect::<Vec<_>>(),
            ),
        )
    }

    /// Parse the [`to_json`](SeriesSet::to_json) layout back.
    pub fn from_json(text: &str) -> Result<SeriesSet, String> {
        let v = vulcan_json::parse(text).map_err(|e| e.to_string())?;
        let mut set = SeriesSet::new();
        for s in v
            .get("series")
            .and_then(Value::as_array)
            .ok_or("series set missing \"series\"")?
        {
            set.series.push(TimeSeries::from_value(s)?);
        }
        Ok(set)
    }
}

impl vulcan_json::Snapshot for SeriesSet {
    /// Bit-exact form for checkpoints: unlike [`SeriesSet::to_value`],
    /// points are encoded as IEEE-754 bit patterns, so non-finite values
    /// and every last mantissa bit survive the round-trip.
    fn snapshot(&self) -> Value {
        use vulcan_json::snap;
        Value::Array(
            self.series
                .iter()
                .map(|s| {
                    let mut flat = Vec::with_capacity(s.points.len() * 2);
                    for &(t, v) in &s.points {
                        flat.push(t);
                        flat.push(v);
                    }
                    snap::obj(vec![
                        ("name", Value::Str(s.name.clone())),
                        ("points", snap::f64_array(&flat)),
                    ])
                })
                .collect(),
        )
    }

    fn restore(v: &Value) -> Result<Self, String> {
        use vulcan_json::snap;
        let arr = v
            .as_array()
            .ok_or_else(|| "SeriesSet snapshot must be an array".to_string())?;
        let mut set = SeriesSet::new();
        for s in arr {
            let flat = snap::array_f64(snap::field(s, "points")?)?;
            if flat.len() % 2 != 0 {
                return Err("series points must pair up".into());
            }
            set.series.push(TimeSeries {
                name: snap::field_str(s, "name")?.to_string(),
                points: flat.chunks_exact(2).map(|c| (c[0], c[1])).collect(),
            });
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_roundtrip_is_bit_exact() {
        use vulcan_json::Snapshot;
        let mut set = SeriesSet::new();
        set.entry("a").push(1.0 / 3.0, f64::INFINITY);
        let text = set.snapshot().to_json();
        let back = SeriesSet::restore(&vulcan_json::parse(&text).unwrap()).unwrap();
        let p = back.get("a").unwrap().points[0];
        assert_eq!(p.0.to_bits(), (1.0f64 / 3.0).to_bits());
        assert!(p.1.is_infinite());
    }

    #[test]
    fn push_and_query() {
        let mut s = TimeSeries::new("x");
        s.push(0.0, 1.0);
        s.push(1.0, 3.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.last(), Some(3.0));
        assert!(!s.is_empty());
    }

    #[test]
    fn mean_after_filters() {
        let mut s = TimeSeries::new("x");
        for t in 0..10 {
            s.push(t as f64, if t < 5 { 0.0 } else { 10.0 });
        }
        assert_eq!(s.mean_after(5.0), 10.0);
        assert_eq!(s.mean_after(100.0), 0.0);
    }

    #[test]
    fn empty_series() {
        let s = TimeSeries::new("e");
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.last(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn set_entry_is_idempotent() {
        let mut set = SeriesSet::new();
        set.entry("a").push(0.0, 1.0);
        set.entry("a").push(1.0, 2.0);
        set.entry("b").push(0.0, 5.0);
        assert_eq!(set.series.len(), 2);
        assert_eq!(set.get("a").unwrap().len(), 2);
        assert!(set.get("missing").is_none());
    }

    #[test]
    fn json_roundtrip() {
        let mut set = SeriesSet::new();
        set.entry("a").push(0.5, 1.5);
        let json = set.to_json();
        let back = SeriesSet::from_json(&json).unwrap();
        assert_eq!(back.get("a").unwrap().points, vec![(0.5, 1.5)]);
    }
}
