//! Figure 3: contribution of TLB operations and page-copy operations to
//! migration time across batch sizes and thread counts (32-CPU system).
//!
//! Paper anchors: copying dominates small batches; TLB coherence grows to
//! ~65% of migration time at 512 pages × 32 threads (Observation #3).

use vulcan::prelude::Table;
use vulcan::sim::MigrationCosts;

fn main() {
    let costs = MigrationCosts::default();
    let pages = [2u64, 8, 32, 128, 512];
    let threads = [1u16, 2, 4, 8, 16, 32];

    let mut table = Table::new(
        "Figure 3: TLB share of migration time (%), pages x threads",
        &["pages", "t=1", "t=2", "t=4", "t=8", "t=16", "t=32"],
    );
    let mut rows = Vec::new();
    for &p in &pages {
        let mut cells = vec![p.to_string()];
        for &t in &threads {
            // Threads pinned to distinct cores; responders exclude self.
            let targets = t.saturating_sub(1);
            let tlb = costs.shootdown_batched(p, targets).as_f64();
            let copy = costs.copy_batched(p).as_f64();
            let share = 100.0 * tlb / (tlb + copy);
            cells.push(format!("{share:.1}"));
            rows.push(vulcan_json::Value::Object(
                vulcan_json::Map::new()
                    .with("pages", p)
                    .with("threads", t)
                    .with("tlb_cycles", tlb)
                    .with("copy_cycles", copy)
                    .with("tlb_share", share / 100.0),
            ));
        }
        table.row(&cells);
    }
    table.print();
    println!(
        "\nPaper: copy-dominated at few pages; TLB operations reach ~65% \
         at 512 pages with 32 threads."
    );
    vulcan_bench::save_json_or_exit("fig3", &rows);
}
