//! Restore-replay identity oracle (ISSUE 10, runtime layer).
//!
//! Checkpoint at quantum Q, serialize to JSON text, reparse, restore
//! into a fresh runner, run to completion: every per-quantum outcome and
//! the final serialized state must be identical to the straight run.
//! Any divergence is a hidden-state bug in some layer's `Snapshot`.

use vulcan_profile::{HintFaultProfiler, PebsProfiler};
use vulcan_runtime::checkpoint::parse_checkpoint;
use vulcan_runtime::{
    QuantumOutcome, SimConfig, SimRunner, StaticPlacement, SystemState, TieringPolicy,
    UniformPartition,
};
use vulcan_sim::{FaultConfig, MachineSpec, Nanos, TierKind};
use vulcan_vm::Vpn;
use vulcan_workloads::{
    microbench, KvConfig, MicroConfig, WorkloadClass, WorkloadKind, WorkloadSpec,
};

fn specs() -> Vec<WorkloadSpec> {
    vec![
        microbench(
            "mb",
            MicroConfig {
                rss_pages: 384,
                wss_pages: 96,
                ..Default::default()
            },
            2,
        ),
        WorkloadSpec {
            name: "kv".into(),
            class: WorkloadClass::LatencyCritical,
            n_threads: 2,
            start: Nanos::secs(2),
            kind: WorkloadKind::Kv(KvConfig {
                rss_pages: 256,
                ..Default::default()
            }),
            prealloc: None,
            thp: false,
            stop: None,
        },
    ]
}

struct Cell {
    policy: fn() -> Box<dyn TieringPolicy>,
    shards: usize,
    faults: FaultConfig,
}

fn mk_runner(cell: &Cell, n_quanta: u64) -> SimRunner {
    SimRunner::builder()
        .machine(MachineSpec::small(192, 4096, 8))
        .workloads(specs())
        .profiler_factory(|_| PebsProfiler::new(4))
        .policy((cell.policy)())
        .config(SimConfig {
            quantum_active: Nanos::micros(300),
            n_quanta,
            shards: cell.shards,
            faults: cell.faults.clone(),
            ..Default::default()
        })
        .build()
}

/// Run `total` quanta; when `restore_at` is set, checkpoint after that
/// quantum, push the state through a full JSON text round trip, restore
/// into a brand-new runner, and continue on it.
fn drive(cell: &Cell, total: u64, restore_at: Option<u64>) -> (Vec<QuantumOutcome>, String) {
    let mut runner = mk_runner(cell, total);
    let mut outcomes = Vec::new();
    for q in 0..total {
        outcomes.push(runner.run_quantum());
        if restore_at == Some(q) {
            let text = runner.checkpoint().unwrap().to_json();
            let v = parse_checkpoint(&text).unwrap();
            runner = SimRunner::restore(&v, (cell.policy)(), |_| PebsProfiler::new(4)).unwrap();
            // The checkpoint itself must round-trip bit-identically.
            assert_eq!(runner.checkpoint().unwrap().to_json(), text);
        }
    }
    let fin = runner.checkpoint().unwrap().to_json();
    (outcomes, fin)
}

fn assert_identity(cell: &Cell, label: &str) {
    let total = 10;
    let (straight, straight_fin) = drive(cell, total, None);
    for at in [0, 3, 7] {
        let (resumed, resumed_fin) = drive(cell, total, Some(at));
        assert_eq!(
            resumed, straight,
            "{label}: outcomes diverged, restore at {at}"
        );
        assert_eq!(
            resumed_fin, straight_fin,
            "{label}: final state diverged, restore at {at}"
        );
    }
}

#[test]
fn identity_static_policy_shards_1() {
    assert_identity(
        &Cell {
            policy: || Box::new(StaticPlacement),
            shards: 1,
            faults: FaultConfig::default(),
        },
        "static/1",
    );
}

#[test]
fn identity_static_policy_shards_4() {
    assert_identity(
        &Cell {
            policy: || Box::new(StaticPlacement),
            shards: 4,
            faults: FaultConfig::default(),
        },
        "static/4",
    );
}

#[test]
fn identity_uniform_policy_shards_1_and_4() {
    for shards in [1, 4] {
        assert_identity(
            &Cell {
                policy: || Box::new(UniformPartition),
                shards,
                faults: FaultConfig::default(),
            },
            &format!("uniform/{shards}"),
        );
    }
}

#[test]
fn identity_under_fault_injection() {
    // The fault plan's RNG position and per-site counters are hidden
    // state: a restore that reseeded the plan would inject a different
    // fault schedule after the checkpoint.
    assert_identity(
        &Cell {
            policy: || Box::new(StaticPlacement),
            shards: 1,
            faults: FaultConfig {
                alloc_fast_rate: 0.05,
                copy_fail_rate: 0.05,
                ..Default::default()
            },
        },
        "static/faults",
    );
}

#[test]
fn identity_with_hint_fault_profiler() {
    // Hint-fault profilers mutate page-table hint bits and carry RNG
    // state of their own; run the oracle over that profiler family too.
    let total = 8;
    let mk = || {
        SimRunner::builder()
            .machine(MachineSpec::small(128, 2048, 8))
            .workloads(specs())
            .profiler_factory(|_| HintFaultProfiler::new(0.3))
            .policy(Box::new(UniformPartition))
            .config(SimConfig {
                quantum_active: Nanos::micros(300),
                n_quanta: total,
                ..Default::default()
            })
            .build()
    };
    let straight: Vec<QuantumOutcome> = {
        let mut r = mk();
        (0..total).map(|_| r.run_quantum()).collect()
    };
    let mut r = mk();
    let mut resumed = Vec::new();
    for q in 0..total {
        resumed.push(r.run_quantum());
        if q == 4 {
            let text = r.checkpoint().unwrap().to_json();
            let v = parse_checkpoint(&text).unwrap();
            r = SimRunner::restore(&v, Box::new(UniformPartition), |_| {
                HintFaultProfiler::new(0.3)
            })
            .unwrap();
        }
    }
    assert_eq!(resumed, straight);
}

/// Promotes slow-resident pages asynchronously in small batches so that
/// transactions straddle quantum boundaries — and therefore checkpoints.
struct AsyncPromoter;

impl TieringPolicy for AsyncPromoter {
    fn name(&self) -> &'static str {
        "async-promoter"
    }

    fn on_quantum(&mut self, state: &mut SystemState) {
        for w in 0..state.n_workloads() {
            let pages: Vec<Vpn> = {
                let ws = &state.workloads[w];
                ws.process
                    .space
                    .mapped_vpns()
                    .filter(|&v| {
                        ws.process.space.pte(v).tier() == Some(TierKind::Slow)
                            && !ws.async_migrator.is_inflight(v)
                    })
                    .take(24)
                    .collect()
            };
            if !pages.is_empty() {
                state.migrate_async(w, &pages, TierKind::Fast);
            }
        }
    }
}

/// Satellite: a checkpoint taken while async migration transactions are
/// in flight must serialize them (issue quantum, destination, pinned
/// pages, copy-engine RNG position) so the restored run commits or
/// aborts exactly the same transactions at exactly the same quanta.
#[test]
fn identity_with_inflight_async_migrations() {
    let total = 10;
    let specs = || {
        vec![
            microbench(
                "dep",
                MicroConfig {
                    rss_pages: 512,
                    wss_pages: 64,
                    ..Default::default()
                },
                2,
            )
            .preallocated(TierKind::Slow),
            microbench(
                "stay",
                MicroConfig {
                    rss_pages: 512,
                    wss_pages: 64,
                    ..Default::default()
                },
                2,
            )
            .preallocated(TierKind::Slow),
        ]
    };
    let mk = || {
        SimRunner::builder()
            .machine(MachineSpec::small(2_048, 4_096, 8))
            .workloads(specs())
            .profiler_factory(|_| PebsProfiler::new(4))
            .policy(Box::new(AsyncPromoter))
            .config(SimConfig {
                quantum_active: Nanos::micros(200),
                n_quanta: total,
                // Copy failures exercise the abort path on both sides of
                // the checkpoint boundary.
                faults: FaultConfig {
                    copy_fail_rate: 0.1,
                    ..Default::default()
                },
                ..Default::default()
            })
            .build()
    };
    let straight: Vec<QuantumOutcome> = {
        let mut r = mk();
        (0..total).map(|_| r.run_quantum()).collect()
    };
    for at in [0, 2, 5] {
        let mut r = mk();
        let mut resumed = Vec::new();
        for q in 0..total {
            resumed.push(r.run_quantum());
            if q == at {
                assert!(
                    r.state
                        .workloads
                        .iter()
                        .any(|w| w.async_migrator.inflight() > 0),
                    "test premise: transactions are in flight at the checkpoint"
                );
                let text = r.checkpoint().unwrap().to_json();
                let v = parse_checkpoint(&text).unwrap();
                r = SimRunner::restore(&v, Box::new(AsyncPromoter), |_| PebsProfiler::new(4))
                    .unwrap();
                assert!(
                    r.state
                        .workloads
                        .iter()
                        .any(|w| w.async_migrator.inflight() > 0),
                    "restore must rehydrate the in-flight transactions"
                );
                assert_eq!(r.checkpoint().unwrap().to_json(), text);
            }
        }
        assert_eq!(
            resumed, straight,
            "async interleaving diverged, restore at {at}"
        );
    }
}

#[test]
fn run_remaining_completes_the_original_plan() {
    let cell = Cell {
        policy: || Box::new(StaticPlacement),
        shards: 1,
        faults: FaultConfig::default(),
    };
    let straight = mk_runner(&cell, 10).run();
    let mut runner = mk_runner(&cell, 10);
    for _ in 0..6 {
        runner.run_quantum();
    }
    let v = runner.checkpoint().unwrap();
    let resumed = SimRunner::restore(&v, Box::new(StaticPlacement), |_| PebsProfiler::new(4))
        .unwrap()
        .run_remaining();
    assert_eq!(
        resumed.workload("mb").ops_total,
        straight.workload("mb").ops_total
    );
    assert_eq!(
        resumed.workload("kv").ops_total,
        straight.workload("kv").ops_total
    );
    assert_eq!(resumed.cfi.to_bits(), straight.cfi.to_bits());
    assert_eq!(resumed.series.to_json(), straight.series.to_json());
}

#[test]
fn restore_rejects_wrong_policy() {
    let runner = mk_runner(
        &Cell {
            policy: || Box::new(StaticPlacement),
            shards: 1,
            faults: FaultConfig::default(),
        },
        4,
    );
    let v = runner.checkpoint().unwrap();
    let err = match SimRunner::restore(&v, Box::new(UniformPartition), |_| PebsProfiler::new(4)) {
        Ok(_) => panic!("wrong policy must not restore"),
        Err(e) => e,
    };
    assert_eq!(
        err,
        vulcan_runtime::CheckpointError::PolicyMismatch {
            expected: "static".to_string(),
            found: "uniform".to_string(),
        }
    );
}

/// The tournament's fork contract: a checkpoint taken under one policy
/// forks under a *different* policy and a re-parameterized machine —
/// no name check, cold policy, fresh profilers — and the continuation
/// completes with frames conserved on every chain tier.
#[test]
fn fork_swaps_policy_and_respecs_the_machine() {
    let total = 10;
    let cell = Cell {
        policy: || Box::new(StaticPlacement),
        shards: 1,
        faults: FaultConfig::default(),
    };
    let mut origin = mk_runner(&cell, total);
    for _ in 0..4 {
        origin.run_quantum();
    }
    let v = origin.checkpoint().unwrap();

    // Same shape and capacities, slower slow tier: the what-if knob.
    let mut respec = MachineSpec::small(192, 4096, 8);
    respec.access_costs.slow = Nanos(respec.access_costs.slow.0 * 4);
    let mut fork = SimRunner::fork(
        &v,
        Box::new(UniformPartition),
        |_| PebsProfiler::new(4),
        Some(respec),
    )
    .unwrap();
    assert_eq!(fork.state.quantum_index, 4, "fork resumes mid-run");
    let mut baseline = SimRunner::fork(
        &v,
        Box::new(UniformPartition),
        |_| PebsProfiler::new(4),
        None,
    )
    .unwrap();
    for _ in 4..total {
        fork.run_quantum();
        baseline.run_quantum();
    }
    for r in [&mut fork, &mut baseline] {
        for w in 0..r.state.n_workloads() {
            r.state.teardown(w);
        }
        for &tier in r.state.machine.spec().chain() {
            assert_eq!(
                r.state.machine.allocator(tier).used_frames(),
                0,
                "fork leaked frames on {}",
                tier.name()
            );
        }
    }
    let (slow, fast) = (fork.into_result(), baseline.into_result());
    // 4x slow-tier latency must cost measurable work.
    let ops =
        |r: &vulcan_runtime::RunResult| -> u64 { r.per_workload.iter().map(|w| w.ops_total).sum() };
    assert!(
        ops(&slow) < ops(&fast),
        "respec did not bite: {} vs {} ops",
        ops(&slow),
        ops(&fast)
    );
}

/// A what-if spec may not change the tier shape, capacities or core
/// count — frame numbering and thread pinning would silently break.
#[test]
fn fork_rejects_shape_changing_respec() {
    let cell = Cell {
        policy: || Box::new(StaticPlacement),
        shards: 1,
        faults: FaultConfig::default(),
    };
    let mut origin = mk_runner(&cell, 4);
    origin.run_quantum();
    let v = origin.checkpoint().unwrap();
    let err = match SimRunner::fork(
        &v,
        Box::new(StaticPlacement),
        |_| PebsProfiler::new(4),
        Some(MachineSpec::small(256, 4096, 8)), // fast capacity changed
    ) {
        Ok(_) => panic!("shape-changing respec must not fork"),
        Err(e) => e,
    };
    let msg = err.to_string();
    assert!(msg.contains("tier shape"), "unexpected error: {msg}");
}
