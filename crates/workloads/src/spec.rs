//! Workload specifications and the Table 2 presets.

use crate::apps::{KvConfig, KvStore, PageRank, PrConfig, Sweep, SweepConfig};
use crate::bufferpool::{BufferPool, BufferPoolConfig};
use crate::gen::AccessGen;
use crate::microbench::{MicroConfig, Microbench};
use crate::trace::{Trace, TraceReplayer};
use std::sync::Arc;
use vulcan_sim::{Nanos, TierKind};

/// Ground-truth service class of a workload.
///
/// The runtime reports this for evaluation; Vulcan's daemon does **not**
/// read it — it classifies black-box workloads from their utilization
/// patterns (§3.3), and the classifier is tested against this truth.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// Online service; performance = request latency.
    LatencyCritical,
    /// Batch job; performance = throughput.
    BestEffort,
}

/// Which generator a workload uses.
#[derive(Clone, Debug)]
pub enum WorkloadKind {
    /// Memcached-like KV store.
    Kv(KvConfig),
    /// PageRank-like graph computation.
    PageRank(PrConfig),
    /// Liblinear-like training sweep.
    Sweep(SweepConfig),
    /// Nomad-style Zipfian microbenchmark.
    Micro(MicroConfig),
    /// Database buffer pool: phase-alternating scans and point lookups.
    BufferPool(BufferPoolConfig),
    /// Replay of a recorded access trace.
    Replay(Arc<Trace>),
}

/// A complete workload description the runtime can instantiate.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Display name.
    pub name: String,
    /// Ground-truth class (evaluation only).
    pub class: WorkloadClass,
    /// Worker threads.
    pub n_threads: usize,
    /// Simulated start time (staggered arrivals, §5.3).
    pub start: Nanos,
    /// Generator configuration.
    pub kind: WorkloadKind,
    /// Pre-map the whole RSS into a tier before the run (the §5.2
    /// microbenchmarks "allocate data to specific segments of the tiered
    /// memory"); `None` means demand paging.
    pub prealloc: Option<TierKind>,
    /// Back demand-paged memory with transparent huge pages: faults map
    /// whole 2 MiB regions and the TLB caches one entry per region
    /// (§3.5 enables THP by default for TLB coverage).
    pub thp: bool,
    /// Simulated departure time: the workload terminates, releasing all
    /// of its memory (GFMC then redistributes over the survivors, §3.3's
    /// "dynamically adjusting based on n"). `None` = runs forever.
    pub stop: Option<Nanos>,
}

impl WorkloadSpec {
    /// Instantiate the access generator.
    pub fn build(&self) -> Box<dyn AccessGen> {
        match &self.kind {
            WorkloadKind::Kv(c) => Box::new(KvStore::new(c.clone())),
            WorkloadKind::PageRank(c) => Box::new(PageRank::new(PrConfig {
                n_threads: self.n_threads,
                ..c.clone()
            })),
            WorkloadKind::Sweep(c) => Box::new(Sweep::new(SweepConfig {
                n_threads: self.n_threads,
                ..c.clone()
            })),
            WorkloadKind::Micro(c) => Box::new(Microbench::new(c.clone())),
            WorkloadKind::BufferPool(c) => Box::new(BufferPool::new(BufferPoolConfig {
                n_threads: self.n_threads,
                ..c.clone()
            })),
            WorkloadKind::Replay(t) => {
                Box::new(TraceReplayer::new(t.clone()).expect("validated trace"))
            }
        }
    }

    /// The workload's RSS in pages.
    pub fn rss_pages(&self) -> u64 {
        match &self.kind {
            WorkloadKind::Kv(c) => c.rss_pages,
            WorkloadKind::PageRank(c) => c.rss_pages,
            WorkloadKind::Sweep(c) => c.rss_pages,
            WorkloadKind::Micro(c) => c.rss_pages,
            WorkloadKind::BufferPool(c) => c.rss_pages,
            WorkloadKind::Replay(t) => t.rss_pages,
        }
    }

    /// Delay the workload's start (the paper starts PageRank at 50 s and
    /// Liblinear at 110 s, §5.3).
    pub fn starting_at(mut self, t: Nanos) -> Self {
        self.start = t;
        self
    }

    /// Pre-map the whole RSS into `tier` before the run.
    pub fn preallocated(mut self, tier: TierKind) -> Self {
        self.prealloc = Some(tier);
        self
    }

    /// Enable transparent huge pages for this workload.
    pub fn with_thp(mut self) -> Self {
        self.thp = true;
        self
    }

    /// Terminate the workload at `t`, releasing its memory.
    pub fn stopping_at(mut self, t: Nanos) -> Self {
        self.stop = Some(t);
        self
    }
}

/// Table 2: Memcached, 51 GB, YCSB-style KV — latency-critical.
pub fn memcached() -> WorkloadSpec {
    WorkloadSpec {
        name: "memcached".into(),
        class: WorkloadClass::LatencyCritical,
        n_threads: 8,
        start: Nanos::ZERO,
        kind: WorkloadKind::Kv(KvConfig::default()),
        prealloc: None,
        thp: false,
        stop: None,
    }
}

/// Table 2: PageRank, 42 GB web-graph scoring — best-effort.
pub fn pagerank() -> WorkloadSpec {
    WorkloadSpec {
        name: "pagerank".into(),
        class: WorkloadClass::BestEffort,
        n_threads: 8,
        start: Nanos::ZERO,
        kind: WorkloadKind::PageRank(PrConfig::default()),
        prealloc: None,
        thp: false,
        stop: None,
    }
}

/// Table 2: Liblinear on KDD12, 69 GB — best-effort.
pub fn liblinear() -> WorkloadSpec {
    WorkloadSpec {
        name: "liblinear".into(),
        class: WorkloadClass::BestEffort,
        n_threads: 8,
        start: Nanos::ZERO,
        kind: WorkloadKind::Sweep(SweepConfig::default()),
        prealloc: None,
        thp: false,
        stop: None,
    }
}

/// A workload replaying a recorded trace.
pub fn replay(name: &str, trace: Arc<Trace>, class: WorkloadClass) -> WorkloadSpec {
    let n_threads = trace.n_threads;
    WorkloadSpec {
        name: name.into(),
        class,
        n_threads,
        start: Nanos::ZERO,
        kind: WorkloadKind::Replay(trace),
        prealloc: None,
        thp: false,
        stop: None,
    }
}

/// A microbenchmark workload (Figures 4 and 8).
pub fn microbench(name: &str, cfg: MicroConfig, n_threads: usize) -> WorkloadSpec {
    WorkloadSpec {
        name: name.into(),
        class: WorkloadClass::BestEffort,
        n_threads,
        start: Nanos::ZERO,
        kind: WorkloadKind::Micro(cfg),
        prealloc: None,
        thp: false,
        stop: None,
    }
}

/// A buffer-pool workload (scan/point-lookup phases over a paged
/// relation). Classed best-effort by default: the scan phases dominate
/// its runtime and its metric of interest is sweep throughput.
pub fn bufferpool(name: &str, cfg: BufferPoolConfig, n_threads: usize) -> WorkloadSpec {
    WorkloadSpec {
        name: name.into(),
        class: WorkloadClass::BestEffort,
        n_threads,
        start: Nanos::ZERO,
        kind: WorkloadKind::BufferPool(cfg),
        prealloc: None,
        thp: false,
        stop: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_presets() {
        assert_eq!(memcached().rss_pages(), 13_056);
        assert_eq!(pagerank().rss_pages(), 10_752);
        assert_eq!(liblinear().rss_pages(), 17_664);
        assert_eq!(memcached().class, WorkloadClass::LatencyCritical);
        assert_eq!(liblinear().class, WorkloadClass::BestEffort);
        for spec in [memcached(), pagerank(), liblinear()] {
            assert_eq!(spec.n_threads, 8, "8 threads per app (§5.3)");
        }
    }

    #[test]
    fn builders_produce_generators_with_matching_rss() {
        for spec in [memcached(), pagerank(), liblinear()] {
            let g = spec.build();
            assert_eq!(g.rss_pages(), spec.rss_pages());
        }
    }

    #[test]
    fn staggered_start() {
        let w = pagerank().starting_at(Nanos::secs(50));
        assert_eq!(w.start, Nanos::secs(50));
        assert_eq!(w.stop, None);
        let w = w.stopping_at(Nanos::secs(120));
        assert_eq!(w.stop, Some(Nanos::secs(120)));
    }

    #[test]
    fn micro_spec() {
        let w = microbench("mb", MicroConfig::default(), 4);
        assert_eq!(w.n_threads, 4);
        assert_eq!(w.rss_pages(), 8_192);
    }

    #[test]
    fn bufferpool_spec() {
        let w = bufferpool("bufpool", BufferPoolConfig::default(), 4).with_thp();
        assert_eq!(w.n_threads, 4);
        assert_eq!(w.rss_pages(), 12_288);
        assert_eq!(w.class, WorkloadClass::BestEffort);
        assert!(w.thp, "scan phases are THP-sensitive");
        // The spec's thread count overrides the config's.
        let g = w.build();
        assert_eq!(g.rss_pages(), w.rss_pages());
        assert!(!g.batchable());
    }
}
