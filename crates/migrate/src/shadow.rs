//! Page shadowing (borrowed from Nomad, §3.5).
//!
//! When a page is promoted to the fast tier, its old slow-tier frame is
//! retained as a *shadow* instead of being freed. If the page is later
//! demoted **without having been written**, demotion degenerates to a
//! remap back to the shadow frame — no copy, no destination allocation.
//! A write to the promoted page invalidates the shadow (the copies have
//! diverged). Shadows are reclaimed when the slow tier runs short.

use std::collections::BTreeMap;
use vulcan_sim::FrameId;
use vulcan_vm::Vpn;

/// Registry of shadow frames retained in the slow tier.
#[derive(Clone, Debug, Default)]
pub struct ShadowRegistry {
    shadows: BTreeMap<u64, FrameId>,
    hits: u64,
    invalidations: u64,
}

impl ShadowRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Retain `frame` as the shadow of `vpn` after promotion.
    /// Returns a previously retained shadow that must be freed, if any.
    pub fn retain(&mut self, vpn: Vpn, frame: FrameId) -> Option<FrameId> {
        self.shadows.insert(vpn.0, frame)
    }

    /// The shadow of `vpn`, if still valid.
    pub fn get(&self, vpn: Vpn) -> Option<FrameId> {
        self.shadows.get(&vpn.0).copied()
    }

    /// Consume the shadow of `vpn` for a remap-only demotion.
    pub fn take(&mut self, vpn: Vpn) -> Option<FrameId> {
        let s = self.shadows.remove(&vpn.0);
        if s.is_some() {
            self.hits += 1;
        }
        s
    }

    /// Invalidate the shadow after the promoted copy was written.
    /// Returns the frame that must be freed, if a shadow existed.
    pub fn invalidate(&mut self, vpn: Vpn) -> Option<FrameId> {
        let s = self.shadows.remove(&vpn.0);
        if s.is_some() {
            self.invalidations += 1;
        }
        s
    }

    /// Evict up to `n` shadows to free slow-tier frames (capacity
    /// pressure). Returns the frames to release, oldest vpn first.
    pub fn evict(&mut self, n: usize) -> Vec<FrameId> {
        let keys: Vec<u64> = self.shadows.keys().take(n).copied().collect();
        keys.into_iter()
            .map(|k| {
                #[allow(clippy::expect_used)] // invariant: key collected from this map above
                self.shadows.remove(&k).expect("key just listed")
            })
            .collect()
    }

    /// Number of live shadows.
    pub fn len(&self) -> usize {
        self.shadows.len()
    }

    /// Whether no shadows are retained.
    pub fn is_empty(&self) -> bool {
        self.shadows.is_empty()
    }

    /// (remap-only demotions served, shadows invalidated by writes).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.invalidations)
    }
}

impl vulcan_json::Snapshot for ShadowRegistry {
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::snap;
        let vpns: Vec<u64> = self.shadows.keys().copied().collect();
        let tiers: Vec<vulcan_json::Value> = self
            .shadows
            .values()
            .map(|f| vulcan_json::Value::Str(f.tier.name().to_string()))
            .collect();
        let indices: Vec<u64> = self.shadows.values().map(|f| f.index as u64).collect();
        snap::obj(vec![
            ("vpns", snap::u64_array(&vpns)),
            ("tiers", vulcan_json::Value::Array(tiers)),
            ("indices", snap::u64_array(&indices)),
            ("hits", snap::u64_value(self.hits)),
            ("invalidations", snap::u64_value(self.invalidations)),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        use vulcan_sim::TierKind;
        let vpns = snap::array_u64(snap::field(v, "vpns")?)?;
        let tiers = snap::field_array(v, "tiers")?;
        let indices = snap::array_u64(snap::field(v, "indices")?)?;
        if tiers.len() != vpns.len() || indices.len() != vpns.len() {
            return Err("shadow registry arrays have mismatched lengths".to_string());
        }
        let mut shadows = BTreeMap::new();
        for i in 0..vpns.len() {
            let tier = match &tiers[i] {
                vulcan_json::Value::Str(s) => TierKind::ALL
                    .iter()
                    .copied()
                    .find(|t| t.name() == s.as_str())
                    .ok_or_else(|| format!("unknown tier \"{s}\""))?,
                _ => return Err("shadow tier is not a string".to_string()),
            };
            let index = u32::try_from(indices[i])
                .map_err(|_| format!("shadow frame index {} out of range", indices[i]))?;
            if shadows.insert(vpns[i], FrameId { tier, index }).is_some() {
                return Err(format!("duplicate shadow vpn {}", vpns[i]));
            }
        }
        Ok(ShadowRegistry {
            shadows,
            hits: snap::field_u64(v, "hits")?,
            invalidations: snap::field_u64(v, "invalidations")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulcan_sim::TierKind;

    fn frame(index: u32) -> FrameId {
        FrameId {
            tier: TierKind::Slow,
            index,
        }
    }

    #[test]
    fn retain_take_roundtrip() {
        let mut r = ShadowRegistry::new();
        assert_eq!(r.retain(Vpn(1), frame(5)), None);
        assert_eq!(r.get(Vpn(1)), Some(frame(5)));
        assert_eq!(r.take(Vpn(1)), Some(frame(5)));
        assert_eq!(r.take(Vpn(1)), None);
        assert_eq!(r.stats(), (1, 0));
    }

    #[test]
    fn retain_twice_returns_stale_frame() {
        let mut r = ShadowRegistry::new();
        r.retain(Vpn(1), frame(5));
        assert_eq!(r.retain(Vpn(1), frame(6)), Some(frame(5)));
    }

    #[test]
    fn write_invalidates() {
        let mut r = ShadowRegistry::new();
        r.retain(Vpn(1), frame(5));
        assert_eq!(r.invalidate(Vpn(1)), Some(frame(5)));
        assert_eq!(r.get(Vpn(1)), None);
        assert_eq!(r.stats(), (0, 1));
        assert_eq!(r.invalidate(Vpn(1)), None);
    }

    #[test]
    fn snapshot_roundtrip_preserves_shadows_and_stats() {
        use vulcan_json::Snapshot;
        let mut r = ShadowRegistry::new();
        for i in 0..8 {
            r.retain(Vpn(i * 3), frame(i as u32));
        }
        r.take(Vpn(0));
        r.invalidate(Vpn(3));
        let snap = r.snapshot();
        let back = ShadowRegistry::restore(&snap).expect("restore");
        assert_eq!(back.snapshot(), snap, "snapshot(restore(c)) == c");
        assert_eq!(back.len(), r.len());
        assert_eq!(back.stats(), r.stats());
        assert_eq!(back.get(Vpn(6)), Some(frame(2)));
        assert_eq!(back.get(Vpn(0)), None);
    }

    #[test]
    fn restore_rejects_duplicate_vpn() {
        use vulcan_json::Snapshot;
        let mut r = ShadowRegistry::new();
        r.retain(Vpn(1), frame(0));
        r.retain(Vpn(2), frame(1));
        let mut snap = r.snapshot();
        if let vulcan_json::Value::Object(o) = &mut snap {
            o.insert("vpns", vulcan_json::snap::u64_array(&[1, 1]));
        } else {
            panic!("snapshot is not an object");
        }
        let err = ShadowRegistry::restore(&snap).unwrap_err();
        assert!(err.contains("duplicate"), "unexpected error: {err}");
    }

    #[test]
    fn eviction_frees_frames() {
        let mut r = ShadowRegistry::new();
        for i in 0..5 {
            r.retain(Vpn(i), frame(i as u32));
        }
        let evicted = r.evict(3);
        assert_eq!(evicted.len(), 3);
        assert_eq!(r.len(), 2);
        let more = r.evict(10);
        assert_eq!(more.len(), 2);
        assert!(r.is_empty());
    }
}
