//! # vulcan-policy — baseline tiering policies
//!
//! Re-implementations of the three comparison systems the paper
//! evaluates against (§5.1): TPP, MEMTIS and NOMAD, each running on the
//! same simulated substrate as Vulcan so that policy differences — not
//! substrate differences — drive every comparison, mirroring how the
//! paper runs all four on identical hardware.

#![warn(missing_docs)]

pub mod memtis;
pub mod mtm;
pub mod nomad;
pub mod tpp;

pub use memtis::{Memtis, MemtisConfig};
pub use mtm::{Mtm, MtmConfig};
pub use nomad::{Nomad, NomadConfig};
pub use tpp::{Tpp, TppConfig};

use vulcan_profile::{HintFaultProfiler, HybridProfiler, PebsProfiler, Profiler};

/// The profiling mechanism each baseline uses in its original system:
/// TPP → NUMA hinting faults, Memtis → PEBS, Nomad → hint faults plus
/// sampling (hybrid).
pub fn profiler_for(policy: &str) -> Box<dyn Profiler> {
    match policy {
        "tpp" => Box::new(HintFaultProfiler::new(0.06)),
        "memtis" => Box::new(PebsProfiler::new(16)),
        "mtm" => Box::new(PebsProfiler::new(16)),
        "nomad" => Box::new(HybridProfiler::new(16, 0.05)),
        _ => Box::new(HybridProfiler::vulcan_default()),
    }
}
