//! The five-phase migration mechanism and its cost accounting.
//!
//! §2.1: pages move between tiers through ① kernel trapping, ② PTE
//! locking and unmapping, ③ TLB shootdown via IPIs, ④ content copying
//! and ⑤ PTE remapping — preceded in Linux by migration *preparation*
//! (`lru_add_drain_all()`), whose global synchronization Figure 2 shows
//! dominating on many-core machines.

use vulcan_sim::{Cycles, MigrationCosts};

/// How migration preparation is performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrepStrategy {
    /// Linux baseline: `lru_add_drain_all()` synchronizes every CPU
    /// (cost grows superlinearly with core count — Observation #2).
    BaselineGlobal,
    /// Vulcan: per-workload queues drained by the application's own
    /// migration threads, no global `on_each_cpu_mask()` (§3.2).
    Optimized,
}

/// Per-phase cycle accounting for one migration batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseCycles {
    /// Migration preparation (LRU drain / per-workload drain).
    pub prep: Cycles,
    /// Kernel entry.
    pub trap: Cycles,
    /// PTE locking and unmapping.
    pub unmap: Cycles,
    /// TLB shootdown IPIs and remote flushes.
    pub shootdown: Cycles,
    /// Page content copy between tiers.
    pub copy: Cycles,
    /// PTE remapping to the new frames.
    pub remap: Cycles,
}

impl PhaseCycles {
    /// Total cycles across all phases.
    pub fn total(&self) -> Cycles {
        self.prep + self.trap + self.unmap + self.shootdown + self.copy + self.remap
    }

    /// Fraction contributed by one phase value.
    pub fn share(&self, phase: Cycles) -> f64 {
        let t = self.total().as_f64();
        if t == 0.0 {
            0.0
        } else {
            phase.as_f64() / t
        }
    }

    /// Accumulate another batch's phases.
    pub fn accumulate(&mut self, other: &PhaseCycles) {
        self.prep += other.prep;
        self.trap += other.trap;
        self.unmap += other.unmap;
        self.shootdown += other.shootdown;
        self.copy += other.copy;
        self.remap += other.remap;
    }
}

/// Preparation cost under `strategy` on an `n_cpus` machine.
pub fn prep_cost(costs: &MigrationCosts, strategy: PrepStrategy, n_cpus: u16) -> Cycles {
    match strategy {
        PrepStrategy::BaselineGlobal => costs.prep_baseline(n_cpus),
        PrepStrategy::Optimized => costs.prep_vulcan(),
    }
}

/// Phase costs (excluding shootdown, which depends on the IPI target set
/// — see [`vulcan_vm::shootdown`]) for a batch of `pages` pages.
pub fn batch_phases_without_shootdown(
    costs: &MigrationCosts,
    strategy: PrepStrategy,
    n_cpus: u16,
    pages: u64,
) -> PhaseCycles {
    PhaseCycles {
        prep: prep_cost(costs, strategy, n_cpus),
        trap: costs.trap,
        unmap: Cycles(costs.unmap.0 * pages),
        shootdown: Cycles::ZERO,
        copy: costs.copy_batched(pages),
        remap: Cycles(costs.remap.0 * pages),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_shares() {
        let p = PhaseCycles {
            prep: Cycles(50),
            trap: Cycles(10),
            unmap: Cycles(10),
            shootdown: Cycles(20),
            copy: Cycles(5),
            remap: Cycles(5),
        };
        assert_eq!(p.total(), Cycles(100));
        assert!((p.share(p.prep) - 0.5).abs() < 1e-12);
        assert_eq!(PhaseCycles::default().share(Cycles(0)), 0.0);
    }

    #[test]
    fn accumulate_sums_fields() {
        let mut a = PhaseCycles {
            prep: Cycles(1),
            ..Default::default()
        };
        let b = PhaseCycles {
            prep: Cycles(2),
            copy: Cycles(3),
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.prep, Cycles(3));
        assert_eq!(a.copy, Cycles(3));
    }

    #[test]
    fn optimized_prep_is_flat_in_cpus() {
        let costs = MigrationCosts::default();
        let p2 = prep_cost(&costs, PrepStrategy::Optimized, 2);
        let p32 = prep_cost(&costs, PrepStrategy::Optimized, 32);
        assert_eq!(p2, p32);
        assert!(prep_cost(&costs, PrepStrategy::BaselineGlobal, 32) > p32 * 50);
    }

    #[test]
    fn per_page_phases_scale_linearly() {
        let costs = MigrationCosts::default();
        let one = batch_phases_without_shootdown(&costs, PrepStrategy::Optimized, 32, 1);
        let ten = batch_phases_without_shootdown(&costs, PrepStrategy::Optimized, 32, 10);
        assert_eq!(ten.unmap, one.unmap * 10);
        assert_eq!(ten.remap, one.remap * 10);
        assert_eq!(ten.prep, one.prep, "prep amortizes over the batch");
    }
}
