//! Quickstart: co-locate a latency-critical KV store with a best-effort
//! training sweep on the paper's (scaled) testbed and let Vulcan manage
//! the fast tier.
//!
//! Run with: `cargo run --release --example quickstart`

use vulcan::prelude::*;

fn main() {
    // The paper's testbed: 32 cores, 32 GB fast / 256 GB slow (scaled
    // 1 GB -> 256 pages), 70 ns / 162 ns.
    let machine = MachineSpec::paper_testbed();

    // Table 2 workloads: memcached (LC) and liblinear (BE).
    let workloads = vec![memcached(), liblinear()];

    let result = SimRunner::builder()
        .machine(machine)
        .workloads(workloads)
        .profiler_factory(
            // Vulcan's default hybrid profiler (PEBS + hinting faults, §3.2).
            |_| Box::new(HybridProfiler::vulcan_default()),
        )
        .policy(Box::new(VulcanPolicy::new()))
        .config(SimConfig {
            n_quanta: 60, // one simulated minute
            ..Default::default()
        })
        .build()
        .run();

    let mut table = Table::new(
        format!("{} after 60 s", result.policy),
        &[
            "workload",
            "class",
            "perf",
            "latency(ns)",
            "FTHR",
            "fast pages held",
        ],
    );
    for w in &result.per_workload {
        table.row(&[
            w.name.clone(),
            format!("{:?}", w.class),
            format!("{:.0}", w.performance()),
            format!("{:.0}", w.mean_latency_ns),
            format!("{:.3}", w.mean_fthr),
            format!(
                "{:.0}",
                result
                    .series
                    .get(&format!("{}.fast_pages", w.name))
                    .and_then(|s| s.last())
                    .unwrap_or(0.0)
            ),
        ]);
    }
    table.print();
    println!(
        "\nFTHR-weighted Cumulative Fairness Index (CFI): {:.3}",
        result.cfi
    );
    println!(
        "The LC workload keeps its hot set in fast memory (high FTHR) even \
         though the BE sweep issues vastly more accesses — no cold page dilemma."
    );
}
