//! Table 2: workloads and RSS in tiered memory — the scaled inventory
//! this reproduction instantiates (1 paper-GB = 256 pages, DESIGN.md §5).

use vulcan::prelude::*;

fn main() {
    let mut table = Table::new(
        "Table 2: workloads and RSS in tiered memory (scaled 1 GB -> 256 pages)",
        &[
            "app",
            "workload",
            "class",
            "paper RSS",
            "scaled RSS (pages)",
        ],
    );
    let rows = [
        (
            memcached(),
            "In-memory KV engine, YCSB-style 90/10 GET/SET",
            "51 GB",
        ),
        (
            pagerank(),
            "PageRank scoring of a power-law web graph",
            "42 GB",
        ),
        (
            liblinear(),
            "Linear classification sweep (KDD12-like)",
            "69 GB",
        ),
    ];
    let mut json = Vec::new();
    for (spec, desc, paper_rss) in rows {
        table.row(&[
            spec.name.clone(),
            desc.into(),
            format!("{:?}", spec.class),
            paper_rss.into(),
            spec.rss_pages().to_string(),
        ]);
        json.push(vulcan_json::Value::Object(
            vulcan_json::Map::new()
                .with("app", &spec.name)
                .with("class", format!("{:?}", spec.class))
                .with("paper_rss", paper_rss)
                .with("scaled_pages", spec.rss_pages())
                .with("threads", spec.n_threads),
        ));
    }
    table.print();
    vulcan_bench::save_json_or_exit("table2", &json);
}
