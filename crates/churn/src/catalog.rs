//! The tenant catalog: a weighted mix of small LC/BE workload templates
//! the churn engine samples arrivals from.
//!
//! Templates reuse the existing `vulcan-workloads` generators at churn
//! scale — datacenter tenancy is hundreds of lifetimes per run, so each
//! tenant is a scaled-down instance (1–2 threads, a few hundred pages)
//! of the Table 2 access signatures rather than a full 8-thread app.
//! Every template preallocates its RSS into the slow tier: an admitted
//! tenant's footprint is physically real from its first quantum, which
//! keeps admission capacity checks and teardown frame-conservation
//! audits meaningful, and leaves promotion work for the policy.

use vulcan_sim::{Nanos, TierKind};
use vulcan_workloads::{
    KvConfig, MicroConfig, PrConfig, SweepConfig, WorkloadClass, WorkloadKind, WorkloadSpec,
};

/// One weighted tenant template.
#[derive(Clone, Debug)]
pub struct TenantTemplate {
    /// Template name; tenant instances are `"{name}-{id}"`.
    pub name: &'static str,
    /// Relative arrival weight (need not sum to 1).
    pub weight: f64,
    /// Ground-truth class of instances.
    pub class: WorkloadClass,
    /// Worker threads per instance.
    pub n_threads: usize,
    kind: fn() -> WorkloadKind,
}

impl TenantTemplate {
    /// Instantiate tenant number `id` from this template, arriving (and
    /// starting) at `start`.
    pub fn instantiate(&self, id: u64, start: Nanos) -> WorkloadSpec {
        WorkloadSpec {
            name: format!("{}-{id:04}", self.name),
            class: self.class,
            n_threads: self.n_threads,
            start,
            kind: (self.kind)(),
            prealloc: Some(TierKind::Slow),
            thp: false,
            stop: None, // departures are engine events, not spec fields
        }
    }

    /// RSS in pages of instances of this template.
    pub fn rss_pages(&self) -> u64 {
        // Template kinds are constant per template, so one throwaway
        // instantiation answers for all instances.
        match (self.kind)() {
            WorkloadKind::Kv(c) => c.rss_pages,
            WorkloadKind::PageRank(c) => c.rss_pages,
            WorkloadKind::Sweep(c) => c.rss_pages,
            WorkloadKind::Micro(c) => c.rss_pages,
            WorkloadKind::BufferPool(c) => c.rss_pages,
            WorkloadKind::Replay(t) => t.rss_pages,
        }
    }
}

/// The weighted template catalog.
#[derive(Clone, Debug)]
pub struct Catalog {
    templates: Vec<TenantTemplate>,
}

impl Catalog {
    /// The default datacenter mix: ~40% latency-critical serving, ~60%
    /// best-effort batch — the co-location ratio the paper's dilemma
    /// (§2.2) needs both sides of.
    pub fn default_mix() -> Catalog {
        Catalog {
            templates: vec![
                TenantTemplate {
                    name: "kv",
                    weight: 3.0,
                    class: WorkloadClass::LatencyCritical,
                    n_threads: 2,
                    kind: || {
                        WorkloadKind::Kv(KvConfig {
                            rss_pages: 384,
                            ..KvConfig::default()
                        })
                    },
                },
                TenantTemplate {
                    name: "cache",
                    weight: 1.0,
                    class: WorkloadClass::LatencyCritical,
                    n_threads: 1,
                    kind: || {
                        WorkloadKind::Micro(MicroConfig {
                            rss_pages: 192,
                            wss_pages: 48,
                            fixed_op: Nanos(2_000), // off-memory request handling
                            ..MicroConfig::default()
                        })
                    },
                },
                TenantTemplate {
                    name: "rank",
                    weight: 2.0,
                    class: WorkloadClass::BestEffort,
                    n_threads: 2,
                    kind: || {
                        WorkloadKind::PageRank(PrConfig {
                            rss_pages: 256,
                            n_threads: 2,
                            ..PrConfig::default()
                        })
                    },
                },
                TenantTemplate {
                    name: "train",
                    weight: 2.0,
                    class: WorkloadClass::BestEffort,
                    n_threads: 2,
                    kind: || {
                        WorkloadKind::Sweep(SweepConfig {
                            rss_pages: 320,
                            n_threads: 2,
                            ..SweepConfig::default()
                        })
                    },
                },
                TenantTemplate {
                    name: "zipf",
                    weight: 2.0,
                    class: WorkloadClass::BestEffort,
                    n_threads: 1,
                    kind: || {
                        WorkloadKind::Micro(MicroConfig {
                            rss_pages: 256,
                            wss_pages: 128,
                            ..MicroConfig::default()
                        })
                    },
                },
            ],
        }
    }

    /// The templates.
    pub fn templates(&self) -> &[TenantTemplate] {
        &self.templates
    }

    /// Largest template RSS — the capacity floor below which admission
    /// would reject every instance of that template.
    pub fn max_rss_pages(&self) -> u64 {
        self.templates
            .iter()
            .map(TenantTemplate::rss_pages)
            .max()
            .unwrap_or(0)
    }

    /// Pick a template from a uniform draw `u ∈ [0, 1)` by cumulative
    /// weight. Deterministic: same `u`, same template.
    pub fn pick(&self, u: f64) -> &TenantTemplate {
        assert!(!self.templates.is_empty(), "empty catalog");
        let total: f64 = self.templates.iter().map(|t| t.weight).sum();
        let mut target = u * total;
        for t in &self.templates {
            if target < t.weight {
                return t;
            }
            target -= t.weight;
        }
        // u ≈ 1 with accumulated rounding: the last template.
        &self.templates[self.templates.len() - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mix_has_both_classes_at_churn_scale() {
        let c = Catalog::default_mix();
        assert!(c.templates().len() >= 4);
        let lc = c
            .templates()
            .iter()
            .filter(|t| t.class == WorkloadClass::LatencyCritical)
            .count();
        assert!(lc >= 1 && lc < c.templates().len(), "mixed classes");
        for t in c.templates() {
            assert!(t.rss_pages() <= 512, "{} too big for churn", t.name);
            assert!(t.n_threads <= 2, "{} too wide for churn", t.name);
        }
    }

    #[test]
    fn instances_are_named_prealloc_slow_and_started_on_time() {
        let c = Catalog::default_mix();
        let spec = c.templates()[0].instantiate(17, Nanos::secs(3));
        assert_eq!(spec.name, "kv-0017");
        assert_eq!(spec.prealloc, Some(TierKind::Slow));
        assert_eq!(spec.start, Nanos::secs(3));
        assert_eq!(spec.stop, None);
        assert_eq!(spec.rss_pages(), c.templates()[0].rss_pages());
        // The spec builds a real generator.
        assert_eq!(spec.build().rss_pages(), spec.rss_pages());
    }

    #[test]
    fn pick_is_deterministic_and_covers_the_catalog() {
        let c = Catalog::default_mix();
        assert_eq!(c.pick(0.0).name, c.pick(0.0).name);
        // Sweeping u hits every template.
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..1000 {
            seen.insert(c.pick(i as f64 / 1000.0).name);
        }
        assert_eq!(seen.len(), c.templates().len());
        // Weights shape the mix: "kv" (weight 3/10) around 30%.
        let kv = (0..1000)
            .filter(|&i| c.pick(i as f64 / 1000.0).name == "kv")
            .count();
        assert!((250..=350).contains(&kv), "kv picked {kv}/1000");
    }

    #[test]
    fn pick_handles_the_upper_edge() {
        let c = Catalog::default_mix();
        let last = c.templates()[c.templates().len() - 1].name;
        assert_eq!(c.pick(0.999_999_999).name, last);
    }
}
