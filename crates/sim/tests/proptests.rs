//! Property-based tests for the machine substrate.

use proptest::prelude::*;
use vulcan_sim::{BandwidthTracker, EventQueue, FrameAllocator, MigrationCosts, Nanos, TierKind};

proptest! {
    /// The allocator hands out distinct frames, never more than capacity,
    /// and frees restore exactly the freed capacity — under arbitrary
    /// interleavings of allocs and frees.
    #[test]
    fn allocator_conservation(ops in proptest::collection::vec(any::<bool>(), 1..500)) {
        let capacity = 64u64;
        let mut a = FrameAllocator::new(TierKind::Fast, capacity);
        let mut live = Vec::new();
        for &alloc in &ops {
            if alloc {
                match a.alloc() {
                    Ok(f) => live.push(f),
                    Err(_) => prop_assert_eq!(live.len() as u64, capacity),
                }
            } else if let Some(f) = live.pop() {
                a.free(f);
            }
            prop_assert_eq!(a.used_frames(), live.len() as u64);
            prop_assert_eq!(a.free_frames() + a.used_frames(), capacity);
            let mut seen = std::collections::HashSet::new();
            for f in &live {
                prop_assert!(seen.insert(f.index), "duplicate live frame");
                prop_assert!(a.is_allocated(f.index));
            }
        }
    }

    /// Bandwidth inflation is ≥ 1, capped, and monotone in offered load.
    #[test]
    fn bandwidth_inflation_monotone(loads in proptest::collection::vec(0u64..10_000_000, 1..20)) {
        let mut sorted = loads.clone();
        sorted.sort();
        let mut last = 0.0;
        for &bytes in &sorted {
            let mut bw = BandwidthTracker::new(&[205.0, 25.0]);
            bw.record(TierKind::Slow, bytes);
            bw.end_quantum(Nanos(1_000));
            let f = bw.inflation(TierKind::Slow);
            prop_assert!((1.0..=vulcan_sim::bandwidth::MAX_INFLATION).contains(&f));
            prop_assert!(f >= last - 1e-12, "inflation must be monotone");
            last = f;
        }
    }

    /// Events always fire in timestamp order regardless of insertion order.
    #[test]
    fn event_queue_orders(times in proptest::collection::vec(0u64..1_000, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Nanos(t), i);
        }
        let fired = q.drain_due(Nanos(1_000));
        prop_assert_eq!(fired.len(), times.len());
        for w in fired.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "out of order");
        }
    }

    /// Migration cost curves are monotone in their scaling arguments.
    #[test]
    fn migration_costs_monotone(cpus in 2u16..64, pages in 1u64..2_048, targets in 1u16..64) {
        let m = MigrationCosts::default();
        prop_assert!(m.prep_baseline(cpus + 1) > m.prep_baseline(cpus));
        prop_assert!(m.shootdown_cold(targets + 1) > m.shootdown_cold(targets));
        prop_assert!(m.shootdown_batched(pages + 1, targets) > m.shootdown_batched(pages, targets));
        prop_assert!(m.shootdown_batched(pages, targets + 1) > m.shootdown_batched(pages, targets));
        prop_assert!(m.copy_batched(pages + 1) > m.copy_batched(pages));
        // The single-page breakdown's prep share grows with CPU count.
        let s1 = m.single_page_baseline(cpus).prep_share();
        let s2 = m.single_page_baseline(cpus + 1).prep_share();
        prop_assert!(s2 > s1);
    }

    /// Copy contention scaling preserves every non-copy constant.
    #[test]
    fn contention_scaling_is_isolated(f in 1.0f64..16.0, cpus in 2u16..33) {
        let base = MigrationCosts::default();
        let loaded = MigrationCosts::default().with_copy_contention(f);
        prop_assert_eq!(loaded.prep_baseline(cpus), base.prep_baseline(cpus));
        prop_assert_eq!(loaded.shootdown_cold(cpus), base.shootdown_cold(cpus));
        prop_assert!(loaded.copy_batched(8) >= base.copy_batched(8));
    }
}
