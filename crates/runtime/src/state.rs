//! Live simulation state: the machine plus one [`WorkloadState`] per
//! co-located application, with the migration helpers policies call.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use vulcan_migrate::{migrate_sync, AsyncMigrator, MechanismConfig, ShadowRegistry, SyncOutcome};
use vulcan_profile::{AnyProfiler, HeatMap};
use vulcan_sim::{Cycles, FrameId, Machine, Nanos, SimThreadId, TierKind};
use vulcan_telemetry::{EventKind, Telemetry};
use vulcan_vm::{Asid, Process, TlbArray, Vpn};
use vulcan_workloads::{AccessGen, WorkloadClass, WorkloadSpec};

/// Per-quantum and cumulative statistics of one workload.
#[derive(Clone, Debug, Default)]
pub struct WorkloadStats {
    /// Operations completed (cumulative).
    pub ops_total: u64,
    /// Operations completed this quantum.
    pub ops_q: u64,
    /// Sum of op latencies this quantum.
    pub op_latency_q: Nanos,
    /// Demand accesses hitting the fast tier this quantum (`a_fast`, eq 1).
    pub fast_q: u64,
    /// Demand accesses hitting the slow tier this quantum (`a_slow`, eq 1).
    pub slow_q: u64,
    /// Bytes read this quantum (for Figure 8 bandwidth).
    pub read_bytes_q: u64,
    /// Bytes written this quantum.
    pub write_bytes_q: u64,
    /// Simulated active time consumed this quantum (Σ over threads).
    pub active_q: Nanos,
    /// Time spent waiting on memory this quantum (Σ over threads).
    pub mem_time_q: Nanos,
    /// Fast-Tier Hit Ratio, EMA per equation 2 (α = 0.8).
    pub fthr: f64,
    /// Previous quantum's raw hit ratio (`H̄_{i,t-1}`).
    pub prev_h: f64,
    /// Hint faults taken (cumulative).
    pub hint_faults: u64,
    /// Major (allocation) faults taken (cumulative).
    pub major_faults: u64,
    /// Per-thread table replication faults taken (cumulative).
    pub replication_faults: u64,
    /// Cycles consumed by daemon-side work (profiling epochs, async
    /// commits) — not charged to the application.
    pub daemon_cycles: Cycles,
    /// Cycles of synchronous migration stall charged to the app
    /// (cumulative).
    pub stall_cycles: Cycles,
    /// Stall charged this quantum (cleared by [`roll_quantum`]); the
    /// per-quantum slice of `stall_cycles` surfaced in `QuantumOutcome`.
    ///
    /// [`roll_quantum`]: WorkloadStats::roll_quantum
    pub stall_q: Cycles,
    /// Pages this workload currently holds in the fast tier.
    pub fast_used: u64,
    /// Pages hint-faulted this quantum (consumed by TPP-style policies).
    pub hint_faulted_pages: Vec<(Vpn, bool)>,
    /// Pages whose async transactions aborted this quantum after
    /// exhausting dirty retries. Policies that care (Vulcan) escalate
    /// them to synchronous copies; others leave them in the slow tier.
    pub aborted_pages_q: Vec<Vpn>,
}

/// EMA weight of equation 2 (the paper sets α = 0.8).
pub const FTHR_ALPHA: f64 = 0.8;

impl WorkloadStats {
    /// Raw hit ratio of this quantum (`H̄_{i,t}`, equation 1).
    pub fn quantum_hit_ratio(&self) -> f64 {
        let total = self.fast_q + self.slow_q;
        if total == 0 {
            // No samples: carry the previous estimate forward.
            self.prev_h
        } else {
            self.fast_q as f64 / total as f64
        }
    }

    /// Roll the quantum: update the FTHR EMA (equation 2) and clear the
    /// per-quantum counters.
    pub fn roll_quantum(&mut self) {
        let h = self.quantum_hit_ratio();
        self.fthr = FTHR_ALPHA * h + (1.0 - FTHR_ALPHA) * self.prev_h;
        self.prev_h = h;
        self.ops_q = 0;
        self.op_latency_q = Nanos::ZERO;
        self.fast_q = 0;
        self.slow_q = 0;
        self.read_bytes_q = 0;
        self.write_bytes_q = 0;
        self.active_q = Nanos::ZERO;
        self.mem_time_q = Nanos::ZERO;
        self.stall_q = Cycles::ZERO;
        self.hint_faulted_pages.clear();
        self.aborted_pages_q.clear();
    }

    /// Mean op latency this quantum (ns), 0 when idle.
    pub fn mean_op_latency_q(&self) -> f64 {
        if self.ops_q == 0 {
            0.0
        } else {
            self.op_latency_q.as_f64() / self.ops_q as f64
        }
    }

    /// Throughput this quantum in ops per simulated active second.
    pub fn ops_per_sec_q(&self) -> f64 {
        if self.active_q.0 == 0 {
            0.0
        } else {
            self.ops_q as f64 / self.active_q.as_secs_f64()
        }
    }

    /// Memory-time share of active time (a duty-cycle signal the LC/BE
    /// classifier uses).
    pub fn memory_duty_q(&self) -> f64 {
        if self.active_q.0 == 0 {
            0.0
        } else {
            self.mem_time_q.as_f64() / self.active_q.as_f64()
        }
    }
}

impl vulcan_json::Snapshot for WorkloadStats {
    /// Every counter serializes, including the per-quantum ones: a
    /// checkpoint is taken at a quantum boundary where the page queues
    /// are drained, but the cumulative totals, the FTHR EMA pair
    /// (`fthr`, `prev_h`) and the carried byte counters all feed the
    /// next quantum's equations and reports.
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::{snap, Value};
        let hint_vpns: Vec<u64> = self.hint_faulted_pages.iter().map(|&(v, _)| v.0).collect();
        let hint_writes: Vec<Value> = self
            .hint_faulted_pages
            .iter()
            .map(|&(_, w)| Value::Bool(w))
            .collect();
        let aborted: Vec<u64> = self.aborted_pages_q.iter().map(|v| v.0).collect();
        snap::obj(vec![
            ("ops_total", snap::u64_value(self.ops_total)),
            ("ops_q", snap::u64_value(self.ops_q)),
            ("op_latency_q", snap::u64_value(self.op_latency_q.0)),
            ("fast_q", snap::u64_value(self.fast_q)),
            ("slow_q", snap::u64_value(self.slow_q)),
            ("read_bytes_q", snap::u64_value(self.read_bytes_q)),
            ("write_bytes_q", snap::u64_value(self.write_bytes_q)),
            ("active_q", snap::u64_value(self.active_q.0)),
            ("mem_time_q", snap::u64_value(self.mem_time_q.0)),
            ("fthr", snap::f64_value(self.fthr)),
            ("prev_h", snap::f64_value(self.prev_h)),
            ("hint_faults", snap::u64_value(self.hint_faults)),
            ("major_faults", snap::u64_value(self.major_faults)),
            (
                "replication_faults",
                snap::u64_value(self.replication_faults),
            ),
            ("daemon_cycles", snap::u64_value(self.daemon_cycles.0)),
            ("stall_cycles", snap::u64_value(self.stall_cycles.0)),
            ("stall_q", snap::u64_value(self.stall_q.0)),
            ("fast_used", snap::u64_value(self.fast_used)),
            ("hint_vpns", snap::u64_array(&hint_vpns)),
            ("hint_writes", Value::Array(hint_writes)),
            ("aborted_pages_q", snap::u64_array(&aborted)),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::{snap, Value};
        let hint_vpns = snap::array_u64(snap::field(v, "hint_vpns")?)?;
        let hint_writes = snap::field_array(v, "hint_writes")?;
        if hint_writes.len() != hint_vpns.len() {
            return Err("hint-fault arrays have mismatched lengths".to_string());
        }
        let hint_faulted_pages = hint_vpns
            .into_iter()
            .zip(hint_writes)
            .map(|(vpn, w)| match w {
                Value::Bool(b) => Ok((Vpn(vpn), *b)),
                other => Err(format!("hint write flag is not a bool: {other:?}")),
            })
            .collect::<Result<Vec<_>, String>>()?;
        let aborted_pages_q = snap::array_u64(snap::field(v, "aborted_pages_q")?)?
            .into_iter()
            .map(Vpn)
            .collect();
        Ok(WorkloadStats {
            ops_total: snap::field_u64(v, "ops_total")?,
            ops_q: snap::field_u64(v, "ops_q")?,
            op_latency_q: Nanos(snap::field_u64(v, "op_latency_q")?),
            fast_q: snap::field_u64(v, "fast_q")?,
            slow_q: snap::field_u64(v, "slow_q")?,
            read_bytes_q: snap::field_u64(v, "read_bytes_q")?,
            write_bytes_q: snap::field_u64(v, "write_bytes_q")?,
            active_q: Nanos(snap::field_u64(v, "active_q")?),
            mem_time_q: Nanos(snap::field_u64(v, "mem_time_q")?),
            fthr: snap::field_f64(v, "fthr")?,
            prev_h: snap::field_f64(v, "prev_h")?,
            hint_faults: snap::field_u64(v, "hint_faults")?,
            major_faults: snap::field_u64(v, "major_faults")?,
            replication_faults: snap::field_u64(v, "replication_faults")?,
            daemon_cycles: Cycles(snap::field_u64(v, "daemon_cycles")?),
            stall_cycles: Cycles(snap::field_u64(v, "stall_cycles")?),
            stall_q: Cycles(snap::field_u64(v, "stall_q")?),
            fast_used: snap::field_u64(v, "fast_used")?,
            hint_faulted_pages,
            aborted_pages_q,
        })
    }
}

/// One co-located workload's live state.
pub struct WorkloadState {
    /// The workload's specification.
    pub spec: WorkloadSpec,
    /// Its process (address space, threads).
    pub process: Process,
    /// Its profiler (the daemon decouples the choice per workload, §3.2).
    /// Held as [`AnyProfiler`] so the per-access path dispatches through
    /// an inlined `match` instead of a virtual call; policies that need a
    /// trait object use [`AnyProfiler::as_dyn_mut`].
    pub profiler: AnyProfiler,
    /// Shadow frames of its promoted pages.
    pub shadows: ShadowRegistry,
    /// Its dedicated asynchronous migration engine (§3.2: per-application
    /// migration threads).
    pub async_migrator: AsyncMigrator,
    /// Fast-tier quota in pages, if a policy partitions capacity.
    pub quota: Option<u64>,
    /// Mechanism used to commit this workload's async transactions
    /// (remembered from the last `poll_async`, so the runtime can drive
    /// in-flight copies to completion between quanta — real transactional
    /// migration completes within microseconds, not a whole quantum).
    pub async_mech: MechanismConfig,
    /// Statistics.
    pub stats: WorkloadStats,
    /// Whether the workload has started (staggered arrivals).
    pub started: bool,
    /// Whether the workload has terminated and released its memory.
    pub departed: bool,
    pub(crate) gen: Box<dyn AccessGen>,
    pub(crate) rngs: Vec<SmallRng>,
    /// Sync-migration stall to distribute over threads next quantum.
    pub(crate) pending_stall: Nanos,
}

impl WorkloadState {
    /// The workload's RSS in mapped pages.
    pub fn rss_pages(&self) -> u64 {
        self.process.space.rss_pages()
    }

    /// The workload's heat map.
    pub fn heat(&self) -> &HeatMap {
        self.profiler.heat()
    }

    /// Ground-truth class (evaluation only; Vulcan classifies itself).
    pub fn class(&self) -> WorkloadClass {
        self.spec.class
    }

    /// Effective fast-tier quota (unlimited when unset).
    pub fn effective_quota(&self) -> u64 {
        self.quota.unwrap_or(u64::MAX)
    }

    /// Serialize this workload's complete live state for checkpointing.
    /// The generator's *config* travels inside the spec; only its mutable
    /// cursor state is captured separately — restore rebuilds the
    /// generator from the spec and replays that state into it.
    pub fn checkpoint_value(&self) -> Result<vulcan_json::Value, String> {
        use vulcan_json::{snap, Snapshot as _, Value};
        let rngs: Vec<Value> = self
            .rngs
            .iter()
            .map(|r| snap::u64_array(&r.state()))
            .collect();
        Ok(snap::obj(vec![
            ("spec", self.spec.snapshot()),
            ("process", self.process.snapshot()),
            ("profiler", self.profiler.checkpoint_state()?),
            ("shadows", self.shadows.snapshot()),
            ("async_migrator", self.async_migrator.snapshot()),
            (
                "quota",
                match self.quota {
                    Some(q) => snap::u64_value(q),
                    None => Value::Null,
                },
            ),
            ("async_mech", self.async_mech.snapshot()),
            ("stats", self.stats.snapshot()),
            ("started", Value::Bool(self.started)),
            ("departed", Value::Bool(self.departed)),
            ("gen", self.gen.snapshot_state()),
            ("rngs", Value::Array(rngs)),
            ("pending_stall", snap::u64_value(self.pending_stall.0)),
        ]))
    }

    /// Rebuild a workload from [`checkpoint_value`](Self::checkpoint_value)
    /// output: the generator is constructed fresh from the restored spec,
    /// then its cursor state and per-thread RNG streams are replayed in.
    pub fn from_checkpoint(v: &vulcan_json::Value) -> Result<WorkloadState, String> {
        use rand::rngs::SmallRng;
        use vulcan_json::{snap, Snapshot as _, Value};
        let spec = WorkloadSpec::restore(snap::field(v, "spec")?)?;
        let mut gen = spec.build();
        gen.restore_state(snap::field(v, "gen")?)?;
        let mut rngs = Vec::new();
        for r in snap::field_array(v, "rngs")? {
            let words = snap::array_u64(r)?;
            let state: [u64; 4] = words
                .try_into()
                .map_err(|w: Vec<u64>| format!("rng state needs 4 words, got {}", w.len()))?;
            rngs.push(SmallRng::from_state(state));
        }
        if rngs.len() != spec.n_threads {
            return Err(format!(
                "workload {}: {} rng streams for {} threads",
                spec.name,
                rngs.len(),
                spec.n_threads
            ));
        }
        let quota = match snap::field(v, "quota")? {
            Value::Null => None,
            q => Some(snap::value_u64(q)?),
        };
        Ok(WorkloadState {
            process: vulcan_vm::Process::restore(snap::field(v, "process")?)?,
            profiler: AnyProfiler::from_checkpoint(snap::field(v, "profiler")?)?,
            shadows: ShadowRegistry::restore(snap::field(v, "shadows")?)?,
            async_migrator: AsyncMigrator::restore(snap::field(v, "async_migrator")?)?,
            quota,
            async_mech: MechanismConfig::restore(snap::field(v, "async_mech")?)?,
            stats: WorkloadStats::restore(snap::field(v, "stats")?)?,
            started: snap::field_bool(v, "started")?,
            departed: snap::field_bool(v, "departed")?,
            gen,
            rngs,
            pending_stall: Nanos(snap::field_u64(v, "pending_stall")?),
            spec,
        })
    }
}

/// Why a mid-run [`SystemState::spawn_workload`] was refused. The caller
/// (an admission controller, a test) decides whether to queue, reject or
/// retry; nothing in the existing state is modified on failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpawnError {
    /// Every 16-bit ASID is in use (workload slots are never reused).
    AsidExhausted,
    /// Preallocation could not find frames in either tier.
    OutOfMemory {
        /// Pages still unplaced when both tiers ran dry.
        missing_pages: u64,
    },
}

impl std::fmt::Display for SpawnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpawnError::AsidExhausted => write!(f, "no free ASID for new workload"),
            SpawnError::OutOfMemory { missing_pages } => {
                write!(f, "prealloc failed: {missing_pages} pages short of RSS")
            }
        }
    }
}

impl std::error::Error for SpawnError {}

/// Per-quantum migration tallies, drained by the runner into each
/// [`QuantumOutcome`](crate::runner::QuantumOutcome).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MigrationCounts {
    /// Pages moved into the fast tier by sync/background migration.
    pub promoted: u64,
    /// Pages moved into the slow tier by sync/background migration.
    pub demoted: u64,
    /// Pages committed by asynchronous (transactional) migration.
    pub async_committed: u64,
    /// Async transactions aborted after exhausting dirty retries.
    pub async_aborted: u64,
}

impl MigrationCounts {
    /// Whether any migration activity was recorded.
    pub fn any(&self) -> bool {
        *self != MigrationCounts::default()
    }
}

/// The complete mutable simulation state handed to policies each quantum.
pub struct SystemState {
    /// The simulated machine.
    pub machine: Machine,
    /// Per-core TLBs.
    pub tlbs: TlbArray,
    /// Co-located workloads.
    pub workloads: Vec<WorkloadState>,
    /// Current simulated instant (quantum-aligned).
    pub now: Nanos,
    /// Quantum counter.
    pub quantum_index: u64,
    /// Simulated active window per quantum (set by the runner; used to
    /// convert per-quantum rates into per-nanosecond rates).
    pub quantum_active: Nanos,
    /// Telemetry sink (disabled by default; the runner installs the
    /// configured handle). Recording never affects simulation results.
    pub telemetry: Telemetry,
    /// Migration tallies of the current quantum (the runner drains them
    /// into the quantum's [`QuantumOutcome`](crate::runner::QuantumOutcome)).
    pub migrations_q: MigrationCounts,
    // Spawn bookkeeping, carried past construction so workloads admitted
    // mid-run (the churn engine) follow the exact same thread-numbering,
    // core-rotation and RNG-seeding recipe as construction-time specs.
    pub(crate) replication: bool,
    pub(crate) base_seed: u64,
    pub(crate) next_sim_tid: u32,
    pub(crate) next_core: u16,
}

impl SystemState {
    /// Build the state: spawn processes and threads, pin each workload to
    /// its own dedicated core range (§5.3: 8 cores and 8 threads per app).
    // Allow-listed for the ISSUE 5 lint gate: construction-time spec
    // validation (ASID width, prealloc within capacity) fails fast by
    // design; fault injection is installed only after construction.
    #[allow(clippy::expect_used)]
    pub fn new(
        machine: Machine,
        specs: Vec<WorkloadSpec>,
        make_profiler: &mut dyn FnMut(&WorkloadSpec) -> AnyProfiler,
        replication: bool,
        seed: u64,
    ) -> SystemState {
        let mut machine = machine;
        let n_cores = machine.topology.n_cores();
        let tlbs = TlbArray::new(n_cores);
        let mut workloads = Vec::with_capacity(specs.len());
        let mut next_sim_tid = 0u32;
        let mut next_core = 0u16;
        for (i, spec) in specs.into_iter().enumerate() {
            let asid = u16::try_from(i + 1).expect("more workloads than TLB ASID tags");
            let mut process = Process::new(Asid(asid), replication);
            let mut sim_ids = Vec::new();
            for _ in 0..spec.n_threads {
                let sim_id = SimThreadId(next_sim_tid);
                next_sim_tid += 1;
                process.spawn_thread(sim_id);
                sim_ids.push(sim_id);
            }
            // Dedicated core range, wrapping if the socket runs out.
            let span = u16::try_from(spec.n_threads)
                .unwrap_or(u16::MAX)
                .min(n_cores);
            let lo = next_core % n_cores;
            let hi = (lo + span).min(n_cores);
            machine.topology.pin_range(&sim_ids, lo, hi);
            next_core = hi % n_cores;

            // Optional pre-allocation of the whole RSS into one tier
            // (the §5.2 microbenchmarks place data before accessing it).
            if let Some(tier) = spec.prealloc {
                for v in 0..spec.rss_pages() {
                    let frame = machine
                        .alloc_with_fallback(tier)
                        .expect("prealloc exceeds machine capacity");
                    process.space.map(Vpn(v), frame, vulcan_vm::LocalTid(0));
                }
            }

            let mut profiler = make_profiler(&spec);
            // Pre-size the flat heat table to the footprint so the access
            // path never pays an incremental resize.
            profiler.heat_mut().reserve(spec.rss_pages());
            let rngs = (0..spec.n_threads)
                .map(|t| SmallRng::seed_from_u64(seed ^ ((i as u64) << 32) ^ t as u64))
                .collect();
            let gen = spec.build();
            workloads.push(WorkloadState {
                process,
                profiler,
                shadows: ShadowRegistry::new(),
                async_migrator: AsyncMigrator::new(),
                quota: None,
                async_mech: MechanismConfig::linux_baseline(),
                stats: WorkloadStats::default(),
                started: spec.start == Nanos::ZERO,
                departed: false,
                gen,
                rngs,
                pending_stall: Nanos::ZERO,
                spec,
            });
        }
        SystemState {
            machine,
            tlbs,
            workloads,
            now: Nanos::ZERO,
            quantum_index: 0,
            quantum_active: Nanos::millis(2),
            telemetry: Telemetry::disabled(),
            migrations_q: MigrationCounts::default(),
            replication,
            base_seed: seed,
            next_sim_tid,
            next_core,
        }
    }

    /// Admit a new workload mid-run (open-loop churn). Follows the exact
    /// construction recipe — next ASID, sequential sim-thread IDs, the
    /// rotating core range, per-thread RNG seeds derived from the run
    /// seed and the workload's slot index — so a tenant admitted at
    /// quantum *q* is indistinguishable from one constructed with
    /// `start = q`'s instant. Returns the new workload's slot index.
    ///
    /// Preallocation (when `spec.prealloc` is set) is performed *before*
    /// any other state mutates and is never subject to fault injection,
    /// matching construction-time placement; on failure every frame
    /// taken so far is returned and the state is untouched.
    ///
    /// The workload starts immediately if `spec.start <= now`; otherwise
    /// the runner's staggered-arrival path starts it on time.
    pub fn spawn_workload(
        &mut self,
        spec: WorkloadSpec,
        profiler: AnyProfiler,
    ) -> Result<usize, SpawnError> {
        let i = self.workloads.len();
        let Ok(asid) = u16::try_from(i + 1) else {
            return Err(SpawnError::AsidExhausted);
        };

        // Phase 1 (fallible): place the RSS. Collect frames first so a
        // mid-prealloc exhaustion unwinds cleanly.
        let mut prealloc_frames: Vec<FrameId> = Vec::new();
        if let Some(tier) = spec.prealloc {
            let rss = spec.rss_pages();
            for done in 0..rss {
                match self.machine.alloc_with_fallback_uninjected(tier) {
                    Ok(f) => prealloc_frames.push(f),
                    Err(_) => {
                        for f in prealloc_frames {
                            self.machine.free(f);
                        }
                        return Err(SpawnError::OutOfMemory {
                            missing_pages: rss - done,
                        });
                    }
                }
            }
        }

        // Phase 2 (infallible): threads, cores, page tables, profiler.
        let mut process = Process::new(Asid(asid), self.replication);
        let mut sim_ids = Vec::new();
        for _ in 0..spec.n_threads {
            let sim_id = SimThreadId(self.next_sim_tid);
            self.next_sim_tid += 1;
            process.spawn_thread(sim_id);
            sim_ids.push(sim_id);
        }
        let n_cores = self.machine.topology.n_cores();
        let span = u16::try_from(spec.n_threads)
            .unwrap_or(u16::MAX)
            .min(n_cores);
        let lo = self.next_core % n_cores;
        let hi = (lo + span).min(n_cores);
        self.machine.topology.pin_range(&sim_ids, lo, hi);
        self.next_core = hi % n_cores;

        for (v, frame) in prealloc_frames.into_iter().enumerate() {
            process
                .space
                .map(Vpn(v as u64), frame, vulcan_vm::LocalTid(0));
        }

        let mut profiler = profiler;
        profiler.heat_mut().reserve(spec.rss_pages());
        let rngs = (0..spec.n_threads)
            .map(|t| SmallRng::seed_from_u64(self.base_seed ^ ((i as u64) << 32) ^ t as u64))
            .collect();
        let gen = spec.build();
        let started = spec.start <= self.now;
        if started {
            self.telemetry.emit(
                self.now,
                Some(&spec.name),
                EventKind::WorkloadArrival {
                    rss_pages: spec.rss_pages(),
                },
            );
        }
        self.workloads.push(WorkloadState {
            process,
            profiler,
            shadows: ShadowRegistry::new(),
            async_migrator: AsyncMigrator::new(),
            quota: None,
            async_mech: MechanismConfig::linux_baseline(),
            stats: WorkloadStats::default(),
            started,
            departed: false,
            gen,
            rngs,
            pending_stall: Nanos::ZERO,
            spec,
        });
        self.recount_fast(i);
        Ok(i)
    }

    /// Number of workloads.
    pub fn n_workloads(&self) -> usize {
        self.workloads.len()
    }

    /// Free pages in the fast tier.
    pub fn fast_free(&self) -> u64 {
        self.machine.free_pages(TierKind::Fast)
    }

    /// Total fast-tier capacity in pages.
    pub fn fast_capacity(&self) -> u64 {
        self.machine.allocator(TierKind::Fast).capacity()
    }

    /// Synchronously migrate pages of workload `w` to `dest`. The phase
    /// cost stalls the workload's threads (charged next quantum), modeling
    /// on-critical-path migration.
    pub fn migrate_sync(
        &mut self,
        w: usize,
        pages: &[Vpn],
        dest: TierKind,
        cfg: &MechanismConfig,
    ) -> SyncOutcome {
        let ws = &mut self.workloads[w];
        let out = migrate_sync(
            &mut ws.process,
            &mut self.machine,
            &mut self.tlbs,
            &mut ws.shadows,
            pages,
            dest,
            cfg,
        );
        let stall = out.total_cycles();
        ws.stats.stall_cycles += stall;
        ws.stats.stall_q += stall;
        ws.pending_stall += stall.to_nanos();
        self.tally_migration(dest, out.moved.len() as u64);
        self.record_migration(w, dest, &out, true);
        self.charge_global_prep(w, cfg);
        self.recount_fast(w);
        out
    }

    /// Tally moved pages into the per-quantum migration counters
    /// surfaced by [`QuantumOutcome`](crate::QuantumOutcome).
    fn tally_migration(&mut self, dest: TierKind, pages: u64) {
        if pages == 0 {
            return;
        }
        // Counters are chain-top-relative: moves into the fast tier are
        // promotions, moves into any lower tier count as demotions.
        if dest == TierKind::Fast {
            self.migrations_q.promoted += pages;
        } else {
            self.migrations_q.demoted += pages;
        }
    }

    /// Record a batch migration's events and per-phase spans. Purely
    /// observational; no-op when telemetry is disabled.
    fn record_migration(
        &self,
        w: usize,
        dest: TierKind,
        out: &SyncOutcome,
        on_critical_path: bool,
    ) {
        if !self.telemetry.is_enabled() {
            return;
        }
        // Shootdown ack-timeout retries (fault injection): histogram of
        // retry rounds per batch, recorded even when every page failed.
        if out.sd_retries > 0 {
            self.telemetry
                .histogram("migrate.shootdown_retries", &[1, 2, 3, 4, 6, 8])
                .record(out.sd_retries as u64);
        }
        if out.moved.is_empty() {
            return;
        }
        let name = &self.workloads[w].spec.name;
        let kind = if dest == TierKind::Fast {
            EventKind::PagesPromoted {
                pages: out.moved.len() as u64,
                sync: on_critical_path,
            }
        } else {
            EventKind::PagesDemoted {
                pages: out.moved.len() as u64,
                remap_only: out.remap_only,
            }
        };
        self.telemetry.emit(self.now, Some(name), kind);
        for (phase, cycles) in [
            ("migrate.prep", out.phases.prep),
            ("migrate.trap", out.phases.trap),
            ("migrate.unmap", out.phases.unmap),
            ("migrate.shootdown", out.phases.shootdown),
            ("migrate.copy", out.phases.copy),
            ("migrate.remap", out.phases.remap),
        ] {
            if cycles > Cycles::ZERO {
                self.telemetry.record_phase(name, phase, cycles);
            }
        }
    }

    /// Global migration preparation (`lru_add_drain_all`) interrupts
    /// *every* core: co-located workloads pay the per-CPU drain handler
    /// even though they did not migrate anything — the cross-workload
    /// disturbance Vulcan's per-workload preparation eliminates (§3.2).
    fn charge_global_prep(&mut self, initiator: usize, cfg: &MechanismConfig) {
        if cfg.prep != vulcan_migrate::PrepStrategy::BaselineGlobal {
            return;
        }
        let per_cpu = self.machine.spec().migration_costs.prep_per_cpu.to_nanos();
        for (i, ws) in self.workloads.iter_mut().enumerate() {
            if i == initiator || !ws.started {
                continue;
            }
            // One drain handler per core running this workload's threads.
            ws.pending_stall += per_cpu * ws.spec.n_threads as u64;
            let charge =
                self.machine.spec().migration_costs.prep_per_cpu * ws.spec.n_threads as u64;
            ws.stats.stall_cycles += charge;
            ws.stats.stall_q += charge;
        }
    }

    /// Migrate pages of workload `w` off the critical path: same
    /// five-phase mechanism, but the cost is charged to the daemon (e.g.
    /// kswapd-style demotion, Memtis's background kmigrated) instead of
    /// stalling the application.
    pub fn migrate_background(
        &mut self,
        w: usize,
        pages: &[Vpn],
        dest: TierKind,
        cfg: &MechanismConfig,
    ) -> SyncOutcome {
        let ws = &mut self.workloads[w];
        let out = migrate_sync(
            &mut ws.process,
            &mut self.machine,
            &mut self.tlbs,
            &mut ws.shadows,
            pages,
            dest,
            cfg,
        );
        ws.stats.daemon_cycles += out.total_cycles();
        self.tally_migration(dest, out.moved.len() as u64);
        self.record_migration(w, dest, &out, false);
        self.charge_global_prep(w, cfg);
        self.recount_fast(w);
        out
    }

    /// Start asynchronous (transactional) migrations for workload `w`.
    pub fn migrate_async(&mut self, w: usize, pages: &[Vpn], dest: TierKind) -> usize {
        let ws = &mut self.workloads[w];
        let started = ws.async_migrator.start(
            &mut ws.process,
            &mut self.machine,
            &mut self.tlbs,
            pages,
            dest,
            self.now,
        );
        if started > 0 {
            self.telemetry.emit(
                self.now,
                Some(&self.workloads[w].spec.name),
                EventKind::AsyncStarted {
                    pages: started as u64,
                },
            );
        }
        started
    }

    /// Drive workload `w`'s in-flight async transactions; commits are
    /// charged to the daemon, not the application.
    ///
    /// The dirty-retry decision uses each page's observed write rate to
    /// estimate the probability a write landed inside one copy window
    /// (see [`vulcan_migrate::AsyncMigrator`]).
    pub fn poll_async(&mut self, w: usize, cfg: &MechanismConfig) {
        self.workloads[w].async_mech = *cfg;
        // The copy window stretches with memory-bandwidth contention: a
        // loaded copy takes longer, so more writes land inside it — the
        // write-intensive pathology of Observation #4.
        let contention = self
            .machine
            .bandwidth
            .inflation(TierKind::Fast)
            .max(self.machine.bandwidth.inflation(TierKind::Slow));
        let window_ns = self
            .machine
            .spec()
            .migration_costs
            .copy_single
            .to_nanos()
            .as_f64()
            * contention;
        let active_ns = self.quantum_active.as_f64().max(1.0);
        let retried_before = self.workloads[w].async_migrator.stats.retried;
        let ws = &mut self.workloads[w];
        let WorkloadState {
            process,
            profiler,
            shadows,
            async_migrator,
            stats,
            ..
        } = ws;
        let heat = profiler.heat();
        let mut dirty_prob = |vpn: vulcan_vm::Vpn| -> f64 {
            // Decayed sampled writes approximate writes per quantum
            // (steady state: w_q / (1 - decay)); scale to the window.
            let writes_per_quantum = heat.get(vpn).writes * (1.0 - vulcan_profile::DEFAULT_DECAY);
            (writes_per_quantum * window_ns / active_ns).min(1.0)
        };
        let poll = async_migrator.poll(
            process,
            &mut self.machine,
            &mut self.tlbs,
            shadows,
            self.now,
            cfg,
            &mut dirty_prob,
        );
        stats.daemon_cycles += poll.background;
        stats.aborted_pages_q.extend_from_slice(&poll.aborted);
        self.migrations_q.async_committed += poll.committed.len() as u64;
        self.migrations_q.async_aborted += poll.aborted.len() as u64;
        if !poll.committed.is_empty() || !poll.aborted.is_empty() {
            self.recount_fast(w);
        }
        if self.telemetry.is_enabled() {
            let ws = &self.workloads[w];
            let name = &ws.spec.name;
            let retried = ws.async_migrator.stats.retried - retried_before;
            if retried > 0 {
                self.telemetry.emit(
                    self.now,
                    Some(name),
                    EventKind::AsyncRetried { pages: retried },
                );
            }
            if !poll.committed.is_empty() {
                self.telemetry.emit(
                    self.now,
                    Some(name),
                    EventKind::AsyncCommitted {
                        pages: poll.committed.len() as u64,
                    },
                );
            }
            if !poll.aborted.is_empty() {
                self.telemetry.emit(
                    self.now,
                    Some(name),
                    EventKind::AsyncAborted {
                        pages: poll.aborted.len() as u64,
                    },
                );
            }
        }
    }

    /// Recount workload `w`'s fast-tier pages (authoritative).
    pub fn recount_fast(&mut self, w: usize) {
        let ws = &mut self.workloads[w];
        let count = ws
            .process
            .space
            .mapped_vpns()
            .filter(|&v| ws.process.space.pte(v).tier() == Some(TierKind::Fast))
            .count() as u64;
        ws.stats.fast_used = count;
    }

    /// Set workload `w`'s fast-tier quota in pages.
    pub fn set_quota(&mut self, w: usize, pages: u64) {
        if self.workloads[w].quota != Some(pages) {
            self.telemetry.emit(
                self.now,
                Some(&self.workloads[w].spec.name),
                EventKind::QuotaChanged { fast_pages: pages },
            );
        }
        self.workloads[w].quota = Some(pages);
    }

    /// Tear down workload `w`: abort in-flight transactions, unmap and
    /// free every page and shadow, flush its TLB entries on every core.
    /// Idempotent; called by the runner when a workload departs.
    // Allow-listed for the ISSUE 5 lint gate: the expects guard the
    // page-table invariant that a VPN listed as mapped has a frame —
    // teardown must free every frame or conservation is violated.
    #[allow(clippy::expect_used)]
    pub fn teardown(&mut self, w: usize) {
        let ws = &mut self.workloads[w];
        if ws.departed {
            return;
        }
        ws.started = false;
        ws.departed = true;
        self.telemetry.emit(
            self.now,
            Some(&self.workloads[w].spec.name),
            EventKind::WorkloadDeparture,
        );
        let ws = &mut self.workloads[w];
        ws.async_migrator.abort_all(&mut self.machine);
        let vpns: Vec<Vpn> = ws.process.space.mapped_vpns().collect();
        for vpn in vpns {
            let pte = ws.process.space.unmap(vpn).expect("listed as mapped");
            self.machine
                .free(pte.frame().expect("mapped page has a frame"));
        }
        for f in ws.shadows.evict(usize::MAX) {
            self.machine.free(f);
        }
        let asid = ws.process.asid;
        let n_cores = u16::try_from(self.tlbs.len()).expect("one TLB per core, cores are u16");
        for c in 0..n_cores {
            self.tlbs.core(vulcan_sim::CoreId(c)).flush_asid(asid);
        }
        ws.stats.fast_used = 0;
    }

    /// Reclaim shadow frames of workload `w` when the slow tier is under
    /// pressure, freeing up to `n` frames.
    pub fn reclaim_shadows(&mut self, w: usize, n: usize) -> usize {
        let ws = &mut self.workloads[w];
        let evicted = ws.shadows.evict(n);
        let count = evicted.len();
        for f in evicted {
            self.machine.free(f);
        }
        count
    }

    /// Serialize the complete system state at a quantum boundary.
    /// Telemetry is deliberately NOT serialized: recording never affects
    /// simulation results, and a restored state always starts with a
    /// disabled sink (the runner re-installs the configured handle).
    pub fn checkpoint_value(&self) -> Result<vulcan_json::Value, String> {
        use vulcan_json::{snap, Snapshot as _, Value};
        let workloads = self
            .workloads
            .iter()
            .map(WorkloadState::checkpoint_value)
            .collect::<Result<Vec<_>, String>>()?;
        Ok(snap::obj(vec![
            ("machine", self.machine.snapshot()),
            ("tlbs", self.tlbs.snapshot()),
            ("workloads", Value::Array(workloads)),
            ("now", snap::u64_value(self.now.0)),
            ("quantum_index", snap::u64_value(self.quantum_index)),
            ("quantum_active", snap::u64_value(self.quantum_active.0)),
            ("migrations_q", self.migrations_q.snapshot()),
            ("replication", Value::Bool(self.replication)),
            ("base_seed", snap::u64_value(self.base_seed)),
            (
                "next_sim_tid",
                snap::u64_value(u64::from(self.next_sim_tid)),
            ),
            ("next_core", snap::u64_value(u64::from(self.next_core))),
        ]))
    }

    /// Rebuild a system state from [`checkpoint_value`](Self::checkpoint_value)
    /// output. The spawn bookkeeping (`base_seed`, `next_sim_tid`,
    /// `next_core`) round-trips so a tenant admitted after the restore
    /// follows the exact same recipe as in the original run.
    pub fn from_checkpoint(v: &vulcan_json::Value) -> Result<SystemState, String> {
        use vulcan_json::{snap, Snapshot as _};
        let workloads = snap::field_array(v, "workloads")?
            .iter()
            .map(WorkloadState::from_checkpoint)
            .collect::<Result<Vec<_>, String>>()?;
        Ok(SystemState {
            machine: Machine::restore(snap::field(v, "machine")?)?,
            tlbs: TlbArray::restore(snap::field(v, "tlbs")?)?,
            workloads,
            now: Nanos(snap::field_u64(v, "now")?),
            quantum_index: snap::field_u64(v, "quantum_index")?,
            quantum_active: Nanos(snap::field_u64(v, "quantum_active")?),
            telemetry: Telemetry::disabled(),
            migrations_q: MigrationCounts::restore(snap::field(v, "migrations_q")?)?,
            replication: snap::field_bool(v, "replication")?,
            base_seed: snap::field_u64(v, "base_seed")?,
            next_sim_tid: u32::try_from(snap::field_u64(v, "next_sim_tid")?)
                .map_err(|_| "next_sim_tid out of range".to_string())?,
            next_core: u16::try_from(snap::field_u64(v, "next_core")?)
                .map_err(|_| "next_core out of range".to_string())?,
        })
    }
}

impl vulcan_json::Snapshot for MigrationCounts {
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::snap;
        snap::obj(vec![
            ("promoted", snap::u64_value(self.promoted)),
            ("demoted", snap::u64_value(self.demoted)),
            ("async_committed", snap::u64_value(self.async_committed)),
            ("async_aborted", snap::u64_value(self.async_aborted)),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        Ok(MigrationCounts {
            promoted: snap::field_u64(v, "promoted")?,
            demoted: snap::field_u64(v, "demoted")?,
            async_committed: snap::field_u64(v, "async_committed")?,
            async_aborted: snap::field_u64(v, "async_aborted")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulcan_profile::PebsProfiler;
    use vulcan_sim::MachineSpec;
    use vulcan_workloads::{microbench, MicroConfig};

    fn mk_state(n_workloads: usize) -> SystemState {
        let specs: Vec<WorkloadSpec> = (0..n_workloads)
            .map(|i| {
                microbench(
                    &format!("w{i}"),
                    MicroConfig {
                        rss_pages: 128,
                        wss_pages: 64,
                        ..Default::default()
                    },
                    2,
                )
            })
            .collect();
        SystemState::new(
            Machine::new(MachineSpec::small(256, 1024, 8)),
            specs,
            &mut |_| PebsProfiler::new(4).into(),
            true,
            42,
        )
    }

    #[test]
    fn construction_pins_threads_to_disjoint_cores() {
        let st = mk_state(2);
        assert_eq!(st.n_workloads(), 2);
        let c0 = st
            .machine
            .topology
            .cores_of(st.workloads[0].process.sim_threads().iter().copied());
        let c1 = st
            .machine
            .topology
            .cores_of(st.workloads[1].process.sim_threads().iter().copied());
        assert!(c0.is_disjoint(&c1), "dedicated core sets per app");
    }

    #[test]
    fn distinct_asids() {
        let st = mk_state(3);
        let asids: std::collections::BTreeSet<u16> =
            st.workloads.iter().map(|w| w.process.asid.0).collect();
        assert_eq!(asids.len(), 3);
    }

    #[test]
    fn fthr_ema_follows_equation_two() {
        let mut s = WorkloadStats {
            fast_q: 80,
            slow_q: 20,
            ..Default::default()
        };
        s.roll_quantum();
        // H̄_1 = 0.8; prev was 0: FTHR = 0.8·0.8 + 0.2·0 = 0.64.
        assert!((s.fthr - 0.64).abs() < 1e-12);
        s.fast_q = 80;
        s.slow_q = 20;
        s.roll_quantum();
        // FTHR = 0.8·0.8 + 0.2·0.8 = 0.8.
        assert!((s.fthr - 0.8).abs() < 1e-12);
    }

    #[test]
    fn idle_quantum_carries_hit_ratio_forward() {
        let mut s = WorkloadStats {
            fast_q: 100,
            ..Default::default()
        };
        s.roll_quantum();
        let f1 = s.fthr;
        s.roll_quantum(); // no accesses
        assert!((s.quantum_hit_ratio() - 1.0).abs() < 1e-12);
        assert!(s.fthr >= f1);
    }

    #[test]
    fn quantum_rates() {
        let s = WorkloadStats {
            ops_q: 100,
            active_q: Nanos::millis(1),
            op_latency_q: Nanos(500_000),
            mem_time_q: Nanos(250_000),
            ..Default::default()
        };
        assert!((s.ops_per_sec_q() - 100_000.0).abs() < 1e-6);
        assert!((s.mean_op_latency_q() - 5_000.0).abs() < 1e-9);
        assert!((s.memory_duty_q() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn effective_quota_defaults_to_unlimited() {
        let mut st = mk_state(1);
        assert_eq!(st.workloads[0].effective_quota(), u64::MAX);
        st.set_quota(0, 64);
        assert_eq!(st.workloads[0].effective_quota(), 64);
    }

    #[test]
    fn recount_fast_matches_tables() {
        use vulcan_vm::LocalTid;
        let mut st = mk_state(1);
        // Map two pages in fast, one in slow.
        for (i, tier) in [TierKind::Fast, TierKind::Fast, TierKind::Slow]
            .iter()
            .enumerate()
        {
            let f = st.machine.alloc(*tier).unwrap();
            st.workloads[0]
                .process
                .space
                .map(Vpn(i as u64), f, LocalTid(0));
        }
        st.recount_fast(0);
        assert_eq!(st.workloads[0].stats.fast_used, 2);
    }

    #[test]
    fn sync_migration_charges_stall() {
        use vulcan_vm::LocalTid;
        let mut st = mk_state(1);
        let f = st.machine.alloc(TierKind::Slow).unwrap();
        st.workloads[0].process.space.map(Vpn(0), f, LocalTid(0));
        st.workloads[0]
            .process
            .space
            .touch(Vpn(0), LocalTid(0), false)
            .unwrap();
        let cfg = MechanismConfig::vulcan();
        let out = st.migrate_sync(0, &[Vpn(0)], TierKind::Fast, &cfg);
        assert_eq!(out.moved.len(), 1);
        assert!(st.workloads[0].pending_stall > Nanos::ZERO);
        assert!(st.workloads[0].stats.stall_cycles > Cycles::ZERO);
        assert_eq!(st.workloads[0].stats.fast_used, 1);
    }
}
