//! Migration engines: synchronous and asynchronous (transactional).
//!
//! * [`migrate_sync`] blocks the caller for the full five-phase mechanism
//!   — the behaviour of TPP's promotion path (§2.1). The returned phase
//!   costs are charged to the accessing threads by the runtime.
//! * [`AsyncMigrator`] implements transactional asynchronous migration in
//!   the style of Nomad (§2.1): the copy proceeds in the background while
//!   the application keeps accessing the source page; if the page is
//!   dirtied during the copy window the transaction retries, and after
//!   `max_async_retries` failures it aborts (Observation #4's
//!   write-intensive pathology).

use crate::error::MigrateError;
use crate::phases::{batch_phases_without_shootdown, PhaseCycles, PrepStrategy};
use crate::shadow::ShadowRegistry;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vulcan_sim::{Cycles, FaultSite, FrameId, Machine, Nanos, TierKind};
use vulcan_vm::{shootdown, Process, ShootdownMode, ShootdownScope, TlbArray, Vpn};

/// Configuration of the migration mechanism.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MechanismConfig {
    /// Preparation strategy (global drain vs per-workload).
    pub prep: PrepStrategy,
    /// Shootdown target selection (process-wide vs ownership-targeted).
    pub scope: ShootdownScope,
    /// Shootdown cost regime.
    pub sd_mode: ShootdownMode,
    /// Retain slow-tier shadows of promoted pages (Nomad-style).
    pub shadowing: bool,
    /// Dirty-retry budget for asynchronous transactions.
    pub max_async_retries: u32,
}

impl MechanismConfig {
    /// The Linux/TPP baseline mechanism: global preparation, process-wide
    /// shootdowns, no shadowing.
    pub fn linux_baseline() -> Self {
        MechanismConfig {
            prep: PrepStrategy::BaselineGlobal,
            scope: ShootdownScope::ProcessWide,
            sd_mode: ShootdownMode::Batched,
            shadowing: false,
            max_async_retries: 3,
        }
    }

    /// Vulcan's mechanism: per-workload preparation, ownership-targeted
    /// shootdowns, shadowing enabled (§3.2, §3.4, §3.5).
    pub fn vulcan() -> Self {
        MechanismConfig {
            prep: PrepStrategy::Optimized,
            scope: ShootdownScope::Targeted,
            sd_mode: ShootdownMode::Batched,
            shadowing: true,
            max_async_retries: 3,
        }
    }
}

/// Result of a synchronous batch migration.
#[derive(Clone, Debug, Default)]
pub struct SyncOutcome {
    /// Pages successfully moved to the destination tier.
    pub moved: Vec<Vpn>,
    /// Pages skipped up front (unmapped or already in the destination).
    pub skipped: Vec<Vpn>,
    /// Pages that failed mid-batch with a typed error; their mappings
    /// were restored (unless the error says otherwise) and no frame
    /// leaked. Transient failures are requeue candidates.
    pub failed: Vec<(Vpn, MigrateError)>,
    /// Demotions served by a shadow remap (no copy performed).
    pub remap_only: u64,
    /// Ack-timeout retries the batch shootdown performed (fault
    /// injection; 0 on a clean run).
    pub sd_retries: u32,
    /// Whether the shootdown exhausted its retry budget and escalated
    /// to a final full re-broadcast.
    pub sd_escalated: bool,
    /// Cycle cost by phase, charged to the caller.
    pub phases: PhaseCycles,
}

impl SyncOutcome {
    /// Total cycles of the batch.
    pub fn total_cycles(&self) -> Cycles {
        self.phases.total()
    }

    /// Pages that failed transiently and are worth requeueing.
    pub fn transient_failures(&self) -> impl Iterator<Item = Vpn> + '_ {
        self.failed
            .iter()
            .filter(|(_, e)| e.is_transient())
            .map(|&(v, _)| v)
    }
}

/// Synchronously migrate `pages` of `process` to `dest`.
///
/// Huge-page-backed pages are split before migration (§3.5: Vulcan splits
/// THPs into base pages on promotion, following Memtis).
pub fn migrate_sync(
    process: &mut Process,
    machine: &mut Machine,
    tlbs: &mut TlbArray,
    shadows: &mut ShadowRegistry,
    pages: &[Vpn],
    dest: TierKind,
    cfg: &MechanismConfig,
) -> SyncOutcome {
    let mut out = SyncOutcome::default();

    let mut seen = std::collections::HashSet::new();
    let eligible: Vec<Vpn> = pages
        .iter()
        .copied()
        .filter(|&vpn| {
            if !seen.insert(vpn.0) {
                return false; // duplicate within the batch
            }
            let pte = process.space.pte(vpn);
            let ok = pte.present() && pte.tier() != Some(dest);
            if !ok {
                out.skipped.push(vpn);
            }
            ok
        })
        .collect();
    if eligible.is_empty() {
        return out;
    }

    split_and_flush_huge(process, machine, tlbs, &eligible);

    // Shootdown must be planned before unmapping: targeting reads the
    // ownership bits of the live PTEs.
    let plan = shootdown::plan(process, &machine.topology, &eligible, cfg.scope);
    let costs = machine.spec().migration_costs.clone();
    let sd = shootdown::execute_faulty(
        &plan,
        process,
        tlbs,
        &costs,
        cfg.sd_mode,
        &mut machine.faults,
    );
    let sd_cost = sd.cycles;
    out.sd_retries = sd.retries;
    out.sd_escalated = sd.escalated;

    let mut copied = 0u64;
    for &vpn in &eligible {
        // Eligibility was checked above, but it can be invalidated
        // between check and unmap (e.g. a racing teardown): degrade to a
        // typed error instead of panicking.
        let Some(old) = process.space.unmap(vpn) else {
            out.failed.push((vpn, MigrateError::Unmapped(vpn)));
            continue;
        };
        let Some(old_frame) = old.frame() else {
            process.space.set_pte(vpn, old);
            out.failed.push((vpn, MigrateError::NoFrame(vpn)));
            continue;
        };

        // Shadow fast path: demoting a clean page whose shadow lives in
        // exactly the destination tier is a pure remap. (On a two-tier
        // chain every shadow is a slow frame, so this degenerates to the
        // classic `dest == Slow` gate.)
        if cfg.shadowing && !old.dirty() && shadows.get(vpn).map(|f| f.tier) == Some(dest) {
            if let Some(shadow_frame) = shadows.take(vpn) {
                machine.free(old_frame);
                process.space.set_pte(vpn, old.with_frame(shadow_frame));
                out.remap_only += 1;
                out.moved.push(vpn);
                continue;
            }
        }

        let Ok(new_frame) = machine.alloc(dest) else {
            // Destination full (genuine or injected): restore the
            // original mapping and report a transient error.
            process.space.set_pte(vpn, old);
            if machine.last_alloc_injected() {
                machine.faults.note_recovery(FaultSite::alloc_for(dest));
            }
            out.failed.push((vpn, MigrateError::DestFull { vpn, dest }));
            continue;
        };

        if machine.faults.copy_fails() {
            // The copy itself failed: release the destination frame,
            // restore the source mapping — never leak a frame.
            machine.free(new_frame);
            process.space.set_pte(vpn, old);
            machine.faults.note_recovery(FaultSite::CopyFail);
            out.failed.push((vpn, MigrateError::CopyFailed(vpn)));
            continue;
        }

        machine.record_page_copy(old_frame.tier, dest);
        copied += 1;

        if cfg.shadowing && dest.index() < old_frame.tier.index() {
            // Promotion up the chain: keep the lower-tier frame as a
            // shadow of the promoted page.
            if let Some(stale) = shadows.retain(vpn, old_frame) {
                machine.free(stale);
            }
        } else {
            if cfg.shadowing {
                // Demotion with copy: any retained shadow is now stale.
                if let Some(stale) = shadows.invalidate(vpn) {
                    machine.free(stale);
                }
            }
            machine.free(old_frame);
        }

        // Content is in sync after the copy: clear the dirty bit so the
        // shadow stays valid until the next write.
        process
            .space
            .set_pte(vpn, old.with_frame(new_frame).clear_dirty());
        out.moved.push(vpn);
    }

    let mut phases =
        batch_phases_without_shootdown(&costs, cfg.prep, machine.topology.n_cores(), copied);
    // Unmap/remap were attempted for every eligible page (restores included).
    phases.unmap = Cycles(costs.unmap.0 * eligible.len() as u64);
    phases.remap = Cycles(costs.remap.0 * eligible.len() as u64);
    phases.shootdown = sd_cost;
    if copied == 0 {
        phases.copy = Cycles::ZERO;
    }
    out.phases = phases;
    out
}

/// Split any THP regions covering `pages` and drop their 2 MiB TLB
/// entries on every core running the process (a real THP split must
/// flush the PMD-level translation before base-page PTEs become
/// authoritative).
fn split_and_flush_huge(
    process: &mut Process,
    machine: &Machine,
    tlbs: &mut TlbArray,
    pages: &[Vpn],
) {
    let mut cores = None;
    for &vpn in pages {
        if process.space.split_huge(vpn) {
            let cores = cores.get_or_insert_with(|| {
                machine
                    .topology
                    .cores_of(process.sim_threads().iter().copied())
            });
            tlbs.invalidate_huge_on(cores.iter().copied(), process.asid, vpn);
        }
    }
}

/// Statistics accumulated by an [`AsyncMigrator`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AsyncStats {
    /// Transactions started.
    pub started: u64,
    /// Transactions committed (page moved).
    pub committed: u64,
    /// Dirty retries performed.
    pub retried: u64,
    /// Transactions aborted after exhausting retries.
    pub aborted: u64,
    /// Transactions that never started because the initial page copy
    /// failed (injected fault); the destination frame was released.
    pub copy_faulted: u64,
}

#[derive(Clone, Copy, Debug)]
struct Txn {
    vpn: Vpn,
    dest: TierKind,
    dest_frame: FrameId,
    completes: Nanos,
    retries: u32,
}

/// Result of one [`AsyncMigrator::poll`].
#[derive(Clone, Debug, Default)]
pub struct AsyncPoll {
    /// Pages whose transactions committed.
    pub committed: Vec<Vpn>,
    /// Pages whose transactions aborted.
    pub aborted: Vec<Vpn>,
    /// Background cycles consumed by commits (charged to the migration
    /// thread, not the application — the point of async migration).
    pub background: Cycles,
}

/// Transactional asynchronous migrator (Nomad-style, §2.1).
///
/// The dirty check is statistical. The simulation quantum (milliseconds)
/// is far coarser than a real copy window (microseconds): reading the
/// PTE dirty bit literally would either retry every warm page forever
/// (poll after execution) or never observe a write at all (poll before
/// execution). Instead, each completing transaction is considered
/// dirtied with the probability that a write landed **inside its copy
/// window**, which the caller estimates from the page's observed write
/// rate (`dirty_prob` in [`poll`](Self::poll)).
#[derive(Clone, Debug)]
pub struct AsyncMigrator {
    inflight: Vec<Txn>,
    rng: SmallRng,
    /// Lifetime statistics.
    pub stats: AsyncStats,
}

impl Default for AsyncMigrator {
    fn default() -> Self {
        Self::new()
    }
}

impl AsyncMigrator {
    /// A migrator with no in-flight transactions.
    pub fn new() -> Self {
        Self::with_seed(0)
    }

    /// A migrator with a specific RNG seed (trial variation).
    pub fn with_seed(seed: u64) -> Self {
        AsyncMigrator {
            inflight: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
            stats: AsyncStats::default(),
        }
    }

    /// Number of in-flight transactions.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Whether `vpn` has an in-flight transaction.
    pub fn is_inflight(&self, vpn: Vpn) -> bool {
        self.inflight.iter().any(|t| t.vpn == vpn)
    }

    /// Begin transactions moving `pages` to `dest`. The copy runs in the
    /// background; the application continues to access the source frame.
    /// Returns the number of transactions actually started.
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        &mut self,
        process: &mut Process,
        machine: &mut Machine,
        tlbs: &mut TlbArray,
        pages: &[Vpn],
        dest: TierKind,
        now: Nanos,
    ) -> usize {
        let copy_time = machine.spec().migration_costs.copy_single.to_nanos();
        let mut started = 0;
        for &vpn in pages {
            let pte = process.space.pte(vpn);
            if !pte.present() || pte.tier() == Some(dest) || self.is_inflight(vpn) {
                continue;
            }
            // `pte.present()` was checked above, so a missing tier means
            // a corrupt PTE; skip the page rather than panic.
            let Some(src_tier) = pte.tier() else {
                continue;
            };
            let Ok(dest_frame) = machine.alloc(dest) else {
                if machine.last_alloc_injected() {
                    // Injected exhaustion: absorb the fault and move on
                    // to the next page — real capacity may remain.
                    machine.faults.note_recovery(FaultSite::alloc_for(dest));
                    continue;
                }
                break; // destination full; later pages will not fit either
            };
            if machine.faults.copy_fails() {
                // Initial copy failed: release the reservation; the page
                // stays put and can be retried on a later quantum.
                machine.free(dest_frame);
                machine.faults.note_recovery(FaultSite::CopyFail);
                self.stats.copy_faulted += 1;
                continue;
            }
            split_and_flush_huge(process, machine, tlbs, &[vpn]);
            // Snapshot: clear D so a write during the window is detectable.
            process.space.set_pte(vpn, pte.clear_dirty());
            machine.record_page_copy(src_tier, dest);
            self.inflight.push(Txn {
                vpn,
                dest,
                dest_frame,
                completes: now + copy_time,
                retries: 0,
            });
            started += 1;
        }
        self.stats.started += started as u64;
        started
    }

    /// Drive transactions whose copy window has elapsed at `now`:
    /// commit clean pages, retry dirty ones, abort beyond the budget.
    ///
    /// `dirty_prob(vpn)` is the probability that the page was written
    /// within one copy window (see the type-level docs); pass `|_| 1.0`
    /// to force retries, `|_| 0.0` for always-clean commits.
    #[allow(clippy::too_many_arguments)]
    pub fn poll(
        &mut self,
        process: &mut Process,
        machine: &mut Machine,
        tlbs: &mut TlbArray,
        shadows: &mut ShadowRegistry,
        now: Nanos,
        cfg: &MechanismConfig,
        dirty_prob: &mut dyn FnMut(Vpn) -> f64,
    ) -> AsyncPoll {
        let mut out = AsyncPoll::default();
        let costs = machine.spec().migration_costs.clone();
        let copy_time = costs.copy_single.to_nanos();

        let mut remaining = Vec::with_capacity(self.inflight.len());
        for mut txn in std::mem::take(&mut self.inflight) {
            if txn.completes > now {
                remaining.push(txn);
                continue;
            }
            let pte = process.space.pte(txn.vpn);
            if !pte.present() || pte.tier() == Some(txn.dest) {
                // Raced with another migration: drop the transaction.
                machine.free(txn.dest_frame);
                self.stats.aborted += 1;
                out.aborted.push(txn.vpn);
                continue;
            }
            if self.rng.gen::<f64>() < dirty_prob(txn.vpn) {
                // Page written during the copy window: retry or abort.
                if txn.retries >= cfg.max_async_retries {
                    machine.free(txn.dest_frame);
                    self.stats.aborted += 1;
                    out.aborted.push(txn.vpn);
                    continue;
                }
                txn.retries += 1;
                txn.completes = now + copy_time;
                self.stats.retried += 1;
                process.space.set_pte(txn.vpn, pte.clear_dirty());
                if let Some(src_tier) = pte.tier() {
                    machine.record_page_copy(src_tier, txn.dest);
                }
                remaining.push(txn);
                continue;
            }

            // Commit: short unmap → targeted shootdown → remap window.
            let plan = shootdown::plan(process, &machine.topology, &[txn.vpn], cfg.scope);
            let sd_out = shootdown::execute_faulty(
                &plan,
                process,
                tlbs,
                &costs,
                cfg.sd_mode,
                &mut machine.faults,
            );
            let sd = sd_out.cycles;
            // Presence was checked above, but treat a lost mapping or
            // frame as a raced abort rather than panicking.
            let Some(old) = process.space.unmap(txn.vpn) else {
                machine.free(txn.dest_frame);
                self.stats.aborted += 1;
                out.aborted.push(txn.vpn);
                out.background += sd;
                continue;
            };
            let Some(old_frame) = old.frame() else {
                process.space.set_pte(txn.vpn, old);
                machine.free(txn.dest_frame);
                self.stats.aborted += 1;
                out.aborted.push(txn.vpn);
                out.background += sd;
                continue;
            };
            if cfg.shadowing && txn.dest.index() < old_frame.tier.index() {
                if let Some(stale) = shadows.retain(txn.vpn, old_frame) {
                    machine.free(stale);
                }
            } else {
                machine.free(old_frame);
            }
            process
                .space
                .set_pte(txn.vpn, old.with_frame(txn.dest_frame).clear_dirty());
            out.background += sd + costs.unmap + costs.remap;
            self.stats.committed += 1;
            out.committed.push(txn.vpn);
        }
        self.inflight = remaining;
        out
    }

    /// Abort every in-flight transaction (workload teardown), freeing the
    /// reserved destination frames.
    pub fn abort_all(&mut self, machine: &mut Machine) {
        for txn in self.inflight.drain(..) {
            machine.free(txn.dest_frame);
            self.stats.aborted += 1;
        }
    }
}

fn tier_name(t: TierKind) -> &'static str {
    t.name()
}

fn tier_from_name(name: &str) -> Result<TierKind, String> {
    TierKind::ALL
        .iter()
        .copied()
        .find(|t| t.name() == name)
        .ok_or_else(|| format!("unknown tier \"{name}\""))
}

impl vulcan_json::Snapshot for MechanismConfig {
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::{snap, Value};
        let prep = match self.prep {
            PrepStrategy::BaselineGlobal => "baseline_global",
            PrepStrategy::Optimized => "optimized",
        };
        let scope = match self.scope {
            ShootdownScope::ProcessWide => "process_wide",
            ShootdownScope::Targeted => "targeted",
        };
        let sd_mode = match self.sd_mode {
            ShootdownMode::Cold => "cold",
            ShootdownMode::Batched => "batched",
        };
        snap::obj(vec![
            ("prep", Value::Str(prep.to_string())),
            ("scope", Value::Str(scope.to_string())),
            ("sd_mode", Value::Str(sd_mode.to_string())),
            ("shadowing", Value::Bool(self.shadowing)),
            (
                "max_async_retries",
                snap::u64_value(self.max_async_retries as u64),
            ),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        let prep = match snap::field_str(v, "prep")? {
            "baseline_global" => PrepStrategy::BaselineGlobal,
            "optimized" => PrepStrategy::Optimized,
            other => return Err(format!("unknown prep strategy \"{other}\"")),
        };
        let scope = match snap::field_str(v, "scope")? {
            "process_wide" => ShootdownScope::ProcessWide,
            "targeted" => ShootdownScope::Targeted,
            other => return Err(format!("unknown shootdown scope \"{other}\"")),
        };
        let sd_mode = match snap::field_str(v, "sd_mode")? {
            "cold" => ShootdownMode::Cold,
            "batched" => ShootdownMode::Batched,
            other => return Err(format!("unknown shootdown mode \"{other}\"")),
        };
        let retries = snap::field_u64(v, "max_async_retries")?;
        Ok(MechanismConfig {
            prep,
            scope,
            sd_mode,
            shadowing: snap::field_bool(v, "shadowing")?,
            max_async_retries: u32::try_from(retries)
                .map_err(|_| format!("max_async_retries {retries} out of range"))?,
        })
    }
}

impl vulcan_json::Snapshot for AsyncMigrator {
    /// In-flight transactions are serialized as parallel arrays in queue
    /// order (poll iterates `inflight` front to back, so order is
    /// behavioral), together with the dirty-check RNG state — `poll`
    /// draws one `f64` per due transaction, so the stream position must
    /// survive a checkpoint for the retry/abort sequence to replay
    /// identically.
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::{snap, Value};
        let vpns: Vec<u64> = self.inflight.iter().map(|t| t.vpn.0).collect();
        let dests: Vec<Value> = self
            .inflight
            .iter()
            .map(|t| Value::Str(tier_name(t.dest).to_string()))
            .collect();
        let frame_tiers: Vec<Value> = self
            .inflight
            .iter()
            .map(|t| Value::Str(tier_name(t.dest_frame.tier).to_string()))
            .collect();
        let frame_indices: Vec<u64> = self
            .inflight
            .iter()
            .map(|t| t.dest_frame.index as u64)
            .collect();
        let completes: Vec<u64> = self.inflight.iter().map(|t| t.completes.0).collect();
        let retries: Vec<u64> = self.inflight.iter().map(|t| t.retries as u64).collect();
        snap::obj(vec![
            ("vpns", snap::u64_array(&vpns)),
            ("dests", Value::Array(dests)),
            ("frame_tiers", Value::Array(frame_tiers)),
            ("frame_indices", snap::u64_array(&frame_indices)),
            ("completes", snap::u64_array(&completes)),
            ("retries", snap::u64_array(&retries)),
            ("rng", snap::u64_array(&self.rng.state())),
            ("started", snap::u64_value(self.stats.started)),
            ("committed", snap::u64_value(self.stats.committed)),
            ("retried", snap::u64_value(self.stats.retried)),
            ("aborted", snap::u64_value(self.stats.aborted)),
            ("copy_faulted", snap::u64_value(self.stats.copy_faulted)),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        let vpns = snap::array_u64(snap::field(v, "vpns")?)?;
        let dests = snap::field_array(v, "dests")?;
        let frame_tiers = snap::field_array(v, "frame_tiers")?;
        let frame_indices = snap::array_u64(snap::field(v, "frame_indices")?)?;
        let completes = snap::array_u64(snap::field(v, "completes")?)?;
        let retries = snap::array_u64(snap::field(v, "retries")?)?;
        let n = vpns.len();
        if dests.len() != n
            || frame_tiers.len() != n
            || frame_indices.len() != n
            || completes.len() != n
            || retries.len() != n
        {
            return Err("async migrator txn arrays have mismatched lengths".to_string());
        }
        let mut inflight = Vec::with_capacity(n);
        for i in 0..n {
            let dest = match &dests[i] {
                vulcan_json::Value::Str(s) => tier_from_name(s)?,
                _ => return Err("txn dest is not a string".to_string()),
            };
            let frame_tier = match &frame_tiers[i] {
                vulcan_json::Value::Str(s) => tier_from_name(s)?,
                _ => return Err("txn frame tier is not a string".to_string()),
            };
            inflight.push(Txn {
                vpn: Vpn(vpns[i]),
                dest,
                dest_frame: FrameId {
                    tier: frame_tier,
                    index: u32::try_from(frame_indices[i])
                        .map_err(|_| format!("frame index {} out of range", frame_indices[i]))?,
                },
                completes: Nanos(completes[i]),
                retries: u32::try_from(retries[i])
                    .map_err(|_| format!("txn retries {} out of range", retries[i]))?,
            });
        }
        let rng_state = snap::array_u64(snap::field(v, "rng")?)?;
        let rng_state: [u64; 4] = rng_state
            .try_into()
            .map_err(|_| "rng state is not 4 words".to_string())?;
        Ok(AsyncMigrator {
            inflight,
            rng: SmallRng::from_state(rng_state),
            stats: AsyncStats {
                started: snap::field_u64(v, "started")?,
                committed: snap::field_u64(v, "committed")?,
                retried: snap::field_u64(v, "retried")?,
                aborted: snap::field_u64(v, "aborted")?,
                copy_faulted: snap::field_u64(v, "copy_faulted")?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulcan_sim::{CoreId, MachineSpec, SimThreadId};
    use vulcan_vm::{Asid, LocalTid};

    fn setup(fast: u64, slow: u64) -> (Process, Machine, TlbArray, ShadowRegistry) {
        let mut machine = Machine::new(MachineSpec::small(fast, slow, 8));
        let mut process = Process::new(Asid(1), true);
        for i in 0..4u32 {
            process.spawn_thread(SimThreadId(i));
            machine.topology.pin(SimThreadId(i), CoreId(i as u16));
        }
        let tlbs = TlbArray::new(8);
        (process, machine, tlbs, ShadowRegistry::new())
    }

    /// Map `n` pages in the slow tier, touched by thread 0.
    fn map_slow(process: &mut Process, machine: &mut Machine, n: u64) -> Vec<Vpn> {
        (0..n)
            .map(|i| {
                let vpn = Vpn(i);
                let f = machine.alloc(TierKind::Slow).unwrap();
                process.space.map(vpn, f, LocalTid(0));
                process.space.touch(vpn, LocalTid(0), false).unwrap();
                vpn
            })
            .collect()
    }

    #[test]
    fn sync_promotion_moves_pages() {
        let (mut p, mut m, mut t, mut s) = setup(16, 16);
        let pages = map_slow(&mut p, &mut m, 4);
        let cfg = MechanismConfig::vulcan();
        let out = migrate_sync(&mut p, &mut m, &mut t, &mut s, &pages, TierKind::Fast, &cfg);
        assert_eq!(out.moved.len(), 4);
        assert!(out.skipped.is_empty());
        for &vpn in &pages {
            assert_eq!(p.space.pte(vpn).tier(), Some(TierKind::Fast));
        }
        assert!(out.total_cycles() > Cycles::ZERO);
        // Shadows retained for all promoted pages.
        assert_eq!(s.len(), 4);
        // Slow frames not freed (held as shadows).
        assert_eq!(m.free_pages(TierKind::Slow), 12);
    }

    #[test]
    fn sync_without_shadowing_frees_source() {
        let (mut p, mut m, mut t, mut s) = setup(16, 16);
        let pages = map_slow(&mut p, &mut m, 4);
        let cfg = MechanismConfig::linux_baseline();
        migrate_sync(&mut p, &mut m, &mut t, &mut s, &pages, TierKind::Fast, &cfg);
        assert_eq!(m.free_pages(TierKind::Slow), 16);
        assert!(s.is_empty());
    }

    #[test]
    fn sync_skips_pages_already_in_dest_or_unmapped() {
        let (mut p, mut m, mut t, mut s) = setup(16, 16);
        let pages = map_slow(&mut p, &mut m, 1);
        let cfg = MechanismConfig::vulcan();
        let all = vec![pages[0], Vpn(999)];
        let out = migrate_sync(&mut p, &mut m, &mut t, &mut s, &all, TierKind::Fast, &cfg);
        assert_eq!(out.moved, vec![pages[0]]);
        assert_eq!(out.skipped, vec![Vpn(999)]);
        // Second promotion of the same page is a no-op.
        let out2 = migrate_sync(&mut p, &mut m, &mut t, &mut s, &pages, TierKind::Fast, &cfg);
        assert!(out2.moved.is_empty());
        assert_eq!(out2.phases.total(), Cycles::ZERO);
    }

    #[test]
    fn sync_restores_mapping_when_dest_full() {
        let (mut p, mut m, mut t, mut s) = setup(2, 16);
        let pages = map_slow(&mut p, &mut m, 4);
        let cfg = MechanismConfig::vulcan();
        let out = migrate_sync(&mut p, &mut m, &mut t, &mut s, &pages, TierKind::Fast, &cfg);
        assert_eq!(out.moved.len(), 2);
        assert_eq!(out.failed.len(), 2);
        for &(vpn, err) in &out.failed {
            assert_eq!(p.space.pte(vpn).tier(), Some(TierKind::Slow), "restored");
            assert_eq!(
                err,
                MigrateError::DestFull {
                    vpn,
                    dest: TierKind::Fast
                }
            );
            assert!(err.is_transient(), "worth requeueing");
        }
        assert_eq!(out.transient_failures().count(), 2);
    }

    /// Regression (ISSUE 5): injected destination-alloc exhaustion used
    /// to be indistinguishable from genuine capacity pressure and the
    /// engine's unwrap-style paths panicked downstream; now it degrades
    /// to a typed transient error with the mapping restored and zero
    /// frames leaked.
    #[test]
    fn sync_injected_alloc_fault_degrades_without_leaking() {
        use vulcan_sim::{FaultConfig, FaultPlan, FaultSite};
        let (mut p, mut m, mut t, mut s) = setup(16, 16);
        let pages = map_slow(&mut p, &mut m, 4);
        m.faults = FaultPlan::new(11, FaultConfig::single(FaultSite::AllocFast, 1.0));
        let fast_before = m.free_pages(TierKind::Fast);
        let slow_before = m.free_pages(TierKind::Slow);
        let cfg = MechanismConfig::vulcan();
        let out = migrate_sync(&mut p, &mut m, &mut t, &mut s, &pages, TierKind::Fast, &cfg);
        assert!(out.moved.is_empty());
        assert_eq!(out.failed.len(), 4, "every promotion failed transiently");
        for &vpn in &pages {
            assert_eq!(p.space.pte(vpn).tier(), Some(TierKind::Slow), "restored");
        }
        assert_eq!(m.free_pages(TierKind::Fast), fast_before, "no fast leak");
        assert_eq!(m.free_pages(TierKind::Slow), slow_before, "no slow leak");
        assert_eq!(
            m.faults.stats().recovered[FaultSite::AllocFast.index()],
            4,
            "recoveries attributed"
        );
    }

    /// Regression (ISSUE 5): a failing page copy mid-batch must release
    /// the already-allocated destination frame and restore the source
    /// mapping — the pre-fix engine had no failure path between alloc
    /// and remap.
    #[test]
    fn sync_copy_fault_restores_mapping_and_frees_dest() {
        use vulcan_sim::{FaultConfig, FaultPlan, FaultSite};
        let (mut p, mut m, mut t, mut s) = setup(16, 16);
        let pages = map_slow(&mut p, &mut m, 4);
        m.faults = FaultPlan::new(11, FaultConfig::single(FaultSite::CopyFail, 1.0));
        let cfg = MechanismConfig::vulcan();
        let out = migrate_sync(&mut p, &mut m, &mut t, &mut s, &pages, TierKind::Fast, &cfg);
        assert!(out.moved.is_empty());
        assert_eq!(out.failed.len(), 4);
        for &(vpn, err) in &out.failed {
            assert_eq!(err, MigrateError::CopyFailed(vpn));
            assert_eq!(p.space.pte(vpn).tier(), Some(TierKind::Slow));
        }
        assert_eq!(m.free_pages(TierKind::Fast), 16, "dest frames released");
        assert_eq!(out.phases.copy, Cycles::ZERO, "no successful copy charged");
    }

    /// Injected ack timeouts surface through the sync outcome so the
    /// runtime can feed retry histograms.
    #[test]
    fn sync_shootdown_timeouts_reported_and_charged() {
        use vulcan_sim::{FaultConfig, FaultPlan, FaultSite};
        let (mut p, mut m, mut t, mut s) = setup(16, 16);
        let pages = map_slow(&mut p, &mut m, 2);
        let cfg = MechanismConfig::vulcan();
        let clean = {
            let (mut p2, mut m2, mut t2, mut s2) = setup(16, 16);
            let pages2 = map_slow(&mut p2, &mut m2, 2);
            migrate_sync(
                &mut p2,
                &mut m2,
                &mut t2,
                &mut s2,
                &pages2,
                TierKind::Fast,
                &cfg,
            )
        };
        m.faults = FaultPlan::new(5, FaultConfig::single(FaultSite::ShootdownTimeout, 1.0));
        let out = migrate_sync(&mut p, &mut m, &mut t, &mut s, &pages, TierKind::Fast, &cfg);
        assert_eq!(out.moved.len(), 2, "migration still succeeds");
        assert_eq!(out.sd_retries, m.faults.config().max_shootdown_retries);
        assert!(out.sd_escalated);
        assert!(
            out.phases.shootdown > clean.phases.shootdown,
            "retries + backoff charged to the cost model"
        );
    }

    /// Async transactions under injected copy faults release their
    /// reserved frames and never start a doomed transaction.
    #[test]
    fn async_copy_fault_releases_reservation() {
        use vulcan_sim::{FaultConfig, FaultPlan, FaultSite};
        let (mut p, mut m, mut t, _s) = setup(16, 16);
        let pages = map_slow(&mut p, &mut m, 3);
        m.faults = FaultPlan::new(2, FaultConfig::single(FaultSite::CopyFail, 1.0));
        let mut am = AsyncMigrator::new();
        let started = am.start(&mut p, &mut m, &mut t, &pages, TierKind::Fast, Nanos(0));
        assert_eq!(started, 0);
        assert_eq!(am.stats.copy_faulted, 3);
        assert_eq!(m.free_pages(TierKind::Fast), 16, "reservations released");
        for &vpn in &pages {
            assert_eq!(p.space.pte(vpn).tier(), Some(TierKind::Slow));
        }
    }

    #[test]
    fn clean_demotion_uses_shadow_remap() {
        let (mut p, mut m, mut t, mut s) = setup(16, 16);
        let pages = map_slow(&mut p, &mut m, 2);
        let cfg = MechanismConfig::vulcan();
        migrate_sync(&mut p, &mut m, &mut t, &mut s, &pages, TierKind::Fast, &cfg);
        let slow_free_before = m.free_pages(TierKind::Slow);
        let out = migrate_sync(&mut p, &mut m, &mut t, &mut s, &pages, TierKind::Slow, &cfg);
        assert_eq!(out.remap_only, 2, "clean pages remap to shadows");
        assert_eq!(out.phases.copy, Cycles::ZERO);
        // No new slow frames consumed: the shadows were reused.
        assert_eq!(m.free_pages(TierKind::Slow), slow_free_before);
        assert_eq!(m.free_pages(TierKind::Fast), 16);
    }

    #[test]
    fn dirty_demotion_copies() {
        let (mut p, mut m, mut t, mut s) = setup(16, 16);
        let pages = map_slow(&mut p, &mut m, 1);
        let cfg = MechanismConfig::vulcan();
        migrate_sync(&mut p, &mut m, &mut t, &mut s, &pages, TierKind::Fast, &cfg);
        // Write the promoted page: shadow is stale.
        p.space.touch(pages[0], LocalTid(0), true).unwrap();
        let out = migrate_sync(&mut p, &mut m, &mut t, &mut s, &pages, TierKind::Slow, &cfg);
        assert_eq!(out.remap_only, 0);
        assert_eq!(out.moved.len(), 1);
        assert!(out.phases.copy > Cycles::ZERO);
        assert_eq!(p.space.pte(pages[0]).tier(), Some(TierKind::Slow));
        // The stale shadow was released: all slow frames accounted for.
        assert_eq!(m.free_pages(TierKind::Slow), 15);
    }

    #[test]
    fn vulcan_mechanism_is_cheaper_than_baseline() {
        let cfg_v = MechanismConfig::vulcan();
        let cfg_b = MechanismConfig::linux_baseline();
        let (mut p1, mut m1, mut t1, mut s1) = setup(64, 64);
        let pages1 = map_slow(&mut p1, &mut m1, 16);
        let v = migrate_sync(
            &mut p1,
            &mut m1,
            &mut t1,
            &mut s1,
            &pages1,
            TierKind::Fast,
            &cfg_v,
        );
        let (mut p2, mut m2, mut t2, mut s2) = setup(64, 64);
        let pages2 = map_slow(&mut p2, &mut m2, 16);
        let b = migrate_sync(
            &mut p2,
            &mut m2,
            &mut t2,
            &mut s2,
            &pages2,
            TierKind::Fast,
            &cfg_b,
        );
        // On this 8-core test machine the preparation gap is modest; the
        // 32-core benches show the full 3-4x of Figure 7.
        assert!(
            v.total_cycles().0 * 13 < b.total_cycles().0 * 10,
            "vulcan {} vs baseline {}",
            v.total_cycles(),
            b.total_cycles()
        );
    }

    #[test]
    fn async_commit_moves_clean_page() {
        let (mut p, mut m, mut t, mut s) = setup(16, 16);
        let pages = map_slow(&mut p, &mut m, 1);
        let cfg = MechanismConfig::vulcan();
        let mut am = AsyncMigrator::new();
        let started = am.start(&mut p, &mut m, &mut t, &pages, TierKind::Fast, Nanos(0));
        assert_eq!(started, 1);
        assert!(am.is_inflight(pages[0]));
        // Source still mapped in slow tier during the copy.
        assert_eq!(p.space.pte(pages[0]).tier(), Some(TierKind::Slow));
        // Not yet due.
        let early = am.poll(&mut p, &mut m, &mut t, &mut s, Nanos(1), &cfg, &mut |_| 0.0);
        assert!(early.committed.is_empty());
        let done = am.poll(
            &mut p,
            &mut m,
            &mut t,
            &mut s,
            Nanos::millis(1),
            &cfg,
            &mut |_| 0.0,
        );
        assert_eq!(done.committed, pages);
        assert_eq!(p.space.pte(pages[0]).tier(), Some(TierKind::Fast));
        assert_eq!(am.stats.committed, 1);
        assert!(done.background > Cycles::ZERO);
    }

    #[test]
    fn async_dirty_page_retries_then_aborts() {
        let (mut p, mut m, mut t, mut s) = setup(16, 16);
        let pages = map_slow(&mut p, &mut m, 1);
        let cfg = MechanismConfig {
            max_async_retries: 2,
            ..MechanismConfig::vulcan()
        };
        let mut am = AsyncMigrator::new();
        am.start(&mut p, &mut m, &mut t, &pages, TierKind::Fast, Nanos(0));
        let mut now = Nanos(0);
        for round in 0..3 {
            // The workload writes the page during every copy window.
            p.space.touch(pages[0], LocalTid(0), true).unwrap();
            now += Nanos::millis(1);
            let poll = am.poll(&mut p, &mut m, &mut t, &mut s, now, &cfg, &mut |_| 1.0);
            if round < 2 {
                assert!(poll.aborted.is_empty(), "round {round} should retry");
            } else {
                assert_eq!(poll.aborted, pages, "retries exhausted");
            }
        }
        assert_eq!(am.stats.retried, 2);
        assert_eq!(am.stats.aborted, 1);
        // Page stayed in the slow tier; the reserved fast frame was freed.
        assert_eq!(p.space.pte(pages[0]).tier(), Some(TierKind::Slow));
        assert_eq!(m.free_pages(TierKind::Fast), 16);
    }

    #[test]
    fn async_does_not_double_start() {
        let (mut p, mut m, mut t, _s) = setup(16, 16);
        let pages = map_slow(&mut p, &mut m, 1);
        let mut am = AsyncMigrator::new();
        assert_eq!(
            am.start(&mut p, &mut m, &mut t, &pages, TierKind::Fast, Nanos(0)),
            1
        );
        assert_eq!(
            am.start(&mut p, &mut m, &mut t, &pages, TierKind::Fast, Nanos(0)),
            0
        );
        assert_eq!(am.inflight(), 1);
    }

    #[test]
    fn async_abort_all_releases_frames() {
        let (mut p, mut m, mut t, _s) = setup(16, 16);
        let pages = map_slow(&mut p, &mut m, 3);
        let mut am = AsyncMigrator::new();
        am.start(&mut p, &mut m, &mut t, &pages, TierKind::Fast, Nanos(0));
        assert_eq!(m.free_pages(TierKind::Fast), 13);
        am.abort_all(&mut m);
        assert_eq!(m.free_pages(TierKind::Fast), 16);
        assert_eq!(am.inflight(), 0);
    }

    #[test]
    fn async_start_stops_when_dest_full() {
        let (mut p, mut m, mut t, _s) = setup(2, 16);
        let pages = map_slow(&mut p, &mut m, 4);
        let mut am = AsyncMigrator::new();
        assert_eq!(
            am.start(&mut p, &mut m, &mut t, &pages, TierKind::Fast, Nanos(0)),
            2
        );
    }

    #[test]
    fn mechanism_config_roundtrips_presets_and_overrides() {
        use vulcan_json::Snapshot;
        for cfg in [
            MechanismConfig::linux_baseline(),
            MechanismConfig::vulcan(),
            MechanismConfig {
                sd_mode: ShootdownMode::Cold,
                max_async_retries: 9,
                ..MechanismConfig::vulcan()
            },
        ] {
            let back = MechanismConfig::restore(&cfg.snapshot()).expect("restore");
            assert_eq!(back, cfg);
        }
    }

    /// A restored migrator must replay the exact dirty-check stream:
    /// `poll` draws one RNG value per due transaction, so losing the RNG
    /// position (or reordering the in-flight queue) silently changes
    /// which pages retry, which abort, and when — the hidden-state class
    /// the checkpoint round-trip oracle exists to catch.
    #[test]
    fn async_snapshot_roundtrip_replays_the_dirty_check_stream() {
        use vulcan_json::Snapshot;
        type RoundLog = Vec<(Vec<Vpn>, Vec<Vpn>)>;
        let run = |restore_at: Option<usize>| -> (RoundLog, AsyncStats) {
            let (mut p, mut m, mut t, mut s) = setup(16, 16);
            let pages = map_slow(&mut p, &mut m, 6);
            let cfg = MechanismConfig {
                max_async_retries: 2,
                ..MechanismConfig::vulcan()
            };
            let mut am = AsyncMigrator::with_seed(42);
            am.start(&mut p, &mut m, &mut t, &pages, TierKind::Fast, Nanos(0));
            let mut log = Vec::new();
            let mut now = Nanos(0);
            for round in 0..6 {
                now += Nanos::millis(1);
                // 50% dirty windows: every due transaction consumes one
                // RNG draw, and retries keep transactions in flight.
                let poll = am.poll(&mut p, &mut m, &mut t, &mut s, now, &cfg, &mut |_| 0.5);
                log.push((poll.committed.clone(), poll.aborted.clone()));
                if restore_at == Some(round) {
                    let snap_v = am.snapshot();
                    let back = AsyncMigrator::restore(&snap_v).expect("restore");
                    assert_eq!(back.snapshot(), snap_v, "snapshot(restore(c)) == c");
                    am = back;
                }
            }
            (log, am.stats)
        };
        let (straight_log, straight_stats) = run(None);
        assert!(
            straight_stats.committed > 0 && straight_stats.retried > 0,
            "scenario must exercise both commits and retries: {straight_stats:?}"
        );
        for at in 0..3 {
            let (log, stats) = run(Some(at));
            assert_eq!(log, straight_log, "restore at round {at} diverged");
            assert_eq!(stats, straight_stats, "restore at round {at} stats");
        }
    }

    #[test]
    fn async_restore_rejects_mismatched_txn_arrays() {
        use vulcan_json::Snapshot;
        let (mut p, mut m, mut t, _s) = setup(16, 16);
        let pages = map_slow(&mut p, &mut m, 2);
        let mut am = AsyncMigrator::new();
        am.start(&mut p, &mut m, &mut t, &pages, TierKind::Fast, Nanos(0));
        let mut snap_v = am.snapshot();
        if let vulcan_json::Value::Object(o) = &mut snap_v {
            o.insert("retries", vulcan_json::snap::u64_array(&[0]));
        } else {
            panic!("snapshot is not an object");
        }
        match AsyncMigrator::restore(&snap_v) {
            Ok(_) => panic!("corrupt snapshot must be rejected"),
            Err(e) => assert!(e.contains("mismatched lengths"), "unexpected error: {e}"),
        }
    }
}
