//! The policy registry: every tiering policy the workspace can run,
//! as a closed enum instead of bare strings.
//!
//! Binaries and the CLI used to pass policy names around as `&str` and
//! panic (or error) deep inside a run when a name was misspelled. With
//! [`PolicyKind`] an unknown name fails exactly once — at parse time —
//! and each kind knows how to build both its policy object and the
//! profiler its original system uses.

use std::fmt;
use std::str::FromStr;

use vulcan_core::VulcanPolicy;
use vulcan_policy::{profiler_for, Memtis, Mtm, Nomad, Tpp};
use vulcan_profile::AnyProfiler;
use vulcan_runtime::{StaticPlacement, TieringPolicy, UniformPartition};

/// Every policy the workspace can instantiate.
///
/// The paper evaluates [`Tpp`], [`Memtis`], [`Nomad`] and Vulcan;
/// `Static`, `Uniform` and `Mtm` are the no-migration floor, the
/// fairness straw man (§3.3) and the biased-migration ancestor (§3.5)
/// used by the extended comparison and the CLI.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// First-touch placement, no migration (the floor).
    Static,
    /// Uniform fast-tier partition, no hotness ranking.
    Uniform,
    /// TPP (Transparent Page Placement).
    Tpp,
    /// MEMTIS (PEBS-driven hotness tiering).
    Memtis,
    /// NOMAD (transactional page migration).
    Nomad,
    /// MTM (read/write-biased migration, Vulcan's ancestor).
    Mtm,
    /// Vulcan — the paper's system.
    Vulcan,
}

impl PolicyKind {
    /// Every policy, in the extended comparison's presentation order.
    pub const ALL: [PolicyKind; 7] = [
        PolicyKind::Static,
        PolicyKind::Uniform,
        PolicyKind::Tpp,
        PolicyKind::Memtis,
        PolicyKind::Nomad,
        PolicyKind::Mtm,
        PolicyKind::Vulcan,
    ];

    /// The four evaluated systems, in the paper's presentation order.
    pub const PAPER: [PolicyKind; 4] = [
        PolicyKind::Tpp,
        PolicyKind::Memtis,
        PolicyKind::Nomad,
        PolicyKind::Vulcan,
    ];

    /// The canonical (lowercase) name, matching each policy's
    /// `TieringPolicy::name`.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Static => "static",
            PolicyKind::Uniform => "uniform",
            PolicyKind::Tpp => "tpp",
            PolicyKind::Memtis => "memtis",
            PolicyKind::Nomad => "nomad",
            PolicyKind::Mtm => "mtm",
            PolicyKind::Vulcan => "vulcan",
        }
    }

    /// Instantiate the policy with its default configuration.
    pub fn make(self) -> Box<dyn TieringPolicy> {
        match self {
            PolicyKind::Static => Box::new(StaticPlacement),
            PolicyKind::Uniform => Box::new(UniformPartition),
            PolicyKind::Tpp => Box::new(Tpp::new()),
            PolicyKind::Memtis => Box::new(Memtis::new()),
            PolicyKind::Nomad => Box::new(Nomad::new()),
            PolicyKind::Mtm => Box::new(Mtm::new()),
            PolicyKind::Vulcan => Box::new(VulcanPolicy::new()),
        }
    }

    /// Instantiate the profiling mechanism the policy's original system
    /// uses (§5.1): hint faults for TPP, PEBS for Memtis/MTM, hybrid
    /// sampling for Nomad and Vulcan.
    pub fn profiler(self) -> AnyProfiler {
        profiler_for(self.name())
    }
}

/// Instantiate a policy by kind (the registry entry point; equivalent to
/// [`PolicyKind::make`], kept as a free function for call-site symmetry
/// with the old stringly-typed `make_policy`).
pub fn make_policy(kind: PolicyKind) -> Box<dyn TieringPolicy> {
    kind.make()
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error for an unrecognized policy name, listing the valid ones.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownPolicy(pub String);

impl fmt::Display for UnknownPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown policy '{}' (expected one of: ", self.0)?;
        for (i, kind) in PolicyKind::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(kind.name())?;
        }
        f.write_str(")")
    }
}

impl std::error::Error for UnknownPolicy {}

impl FromStr for PolicyKind {
    type Err = UnknownPolicy;

    fn from_str(s: &str) -> Result<PolicyKind, UnknownPolicy> {
        PolicyKind::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| UnknownPolicy(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_fromstr_and_display() {
        for kind in PolicyKind::ALL {
            assert_eq!(kind.to_string().parse::<PolicyKind>(), Ok(kind));
        }
    }

    #[test]
    fn make_matches_policy_self_reported_name() {
        for kind in PolicyKind::ALL {
            assert_eq!(kind.make().name(), kind.name());
        }
    }

    #[test]
    fn unknown_name_fails_at_parse_time_with_catalog() {
        let err = "firefly".parse::<PolicyKind>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown policy 'firefly'"), "{msg}");
        assert!(msg.contains("vulcan") && msg.contains("tpp"), "{msg}");
    }

    #[test]
    fn paper_subset_is_presentation_ordered() {
        let names: Vec<&str> = PolicyKind::PAPER.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["tpp", "memtis", "nomad", "vulcan"]);
    }
}
