//! The open-loop tenancy engine.
//!
//! Drives hundreds of workload lifetimes against one [`SimRunner`]:
//! arrivals are a Poisson process (exponential interarrival gaps),
//! lifetimes are heavy-tailed Pareto, and every lifecycle transition is
//! a timestamped event on the deterministic [`EventQueue`] — `Arrival`,
//! `Departure`, `AdmissionReview`, `PeriodicCompaction`. Before each
//! quantum the engine drains every due event (events scheduled *during*
//! the drain at the same tick fire in the same drain, in FIFO order —
//! the queue's same-timestamp guarantee), then steps the runner one
//! quantum and samples a fairness window over the live tenants.
//!
//! **Admission.** A tenant is admitted when its whole RSS fits in the
//! free frames of every chain tier combined; otherwise it waits in a bounded
//! FIFO queue (head-of-line blocking is deliberate: admitting around a
//! stuck head would starve large tenants forever) or is rejected when
//! the queue is full. Departures and compaction rounds schedule an
//! `AdmissionReview` at the same instant, which drops entries older
//! than the queue timeout and admits from the head while capacity lasts.
//!
//! **Determinism.** All randomness is counter-hashed from the run seed
//! ([`ChurnStreams`]); the engine itself is single-threaded. A run is
//! byte-identical across reruns and across however many OS threads a
//! sweep harness uses for *other* cells. With `arrival_rate_per_sec = 0`
//! and compaction disabled no event is ever scheduled and the engine is
//! exactly `SimRunner::run` — the rate-0 control cell of the churn bench
//! reproduces static-suite results bit for bit.

use std::collections::VecDeque;

use crate::catalog::Catalog;
use crate::dist::{ChurnStreams, Stream};
use vulcan_metrics::{jain_index_checked, percentile};
use vulcan_runtime::{QuantumOutcome, RunResult, SimRunner};
use vulcan_sim::{EventQueue, Nanos, TierKind};
use vulcan_telemetry::EventKind;
use vulcan_vm::Vpn;
use vulcan_workloads::WorkloadSpec;

/// Churn-engine knobs, layered on top of the runner's `SimConfig`.
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    /// Open-loop arrival rate in tenants per displayed second; 0 turns
    /// the engine into a plain static run (no events at all).
    pub arrival_rate_per_sec: f64,
    /// Pareto lifetime scale (the minimum lifetime).
    pub lifetime_xm: Nanos,
    /// Pareto lifetime shape; ≤ 2 gives a heavy long-lived tail.
    pub lifetime_alpha: f64,
    /// Quanta to run.
    pub n_quanta: u64,
    /// Admission queue bound; 0 means reject immediately on exhaustion.
    pub max_queue: usize,
    /// Queued tenants older than this are dropped at the next review.
    pub queue_timeout: Nanos,
    /// Period of tier compaction rounds; [`Nanos::ZERO`] disables them.
    pub compaction_period: Nanos,
    /// Max hot slow pages promoted into freed fast headroom per round.
    pub compaction_budget: usize,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            arrival_rate_per_sec: 2.0,
            lifetime_xm: Nanos::secs(2),
            lifetime_alpha: 2.0,
            n_quanta: 60,
            max_queue: 8,
            queue_timeout: Nanos::secs(10),
            compaction_period: Nanos::secs(5),
            compaction_budget: 256,
        }
    }
}

impl ChurnConfig {
    /// The rate-0 control: no arrivals, no compaction — the engine is
    /// provably a plain static run (no event is ever scheduled).
    pub fn control(n_quanta: u64) -> ChurnConfig {
        ChurnConfig {
            arrival_rate_per_sec: 0.0,
            compaction_period: Nanos::ZERO,
            n_quanta,
            ..ChurnConfig::default()
        }
    }
}

/// Lifecycle events on the engine's queue.
#[derive(Clone, Debug, PartialEq, Eq)]
enum ChurnEvent {
    /// The next open-loop tenant arrives (reschedules itself).
    Arrival,
    /// Tenant in `slot` reaches the end of its lifetime.
    Departure {
        /// Runner workload slot (slots are never reused).
        slot: usize,
    },
    /// Re-examine the admission queue (after departures/compaction).
    AdmissionReview,
    /// Periodic tier compaction (reschedules itself).
    PeriodicCompaction,
}

/// A tenant waiting for admission.
#[derive(Debug)]
struct Pending {
    spec: WorkloadSpec,
    enqueued: Nanos,
}

/// Lifecycle and admission tallies of one engine run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChurnStats {
    /// Open-loop arrivals drawn.
    pub arrivals: u64,
    /// Admitted straight from the arrival event.
    pub admitted: u64,
    /// Admitted later, from the queue.
    pub admitted_from_queue: u64,
    /// Sent to the admission queue on fast/slow exhaustion.
    pub queued: u64,
    /// Rejected because the queue was full.
    pub rejected: u64,
    /// Dropped from the queue after the admission timeout.
    pub timed_out: u64,
    /// Lifetime departures (engine-scheduled teardowns).
    pub departed: u64,
    /// Live tenants retired by the end-of-run teardown sweep.
    pub retired_at_end: u64,
    /// Compaction rounds executed.
    pub compaction_rounds: u64,
    /// Shadow frames reclaimed by compaction.
    pub shadows_reclaimed: u64,
    /// Hot slow pages promoted by compaction.
    pub compaction_promoted: u64,
    /// Peak number of concurrently live tenants.
    pub peak_active: u64,
}

impl ChurnStats {
    /// Total tenants that ever ran (admitted by either path).
    pub fn spawned(&self) -> u64 {
        self.admitted + self.admitted_from_queue
    }

    /// Total tenants that were torn down (lifetime + end-of-run).
    pub fn retired(&self) -> u64 {
        self.departed + self.retired_at_end
    }
}

/// One per-quantum fairness window over the live tenants.
#[derive(Clone, Debug)]
pub struct WindowSample {
    /// End-of-quantum instant, displayed seconds.
    pub t_secs: f64,
    /// Live tenants in the window.
    pub active: u64,
    /// Jain's index over the live tenants' FTHRs; `None` when the
    /// window is empty (fairness undefined, not vacuously 1.0).
    pub jain_fthr: Option<f64>,
    /// Mean FTHR over the live tenants; `None` on an empty window.
    pub mean_fthr: Option<f64>,
    /// Fast-tier utilization (used / capacity).
    pub fast_util: f64,
}

/// Summary of a finished churn run.
#[derive(Clone, Debug)]
pub struct ChurnReport {
    /// Lifecycle/admission tallies.
    pub stats: ChurnStats,
    /// Per-quantum fairness windows, in time order.
    pub windows: Vec<WindowSample>,
    /// Fast frames still allocated after the final teardown sweep
    /// (frame-conservation violation when nonzero).
    pub leaked_fast: u64,
    /// Slow frames still allocated after the final teardown sweep.
    pub leaked_slow: u64,
    /// Used frames per chain tier after the final teardown sweep, in
    /// chain order (covers tiers beyond the legacy fast/slow pair).
    pub leaked_by_tier: Vec<u64>,
    /// The underlying runner summary (per-tenant means, series).
    pub run: RunResult,
}

impl ChurnReport {
    /// Mean of the defined per-window Jain indices (`None` if every
    /// window was empty).
    pub fn mean_windowed_jain(&self) -> Option<f64> {
        let defined: Vec<f64> = self.windows.iter().filter_map(|w| w.jain_fthr).collect();
        if defined.is_empty() {
            None
        } else {
            Some(defined.iter().sum::<f64>() / defined.len() as f64)
        }
    }

    /// Mean of the defined per-window mean FTHRs.
    pub fn mean_windowed_fthr(&self) -> Option<f64> {
        let defined: Vec<f64> = self.windows.iter().filter_map(|w| w.mean_fthr).collect();
        if defined.is_empty() {
            None
        } else {
            Some(defined.iter().sum::<f64>() / defined.len() as f64)
        }
    }

    /// Total frames leaked across every chain tier (zero on a
    /// conservation-clean run).
    pub fn leaked_total(&self) -> u64 {
        self.leaked_by_tier.iter().sum()
    }

    /// p99 tail of per-quantum mean op latency across every tenant and
    /// quantum in which it completed operations (`None` if nothing ran).
    pub fn p99_latency_ns(&self) -> Option<f64> {
        let mut samples: Vec<f64> = Vec::new();
        for w in &self.run.per_workload {
            if let Some(series) = self.run.series.get(&format!("{}.latency_ns", w.name)) {
                samples.extend(series.points.iter().map(|&(_, v)| v).filter(|&v| v > 0.0));
            }
        }
        percentile(&mut samples, 99.0)
    }
}

/// The open-loop churn engine: a [`SimRunner`] plus the event queue,
/// seeded distributions, tenant catalog and admission state.
pub struct ChurnEngine {
    runner: SimRunner,
    cfg: ChurnConfig,
    catalog: Catalog,
    events: EventQueue<ChurnEvent>,
    streams: ChurnStreams,
    pending: VecDeque<Pending>,
    next_tenant: u64,
    stats: ChurnStats,
    windows: Vec<WindowSample>,
}

impl ChurnEngine {
    /// Wrap an already-built (paused: `n_quanta` unconsumed) runner.
    /// The engine schedules the first arrival and compaction round and
    /// then owns the stepping; the runner's own `n_quanta` is ignored in
    /// favor of `cfg.n_quanta`. Randomness derives from `seed` — pass
    /// the runner's `SimConfig::seed` so one seed governs the whole run.
    pub fn new(runner: SimRunner, seed: u64, cfg: ChurnConfig, catalog: Catalog) -> ChurnEngine {
        let mut streams = ChurnStreams::new(seed);
        let mut events = EventQueue::new();
        if cfg.arrival_rate_per_sec > 0.0 {
            let gap = streams.exp_interarrival_ns(cfg.arrival_rate_per_sec);
            events.schedule(Nanos(gap), ChurnEvent::Arrival);
        }
        if cfg.compaction_period > Nanos::ZERO {
            events.schedule(cfg.compaction_period, ChurnEvent::PeriodicCompaction);
        }
        ChurnEngine {
            runner,
            cfg,
            catalog,
            events,
            streams,
            pending: VecDeque::new(),
            next_tenant: 0,
            stats: ChurnStats::default(),
            windows: Vec::new(),
        }
    }

    /// Tallies so far (tests and live drivers).
    pub fn stats(&self) -> &ChurnStats {
        &self.stats
    }

    /// The wrapped runner (read access for step-wise inspection).
    pub fn runner(&self) -> &SimRunner {
        &self.runner
    }

    /// Run one quantum: drain due events (including same-tick cascades
    /// like departure → admission review), step the runner, sample a
    /// fairness window from the quantum's typed outcome.
    pub fn step(&mut self) {
        let now = self.runner.state.now;
        while let Some((at, ev)) = self.events.pop_due(now) {
            self.handle(at, ev);
        }
        let outcome = self.runner.run_quantum();
        self.record_window(&outcome);
    }

    /// Run the configured quanta, retire every surviving tenant, audit
    /// frame conservation and summarize.
    pub fn run(mut self) -> ChurnReport {
        for _ in 0..self.cfg.n_quanta {
            self.step();
        }
        self.finish()
    }

    fn handle(&mut self, at: Nanos, ev: ChurnEvent) {
        match ev {
            ChurnEvent::Arrival => {
                self.stats.arrivals += 1;
                // Open loop: the next arrival is scheduled from this
                // one's instant, regardless of admission outcome.
                let gap = self
                    .streams
                    .exp_interarrival_ns(self.cfg.arrival_rate_per_sec);
                self.events.schedule(at + Nanos(gap), ChurnEvent::Arrival);

                let u = self.streams.uniform(Stream::Template);
                let spec = self.catalog.pick(u).instantiate(self.next_tenant, at);
                self.next_tenant += 1;
                if self.try_admit(&spec, at) {
                    self.stats.admitted += 1;
                } else {
                    self.queue_or_reject(spec, at);
                }
            }
            ChurnEvent::Departure { slot } => {
                if !self.runner.state.workloads[slot].departed {
                    self.runner.state.teardown(slot);
                    self.stats.departed += 1;
                    // Freed frames may admit a queued tenant: review at
                    // the same tick (fires later in this same drain, by
                    // the queue's FIFO same-timestamp guarantee).
                    self.events.schedule(at, ChurnEvent::AdmissionReview);
                }
            }
            ChurnEvent::AdmissionReview => self.review_admissions(at),
            ChurnEvent::PeriodicCompaction => {
                self.compact(at);
                self.events.schedule(
                    at + self.cfg.compaction_period,
                    ChurnEvent::PeriodicCompaction,
                );
                self.events.schedule(at, ChurnEvent::AdmissionReview);
            }
        }
    }

    /// Admit `spec` if its whole RSS fits in free frames across the
    /// whole tier chain; spawns it and schedules its departure. Returns
    /// false when it does not fit — the caller queues or rejects.
    fn try_admit(&mut self, spec: &WorkloadSpec, at: Nanos) -> bool {
        let rss = spec.rss_pages();
        let machine = &self.runner.state.machine;
        let free: u64 = machine
            .spec()
            .chain()
            .iter()
            .map(|&t| machine.free_pages(t))
            .sum();
        if free < rss {
            return false;
        }
        match self.runner.spawn_workload(spec.clone()) {
            Ok(slot) => {
                let life = self
                    .streams
                    .pareto_lifetime_ns(self.cfg.lifetime_xm.0, self.cfg.lifetime_alpha);
                self.events
                    .schedule(at + Nanos(life), ChurnEvent::Departure { slot });
                true
            }
            // The capacity check above makes exhaustion unreachable
            // (single-threaded engine, no allocation between check and
            // spawn), and ASID exhaustion needs 65k tenants; degrade to
            // the queue rather than assert.
            Err(_) => false,
        }
    }

    fn queue_or_reject(&mut self, spec: WorkloadSpec, at: Nanos) {
        let rss = spec.rss_pages();
        if self.pending.len() < self.cfg.max_queue {
            self.runner.state.telemetry.emit(
                at,
                Some(&spec.name),
                EventKind::AdmissionQueued {
                    rss_pages: rss,
                    queue_depth: self.pending.len() as u64 + 1,
                },
            );
            self.pending.push_back(Pending { spec, enqueued: at });
            self.stats.queued += 1;
        } else {
            self.runner.state.telemetry.emit(
                at,
                Some(&spec.name),
                EventKind::AdmissionRejected { rss_pages: rss },
            );
            self.stats.rejected += 1;
        }
    }

    /// Drop timed-out entries, then admit from the head while capacity
    /// lasts (FIFO: a head that still does not fit blocks the tail).
    fn review_admissions(&mut self, at: Nanos) {
        let timeout = self.cfg.queue_timeout;
        while let Some(front) = self.pending.front() {
            if at.saturating_sub(front.enqueued) <= timeout {
                break;
            }
            let Pending { spec, .. } = self.pending.pop_front().unwrap_or_else(|| {
                // front() just returned Some; the queue is engine-local.
                unreachable!("admission queue emptied between front and pop")
            });
            self.runner.state.telemetry.emit(
                at,
                Some(&spec.name),
                EventKind::AdmissionTimedOut {
                    rss_pages: spec.rss_pages(),
                },
            );
            self.stats.timed_out += 1;
        }
        while let Some(front) = self.pending.front() {
            let spec = front.spec.clone();
            if !self.try_admit(&spec, at) {
                break;
            }
            self.pending.pop_front();
            self.stats.admitted_from_queue += 1;
            // Count the earlier `queued` tally as resolved; `admitted`
            // stays the direct-admission count.
        }
    }

    /// One defragmentation round: evict every live tenant's shadow
    /// frames (departures leave the slow tier littered with stale
    /// copies), then refill the fast tier's holes with the globally
    /// hottest slow-resident pages, daemon-charged.
    fn compact(&mut self, at: Nanos) {
        self.stats.compaction_rounds += 1;
        let live: Vec<usize> = (0..self.runner.state.n_workloads())
            .filter(|&w| {
                self.runner.state.workloads[w].started && !self.runner.state.workloads[w].departed
            })
            .collect();
        let mut reclaimed = 0u64;
        for &w in &live {
            reclaimed += self.runner.state.reclaim_shadows(w, usize::MAX) as u64;
        }
        self.stats.shadows_reclaimed += reclaimed;

        // Globally hottest slow pages, bounded by budget and headroom.
        let headroom = self.runner.state.fast_free() as usize;
        let budget = self.cfg.compaction_budget.min(headroom);
        let mut promoted = 0u64;
        if budget > 0 {
            let mut candidates: Vec<(usize, Vpn, f64)> = Vec::new();
            for &w in &live {
                let ws = &self.runner.state.workloads[w];
                for (vpn, s) in ws.heat().iter() {
                    if ws.process.space.pte(vpn).tier() == Some(TierKind::Slow)
                        && !ws.async_migrator.is_inflight(vpn)
                        && s.heat > 0.0
                    {
                        candidates.push((w, vpn, s.heat));
                    }
                }
            }
            candidates.sort_by(|a, b| {
                b.2.partial_cmp(&a.2)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(&b.0))
                    .then(a.1 .0.cmp(&b.1 .0))
            });
            candidates.truncate(budget);
            // Batch per workload, preserving slot order for determinism.
            let mut batches: Vec<(usize, Vec<Vpn>)> = Vec::new();
            for (w, vpn, _) in candidates {
                match batches.iter_mut().find(|(slot, _)| *slot == w) {
                    Some((_, pages)) => pages.push(vpn),
                    None => batches.push((w, vec![vpn])),
                }
            }
            for (w, pages) in batches {
                let mech = self.runner.state.workloads[w].async_mech;
                let out = self
                    .runner
                    .state
                    .migrate_background(w, &pages, TierKind::Fast, &mech);
                promoted += out.moved.len() as u64;
            }
        }
        self.stats.compaction_promoted += promoted;
        self.runner.state.telemetry.emit(
            at,
            None,
            EventKind::CompactionRound {
                shadows_reclaimed: reclaimed,
                pages_promoted: promoted,
            },
        );
    }

    /// Serialize the engine — the wrapped runner's full checkpoint plus
    /// a `"churn"` section (event queue with original sequence numbers,
    /// decision-stream counters, admission queue, tallies and fairness
    /// windows) — as one payload [`ChurnEngine::restore`] reads back.
    /// Take it between [`step`](ChurnEngine::step) calls.
    pub fn checkpoint(&self) -> Result<vulcan_json::Value, String> {
        use vulcan_json::{snap, Snapshot as _, Value};
        let base = self.runner.checkpoint()?;
        let Value::Object(mut m) = base else {
            return Err("runner checkpoint is not an object".to_string());
        };
        let (entries, next_seq) = self.events.parts();
        let events = Value::Array(
            entries
                .into_iter()
                .map(|(at, seq, ev)| {
                    snap::obj(vec![
                        ("at", snap::u64_value(at.0)),
                        ("seq", snap::u64_value(seq)),
                        ("event", event_to_value(ev)),
                    ])
                })
                .collect(),
        );
        let pending = Value::Array(
            self.pending
                .iter()
                .map(|p| {
                    snap::obj(vec![
                        ("spec", p.spec.snapshot()),
                        ("enqueued", snap::u64_value(p.enqueued.0)),
                    ])
                })
                .collect(),
        );
        m.insert(
            "churn",
            snap::obj(vec![
                ("cfg", self.cfg.snapshot()),
                (
                    "events",
                    snap::obj(vec![
                        ("entries", events),
                        ("next_seq", snap::u64_value(next_seq)),
                    ]),
                ),
                ("streams", self.streams.snapshot()),
                ("pending", pending),
                ("next_tenant", snap::u64_value(self.next_tenant)),
                ("stats", self.stats.snapshot()),
                (
                    "windows",
                    Value::Array(self.windows.iter().map(|w| w.snapshot()).collect()),
                ),
            ]),
        );
        Ok(Value::Object(m))
    }

    /// Rebuild an engine from a [`checkpoint`](ChurnEngine::checkpoint).
    /// `policy` and `profiler_factory` follow the
    /// [`SimRunner::restore`] contract (same policy kind, factory used
    /// for tenants admitted after the restore); `catalog` is code, not
    /// data — pass the same mix the original run used.
    pub fn restore<R: Into<vulcan_profile::AnyProfiler>>(
        v: &vulcan_json::Value,
        policy: Box<dyn vulcan_runtime::TieringPolicy>,
        profiler_factory: impl FnMut(&WorkloadSpec) -> R + 'static,
        catalog: Catalog,
    ) -> Result<ChurnEngine, vulcan_runtime::CheckpointError> {
        use vulcan_json::{snap, Snapshot as _};
        use vulcan_runtime::CheckpointError;
        let runner = SimRunner::restore(v, policy, profiler_factory)?;
        let invalid = CheckpointError::Invalid;
        let c = v.get("churn").ok_or_else(|| {
            invalid("checkpoint has no \"churn\" section (taken from a static run?)".to_string())
        })?;
        fn section<T>(r: Result<T, String>) -> Result<T, CheckpointError> {
            r.map_err(CheckpointError::Invalid)
        }
        let cfg = section(ChurnConfig::restore(
            snap::field(c, "cfg").map_err(invalid)?,
        ))?;
        let ev = snap::field(c, "events").map_err(invalid)?;
        let mut entries = Vec::new();
        for e in section(snap::field_array(ev, "entries"))? {
            let at = Nanos(section(snap::field_u64(e, "at"))?);
            let seq = section(snap::field_u64(e, "seq"))?;
            let payload = section(event_from_value(snap::field(e, "event").map_err(invalid)?))?;
            entries.push((at, seq, payload));
        }
        let next_seq = section(snap::field_u64(ev, "next_seq"))?;
        let events = EventQueue::from_parts(entries, next_seq);
        let streams = section(ChurnStreams::restore(
            snap::field(c, "streams").map_err(invalid)?,
        ))?;
        let mut pending = VecDeque::new();
        for p in section(snap::field_array(c, "pending"))? {
            pending.push_back(Pending {
                spec: section(WorkloadSpec::restore(
                    snap::field(p, "spec").map_err(invalid)?,
                ))?,
                enqueued: Nanos(section(snap::field_u64(p, "enqueued"))?),
            });
        }
        let stats = section(ChurnStats::restore(
            snap::field(c, "stats").map_err(invalid)?,
        ))?;
        let windows = section(snap::field_array(c, "windows"))?
            .iter()
            .map(WindowSample::restore)
            .collect::<Result<Vec<_>, _>>()
            .map_err(CheckpointError::Invalid)?;
        Ok(ChurnEngine {
            runner,
            cfg,
            catalog,
            events,
            streams,
            pending,
            next_tenant: section(snap::field_u64(c, "next_tenant"))?,
            stats,
            windows,
        })
    }

    /// Run the quanta remaining until the configured total, then retire
    /// and summarize — the resume half of a mid-churn checkpoint. On a
    /// fresh engine this equals [`run`](ChurnEngine::run).
    pub fn run_remaining(mut self) -> ChurnReport {
        while self.runner.state.quantum_index < self.cfg.n_quanta {
            self.step();
        }
        self.finish()
    }

    fn record_window(&mut self, outcome: &QuantumOutcome) {
        let fthrs: Vec<f64> = outcome
            .workloads
            .iter()
            .filter(|w| w.live)
            .map(|w| w.fthr)
            .collect();
        let active = fthrs.len() as u64;
        self.stats.peak_active = self.stats.peak_active.max(active);
        let capacity = outcome.fast_capacity.max(1) as f64;
        self.windows.push(WindowSample {
            t_secs: outcome.ended_at.as_secs_f64(),
            active,
            jain_fthr: jain_index_checked(&fthrs),
            mean_fthr: if fthrs.is_empty() {
                None
            } else {
                Some(fthrs.iter().sum::<f64>() / fthrs.len() as f64)
            },
            fast_util: (capacity - outcome.fast_free as f64) / capacity,
        });
    }

    /// Retire survivors, audit frame conservation, summarize.
    pub fn finish(mut self) -> ChurnReport {
        for w in 0..self.runner.state.n_workloads() {
            if !self.runner.state.workloads[w].departed {
                self.runner.state.teardown(w);
                self.stats.retired_at_end += 1;
            }
        }
        let machine = &self.runner.state.machine;
        let leaked_by_tier: Vec<u64> = machine
            .spec()
            .chain()
            .iter()
            .map(|&t| machine.allocator(t).used_frames())
            .collect();
        let leaked_fast = leaked_by_tier[TierKind::Fast.index()];
        let leaked_slow = leaked_by_tier
            .get(TierKind::Slow.index())
            .copied()
            .unwrap_or(0);
        ChurnReport {
            stats: self.stats,
            windows: self.windows,
            leaked_fast,
            leaked_slow,
            leaked_by_tier,
            run: self.runner.into_result(),
        }
    }
}

/// Tagged serialization of a lifecycle event.
fn event_to_value(ev: &ChurnEvent) -> vulcan_json::Value {
    use vulcan_json::{snap, Value};
    match ev {
        ChurnEvent::Arrival => snap::obj(vec![("kind", Value::Str("arrival".into()))]),
        ChurnEvent::Departure { slot } => snap::obj(vec![
            ("kind", Value::Str("departure".into())),
            ("slot", snap::u64_value(*slot as u64)),
        ]),
        ChurnEvent::AdmissionReview => {
            snap::obj(vec![("kind", Value::Str("admission_review".into()))])
        }
        ChurnEvent::PeriodicCompaction => {
            snap::obj(vec![("kind", Value::Str("compaction".into()))])
        }
    }
}

fn event_from_value(v: &vulcan_json::Value) -> Result<ChurnEvent, String> {
    use vulcan_json::snap;
    match snap::field_str(v, "kind")? {
        "arrival" => Ok(ChurnEvent::Arrival),
        "departure" => Ok(ChurnEvent::Departure {
            slot: snap::field_usize(v, "slot")?,
        }),
        "admission_review" => Ok(ChurnEvent::AdmissionReview),
        "compaction" => Ok(ChurnEvent::PeriodicCompaction),
        other => Err(format!("unknown churn event tag \"{other}\"")),
    }
}

impl vulcan_json::Snapshot for ChurnConfig {
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::snap;
        snap::obj(vec![
            (
                "arrival_rate_per_sec",
                snap::f64_value(self.arrival_rate_per_sec),
            ),
            ("lifetime_xm", snap::u64_value(self.lifetime_xm.0)),
            ("lifetime_alpha", snap::f64_value(self.lifetime_alpha)),
            ("n_quanta", snap::u64_value(self.n_quanta)),
            ("max_queue", snap::u64_value(self.max_queue as u64)),
            ("queue_timeout", snap::u64_value(self.queue_timeout.0)),
            (
                "compaction_period",
                snap::u64_value(self.compaction_period.0),
            ),
            (
                "compaction_budget",
                snap::u64_value(self.compaction_budget as u64),
            ),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        Ok(ChurnConfig {
            arrival_rate_per_sec: snap::value_f64(snap::field(v, "arrival_rate_per_sec")?)?,
            lifetime_xm: Nanos(snap::field_u64(v, "lifetime_xm")?),
            lifetime_alpha: snap::value_f64(snap::field(v, "lifetime_alpha")?)?,
            n_quanta: snap::field_u64(v, "n_quanta")?,
            max_queue: snap::field_usize(v, "max_queue")?,
            queue_timeout: Nanos(snap::field_u64(v, "queue_timeout")?),
            compaction_period: Nanos(snap::field_u64(v, "compaction_period")?),
            compaction_budget: snap::field_usize(v, "compaction_budget")?,
        })
    }
}

impl vulcan_json::Snapshot for ChurnStats {
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::snap;
        snap::obj(vec![
            ("arrivals", snap::u64_value(self.arrivals)),
            ("admitted", snap::u64_value(self.admitted)),
            (
                "admitted_from_queue",
                snap::u64_value(self.admitted_from_queue),
            ),
            ("queued", snap::u64_value(self.queued)),
            ("rejected", snap::u64_value(self.rejected)),
            ("timed_out", snap::u64_value(self.timed_out)),
            ("departed", snap::u64_value(self.departed)),
            ("retired_at_end", snap::u64_value(self.retired_at_end)),
            ("compaction_rounds", snap::u64_value(self.compaction_rounds)),
            ("shadows_reclaimed", snap::u64_value(self.shadows_reclaimed)),
            (
                "compaction_promoted",
                snap::u64_value(self.compaction_promoted),
            ),
            ("peak_active", snap::u64_value(self.peak_active)),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        Ok(ChurnStats {
            arrivals: snap::field_u64(v, "arrivals")?,
            admitted: snap::field_u64(v, "admitted")?,
            admitted_from_queue: snap::field_u64(v, "admitted_from_queue")?,
            queued: snap::field_u64(v, "queued")?,
            rejected: snap::field_u64(v, "rejected")?,
            timed_out: snap::field_u64(v, "timed_out")?,
            departed: snap::field_u64(v, "departed")?,
            retired_at_end: snap::field_u64(v, "retired_at_end")?,
            compaction_rounds: snap::field_u64(v, "compaction_rounds")?,
            shadows_reclaimed: snap::field_u64(v, "shadows_reclaimed")?,
            compaction_promoted: snap::field_u64(v, "compaction_promoted")?,
            peak_active: snap::field_u64(v, "peak_active")?,
        })
    }
}

impl vulcan_json::Snapshot for WindowSample {
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::{snap, Value};
        let opt = |x: Option<f64>| x.map(snap::f64_value).unwrap_or(Value::Null);
        snap::obj(vec![
            ("t_secs", snap::f64_value(self.t_secs)),
            ("active", snap::u64_value(self.active)),
            ("jain_fthr", opt(self.jain_fthr)),
            ("mean_fthr", opt(self.mean_fthr)),
            ("fast_util", snap::f64_value(self.fast_util)),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::{snap, Value};
        let opt = |key: &str| -> Result<Option<f64>, String> {
            match snap::field(v, key)? {
                Value::Null => Ok(None),
                x => Ok(Some(snap::value_f64(x)?)),
            }
        };
        Ok(WindowSample {
            t_secs: snap::value_f64(snap::field(v, "t_secs")?)?,
            active: snap::field_u64(v, "active")?,
            jain_fthr: opt("jain_fthr")?,
            mean_fthr: opt("mean_fthr")?,
            fast_util: snap::value_f64(snap::field(v, "fast_util")?)?,
        })
    }
}

impl ChurnReport {
    /// Render the report as the `churn.json` artifact: tallies, fairness
    /// windows, leak audit, per-tenant summaries and the full recorded
    /// series. Deterministic — identical runs (including a checkpoint/
    /// resume split anywhere in the run) produce byte-identical JSON, so
    /// artifacts can be compared by hash.
    pub fn to_value(&self) -> vulcan_json::Value {
        use vulcan_json::{Map, Snapshot as _, Value};
        let s = &self.stats;
        let stats = Value::Object(
            Map::new()
                .with("arrivals", s.arrivals)
                .with("admitted", s.admitted)
                .with("admitted_from_queue", s.admitted_from_queue)
                .with("queued", s.queued)
                .with("rejected", s.rejected)
                .with("timed_out", s.timed_out)
                .with("departed", s.departed)
                .with("retired_at_end", s.retired_at_end)
                .with("compaction_rounds", s.compaction_rounds)
                .with("shadows_reclaimed", s.shadows_reclaimed)
                .with("compaction_promoted", s.compaction_promoted)
                .with("peak_active", s.peak_active),
        );
        let opt = |x: Option<f64>| x.map(Value::Float).unwrap_or(Value::Null);
        let windows = Value::Array(
            self.windows
                .iter()
                .map(|w| {
                    Value::Object(
                        Map::new()
                            .with("t_secs", w.t_secs)
                            .with("active", w.active)
                            .with("jain_fthr", opt(w.jain_fthr))
                            .with("mean_fthr", opt(w.mean_fthr))
                            .with("fast_util", w.fast_util),
                    )
                })
                .collect(),
        );
        let tenants = Value::Array(
            self.run
                .per_workload
                .iter()
                .map(|w| {
                    Value::Object(
                        Map::new()
                            .with("name", w.name.as_str())
                            .with("class", format!("{:?}", w.class))
                            .with("mean_ops_per_sec", w.mean_ops_per_sec)
                            .with("mean_latency_ns", w.mean_latency_ns)
                            .with("mean_fthr", w.mean_fthr)
                            .with("ops_total", w.ops_total),
                    )
                })
                .collect(),
        );
        Value::Object(
            Map::new()
                .with("policy", self.run.policy.as_str())
                .with("stats", stats)
                .with("windows", windows)
                .with(
                    "leaked_by_tier",
                    Value::Array(self.leaked_by_tier.iter().map(|&n| n.into()).collect()),
                )
                .with("mean_windowed_jain", opt(self.mean_windowed_jain()))
                .with("mean_windowed_fthr", opt(self.mean_windowed_fthr()))
                .with("p99_latency_ns", opt(self.p99_latency_ns()))
                .with("cfi", self.run.cfi)
                .with("tenants", tenants)
                .with("series", self.run.series.snapshot()),
        )
    }
}
