//! The parallel sweep contract: thread count is a throughput knob, never
//! a results knob. A fig10-style (policy × trial) grid must produce
//! byte-identical JSON artifacts and identical per-cell results whether
//! it runs on one thread or four.

use rayon::pool;
use vulcan::prelude::*;
use vulcan_bench::save_json;
use vulcan_bench::suite::{fig10_grid, thp_grid, SuiteOpts};
use vulcan_json::{Map, Value};

/// Render a grid's results the way the figure binaries do: one JSON row
/// per cell with every scalar the artifacts derive from (policy, seed,
/// CFI, per-workload totals) plus the full time series.
fn artifact_rows(results: &[RunResult], seeds: &[u64]) -> Vec<Value> {
    results
        .iter()
        .zip(seeds)
        .map(|(res, &seed)| {
            let mut workloads = Map::new();
            for w in &res.per_workload {
                workloads.insert(
                    w.name.clone(),
                    Map::new()
                        .with("ops_total", w.ops_total)
                        .with("mean_ops_per_sec", w.mean_ops_per_sec)
                        .with("mean_latency_ns", w.mean_latency_ns)
                        .with("mean_fthr", w.mean_fthr),
                );
            }
            Value::Object(
                Map::new()
                    .with("policy", res.policy.as_str())
                    .with("seed", seed)
                    .with("cfi", res.cfi)
                    .with("workloads", workloads)
                    .with("series", res.series.to_json()),
            )
        })
        .collect()
}

#[test]
fn sweep_artifacts_are_byte_identical_across_thread_counts() {
    // A scaled-down figure-10 grid: 4 policies × 2 trials of the §5.3
    // co-location, 10 quanta per cell.
    let opts = SuiteOpts {
        trials: 2,
        quanta_cap: Some(10),
    };

    pool::set_num_threads(1);
    let grid = fig10_grid(&opts);
    let seeds: Vec<u64> = grid.cells.iter().map(|c| c.seed).collect();
    let sequential = grid.run();

    pool::set_num_threads(4);
    let parallel = fig10_grid(&opts).run();

    assert_eq!(sequential.len(), 8);
    assert_eq!(parallel.len(), 8);

    // Identical RunResults, cell by cell, in declaration order.
    for (i, (s, p)) in sequential.iter().zip(&parallel).enumerate() {
        assert_eq!(s.policy, p.policy, "cell {i}: policy order diverged");
        assert_eq!(s.cfi, p.cfi, "cell {i} ({}): CFI diverged", s.policy);
        for (sw, pw) in s.per_workload.iter().zip(&p.per_workload) {
            assert_eq!(sw.ops_total, pw.ops_total, "cell {i}/{}", sw.name);
            assert_eq!(sw.mean_ops_per_sec, pw.mean_ops_per_sec);
            assert_eq!(sw.mean_latency_ns, pw.mean_latency_ns);
        }
        assert_eq!(
            s.series.to_json(),
            p.series.to_json(),
            "cell {i} ({}): series diverged",
            s.policy
        );
    }

    // Byte-identical JSON artifacts through the real save path.
    let p1 = save_json("determinism_threads1", &artifact_rows(&sequential, &seeds))
        .expect("write t1 artifact");
    let p4 = save_json("determinism_threads4", &artifact_rows(&parallel, &seeds))
        .expect("write t4 artifact");
    let b1 = std::fs::read(&p1).expect("read t1 artifact");
    let b4 = std::fs::read(&p4).expect("read t4 artifact");
    assert!(!b1.is_empty());
    assert_eq!(b1, b4, "artifacts differ between --threads 1 and 4");
}

#[test]
fn hot_path_grids_are_run_to_run_deterministic() {
    // The hot-path engine (flat heat table with open-addressed spillover,
    // per-thread walk caches, branchless Zipf sampling) must stay free of
    // address- or hash-order-dependent behaviour: two fresh runs of the
    // same quick-scale grids render byte-identical artifact JSON. The THP
    // grid keeps the huge-page walk/split path on the line; fig10 covers
    // the 4K demand-paging and hint-fault paths across all policies.
    let opts = SuiteOpts {
        trials: 1,
        quanta_cap: Some(10),
    };
    pool::set_num_threads(2);
    for (name, grid) in [
        ("thp", thp_grid as fn(&SuiteOpts) -> _),
        ("fig10", fig10_grid),
    ] {
        let first = grid(&opts);
        let seeds: Vec<u64> = first.cells.iter().map(|c| c.seed).collect();
        let a = artifact_rows(&first.run(), &seeds);
        let b = artifact_rows(&grid(&opts).run(), &seeds);
        let ja = Value::Array(a).to_json_pretty();
        let jb = Value::Array(b).to_json_pretty();
        assert!(!ja.is_empty());
        assert_eq!(
            ja, jb,
            "grid {name}: rerun produced different artifact bytes"
        );
    }
}

#[test]
fn suite_artifacts_are_byte_identical_across_shard_counts() {
    // The intra-cell analogue of the thread-count contract (ISSUE 7):
    // `--shards` splits one cell's sweep across core-disjoint worker
    // threads with a deterministic quantum-boundary merge, so a quick
    // fig10 grid must render byte-identical artifact JSON at 1 and 4
    // shards.
    let opts = SuiteOpts {
        trials: 1,
        quanta_cap: Some(10),
    };
    pool::set_num_threads(1);
    let baseline = fig10_grid(&opts);
    let seeds: Vec<u64> = baseline.cells.iter().map(|c| c.seed).collect();
    let a = artifact_rows(&baseline.run(), &seeds);

    let mut sharded = fig10_grid(&opts);
    for cell in &mut sharded.cells {
        cell.shards = 4;
    }
    let b = artifact_rows(&sharded.run(), &seeds);

    let ja = Value::Array(a).to_json_pretty();
    let jb = Value::Array(b).to_json_pretty();
    assert!(!ja.is_empty());
    assert_eq!(ja, jb, "artifacts differ between --shards 1 and 4");
}

#[test]
fn tiers_rows_are_identical_across_shard_counts() {
    // The chain-shape sweep (ISSUE 9) runs 3-tier machines; sharding
    // leases frames from *every* chain tier, so this is the test that
    // would catch a shard path still assuming the fast/slow pair.
    use vulcan_bench::tiers::{run_tiers, TiersOpts};
    pool::set_num_threads(2);
    let base = run_tiers(&TiersOpts::quick());
    assert!(
        base.violations.is_empty(),
        "baseline tiers sweep violated its contract: {:?}",
        base.violations
    );
    let sharded = run_tiers(&TiersOpts::quick().with_shards(4));
    assert!(
        sharded.violations.is_empty(),
        "sharded tiers sweep violated its contract: {:?}",
        sharded.violations
    );
    let ja = Value::Array(base.rows).to_json_pretty();
    let jb = Value::Array(sharded.rows).to_json_pretty();
    assert_eq!(ja, jb, "tiers rows differ between --shards 1 and 4");
}

#[test]
fn churn_rows_are_identical_across_shard_counts() {
    // The churn sweep steps cells through the typed QuantumOutcome API;
    // its windowed fairness rows must not move when the quantum sweep
    // is sharded.
    use vulcan_bench::churn::{run_churn, ChurnOpts};
    pool::set_num_threads(2);
    let base = run_churn(&ChurnOpts::quick());
    assert!(
        base.violations.is_empty(),
        "baseline churn sweep violated its contract: {:?}",
        base.violations
    );
    let sharded = run_churn(&ChurnOpts::quick().with_shards(4));
    assert!(
        sharded.violations.is_empty(),
        "sharded churn sweep violated its contract: {:?}",
        sharded.violations
    );
    let ja = Value::Array(base.rows).to_json_pretty();
    let jb = Value::Array(sharded.rows).to_json_pretty();
    assert_eq!(ja, jb, "churn rows differ between --shards 1 and 4");
}
