//! Per-access simulation: TLB → page walk → tier access, with demand
//! paging, hint faults and replication faults.
//!
//! Two drivers share the same per-access semantics:
//!
//! * the **scalar loop** ([`run_thread_quantum`]'s fallback): one
//!   [`simulate_access`] call per access, profiler fed inline;
//! * the **batched plane sweep** (DESIGN §11): the generator fills a
//!   struct-of-arrays [`AccessPlan`] for a whole chunk of ops, the TLB
//!   probes read-hit runs over the flat planes, only cold accesses
//!   (writes, misses, huge-region hits) drop into the full per-access
//!   path, and the profiler consumes the executed plane once per chunk
//!   via [`AccessBatch`]. Batching reorders *host* work only — simulated
//!   latencies, stats and heat contents are byte-identical because every
//!   reordered quantity (u64 latency sums, byte counters) commutes and
//!   every order-sensitive one (f64 heat records, generator RNG draws)
//!   is replayed in exact plane order.

use crate::state::{WorkloadState, WorkloadStats};
use vulcan_migrate::ShadowRegistry;
use vulcan_profile::{AccessBatch, AnyProfiler};
use vulcan_sim::{CoreId, FaultSite, Machine, Nanos, TierKind};
use vulcan_vm::{LocalTid, Process, TlbArray, Vpn};
use vulcan_workloads::AccessPlan;

/// Cost of linking a thread's private upper-level tables to a shared leaf
/// (a minor "replication fault", §3.6's manipulation overhead).
const REPLICATION_FAULT: Nanos = Nanos(400);

/// Cost of a major (demand-allocation) fault.
const MAJOR_FAULT: Nanos = Nanos(2_000);

/// Cost of a THP (2 MiB) demand fault — allocation plus clearing of a
/// whole region, amortized over 512 base pages of coverage.
const THP_FAULT: Nanos = Nanos(8_000);

/// Extra cost of the locked walk that sets the dirty bit on a write hit.
const DIRTY_WALK: Nanos = Nanos(5);

/// Modeled direct-reclaim stall charged when a demand allocation hits an
/// injected exhaustion and the fault path retries (ISSUE 5 degradation
/// contract: alloc faults degrade to a stall, never a panic).
const ALLOC_RETRY_STALL: Nanos = Nanos(10_000);

/// Ops per batched plane chunk. Large enough to amortize the per-chunk
/// profiler flush and latency loads, small enough that the rewind replay
/// on budget exhaustion stays cheap.
const BATCH_OPS: usize = 128;

/// Feed an access to the profiler unless the fault plan drops the
/// sample. A drop is self-recovering — the page's heat simply decays as
/// if it were cold — so the recovery is tallied at the injection point.
///
/// `drops_armed` is hoisted per thread-quantum: with no sample-drop plan
/// armed the per-access `FaultPlan` roll is skipped entirely, which is
/// byte-identical because a disabled or rate-0 roll returns `false`
/// without consuming RNG state or touching counters.
#[inline]
fn profile_access(
    machine: &mut Machine,
    profiler: &mut AnyProfiler,
    drops_armed: bool,
    vpn: Vpn,
    write: bool,
) {
    debug_assert_eq!(drops_armed, machine.faults.sample_drops_armed());
    if drops_armed && machine.faults.sample_dropped() {
        machine.faults.note_recovery(FaultSite::SampleDrop);
    } else {
        profiler.on_access(vpn, write);
    }
}

/// Simulate one memory access of `tid` to `vpn`; returns its latency.
/// Feeds the profiler inline (hint fault first, then the access), in
/// exactly the order the pre-batching scalar path used.
#[allow(clippy::too_many_arguments)]
pub(crate) fn simulate_access(
    machine: &mut Machine,
    tlbs: &mut TlbArray,
    process: &mut Process,
    profiler: &mut AnyProfiler,
    shadows: &mut ShadowRegistry,
    stats: &mut WorkloadStats,
    quota: u64,
    thp: bool,
    drops_armed: bool,
    core: CoreId,
    tid: LocalTid,
    vpn: Vpn,
    write: bool,
) -> Nanos {
    let (t, hint) = simulate_access_unprofiled(
        machine, tlbs, process, shadows, stats, quota, thp, core, tid, vpn, write,
    );
    // Profiler events trail the machine state changes of the access they
    // belong to, and the hint fault precedes the access itself — the
    // same sequence the monolithic path produced. Neither call touches
    // machine state except the (armed-only) sample-drop roll, which in
    // the monolithic path also ran after every allocation roll of this
    // access.
    if hint {
        profiler.on_hint_fault(vpn, write);
    }
    profile_access(machine, profiler, drops_armed, vpn, write);
    t
}

/// The machine/VM side of one access, with every profiler call hoisted
/// out: returns the access latency and whether it took a hint fault (the
/// caller owes the profiler `on_hint_fault` + `on_access`, in that
/// order). The batched sweep defers those to a per-chunk plane flush.
#[allow(clippy::too_many_arguments)]
// Allow-listed for the ISSUE 5 lint gate: every expect below guards a
// mapping invariant established earlier on the same path (a page just
// mapped, touched or capacity-checked), not an external condition.
#[allow(clippy::expect_used)]
fn simulate_access_unprofiled(
    machine: &mut Machine,
    tlbs: &mut TlbArray,
    process: &mut Process,
    shadows: &mut ShadowRegistry,
    stats: &mut WorkloadStats,
    quota: u64,
    thp: bool,
    core: CoreId,
    tid: LocalTid,
    vpn: Vpn,
    write: bool,
) -> (Nanos, bool) {
    let ac = &machine.spec().access_costs;
    let (tlb_hit, walk, minor_fault) = (ac.tlb_hit, ac.walk, ac.minor_fault);
    let mut t = tlb_hit;

    // THP-backed region: one 2 MiB TLB entry covers 512 base pages.
    if process.space.in_huge(vpn) {
        let hit = tlbs.core(core).lookup_huge(process.asid, vpn);
        if !hit {
            t += walk;
        }
        // Hardware still maintains A/D on the (split-ready) base PTEs.
        let out = process
            .space
            .touch(vpn, tid, write)
            .expect("huge-marked region is mapped");
        if !hit {
            tlbs.core(core).insert_huge(process.asid, vpn);
            if out.replication_fault {
                stats.replication_faults += 1;
                t += REPLICATION_FAULT;
            }
        }
        let frame = out.pte.frame().expect("mapped");
        let tier = frame.tier;
        let lat = machine.access_latency(tier);
        t += lat;
        machine.record_access(tier);
        if tier == TierKind::Fast {
            stats.fast_q += 1;
        } else {
            stats.slow_q += 1; // every non-fast chain tier counts against FTHR
        }
        if write {
            stats.write_bytes_q += 64;
        } else {
            stats.read_bytes_q += 64;
        }
        stats.mem_time_q += lat;
        return (t, false);
    }

    let mut hint = false;
    let cached = tlbs.core(core).lookup(process.asid, vpn);
    let frame = match cached {
        Some(f) if !write => f,
        Some(f) => {
            // Write hit: hardware performs a locked walk to set D.
            t += DIRTY_WALK;
            match process.space.touch(vpn, tid, true) {
                Some(out) => {
                    if out.hint_fault {
                        stats.hint_faults += 1;
                        t += minor_fault;
                        hint = true;
                        stats.hint_faulted_pages.push((vpn, true));
                    }
                    out.pte.frame().expect("touched mapped page")
                }
                None => f, // defensive: stale entry, use the cached frame
            }
        }
        None => {
            t += walk;
            let out = match process.space.touch(vpn, tid, write) {
                Some(o) => o,
                None => {
                    // Major fault: demand-allocate, preferring the fast
                    // tier while the workload is under its quota.
                    stats.major_faults += 1;
                    let pref = if stats.fast_used < quota {
                        TierKind::Fast
                    } else {
                        TierKind::Slow
                    };
                    if thp && try_thp_fault(machine, process, stats, pref, tid, vpn) {
                        t += THP_FAULT;
                        tlbs.core(core).insert_huge(process.asid, vpn);
                        process.space.touch(vpn, tid, write).expect("just mapped");
                        // Account the access against the mapped tier.
                        let pte = process.space.pte(vpn);
                        let tier = pte.tier().expect("mapped");
                        let lat = machine.access_latency(tier);
                        machine.record_access(tier);
                        if tier == TierKind::Fast {
                            stats.fast_q += 1;
                        } else {
                            stats.slow_q += 1;
                        }
                        if write {
                            stats.write_bytes_q += 64;
                        } else {
                            stats.read_bytes_q += 64;
                        }
                        stats.mem_time_q += lat;
                        return (t + lat, false);
                    }
                    t += MAJOR_FAULT;
                    let frame = match machine.alloc_with_fallback(pref) {
                        Ok(f) => f,
                        Err(_) => {
                            if machine.last_alloc_injected() {
                                // Injected exhaustion: charge the modeled
                                // direct-reclaim stall the kernel would
                                // take, then retry without injection. The
                                // injection flag reports on the *final*
                                // fallback attempt, so the recovery is
                                // attributed to the spill terminus.
                                t += ALLOC_RETRY_STALL;
                                let terminus = machine.spill_terminus(pref);
                                machine.faults.note_recovery(FaultSite::alloc_for(terminus));
                            }
                            match machine.alloc_with_fallback_uninjected(pref) {
                                Ok(f) => f,
                                Err(_) => {
                                    // Both tiers genuinely full: reclaim
                                    // shadow frames and retry once more.
                                    for f in shadows.evict(64) {
                                        machine.free(f);
                                    }
                                    #[allow(clippy::expect_used)]
                                    // invariant: specs size tiers below combined RSS
                                    machine
                                        .alloc_with_fallback_uninjected(pref)
                                        .expect("tiers sized below combined RSS")
                                }
                            }
                        }
                    };
                    if frame.tier == TierKind::Fast {
                        stats.fast_used += 1;
                    }
                    process.space.map(vpn, frame, tid);
                    process.space.touch(vpn, tid, write).expect("just mapped")
                }
            };
            if out.hint_fault {
                stats.hint_faults += 1;
                t += minor_fault;
                hint = true;
                stats.hint_faulted_pages.push((vpn, write));
            }
            if out.replication_fault {
                stats.replication_faults += 1;
                t += REPLICATION_FAULT;
            }
            let frame = out.pte.frame().expect("mapped");
            tlbs.core(core).insert(process.asid, vpn, frame);
            frame
        }
    };

    let tier = frame.tier;
    let lat = machine.access_latency(tier);
    t += lat;
    machine.record_access(tier);
    if tier == TierKind::Fast {
        stats.fast_q += 1;
    } else {
        stats.slow_q += 1;
    }
    if write {
        stats.write_bytes_q += 64;
    } else {
        stats.read_bytes_q += 64;
    }
    stats.mem_time_q += lat;
    (t, hint)
}

/// Try to service a major fault with a whole 2 MiB region: every page of
/// the region must be unmapped and the preferred tier must have 512 free
/// frames (THP does not straddle tiers). Returns true on success.
fn try_thp_fault(
    machine: &mut Machine,
    process: &mut Process,
    stats: &mut WorkloadStats,
    pref: TierKind,
    tid: LocalTid,
    vpn: Vpn,
) -> bool {
    let base = vpn.huge_base();
    let span = vulcan_sim::HUGE_PAGE_PAGES as u64;
    if machine.free_pages(pref) < span {
        return false;
    }
    for v in base.0..base.0 + span {
        if process.space.is_mapped(Vpn(v)) {
            return false; // partially populated region: fall back to 4K
        }
    }
    for v in base.0..base.0 + span {
        // The capacity check above makes genuine exhaustion impossible,
        // but an injected allocation fault can still fail mid-region:
        // unwind the partial mapping and fall back to the 4K path (the
        // kernel's THP fallback), leaking nothing.
        let frame = match machine.alloc(pref) {
            Ok(f) => f,
            Err(_) => {
                debug_assert!(machine.last_alloc_injected(), "capacity was checked");
                for u in base.0..v {
                    if let Some(pte) = process.space.unmap(Vpn(u)) {
                        if let Some(f) = pte.frame() {
                            machine.free(f);
                        }
                    }
                }
                machine.faults.note_recovery(FaultSite::alloc_for(pref));
                return false;
            }
        };
        process.space.map(Vpn(v), frame, tid);
    }
    if pref == TierKind::Fast {
        stats.fast_used += span;
    }
    process.space.mark_huge(base);
    true
}

/// Run one thread of a workload for (at least) `budget` of simulated time,
/// completing whole operations. Dispatches to the batched plane sweep
/// when `batched` is requested, the generator supports plan filling, and
/// no fault plan is armed (fault rolls are interleaved per access, so
/// injection runs force the scalar loop).
// Allow-listed for the ISSUE 5 lint gate: thread indices and core
// pinning are construction-time invariants, not runtime conditions.
#[allow(clippy::expect_used)]
pub(crate) fn run_thread_quantum(
    machine: &mut Machine,
    tlbs: &mut TlbArray,
    ws: &mut WorkloadState,
    thread_idx: usize,
    budget: Nanos,
    batched: bool,
) {
    if budget == Nanos::ZERO {
        ws.stats.active_q += Nanos::ZERO;
        return;
    }
    if batched && ws.gen.batchable() && !machine.faults.is_enabled() {
        run_thread_quantum_batched(machine, tlbs, ws, thread_idx, budget);
        return;
    }
    let quota = ws.effective_quota();
    let thp = ws.spec.thp;
    let drops_armed = machine.faults.sample_drops_armed();
    let tid = LocalTid(u8::try_from(thread_idx).expect("thread index fits the 7-bit PTE field"));
    let WorkloadState {
        gen,
        rngs,
        process,
        profiler,
        shadows,
        stats,
        ..
    } = ws;
    // Threads are pinned at construction and never migrate between
    // cores, so the (linear-scan) topology lookup is hoisted out of the
    // per-access loop.
    let core = machine
        .topology
        .core_of(process.sim_thread(tid))
        .expect("threads are pinned at construction");
    let rng = &mut rngs[thread_idx];
    let mut buf: Vec<vulcan_workloads::PageAccess> = Vec::with_capacity(16);
    let mut used = Nanos::ZERO;
    while used < budget {
        buf.clear();
        gen.next_op(thread_idx, rng, &mut buf);
        let mut t = gen.fixed_op_nanos();
        for a in &buf {
            t += simulate_access(
                machine,
                tlbs,
                process,
                profiler,
                shadows,
                stats,
                quota,
                thp,
                drops_armed,
                core,
                tid,
                Vpn(a.offset),
                a.write,
            );
        }
        used += t;
        stats.ops_q += 1;
        stats.ops_total += 1;
        stats.op_latency_q += t;
    }
    ws.stats.active_q += used;
}

/// The batched plane sweep (DESIGN §11). Per chunk of [`BATCH_OPS`] ops:
///
/// 1. **fill** — the generator writes a struct-of-arrays [`AccessPlan`]
///    (RNG snapshot taken first, for the budget-exhaustion rewind);
/// 2. **probe** — [`Tlb::probe_read_one`](vulcan_vm::Tlb) consumes runs
///    of base-page read hits per op segment, applying exactly
///    `lookup`'s clock/stamp/hit effects, while hit latencies
///    accumulate as `count × loaded-latency` (u64 products, so sums
///    match the scalar order bit-for-bit);
/// 3. **cold** — the access that stopped the probe (a write, a
///    huge-region page, or a TLB miss) runs the full
///    [`simulate_access_unprofiled`] walk/fault path;
/// 4. **flush** — the executed plane prefix feeds the profiler once via
///    [`AnyProfiler::on_access_batch`], hint positions interleaved in
///    plane order, reproducing the scalar event sequence exactly.
///
/// Budget is checked per op, as in the scalar loop. If it exhausts
/// mid-chunk, the generator and RNG are rewound to the op boundary by
/// replaying the fill for the consumed prefix.
#[allow(clippy::expect_used)] // same construction-time invariants as the scalar loop
fn run_thread_quantum_batched(
    machine: &mut Machine,
    tlbs: &mut TlbArray,
    ws: &mut WorkloadState,
    thread_idx: usize,
    budget: Nanos,
) {
    let quota = ws.effective_quota();
    let thp = ws.spec.thp;
    let tid = LocalTid(u8::try_from(thread_idx).expect("thread index fits the 7-bit PTE field"));
    let WorkloadState {
        gen,
        rngs,
        process,
        profiler,
        shadows,
        stats,
        ..
    } = ws;
    let core = machine
        .topology
        .core_of(process.sim_thread(tid))
        .expect("threads are pinned at construction");
    let rng = &mut rngs[thread_idx];
    let fixed = gen.fixed_op_nanos();
    let tlb_hit = machine.spec().access_costs.tlb_hit;
    let asid = process.asid;

    let mut plan = AccessPlan::default();
    let mut scratch = AccessPlan::default();
    let mut hints: Vec<u32> = Vec::new();
    let mut used = Nanos::ZERO;

    while used < budget {
        plan.clear();
        let snapshot = rng.clone();
        let filled = gen.fill_batch(thread_idx, rng, &mut plan, BATCH_OPS);
        debug_assert!(filled > 0 && filled <= BATCH_OPS);
        hints.clear();
        // Loaded latencies only change at quantum boundaries; one load
        // per chunk also keeps the oracle's Latency lockstep check warm.
        // Indexed by `TierKind::index()`; tiers absent from the chain
        // never receive hits, so their entries multiply zeros.
        let lat: [Nanos; vulcan_sim::MAX_TIERS] = TierKind::ALL.map(|t| machine.access_latency(t));
        // Huge regions appear only through THP faults, so a chunk that
        // starts with none (and no THP) can skip the per-access
        // `in_huge` screen entirely.
        let huge_possible = thp || process.space.huge_count() > 0;
        // Tier hits fold into per-chunk counters; every reordered
        // quantity is a u64 sum, so totals match the scalar order
        // bit-for-bit.
        let mut chunk_hits = [0u64; vulcan_sim::MAX_TIERS];
        let mut executed = 0usize; // accesses of the plan actually run
        let mut ops_done = 0usize;
        for op in 0..filled {
            let (start, end) = plan.op_range(op);
            let mut hits = [0u64; vulcan_sim::MAX_TIERS];
            let mut cold = Nanos::ZERO;
            let mut i = start;
            while i < end {
                // Hot run: consecutive base-page read hits, probed with
                // `lookup`'s exact side effects and no per-access
                // accounting beyond the per-tier hit counters.
                {
                    let tlb = tlbs.core(core);
                    while i < end {
                        if plan.writes[i] {
                            break;
                        }
                        let vpn = Vpn(plan.offsets[i]);
                        if huge_possible && process.space.in_huge(vpn) {
                            break;
                        }
                        match tlb.probe_read_one(asid, vpn) {
                            Some(frame) => {
                                hits[frame.tier.index()] += 1;
                                i += 1;
                            }
                            None => break,
                        }
                    }
                }
                if i < end {
                    // The access that stopped the run: a write, a
                    // huge-region page, or a TLB miss.
                    let (dt, hint) = simulate_access_unprofiled(
                        machine,
                        tlbs,
                        process,
                        shadows,
                        stats,
                        quota,
                        thp,
                        core,
                        tid,
                        Vpn(plan.offsets[i]),
                        plan.writes[i],
                    );
                    cold += dt;
                    if hint {
                        hints.push(i as u32);
                    }
                    i += 1;
                }
            }
            let reads: u64 = hits.iter().sum();
            let mem: u64 = lat.iter().zip(&hits).map(|(l, &h)| l.0 * h).sum();
            let t = fixed + Nanos(tlb_hit.0 * reads + mem) + cold;
            for (c, h) in chunk_hits.iter_mut().zip(&hits) {
                *c += h;
            }
            used += t;
            stats.ops_q += 1;
            stats.ops_total += 1;
            stats.op_latency_q += t;
            ops_done = op + 1;
            executed = end;
            if used >= budget {
                break;
            }
        }
        let reads: u64 = chunk_hits.iter().sum();
        stats.fast_q += chunk_hits[TierKind::Fast.index()];
        // FTHR's denominator splits fast vs everything below it, so all
        // non-fast chain tiers fold into `slow_q`.
        stats.slow_q += reads - chunk_hits[TierKind::Fast.index()];
        stats.read_bytes_q += 64 * reads;
        stats.mem_time_q += Nanos(lat.iter().zip(&chunk_hits).map(|(l, &h)| l.0 * h).sum());
        for (t, &h) in TierKind::ALL.iter().zip(&chunk_hits) {
            machine.record_accesses(*t, h);
        }
        // One profiler flush per chunk, over the executed plane prefix.
        profiler.on_access_batch(&AccessBatch {
            offsets: &plan.offsets[..executed],
            writes: &plan.writes[..executed],
            hints: &hints,
        });
        if ops_done < filled {
            // Budget exhausted mid-chunk: rewind generator and RNG to the
            // consumed op boundary by replaying the fill for exactly the
            // executed ops, leaving both as `ops_done` scalar `next_op`
            // calls would have.
            gen.rollback_ops(thread_idx, filled);
            *rng = snapshot;
            scratch.clear();
            let refilled = gen.fill_batch(thread_idx, rng, &mut scratch, ops_done);
            debug_assert_eq!(refilled, ops_done);
            debug_assert_eq!(
                scratch.offsets.as_slice(),
                &plan.offsets[..executed],
                "rewind replay must reproduce the executed plan prefix"
            );
        }
    }
    ws.stats.active_q += used;
}
