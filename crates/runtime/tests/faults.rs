//! Fault-injection and departure regression tests (ISSUE 5): the
//! degradation contract of the runtime layer, exercised through the
//! public crate API.
//!
//! * Allocation exhaustion — injected or genuine — degrades to a
//!   modeled stall plus retry (4 KiB) or an unwound fallback (THP),
//!   never a panic, and never leaks a frame.
//! * A workload departing with async transactions in flight has those
//!   transactions aborted and *attributed to itself*: survivors' abort
//!   statistics are untouched and their frames conserved.

use vulcan_profile::PebsProfiler;
use vulcan_runtime::{SimConfig, SimRunner, StaticPlacement, SystemState, TieringPolicy};
use vulcan_sim::{FaultConfig, FaultSite, MachineSpec, Nanos, TierKind};
use vulcan_vm::Vpn;
use vulcan_workloads::{microbench, MicroConfig, WorkloadSpec};

fn runner(
    machine: MachineSpec,
    specs: Vec<WorkloadSpec>,
    policy: Box<dyn TieringPolicy>,
    cfg: SimConfig,
) -> SimRunner {
    SimRunner::builder()
        .machine(machine)
        .workloads(specs)
        .profiler_factory(|_| Box::new(PebsProfiler::new(4)))
        .policy(policy)
        .config(cfg)
        .build()
}

fn micro_spec(name: &str, rss: u64, wss: u64) -> WorkloadSpec {
    microbench(
        name,
        MicroConfig {
            rss_pages: rss,
            wss_pages: wss,
            ..Default::default()
        },
        2,
    )
}

fn faulty_cfg(site: FaultSite, rate: f64, n_quanta: u64) -> SimConfig {
    SimConfig {
        quantum_active: Nanos::micros(200),
        n_quanta,
        faults: FaultConfig::single(site, rate),
        ..Default::default()
    }
}

/// Tear down every workload and assert both allocators drained to zero.
fn assert_frames_conserved(state: &mut SystemState) {
    for w in 0..state.workloads.len() {
        state.teardown(w);
    }
    for tier in [TierKind::Fast, TierKind::Slow] {
        assert_eq!(
            state.machine.allocator(tier).used_frames(),
            0,
            "{tier:?} frames leaked after teardown"
        );
    }
}

/// Regression (ISSUE 5): before the typed-error rework, an injected
/// fast-tier exhaustion on the major-fault path hit an `expect` deep in
/// the allocator plumbing and killed the run. It now stalls, retries
/// uninjected, and completes.
#[test]
fn injected_alloc_exhaustion_degrades_to_stall_and_retry() {
    let mut r = runner(
        MachineSpec::small(256, 4_096, 8),
        vec![micro_spec("a", 512, 128), micro_spec("b", 512, 128)],
        Box::new(StaticPlacement),
        faulty_cfg(FaultSite::AllocFast, 0.8, 8),
    );
    for _ in 0..8 {
        r.run_quantum();
    }
    let stats = r.state.machine.faults.stats().clone();
    let idx = FaultSite::AllocFast.index();
    assert!(stats.injected[idx] > 0, "faults were scheduled");
    assert!(stats.recovered[idx] > 0, "every exhaustion was recovered");
    assert_frames_conserved(&mut r.state);
    let res = r.into_result();
    assert!(res.workload("a").ops_total > 0);
    assert!(res.workload("b").ops_total > 0);
}

/// A THP allocation that faults mid-region unwinds the partially built
/// huge mapping (regression: the unwind used to leak the already-mapped
/// base frames) and falls back to 4 KiB pages.
#[test]
fn thp_fault_unwinds_and_falls_back_to_base_pages() {
    use vulcan_sim::HUGE_PAGE_PAGES;
    let spec = microbench(
        "thp",
        MicroConfig {
            rss_pages: 8 * HUGE_PAGE_PAGES as u64,
            wss_pages: 4 * HUGE_PAGE_PAGES as u64,
            skew: 0.6,
            ..Default::default()
        },
        2,
    )
    .with_thp();
    let mut r = runner(
        MachineSpec::small(4 * HUGE_PAGE_PAGES as u64, 32 * HUGE_PAGE_PAGES as u64, 8),
        vec![spec],
        Box::new(StaticPlacement),
        faulty_cfg(FaultSite::AllocFast, 0.5, 6),
    );
    for _ in 0..6 {
        r.run_quantum();
    }
    let stats = r.state.machine.faults.stats().clone();
    let idx = FaultSite::AllocFast.index();
    assert!(stats.injected[idx] > 0);
    assert!(stats.recovered[idx] > 0);
    assert_frames_conserved(&mut r.state);
    assert!(r.into_result().workload("thp").ops_total > 0);
}

/// Promotes a batch of slow-resident pages asynchronously every quantum
/// — enough to keep transactions in flight across quantum boundaries.
struct AsyncPromoter;

impl TieringPolicy for AsyncPromoter {
    fn name(&self) -> &'static str {
        "async-promoter"
    }

    fn on_quantum(&mut self, state: &mut SystemState) {
        for w in 0..state.n_workloads() {
            let pages: Vec<Vpn> = {
                let ws = &state.workloads[w];
                ws.process
                    .space
                    .mapped_vpns()
                    .filter(|&v| {
                        ws.process.space.pte(v).tier() == Some(TierKind::Slow)
                            && !ws.async_migrator.is_inflight(v)
                    })
                    .take(32)
                    .collect()
            };
            if !pages.is_empty() {
                state.migrate_async(w, &pages, TierKind::Fast);
            }
        }
    }
}

/// Satellite 3: tearing a workload down while its async transactions are
/// in flight aborts them, charges the aborts to the *departing*
/// workload's statistics, and conserves every frame.
#[test]
fn departure_with_inflight_async_attributes_aborts_to_departing_workload() {
    let specs = vec![
        micro_spec("dep", 512, 64).preallocated(TierKind::Slow),
        micro_spec("stay", 512, 64).preallocated(TierKind::Slow),
    ];
    let mut r = runner(
        MachineSpec::small(2_048, 4_096, 8),
        specs,
        Box::new(AsyncPromoter),
        SimConfig {
            quantum_active: Nanos::micros(200),
            n_quanta: 0,
            ..Default::default()
        },
    );
    r.run_quantum();
    assert!(
        r.state.workloads[0].async_migrator.inflight() > 0,
        "promoter keeps transactions in flight across the boundary"
    );
    let survivor_aborts = r.state.workloads[1].async_migrator.stats.aborted;

    r.state.teardown(0);

    let dep = &r.state.workloads[0];
    assert!(dep.departed);
    assert!(
        dep.async_migrator.stats.aborted > 0,
        "in-flight transactions abort on departure"
    );
    assert_eq!(dep.async_migrator.inflight(), 0);
    assert_eq!(
        r.state.workloads[1].async_migrator.stats.aborted, survivor_aborts,
        "survivor is not charged for the departing workload's aborts"
    );

    // The survivor keeps running normally after the departure.
    let before = r.state.workloads[1].stats.ops_total;
    r.run_quantum();
    assert!(r.state.workloads[1].stats.ops_total > before);
    assert_frames_conserved(&mut r.state);
}

/// The same departure driven by the runner itself (`stopping_at`), under
/// fault injection for good measure: the run completes, the departed
/// workload stays down, and teardown conserves frames.
#[test]
fn runner_driven_departure_with_faults_conserves_frames() {
    let specs = vec![
        micro_spec("dep", 512, 64)
            .preallocated(TierKind::Slow)
            .stopping_at(Nanos::micros(600)),
        micro_spec("stay", 512, 64).preallocated(TierKind::Slow),
    ];
    let mut r = runner(
        MachineSpec::small(2_048, 4_096, 8),
        specs,
        Box::new(AsyncPromoter),
        faulty_cfg(FaultSite::CopyFail, 0.3, 6),
    );
    for _ in 0..6 {
        r.run_quantum();
    }
    assert!(r.state.workloads[0].departed, "stop time passed mid-run");
    assert!(!r.state.workloads[1].departed);
    assert!(r.state.workloads[1].stats.ops_total > 0);
    assert_frames_conserved(&mut r.state);
}

/// ISSUE 6 satellite: a tenant arriving in the same quantum another
/// departs (the churn engine's departure → same-tick admission path).
/// The spawn must reuse the freed capacity, leave the survivor's
/// statistics untouched at the spawn instant, and conserve frames.
#[test]
fn arrival_during_departure_quantum_conserves_frames_and_survivor_stats() {
    let specs = vec![
        micro_spec("dep", 1_024, 128).preallocated(TierKind::Slow),
        micro_spec("stay", 1_024, 128).preallocated(TierKind::Slow),
    ];
    let mut r = runner(
        MachineSpec::small(1_024, 2_048, 8),
        specs,
        Box::new(AsyncPromoter),
        SimConfig {
            quantum_active: Nanos::micros(200),
            n_quanta: 0,
            ..Default::default()
        },
    );
    for _ in 0..2 {
        r.run_quantum();
    }

    // Departure and arrival inside one quantum boundary, like the churn
    // engine's event drain: teardown frees 1024 slow frames, and the
    // arriving tenant's prealloc takes them back.
    let free_before =
        r.state.machine.free_pages(TierKind::Fast) + r.state.machine.free_pages(TierKind::Slow);
    r.state.teardown(0);
    let survivor_ops = r.state.workloads[1].stats.ops_total;
    let survivor_stalls = r.state.workloads[1].stats.stall_cycles;
    let slot = r
        .spawn_workload(micro_spec("newcomer", 1_024, 128).preallocated(TierKind::Slow))
        .expect("freed capacity admits the newcomer");
    assert_eq!(slot, 2, "slots are append-only, never reused");
    assert_eq!(
        r.state.workloads[1].stats.ops_total, survivor_ops,
        "spawning does not execute the survivor"
    );
    assert_eq!(
        r.state.workloads[1].stats.stall_cycles, survivor_stalls,
        "spawning charges the survivor nothing"
    );
    let free_after =
        r.state.machine.free_pages(TierKind::Fast) + r.state.machine.free_pages(TierKind::Slow);
    // Not exactly frame-neutral: the departing tenant also frees the
    // shadow frames its async promotions left behind, so the machine
    // can only come out ahead.
    assert!(
        free_after >= free_before,
        "departure + equal-RSS arrival must not consume extra frames \
         ({free_before} free before, {free_after} after)"
    );

    // Everyone alive makes progress; the departed slot stays down.
    r.run_quantum();
    assert!(r.state.workloads[1].stats.ops_total > survivor_ops);
    assert!(r.state.workloads[2].stats.ops_total > 0);
    assert!(r.state.workloads[0].departed);
    assert_frames_conserved(&mut r.state);
}

/// ISSUE 6 satellite: an admission that must *wait* for a departure
/// (the churn engine's bounded queue). The spawn fails cleanly while the
/// machine is full — leaking nothing, touching no survivor state — and
/// succeeds after the departure frees capacity.
#[test]
fn departure_with_queued_admission_spawns_cleanly_after_capacity_frees() {
    let specs = vec![
        micro_spec("dep", 1_024, 128).preallocated(TierKind::Slow),
        micro_spec("stay", 1_024, 128).preallocated(TierKind::Slow),
    ];
    let mut r = runner(
        MachineSpec::small(1_024, 1_536, 8),
        specs,
        Box::new(StaticPlacement),
        SimConfig {
            quantum_active: Nanos::micros(200),
            n_quanta: 0,
            ..Default::default()
        },
    );
    r.run_quantum();

    // 2048 of 2560 frames preallocated: a 1024-page newcomer cannot be
    // admitted yet. The failed spawn must be a clean no-op.
    let used_fast = r.state.machine.allocator(TierKind::Fast).used_frames();
    let used_slow = r.state.machine.allocator(TierKind::Slow).used_frames();
    let survivor_ops = r.state.workloads[1].stats.ops_total;
    let err = r
        .spawn_workload(micro_spec("queued", 1_024, 128).preallocated(TierKind::Slow))
        .expect_err("machine is full");
    assert!(matches!(
        err,
        vulcan_runtime::SpawnError::OutOfMemory { missing_pages } if missing_pages > 0
    ));
    assert_eq!(r.state.n_workloads(), 2, "failed spawn leaves no slot");
    assert_eq!(
        r.state.machine.allocator(TierKind::Fast).used_frames(),
        used_fast,
        "failed spawn leaks no fast frame"
    );
    assert_eq!(
        r.state.machine.allocator(TierKind::Slow).used_frames(),
        used_slow,
        "failed spawn leaks no slow frame"
    );
    assert_eq!(r.state.workloads[1].stats.ops_total, survivor_ops);

    // The departure frees capacity; the queued admission now lands.
    r.state.teardown(0);
    let slot = r
        .spawn_workload(micro_spec("queued", 1_024, 128).preallocated(TierKind::Slow))
        .expect("departure freed enough frames");
    assert_eq!(slot, 2);
    r.run_quantum();
    assert!(
        r.state.workloads[2].stats.ops_total > 0,
        "admitted tenant runs"
    );
    assert!(
        r.state.workloads[1].stats.ops_total > survivor_ops,
        "survivor statistics advance untouched by the churn around it"
    );
    assert_frames_conserved(&mut r.state);
}
