//! # vulcan-metrics — fairness, statistics and reporting
//!
//! Jain's fairness index and the FTHR-weighted Cumulative Fairness Index
//! (equation 4, §5.3), summary statistics with 95% confidence intervals
//! (the paper's 10-trial error bars), named time series for the timeline
//! figures, and fixed-width table rendering for the bench harness.

#![warn(missing_docs)]

pub mod fairness;
pub mod planes;
pub mod report;
pub mod series;
pub mod stats;

pub use fairness::{jain_index, jain_index_checked, CfiAccumulator};
pub use planes::{PlaneSample, StatPlanes};
pub use report::{f1, f3, pm, Table};
pub use series::{SeriesSet, TimeSeries};
pub use stats::{mean_ci95, percentile, OnlineStats};
