//! Black-box LC/BE classification from utilization patterns (§3.3).
//!
//! "We then classify black-box workloads as either LC or BE based on
//! resource utilization patterns \[Themis\] to ensure differentiated QoS
//! guarantees." The observable signal on this substrate is the *memory
//! duty cycle*: latency-critical services spend most of each operation in
//! off-memory work (network, request handling) and issue sparse memory
//! accesses, while best-effort batch jobs are memory-bound sweeps. An EMA
//! of the per-quantum duty cycle with hysteresis keeps verdicts stable.

use crate::cbfrp::ServiceClass;

/// Per-workload duty-cycle classifier.
#[derive(Clone, Debug)]
pub struct Classifier {
    duty_ema: Vec<f64>,
    verdict: Vec<ServiceClass>,
    warm: Vec<u32>,
    /// Duty below this (memory time / active time) reads as LC.
    pub lc_threshold: f64,
    /// Hysteresis band around the threshold.
    pub hysteresis: f64,
    /// Quanta of warm-up before a verdict can flip from the default.
    pub warmup: u32,
}

/// EMA weight for the duty-cycle signal.
const DUTY_ALPHA: f64 = 0.3;

impl Classifier {
    /// A classifier for `n` workloads. Everyone starts as BE (the safe
    /// default: BE receives no reclaim privileges).
    pub fn new(n: usize) -> Classifier {
        Classifier {
            duty_ema: vec![0.0; n],
            verdict: vec![ServiceClass::BestEffort; n],
            warm: vec![0; n],
            lc_threshold: 0.5,
            hysteresis: 0.05,
            warmup: 2,
        }
    }

    /// Extend to `n` workloads (no-op if already covering them). A
    /// tenant admitted mid-run starts exactly like a fresh slot: zero
    /// duty history, the safe BE default, and a full warm-up before its
    /// verdict can flip.
    pub fn grow_to(&mut self, n: usize) {
        if n > self.verdict.len() {
            self.duty_ema.resize(n, 0.0);
            self.verdict.resize(n, ServiceClass::BestEffort);
            self.warm.resize(n, 0);
        }
    }

    /// Feed one quantum's duty cycle for workload `i`.
    pub fn observe(&mut self, i: usize, memory_duty: f64) {
        debug_assert!((0.0..=1.0 + 1e-9).contains(&memory_duty));
        let e = &mut self.duty_ema[i];
        *e = DUTY_ALPHA * memory_duty + (1.0 - DUTY_ALPHA) * *e;
        self.warm[i] = self.warm[i].saturating_add(1);
        if self.warm[i] < self.warmup {
            return;
        }
        // Hysteresis: flip only past the band edges.
        match self.verdict[i] {
            ServiceClass::BestEffort if *e < self.lc_threshold - self.hysteresis => {
                self.verdict[i] = ServiceClass::LatencyCritical;
            }
            ServiceClass::LatencyCritical if *e > self.lc_threshold + self.hysteresis => {
                self.verdict[i] = ServiceClass::BestEffort;
            }
            _ => {}
        }
    }

    /// Current verdict for workload `i`.
    pub fn class(&self, i: usize) -> ServiceClass {
        self.verdict[i]
    }

    /// All verdicts.
    pub fn classes(&self) -> &[ServiceClass] {
        &self.verdict
    }

    /// The smoothed duty cycle of workload `i`.
    pub fn duty(&self, i: usize) -> f64 {
        self.duty_ema[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ServiceClass::{BestEffort as BE, LatencyCritical as LC};

    #[test]
    fn sparse_access_pattern_reads_as_lc() {
        let mut c = Classifier::new(1);
        for _ in 0..10 {
            c.observe(0, 0.15); // memcached-like duty
        }
        assert_eq!(c.class(0), LC);
    }

    #[test]
    fn memory_bound_pattern_reads_as_be() {
        let mut c = Classifier::new(1);
        for _ in 0..10 {
            c.observe(0, 0.9); // liblinear-like duty
        }
        assert_eq!(c.class(0), BE);
    }

    #[test]
    fn default_is_be_until_warm() {
        let mut c = Classifier::new(1);
        assert_eq!(c.class(0), BE);
        c.observe(0, 0.1);
        assert_eq!(c.class(0), BE, "one quantum is not enough evidence");
    }

    #[test]
    fn hysteresis_prevents_flapping() {
        let mut c = Classifier::new(1);
        for _ in 0..20 {
            c.observe(0, 0.2);
        }
        assert_eq!(c.class(0), LC);
        // Oscillate right at the threshold: verdict must hold.
        for _ in 0..20 {
            c.observe(0, 0.52);
        }
        assert_eq!(c.class(0), LC, "within the hysteresis band");
        // Clear evidence flips it.
        for _ in 0..30 {
            c.observe(0, 0.95);
        }
        assert_eq!(c.class(0), BE);
    }

    #[test]
    fn grow_to_gives_newcomers_a_fresh_warmup() {
        let mut c = Classifier::new(1);
        for _ in 0..10 {
            c.observe(0, 0.15);
        }
        assert_eq!(c.class(0), LC);
        c.grow_to(2);
        assert_eq!(c.class(0), LC, "existing verdict untouched");
        assert_eq!(c.class(1), BE, "newcomer starts at the safe default");
        c.observe(1, 0.1);
        assert_eq!(c.class(1), BE, "newcomer warms up from scratch");
        for _ in 0..10 {
            c.observe(1, 0.1);
        }
        assert_eq!(c.class(1), LC);
    }

    #[test]
    fn independent_workloads() {
        let mut c = Classifier::new(2);
        for _ in 0..10 {
            c.observe(0, 0.1);
            c.observe(1, 0.9);
        }
        assert_eq!(c.classes(), &[LC, BE]);
        assert!(c.duty(0) < c.duty(1));
    }
}
