//! `vulcan-bench` — drive the evaluation's simulation grids through one
//! code path.
//!
//! ```text
//! vulcan-bench suite                      run every simulation grid
//! vulcan-bench suite fig10 ablation       run a subset
//! vulcan-bench suite --quick --threads 2  CI-scale run on two threads
//! vulcan-bench suite --list               index of all 14 targets
//! ```
//!
//! The figure binaries (`fig10`, `ablation`, …) render full tables and
//! figure artifacts; this driver replays their grids (same cells, same
//! seeds) and writes a per-cell summary to
//! `target/experiments/suite.json`. Wall-clock timings are deliberately
//! excluded from the artifact so it is deterministic across machines and
//! thread counts.

use vulcan_bench::suite::{SuiteOpts, SUITE};

const USAGE: &str = "\
vulcan-bench — evaluation suite driver (Vulcan reproduction)

USAGE:
    vulcan-bench suite [TARGETS...] [OPTIONS]   run simulation grids
    vulcan-bench help                           this text

OPTIONS (suite):
    --quick        CI scale: 1 trial per point, quanta capped at 20
    --threads <N>  thread-pool size (RAYON_NUM_THREADS is the env knob)
    --list         list all 14 targets and exit

Targets default to every simulation grid; analytic targets (fig2, fig3,
fig7, table1, table2) have no grid and are skipped with a note.
";

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn cmd_suite(args: &[String]) {
    let mut quick = false;
    let mut list = false;
    let mut names: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--list" => list = true,
            "--threads" => {
                let n = it
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or_else(|| usage_error("--threads needs a positive integer"));
                rayon::pool::set_num_threads(n);
            }
            flag if flag.starts_with("--threads=") => {
                let n = flag["--threads=".len()..]
                    .parse::<usize>()
                    .unwrap_or_else(|_| usage_error("--threads needs a positive integer"));
                rayon::pool::set_num_threads(n);
            }
            flag if flag.starts_with("--") => usage_error(&format!("unknown option '{flag}'")),
            name => names.push(name.to_string()),
        }
    }

    if list {
        for entry in SUITE.iter() {
            let kind = if entry.build.is_some() {
                "simulation grid"
            } else {
                "analytic (no grid)"
            };
            println!("{:<18} {kind}", entry.name);
        }
        return;
    }

    for name in &names {
        if !SUITE.iter().any(|e| e.name == name.as_str()) {
            let all: Vec<&str> = SUITE.iter().map(|e| e.name).collect();
            usage_error(&format!(
                "unknown target '{name}' (expected one of: {})",
                all.join(", ")
            ));
        }
    }

    let opts = if quick {
        SuiteOpts::quick()
    } else {
        SuiteOpts::full()
    };
    let selected: Vec<_> = SUITE
        .iter()
        .filter(|e| names.is_empty() || names.iter().any(|n| n == e.name))
        .collect();

    let mut table = vulcan::metrics::Table::new(
        format!(
            "suite: per-cell results ({} threads)",
            rayon::pool::current_num_threads()
        ),
        &["experiment", "cell", "policy", "seed", "quanta", "CFI"],
    );
    let mut rows = Vec::new();
    for entry in selected {
        let Some(build) = entry.build else {
            eprintln!(
                "[suite] {}: analytic target, no simulation grid (run its binary)",
                entry.name
            );
            continue;
        };
        let exp = build(&opts);
        let results = exp.run();
        for (cell, res) in exp.cells.iter().zip(&results) {
            table.row(&[
                exp.name.clone(),
                cell.label.clone(),
                res.policy.clone(),
                cell.seed.to_string(),
                cell.quanta.to_string(),
                format!("{:.3}", res.cfi),
            ]);
            rows.push(vulcan_json::Value::Object(
                vulcan_json::Map::new()
                    .with("experiment", exp.name.as_str())
                    .with("cell", cell.label.as_str())
                    .with("policy", res.policy.as_str())
                    .with("seed", cell.seed)
                    .with("quanta", cell.quanta)
                    .with("cfi", res.cfi),
            ));
        }
    }
    table.print();
    vulcan_bench::save_json_or_exit("suite", &rows);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("suite") => cmd_suite(&args[1..]),
        Some("help") | Some("--help") | Some("-h") => print!("{USAGE}"),
        None => usage_error("missing subcommand"),
        Some(other) => usage_error(&format!("unknown subcommand '{other}'")),
    }
}
