//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this shim maps
//! the `par_iter` / `into_par_iter` entry points onto ordinary
//! sequential iterators. Callers keep their code shape (and gain real
//! parallelism again the moment the genuine crate is available); the
//! semantics are identical because the workspace only uses rayon for
//! independent, order-insensitive work items.

pub mod prelude {
    //! The usual glob import, mirroring `rayon::prelude`.

    /// `into_par_iter()` for owned collections and ranges — sequential
    /// in this shim.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Iterate the items (sequentially).
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator> IntoParallelIterator for T {}

    /// `par_iter()` for borrowed slices — sequential in this shim.
    pub trait IntoParallelRefIterator {
        /// The element type.
        type Item;
        /// Iterate shared references to the items (sequentially).
        fn par_iter(&self) -> std::slice::Iter<'_, Self::Item>;
    }

    impl<T> IntoParallelRefIterator for [T] {
        type Item = T;
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
    }

    impl<T> IntoParallelRefIterator for Vec<T> {
        type Item = T;
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let xs = [1, 2, 3, 4];
        let doubled: Vec<i32> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: i32 = (0..5).into_par_iter().sum();
        assert_eq!(sum, 10);
    }
}
