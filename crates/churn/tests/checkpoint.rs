//! Mid-churn restore-replay identity.
//!
//! The churn engine is the hardest checkpoint surface in the workspace:
//! the payload must carry the event queue (with original sequence
//! numbers so same-instant events keep their FIFO order), the decision
//! stream counters, the admission queue, and every tally — on top of
//! the runner's full machine/workload/policy state. These tests pin the
//! contract the CI round-trip step relies on: checkpoint at step `k`,
//! restore, `run_remaining()`, and the final report — including the
//! JSON artifact that `vulcan-sim churn --out` writes — is byte-equal
//! to the straight run's.

use vulcan_churn::{Catalog, ChurnConfig, ChurnEngine};
use vulcan_profile::PebsProfiler;
use vulcan_runtime::checkpoint::{parse_checkpoint, CheckpointError};
use vulcan_runtime::{SimConfig, SimRunner, StaticPlacement};
use vulcan_sim::{MachineSpec, Nanos};
use vulcan_workloads::{microbench, MicroConfig, WorkloadSpec};

fn anchors() -> Vec<WorkloadSpec> {
    vec![
        microbench(
            "anchor-a",
            MicroConfig {
                rss_pages: 256,
                wss_pages: 64,
                ..Default::default()
            },
            2,
        ),
        microbench(
            "anchor-b",
            MicroConfig {
                rss_pages: 256,
                wss_pages: 64,
                ..Default::default()
            },
            2,
        ),
    ]
}

fn runner(seed: u64, shards: usize) -> SimRunner {
    SimRunner::builder()
        .machine(MachineSpec::small(1_024, 16_384, 8))
        .workloads(anchors())
        .profiler_factory(|_| Box::new(PebsProfiler::new(4)))
        .policy(Box::new(StaticPlacement))
        .config(SimConfig {
            quantum_active: Nanos::micros(200),
            n_quanta: 0, // the engine owns stepping
            seed,
            shards,
            ..Default::default()
        })
        .build()
}

fn churny_cfg(n_quanta: u64) -> ChurnConfig {
    ChurnConfig {
        arrival_rate_per_sec: 6.0,
        lifetime_xm: Nanos::secs(2),
        lifetime_alpha: 1.5,
        n_quanta,
        compaction_period: Nanos::secs(4),
        ..Default::default()
    }
}

fn engine(seed: u64, n_quanta: u64, shards: usize) -> ChurnEngine {
    ChurnEngine::new(
        runner(seed, shards),
        seed,
        churny_cfg(n_quanta),
        Catalog::default_mix(),
    )
}

/// checkpoint@k → restore → run_remaining ≡ straight run, at shards 1
/// and 4, over several checkpoint positions including quantum 0 (before
/// the first step) — the artifact text itself must match, not just the
/// tallies.
#[test]
fn mid_churn_identity_shards_1_and_4() {
    let n_quanta = 24;
    for shards in [1usize, 4] {
        let straight = engine(42, n_quanta, shards).run();
        let straight_json = straight.to_value().to_json();
        for at in [0u64, 7, 15] {
            let mut e = engine(42, n_quanta, shards);
            for _ in 0..at {
                e.step();
            }
            let text = e.checkpoint().unwrap().to_json();
            let v = parse_checkpoint(&text).unwrap();
            let resumed = ChurnEngine::restore(
                &v,
                Box::new(StaticPlacement),
                |_: &WorkloadSpec| Box::new(PebsProfiler::new(4)),
                Catalog::default_mix(),
            )
            .unwrap();
            // Idempotency before replay: checkpoint(restore(c)) == c.
            assert_eq!(
                resumed.checkpoint().unwrap().to_json(),
                text,
                "re-checkpoint diverged at quantum {at}, shards {shards}"
            );
            let report = resumed.run_remaining();
            assert_eq!(report.stats, straight.stats, "at {at}, shards {shards}");
            assert_eq!(
                report.to_value().to_json(),
                straight_json,
                "artifact diverged for checkpoint at quantum {at}, shards {shards}"
            );
        }
    }
}

/// The churn section must survive with real pressure on every field:
/// pick a checkpoint point where tenants are live, the event queue is
/// non-trivial, and arrivals have been tallied.
#[test]
fn checkpoint_carries_live_churn_state() {
    let mut e = engine(42, 24, 1);
    for _ in 0..12 {
        e.step();
    }
    assert!(e.stats().arrivals > 0, "no arrivals after 12 steps");
    let v = e.checkpoint().unwrap();
    let churn = v.get("churn").expect("churn section");
    let entries = churn
        .get("events")
        .and_then(|ev| ev.get("entries"))
        .and_then(|x| x.as_array())
        .expect("event entries");
    assert!(
        !entries.is_empty(),
        "a live open-loop engine always has a scheduled arrival"
    );
}

/// A static-run checkpoint (no churn section) must be rejected with the
/// pointed error, not silently resumed as a rate-0 engine.
#[test]
fn restore_rejects_static_checkpoint() {
    let r = runner(42, 1);
    let text = r.checkpoint().unwrap().to_json();
    let v = parse_checkpoint(&text).unwrap();
    let err = ChurnEngine::restore(
        &v,
        Box::new(StaticPlacement),
        |_: &WorkloadSpec| Box::new(PebsProfiler::new(4)),
        Catalog::default_mix(),
    )
    .err()
    .expect("static checkpoint must not restore as a churn engine");
    match err {
        CheckpointError::Invalid(msg) => assert!(
            msg.contains("no \"churn\" section"),
            "unexpected message: {msg}"
        ),
        other => panic!("expected Invalid, got {other:?}"),
    }
}
