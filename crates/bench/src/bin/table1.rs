//! Table 1: page promotion priority and strategy — printed directly from
//! the implementation (`vulcan_core::queues::PageClass`), so the code and
//! the paper's table cannot drift apart.

use vulcan::core::PageClass;
use vulcan::prelude::Table;

fn main() {
    let mut table = Table::new(
        "Table 1: page promotion priority and strategy",
        &["page type", "read/write pattern", "priority", "strategy"],
    );
    for class in PageClass::ALL {
        let (ty, rw) = match class {
            PageClass::PrivateRead => ("Private", "Read-intensive"),
            PageClass::SharedRead => ("Shared", "Read-intensive"),
            PageClass::PrivateWrite => ("Private", "Write-intensive"),
            PageClass::SharedWrite => ("Shared", "Write-intensive"),
        };
        table.row(&[
            ty.into(),
            rw.into(),
            "★".repeat(class.stars() as usize),
            if class.use_async() {
                "Async copy"
            } else {
                "Sync copy"
            }
            .into(),
        ]);
    }
    table.print();
    vulcan_bench::save_json_or_exit(
        "table1",
        &PageClass::ALL
            .iter()
            .map(|c| {
                vulcan_json::Value::Object(
                    vulcan_json::Map::new()
                        .with("class", format!("{c:?}"))
                        .with("stars", c.stars())
                        .with("async", c.use_async()),
                )
            })
            .collect::<Vec<_>>(),
    );
}
