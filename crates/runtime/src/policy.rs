//! The tiering-policy interface.
//!
//! A policy observes the whole system once per quantum and issues
//! promotions/demotions through [`SystemState`]'s migration helpers.
//! Baselines (TPP, Memtis, Nomad) live in `vulcan-policy`; the paper's
//! contribution lives in `vulcan-core`. Both implement this trait.

use crate::state::SystemState;

/// A memory-tiering policy driven once per quantum.
pub trait TieringPolicy {
    /// Short display name (used in tables and figures).
    fn name(&self) -> &'static str;

    /// Called once before the first quantum executes (initial quotas,
    /// watermarks). Defaults to nothing.
    fn on_start(&mut self, state: &mut SystemState) {
        let _ = state;
    }

    /// Observe the system and issue migrations for this quantum.
    fn on_quantum(&mut self, state: &mut SystemState);

    /// Serialize the policy's internal state for checkpointing. Stateless
    /// policies (every baseline except Vulcan) keep the default empty
    /// object; stateful ones must capture everything their next
    /// `on_quantum` reads — credit ledgers, classifier EMAs, queue ages —
    /// so a restored run replays identically.
    fn snapshot_state(&self) -> Result<vulcan_json::Value, String> {
        Ok(vulcan_json::snap::obj(vec![]))
    }

    /// Restore state captured by [`snapshot_state`](Self::snapshot_state)
    /// into a freshly constructed policy of the same kind and config.
    fn restore_state(&mut self, _v: &vulcan_json::Value) -> Result<(), String> {
        Ok(())
    }
}

/// A policy that never migrates: pages stay where first-touch allocation
/// placed them. The floor every tiering system must beat.
#[derive(Clone, Copy, Debug, Default)]
pub struct StaticPlacement;

impl TieringPolicy for StaticPlacement {
    fn name(&self) -> &'static str {
        "static"
    }

    fn on_quantum(&mut self, _state: &mut SystemState) {}
}

/// Uniform partitioning without migration intelligence: every workload
/// gets an equal fast-tier quota enforced at allocation time (the
/// straw-man §3.3 dismisses as inefficient under dynamic demands).
#[derive(Clone, Copy, Debug, Default)]
pub struct UniformPartition;

impl TieringPolicy for UniformPartition {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn on_start(&mut self, state: &mut SystemState) {
        self.on_quantum(state);
    }

    fn on_quantum(&mut self, state: &mut SystemState) {
        let started = state.workloads.iter().filter(|w| w.started).count().max(1);
        let share = state.fast_capacity() / started as u64;
        for w in 0..state.n_workloads() {
            if state.workloads[w].started {
                state.set_quota(w, share);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::SystemState;
    use vulcan_profile::PebsProfiler;
    use vulcan_sim::{Machine, MachineSpec};
    use vulcan_workloads::{microbench, MicroConfig};

    fn mk_state() -> SystemState {
        let specs = vec![
            microbench(
                "a",
                MicroConfig {
                    rss_pages: 128,
                    wss_pages: 64,
                    ..Default::default()
                },
                2,
            ),
            microbench(
                "b",
                MicroConfig {
                    rss_pages: 128,
                    wss_pages: 64,
                    ..Default::default()
                },
                2,
            ),
        ];
        SystemState::new(
            Machine::new(MachineSpec::small(100, 1024, 8)),
            specs,
            &mut |_| PebsProfiler::new(4).into(),
            true,
            1,
        )
    }

    #[test]
    fn static_placement_does_nothing() {
        let mut st = mk_state();
        StaticPlacement.on_quantum(&mut st);
        assert!(st.workloads.iter().all(|w| w.quota.is_none()));
        assert_eq!(StaticPlacement.name(), "static");
    }

    #[test]
    fn uniform_partition_splits_evenly() {
        let mut st = mk_state();
        UniformPartition.on_quantum(&mut st);
        assert_eq!(st.workloads[0].quota, Some(50));
        assert_eq!(st.workloads[1].quota, Some(50));
    }

    #[test]
    fn uniform_partition_adapts_to_started_set() {
        let mut st = mk_state();
        st.workloads[1].started = false;
        UniformPartition.on_quantum(&mut st);
        assert_eq!(st.workloads[0].quota, Some(100), "GFMC adjusts with n");
    }
}
