//! # vulcan-migrate — page-migration mechanisms
//!
//! The five-phase migration mechanism (§2.1) with cycle-accurate phase
//! accounting calibrated to the paper's Figure 2/3 measurements, two
//! execution engines (synchronous and transactional-asynchronous), and
//! Nomad-style page shadowing for cheap demotions.
//!
//! Vulcan's mechanism-level optimizations live here as configuration:
//! per-workload preparation ([`PrepStrategy::Optimized`]) and
//! ownership-targeted shootdowns ([`vulcan_vm::ShootdownScope::Targeted`]).

#![warn(missing_docs)]
// Abnormal conditions on the migration path must degrade to typed
// errors, never panic: unwrap/expect are denied outside tests, with
// narrowly allow-listed invariant sites only (ISSUE 5 lint gate).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod engine;
pub mod error;
pub mod phases;
pub mod shadow;

pub use engine::{
    migrate_sync, AsyncMigrator, AsyncPoll, AsyncStats, MechanismConfig, SyncOutcome,
};
pub use error::MigrateError;
pub use phases::{batch_phases_without_shootdown, prep_cost, PhaseCycles, PrepStrategy};
pub use shadow::ShadowRegistry;
