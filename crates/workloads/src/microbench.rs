//! The Nomad-style migration-policy microbenchmark (§5.2).
//!
//! "1) allocating data to specific segments of the tiered memory;
//!  2) running tests with various working set size (WSS) and RSS values;
//!  3) generating memory accesses to the WSS data that mimic real-world
//!     memory access patterns with a Zipfian distribution."
//!
//! Used for Figure 4 (sync vs async copy across read/write ratios) and
//! Figure 8 (migration performance across small/medium/large WSS).

use crate::gen::{AccessGen, AccessPlan, PageAccess};
use crate::zipf::{Zipf, MANTISSA_SCALE};
use rand::rngs::SmallRng;
use rand::Rng;
use vulcan_sim::Nanos;

/// Configuration of the microbenchmark.
#[derive(Clone, Debug)]
pub struct MicroConfig {
    /// Total resident pages.
    pub rss_pages: u64,
    /// Working-set pages (the Zipf-accessed prefix of the region).
    pub wss_pages: u64,
    /// Zipf exponent over the WSS.
    pub skew: f64,
    /// Fraction of accesses that are reads.
    pub read_ratio: f64,
    /// Accesses per operation.
    pub accesses_per_op: usize,
    /// WSS drift: pages the working-set window shifts per 256 operations
    /// (0 = stationary). A drifting WSS keeps promotion pressure alive,
    /// which is how Figure 4 measures copy strategies *during* migration.
    pub wss_drift: u64,
    /// Off-memory time per op (usually zero: pure memory benchmark).
    pub fixed_op: Nanos,
}

impl Default for MicroConfig {
    fn default() -> Self {
        MicroConfig {
            rss_pages: 8_192,
            wss_pages: 2_048,
            skew: 0.99,
            read_ratio: 0.8,
            accesses_per_op: 8,
            wss_drift: 0,
            fixed_op: Nanos(0),
        }
    }
}

impl MicroConfig {
    /// The three WSS scenarios of Figure 8, relative to the scaled 8 192-
    /// page fast tier: small fits easily, medium is comparable, large
    /// exceeds it.
    pub fn fig8_scenario(which: WssScenario) -> MicroConfig {
        let (wss, rss) = match which {
            WssScenario::Small => (2_048, 16_384),
            WssScenario::Medium => (8_192, 24_576),
            WssScenario::Large => (20_480, 32_768),
        };
        MicroConfig {
            rss_pages: rss,
            wss_pages: wss,
            ..Default::default()
        }
    }
}

/// The WSS scenarios of Figure 8.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WssScenario {
    /// WSS well below fast-tier capacity.
    Small,
    /// WSS comparable to fast-tier capacity.
    Medium,
    /// WSS exceeding fast-tier capacity.
    Large,
}

impl WssScenario {
    /// All scenarios in presentation order.
    pub const ALL: [WssScenario; 3] = [WssScenario::Small, WssScenario::Medium, WssScenario::Large];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            WssScenario::Small => "small",
            WssScenario::Medium => "medium",
            WssScenario::Large => "large",
        }
    }
}

/// Zipfian reader/writer over a WSS within a larger RSS.
#[derive(Clone, Debug)]
pub struct Microbench {
    cfg: MicroConfig,
    zipf: Zipf,
    ops: u64,
}

impl Microbench {
    /// Build from config.
    pub fn new(cfg: MicroConfig) -> Self {
        assert!(cfg.wss_pages > 0 && cfg.wss_pages <= cfg.rss_pages);
        assert!((0.0..=1.0).contains(&cfg.read_ratio));
        let zipf = Zipf::new(cfg.wss_pages, cfg.skew);
        Microbench { cfg, zipf, ops: 0 }
    }

    /// The configured working-set size in pages.
    pub fn wss_pages(&self) -> u64 {
        self.cfg.wss_pages
    }
}

impl AccessGen for Microbench {
    fn next_op(&mut self, _tid: usize, rng: &mut SmallRng, out: &mut Vec<PageAccess>) {
        let window = (self.ops / 256) * self.cfg.wss_drift;
        self.ops += 1;
        // Reduce the window once per op so the per-access offset needs a
        // compare-and-subtract instead of a 64-bit division: with
        // `rank < wss ≤ rss`, `(base - rank) mod rss` has exactly the two
        // cases below. (A WSS wider than the RSS keeps the modulo path.)
        let rss = self.cfg.rss_pages;
        let base = (window + self.cfg.wss_pages - 1) % rss;
        let wide = self.cfg.wss_pages > rss;
        for _ in 0..self.cfg.accesses_per_op {
            // Fresh pages enter the working set at the *hot* end (rank 0)
            // and cool as the window slides past them — newly trending
            // data must be promoted while it is being hammered, the
            // scenario Figure 4's copy-strategy comparison probes.
            let rank = self.zipf.sample(rng);
            let offset = if wide {
                (window + self.cfg.wss_pages - 1 - rank) % rss
            } else if rank <= base {
                base - rank
            } else {
                base + rss - rank
            };
            let write = rng.gen::<f64>() >= self.cfg.read_ratio;
            out.push(PageAccess { offset, write });
        }
    }

    fn rss_pages(&self) -> u64 {
        self.cfg.rss_pages
    }

    fn fixed_op_nanos(&self) -> Nanos {
        self.cfg.fixed_op
    }

    fn batchable(&self) -> bool {
        true
    }

    /// Batched generation: the per-op loop of [`next_op`] with the config
    /// loads hoisted, filling the struct-of-arrays planes directly. The
    /// RNG draw order (Zipf rank, then write decision, per access) is the
    /// contract — it must match a sequence of `next_op` calls exactly.
    ///
    /// Generation is two-phase per block of ops: the interleaved RNG
    /// stream (u, w per access) is buffered first — the only serially
    /// dependent part — then ranks, offsets and write flags resolve from
    /// the buffer. The resolutions are independent across accesses, so
    /// the Zipf CDF scans overlap in flight instead of each waiting on
    /// the RNG state chain; draw order and values are unchanged.
    fn fill_batch(
        &mut self,
        _tid: usize,
        rng: &mut SmallRng,
        plan: &mut AccessPlan,
        max_ops: usize,
    ) -> usize {
        let rss = self.cfg.rss_pages;
        let wss = self.cfg.wss_pages;
        let drift = self.cfg.wss_drift;
        let read_ratio = self.cfg.read_ratio;
        let wide = wss > rss;
        let k = self.cfg.accesses_per_op;
        plan.offsets.reserve(max_ops * k);
        plan.writes.reserve(max_ops * k);
        plan.op_ends.reserve(max_ops);

        /// Draw-buffer capacity in accesses (stack-allocated).
        const BLOCK: usize = 256;
        if k == 0 || k > BLOCK {
            // Degenerate op shapes: keep the straightforward loop.
            for _ in 0..max_ops {
                let window = (self.ops / 256) * drift;
                self.ops += 1;
                let base = (window + wss - 1) % rss;
                for _ in 0..k {
                    let rank = self.zipf.sample(rng);
                    let offset = if wide {
                        (window + wss - 1 - rank) % rss
                    } else if rank <= base {
                        base - rank
                    } else {
                        base + rss - rank
                    };
                    let write = rng.gen::<f64>() >= read_ratio;
                    plan.push_access(offset, write);
                }
                plan.end_op();
            }
            return max_ops;
        }

        let ops_per_block = BLOCK / k; // ≥ 1
                                       // The RNG's f64 draws are `m · 2⁻⁵³` for the 53-bit mantissa
                                       // `m = next_u64() >> 11` (rand-shim Standard mapping), so both
                                       // per-access decisions resolve in pure integer arithmetic:
                                       // `w ≥ read_ratio ⟺ m_w ≥ ceil(read_ratio · 2⁵³)` (power-of-two
                                       // scaling is exact), and the Zipf rank via `Zipf::resolve_m`.
        let write_threshold = (read_ratio * MANTISSA_SCALE).ceil() as u64;
        let mut us = [0u64; BLOCK];
        let mut ws = [0u64; BLOCK];
        // Plane stores go through pre-sized slices rather than `push`:
        // two per-access `Vec` length updates form store-forwarding
        // chains that serialize the resolve loop.
        let start = plan.offsets.len();
        plan.offsets.resize(start + max_ops * k, 0);
        plan.writes.resize(start + max_ops * k, false);
        let offsets_out = &mut plan.offsets[start..];
        let writes_out = &mut plan.writes[start..];
        let mut done = 0usize;
        let mut out = 0usize;
        while done < max_ops {
            let ops_now = ops_per_block.min(max_ops - done);
            let n = ops_now * k;
            // Phase 1: the RNG stream, exactly as the scalar loop draws
            // it — u then w, per access. Buffering first means the only
            // serially dependent work (the RNG state chain) runs as a
            // tight loop, and the resolves below are independent.
            for j in 0..n {
                us[j] = rng.gen::<u64>() >> 11;
                ws[j] = rng.gen::<u64>() >> 11;
            }
            // Phase 2: resolve the buffered draws.
            let mut j = 0usize;
            for _ in 0..ops_now {
                let window = (self.ops / 256) * drift;
                self.ops += 1;
                let base = (window + wss - 1) % rss;
                for _ in 0..k {
                    let rank = self.zipf.resolve_m(us[j]);
                    let offset = if wide {
                        (window + wss - 1 - rank) % rss
                    } else if rank <= base {
                        base - rank
                    } else {
                        base + rss - rank
                    };
                    offsets_out[out + j] = offset;
                    writes_out[out + j] = ws[j] >= write_threshold;
                    j += 1;
                }
                plan.op_ends
                    .push(u32::try_from(start + out + j).expect("batch exceeds u32 accesses"));
            }
            out += n;
            done += ops_now;
        }
        max_ops
    }

    fn rollback_ops(&mut self, _tid: usize, n: usize) {
        // `ops` is the only generator state `next_op` advances, so a
        // rollback is a subtraction; the caller restores the RNG.
        self.ops -= n as u64;
    }

    fn snapshot_state(&self) -> vulcan_json::Value {
        vulcan_json::snap::obj(vec![("ops", vulcan_json::snap::u64_value(self.ops))])
    }

    fn restore_state(&mut self, v: &vulcan_json::Value) -> Result<(), String> {
        self.ops = vulcan_json::snap::field_u64(v, "ops")?;
        Ok(())
    }
}

impl vulcan_json::Snapshot for MicroConfig {
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::snap;
        snap::obj(vec![
            ("rss_pages", snap::u64_value(self.rss_pages)),
            ("wss_pages", snap::u64_value(self.wss_pages)),
            ("skew", snap::f64_value(self.skew)),
            ("read_ratio", snap::f64_value(self.read_ratio)),
            (
                "accesses_per_op",
                snap::u64_value(self.accesses_per_op as u64),
            ),
            ("wss_drift", snap::u64_value(self.wss_drift)),
            ("fixed_op", snap::u64_value(self.fixed_op.0)),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        Ok(MicroConfig {
            rss_pages: snap::field_u64(v, "rss_pages")?,
            wss_pages: snap::field_u64(v, "wss_pages")?,
            skew: snap::field_f64(v, "skew")?,
            read_ratio: snap::field_f64(v, "read_ratio")?,
            accesses_per_op: snap::field_usize(v, "accesses_per_op")?,
            wss_drift: snap::field_u64(v, "wss_drift")?,
            fixed_op: Nanos(snap::field_u64(v, "fixed_op")?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn accesses_stay_in_wss() {
        let mb = MicroConfig {
            rss_pages: 100,
            wss_pages: 10,
            ..Default::default()
        };
        let mut g = Microbench::new(mb);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut op = Vec::new();
        for _ in 0..500 {
            op.clear();
            g.next_op(0, &mut rng, &mut op);
            for a in &op {
                assert!(a.offset < 10);
            }
        }
    }

    #[test]
    fn read_ratio_is_respected() {
        for target in [0.0, 0.5, 1.0] {
            let mut g = Microbench::new(MicroConfig {
                read_ratio: target,
                ..Default::default()
            });
            let mut rng = SmallRng::seed_from_u64(9);
            let mut op = Vec::new();
            let mut reads = 0usize;
            let mut total = 0usize;
            for _ in 0..2_000 {
                op.clear();
                g.next_op(0, &mut rng, &mut op);
                reads += op.iter().filter(|a| !a.write).count();
                total += op.len();
            }
            let got = reads as f64 / total as f64;
            assert!((got - target).abs() < 0.03, "target {target} got {got}");
        }
    }

    #[test]
    fn fig8_scenarios_are_ordered() {
        let s = MicroConfig::fig8_scenario(WssScenario::Small);
        let m = MicroConfig::fig8_scenario(WssScenario::Medium);
        let l = MicroConfig::fig8_scenario(WssScenario::Large);
        assert!(s.wss_pages < m.wss_pages && m.wss_pages < l.wss_pages);
        // Small fits the scaled 8 192-page fast tier; large exceeds it.
        assert!(s.wss_pages < 8_192);
        assert!(l.wss_pages > 8_192);
        for c in [s, m, l] {
            assert!(c.wss_pages <= c.rss_pages);
        }
    }

    #[test]
    fn scenario_labels() {
        assert_eq!(WssScenario::ALL.len(), 3);
        assert_eq!(WssScenario::Small.label(), "small");
    }

    #[test]
    fn drift_moves_the_window() {
        let mut g = Microbench::new(MicroConfig {
            rss_pages: 1_000,
            wss_pages: 10,
            wss_drift: 10,
            ..Default::default()
        });
        let mut rng = SmallRng::seed_from_u64(3);
        let mut op = Vec::new();
        let mut early = std::collections::BTreeSet::new();
        let mut late = std::collections::BTreeSet::new();
        for i in 0..2_000 {
            op.clear();
            g.next_op(0, &mut rng, &mut op);
            for a in &op {
                if i < 200 {
                    early.insert(a.offset);
                } else if i >= 1_800 {
                    late.insert(a.offset);
                }
            }
        }
        assert!(early.is_disjoint(&late), "window moved past the old WSS");
    }

    #[test]
    #[should_panic]
    fn wss_larger_than_rss_rejected() {
        Microbench::new(MicroConfig {
            rss_pages: 10,
            wss_pages: 20,
            ..Default::default()
        });
    }
}
