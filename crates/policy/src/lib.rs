//! # vulcan-policy — baseline tiering policies
//!
//! Re-implementations of the three comparison systems the paper
//! evaluates against (§5.1): TPP, MEMTIS and NOMAD, each running on the
//! same simulated substrate as Vulcan so that policy differences — not
//! substrate differences — drive every comparison, mirroring how the
//! paper runs all four on identical hardware.

#![warn(missing_docs)]

pub mod memtis;
pub mod mtm;
pub mod nomad;
pub mod tpp;

pub use memtis::{Memtis, MemtisConfig};
pub use mtm::{Mtm, MtmConfig};
pub use nomad::{Nomad, NomadConfig};
pub use tpp::{Tpp, TppConfig};

use vulcan_profile::{AnyProfiler, HintFaultProfiler, HybridProfiler, PebsProfiler};

/// The profiling mechanism each baseline uses in its original system:
/// TPP → NUMA hinting faults, Memtis → PEBS, Nomad → hint faults plus
/// sampling (hybrid). Returned as [`AnyProfiler`] so the runtime keeps
/// enum dispatch on the access path.
pub fn profiler_for(policy: &str) -> AnyProfiler {
    match policy {
        "tpp" => HintFaultProfiler::new(0.06).into(),
        "memtis" => PebsProfiler::new(16).into(),
        "mtm" => PebsProfiler::new(16).into(),
        "nomad" => HybridProfiler::new(16, 0.05).into(),
        _ => HybridProfiler::vulcan_default().into(),
    }
}
