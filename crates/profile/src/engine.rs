//! Enum-dispatch profiler engine for the per-access hot path.
//!
//! `Box<dyn Profiler>` costs a virtual call per simulated access — by far
//! the most frequent call in the simulator. [`AnyProfiler`] closes that
//! hole: the runtime stores the concrete profiler in an enum and the
//! access path dispatches through a `match`, which the compiler inlines
//! into the access loop. `dyn Profiler` stays the extension point at the
//! policy boundary: anything not in the closed set rides along in the
//! [`AnyProfiler::Custom`] variant with the old virtual-call cost, and
//! `AnyProfiler` itself implements [`Profiler`], so policy-side code that
//! wants a trait object just coerces it.

use crate::advanced::{ChronoProfiler, TelescopeProfiler};
use crate::heat::HeatMap;
use crate::sampler::{
    AccessBatch, EpochOutcome, HintFaultProfiler, HybridProfiler, PebsProfiler, Profiler,
    PtScanProfiler,
};
use vulcan_sim::Nanos;
use vulcan_vm::{AddressSpace, Vpn};

/// A profiler held by value, dispatched by `match` on the access path.
///
/// Every concrete profiler in this crate has a variant; out-of-tree
/// implementations use [`AnyProfiler::Custom`] (and keep dyn-dispatch
/// cost). All `From` conversions are provided, including from
/// `Box<ConcreteProfiler>` and `Box<dyn Profiler>`, so existing factory
/// closures keep working unchanged via `.into()`.
pub enum AnyProfiler {
    /// PEBS-style event sampling ([`PebsProfiler`]).
    Pebs(PebsProfiler),
    /// Full page-table scanning ([`PtScanProfiler`]).
    PtScan(PtScanProfiler),
    /// NUMA hinting faults ([`HintFaultProfiler`]).
    HintFault(HintFaultProfiler),
    /// Vulcan's PEBS + hint-fault hybrid ([`HybridProfiler`]).
    Hybrid(HybridProfiler),
    /// Idle-time (timer) profiling ([`ChronoProfiler`]).
    Chrono(ChronoProfiler),
    /// Hierarchical page-table profiling ([`TelescopeProfiler`]).
    Telescope(TelescopeProfiler),
    /// Any other [`Profiler`] implementation, dyn-dispatched.
    Custom(Box<dyn Profiler>),
}

/// Statically dispatch a method over every variant.
macro_rules! dispatch {
    ($self:expr, $p:ident => $body:expr) => {
        match $self {
            AnyProfiler::Pebs($p) => $body,
            AnyProfiler::PtScan($p) => $body,
            AnyProfiler::HintFault($p) => $body,
            AnyProfiler::Hybrid($p) => $body,
            AnyProfiler::Chrono($p) => $body,
            AnyProfiler::Telescope($p) => $body,
            AnyProfiler::Custom($p) => {
                let $p: &mut dyn Profiler = &mut **$p;
                $body
            }
        }
    };
}

/// Shared-reference version of [`dispatch!`].
macro_rules! dispatch_ref {
    ($self:expr, $p:ident => $body:expr) => {
        match $self {
            AnyProfiler::Pebs($p) => $body,
            AnyProfiler::PtScan($p) => $body,
            AnyProfiler::HintFault($p) => $body,
            AnyProfiler::Hybrid($p) => $body,
            AnyProfiler::Chrono($p) => $body,
            AnyProfiler::Telescope($p) => $body,
            AnyProfiler::Custom($p) => {
                let $p: &dyn Profiler = &**$p;
                $body
            }
        }
    };
}

impl AnyProfiler {
    /// Observe one demand access (hot path — inlined enum dispatch).
    #[inline]
    pub fn on_access(&mut self, vpn: Vpn, is_write: bool) {
        dispatch!(self, p => p.on_access(vpn, is_write))
    }

    /// Observe a hinting fault taken on a poisoned PTE.
    #[inline]
    pub fn on_hint_fault(&mut self, vpn: Vpn, is_write: bool) {
        dispatch!(self, p => p.on_hint_fault(vpn, is_write))
    }

    /// Observe one quantum chunk's access plane (the batch boundary —
    /// enum dispatch runs once per plane, not once per access).
    ///
    /// Under the `oracle` feature every concrete-variant batch runs in
    /// lockstep with a scalar replay of the same plane on a clone of the
    /// profiler, and the touched heat entries are compared bitwise.
    /// [`AnyProfiler::Custom`] always takes the scalar replay (a boxed
    /// `dyn Profiler` cannot be cloned, and its default batch method is
    /// the replay itself, so there is nothing to diff).
    #[inline]
    pub fn on_access_batch(&mut self, batch: &AccessBatch) {
        #[cfg(not(feature = "oracle"))]
        dispatch!(self, p => p.on_access_batch(batch));
        #[cfg(feature = "oracle")]
        match self {
            AnyProfiler::Pebs(p) => lockstep_batch(p, batch),
            AnyProfiler::PtScan(p) => lockstep_batch(p, batch),
            AnyProfiler::HintFault(p) => lockstep_batch(p, batch),
            AnyProfiler::Hybrid(p) => lockstep_batch(p, batch),
            AnyProfiler::Chrono(p) => lockstep_batch(p, batch),
            AnyProfiler::Telescope(p) => lockstep_batch(p, batch),
            AnyProfiler::Custom(p) => batch.replay_scalar(&mut **p),
        }
    }

    /// Per-epoch maintenance (scanning, poisoning, decay).
    pub fn epoch(&mut self, space: &mut AddressSpace) -> EpochOutcome {
        dispatch!(self, p => p.epoch(space))
    }

    /// Latency this mechanism adds to every (non-faulting) access.
    pub fn sampling_overhead(&self) -> Nanos {
        dispatch_ref!(self, p => p.sampling_overhead())
    }

    /// The accumulated heat map.
    #[inline]
    pub fn heat(&self) -> &HeatMap {
        dispatch_ref!(self, p => p.heat())
    }

    /// Mutable access to the heat map (policies forget migrated pages).
    #[inline]
    pub fn heat_mut(&mut self) -> &mut HeatMap {
        dispatch!(self, p => p.heat_mut())
    }

    /// The profiler as a trait object — the policy-boundary view.
    pub fn as_dyn(&self) -> &dyn Profiler {
        self
    }

    /// Mutable trait-object view for the policy boundary.
    pub fn as_dyn_mut(&mut self) -> &mut dyn Profiler {
        self
    }

    /// Serialize this profiler for a checkpoint: `{kind, state}` with
    /// the concrete variant's full internal state.
    ///
    /// Fails (rather than silently dropping state) for
    /// [`AnyProfiler::Custom`]: an out-of-tree profiler has no known
    /// serialization, and a checkpoint that quietly forgot profiler
    /// state would break the restore-replay identity contract.
    pub fn checkpoint_state(&self) -> Result<vulcan_json::Value, String> {
        use vulcan_json::{snap, Snapshot, Value};
        let (kind, state) = match self {
            AnyProfiler::Pebs(p) => ("pebs", p.snapshot()),
            AnyProfiler::PtScan(p) => ("ptscan", p.snapshot()),
            AnyProfiler::HintFault(p) => ("hintfault", p.snapshot()),
            AnyProfiler::Hybrid(p) => ("hybrid", p.snapshot()),
            AnyProfiler::Chrono(p) => ("chrono", p.snapshot()),
            AnyProfiler::Telescope(p) => ("telescope", p.snapshot()),
            AnyProfiler::Custom(_) => {
                return Err("custom (out-of-tree) profilers are not checkpointable".to_string())
            }
        };
        Ok(snap::obj(vec![
            ("kind", Value::Str(kind.to_string())),
            ("state", state),
        ]))
    }

    /// Rebuild a profiler from [`checkpoint_state`](Self::checkpoint_state)
    /// output.
    pub fn from_checkpoint(v: &vulcan_json::Value) -> Result<AnyProfiler, String> {
        use crate::sampler::{HintFaultProfiler, HybridProfiler, PebsProfiler, PtScanProfiler};
        use vulcan_json::{snap, Snapshot};
        let kind = snap::field_str(v, "kind")?;
        let state = snap::field(v, "state")?;
        Ok(match kind {
            "pebs" => AnyProfiler::Pebs(PebsProfiler::restore(state)?),
            "ptscan" => AnyProfiler::PtScan(PtScanProfiler::restore(state)?),
            "hintfault" => AnyProfiler::HintFault(HintFaultProfiler::restore(state)?),
            "hybrid" => AnyProfiler::Hybrid(HybridProfiler::restore(state)?),
            "chrono" => AnyProfiler::Chrono(ChronoProfiler::restore(state)?),
            "telescope" => AnyProfiler::Telescope(TelescopeProfiler::restore(state)?),
            other => return Err(format!("unknown profiler kind \"{other}\"")),
        })
    }
}

/// `AnyProfiler` is itself a [`Profiler`], so the policy boundary keeps
/// its `dyn Profiler` surface.
impl Profiler for AnyProfiler {
    fn on_access(&mut self, vpn: Vpn, is_write: bool) {
        AnyProfiler::on_access(self, vpn, is_write)
    }

    fn on_hint_fault(&mut self, vpn: Vpn, is_write: bool) {
        AnyProfiler::on_hint_fault(self, vpn, is_write)
    }

    fn on_access_batch(&mut self, batch: &AccessBatch) {
        AnyProfiler::on_access_batch(self, batch)
    }

    fn epoch(&mut self, space: &mut AddressSpace) -> EpochOutcome {
        AnyProfiler::epoch(self, space)
    }

    fn sampling_overhead(&self) -> Nanos {
        AnyProfiler::sampling_overhead(self)
    }

    fn heat(&self) -> &HeatMap {
        AnyProfiler::heat(self)
    }

    fn heat_mut(&mut self) -> &mut HeatMap {
        AnyProfiler::heat_mut(self)
    }
}

/// Run `batch` through the specialized `on_access_batch` while a clone
/// replays it access-by-access through the scalar `on_access` /
/// `on_hint_fault` path, then diff every heat entry the plane touched —
/// the batched sweep's byte-identity contract, checked per chunk.
#[cfg(feature = "oracle")]
fn lockstep_batch<P: Profiler + Clone>(p: &mut P, batch: &AccessBatch) {
    use vulcan_oracle::{check, Structure};
    let mut reference = p.clone();
    batch.replay_scalar(&mut reference);
    p.on_access_batch(batch);
    for (i, &off) in batch.offsets.iter().enumerate() {
        let got = p.heat().get(Vpn(off));
        let want = reference.heat().get(Vpn(off));
        check(
            Structure::Batch,
            got.heat.to_bits() == want.heat.to_bits()
                && got.reads.to_bits() == want.reads.to_bits()
                && got.writes.to_bits() == want.writes.to_bits(),
            Some(off),
            || format!("plane index {i}: batched {got:?} vs scalar {want:?}"),
        );
    }
    check(
        Structure::Batch,
        p.heat().len() == reference.heat().len(),
        None,
        || {
            format!(
                "tracked pages: batched {} vs scalar {}",
                p.heat().len(),
                reference.heat().len()
            )
        },
    );
}

macro_rules! impl_from {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for AnyProfiler {
            fn from(p: $ty) -> AnyProfiler {
                AnyProfiler::$variant(p)
            }
        }
        impl From<Box<$ty>> for AnyProfiler {
            fn from(p: Box<$ty>) -> AnyProfiler {
                AnyProfiler::$variant(*p)
            }
        }
    };
}

impl_from!(Pebs, PebsProfiler);
impl_from!(PtScan, PtScanProfiler);
impl_from!(HintFault, HintFaultProfiler);
impl_from!(Hybrid, HybridProfiler);
impl_from!(Chrono, ChronoProfiler);
impl_from!(Telescope, TelescopeProfiler);

impl From<Box<dyn Profiler>> for AnyProfiler {
    fn from(p: Box<dyn Profiler>) -> AnyProfiler {
        AnyProfiler::Custom(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulcan_sim::{FrameId, TierKind};
    use vulcan_vm::LocalTid;

    fn space_with_pages(n: u64) -> AddressSpace {
        let mut s = AddressSpace::new(false);
        for v in 0..n {
            s.map(
                Vpn(v),
                FrameId {
                    tier: TierKind::Slow,
                    index: v as u32,
                },
                LocalTid(0),
            );
        }
        s
    }

    /// The enum fast path and the boxed dyn path must be observationally
    /// identical for the same underlying profiler and input stream.
    #[test]
    fn enum_and_dyn_dispatch_agree() {
        let mut fast: AnyProfiler = HybridProfiler::vulcan_default().into();
        let boxed: Box<dyn Profiler> = Box::new(HybridProfiler::vulcan_default());
        let mut slow: AnyProfiler = boxed.into();
        assert!(matches!(fast, AnyProfiler::Hybrid(_)));
        assert!(matches!(slow, AnyProfiler::Custom(_)));

        let mut s1 = space_with_pages(64);
        let mut s2 = space_with_pages(64);
        for i in 0..1_000u64 {
            let vpn = Vpn(i % 64);
            let w = i % 5 == 0;
            fast.on_access(vpn, w);
            slow.on_access(vpn, w);
        }
        fast.on_hint_fault(Vpn(3), true);
        slow.on_hint_fault(Vpn(3), true);
        let o1 = fast.epoch(&mut s1);
        let o2 = slow.epoch(&mut s2);
        assert_eq!(o1.cycles, o2.cycles);
        assert_eq!(o1.poisoned, o2.poisoned);
        for v in 0..64u64 {
            assert_eq!(fast.heat().get(Vpn(v)), slow.heat().get(Vpn(v)));
        }
    }

    #[test]
    fn boxed_concrete_profilers_unbox_to_fast_variants() {
        let p: AnyProfiler = Box::new(PebsProfiler::new(4)).into();
        assert!(matches!(p, AnyProfiler::Pebs(_)));
        let p: AnyProfiler = Box::new(PtScanProfiler::new()).into();
        assert!(matches!(p, AnyProfiler::PtScan(_)));
        let p: AnyProfiler = Box::new(HintFaultProfiler::new(0.1)).into();
        assert!(matches!(p, AnyProfiler::HintFault(_)));
        let p: AnyProfiler = Box::new(ChronoProfiler::new(8)).into();
        assert!(matches!(p, AnyProfiler::Chrono(_)));
        let p: AnyProfiler = Box::new(TelescopeProfiler::new()).into();
        assert!(matches!(p, AnyProfiler::Telescope(_)));
    }

    #[test]
    fn checkpoint_roundtrips_every_concrete_variant() {
        let variants: Vec<AnyProfiler> = vec![
            PebsProfiler::new(8).into(),
            PtScanProfiler::new().into(),
            HintFaultProfiler::new(0.1).into(),
            HybridProfiler::vulcan_default().into(),
            ChronoProfiler::new(4).into(),
            TelescopeProfiler::new().into(),
        ];
        for mut p in variants {
            for i in 0..100u64 {
                p.on_access(Vpn(i % 16), i % 4 == 0);
            }
            let state = match p.checkpoint_state() {
                Ok(s) => s,
                Err(e) => panic!("concrete variants serialize: {e}"),
            };
            let back = match AnyProfiler::from_checkpoint(&state) {
                Ok(b) => b,
                Err(e) => panic!("restore: {e}"),
            };
            assert_eq!(
                back.checkpoint_state().ok(),
                Some(state),
                "idempotent roundtrip"
            );
        }
    }

    #[test]
    fn custom_profiler_checkpoint_is_a_typed_error() {
        let boxed: Box<dyn Profiler> = Box::new(PebsProfiler::new(2));
        let p: AnyProfiler = boxed.into();
        let err = p.checkpoint_state().unwrap_err();
        assert!(err.contains("not checkpointable"), "{err}");
        let bogus = AnyProfiler::from_checkpoint(&vulcan_json::snap::obj(vec![
            ("kind", vulcan_json::Value::Str("martian".into())),
            ("state", vulcan_json::Value::Null),
        ]));
        match bogus {
            Err(e) => assert!(e.contains("unknown profiler kind"), "{e}"),
            Ok(_) => panic!("bogus kind must not restore"),
        }
    }

    #[test]
    fn trait_object_view_works() {
        let mut p: AnyProfiler = PebsProfiler::new(1).into();
        p.on_access(Vpn(7), false);
        let dyn_view: &dyn Profiler = p.as_dyn();
        assert_eq!(dyn_view.heat().get(Vpn(7)).heat, 1.0);
        let dyn_mut: &mut dyn Profiler = p.as_dyn_mut();
        dyn_mut.heat_mut().forget(Vpn(7));
        assert!(p.heat().is_empty());
    }
}
