//! Access-trace recording and replay.
//!
//! Any generator's access stream can be captured into a [`Trace`] —
//! serializable, diffable, shareable — and replayed deterministically
//! through the same [`AccessGen`] interface. Replay makes experiments
//! reproducible across generator changes and lets externally produced
//! traces (converted to the JSON schema) drive the simulator.

use crate::gen::{AccessGen, AccessPlan, PageAccess};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use vulcan_json::{Map, Value};
use vulcan_sim::Nanos;

/// One recorded operation: the accesses a thread issued for one op.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceOp {
    /// Thread that issued the op.
    pub tid: u32,
    /// `(page offset, is_write)` pairs, in issue order.
    pub accesses: Vec<(u64, bool)>,
}

/// A recorded access trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// RSS of the recorded workload, in pages.
    pub rss_pages: u64,
    /// Off-memory time per op, in nanoseconds.
    pub fixed_op_nanos: u64,
    /// Worker threads of the recorded workload.
    pub n_threads: usize,
    /// Operations, in global record order.
    pub ops: Vec<TraceOp>,
}

impl Trace {
    /// Record `ops_per_thread` operations per thread from `gen`,
    /// round-robin across `n_threads`, using a deterministic RNG.
    pub fn record(
        gen: &mut dyn AccessGen,
        n_threads: usize,
        ops_per_thread: usize,
        seed: u64,
    ) -> Trace {
        assert!(n_threads > 0);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut ops = Vec::with_capacity(n_threads * ops_per_thread);
        let mut buf = Vec::new();
        for i in 0..n_threads * ops_per_thread {
            let tid = i % n_threads;
            buf.clear();
            gen.next_op(tid, &mut rng, &mut buf);
            ops.push(TraceOp {
                tid: tid as u32,
                accesses: buf.iter().map(|a| (a.offset, a.write)).collect(),
            });
        }
        Trace {
            rss_pages: gen.rss_pages(),
            fixed_op_nanos: gen.fixed_op_nanos().0,
            n_threads,
            ops,
        }
    }

    /// Serialize as a JSON value:
    /// `{"rss_pages": N, "fixed_op_nanos": N, "n_threads": N,
    ///   "ops": [{"tid": N, "accesses": [[offset, write], ...]}, ...]}`.
    pub fn to_value(&self) -> Value {
        let ops: Vec<Value> = self
            .ops
            .iter()
            .map(|op| {
                Value::Object(
                    Map::new()
                        .with("tid", op.tid)
                        .with("accesses", vulcan_json::pairs_to_value(&op.accesses)),
                )
            })
            .collect();
        Value::Object(
            Map::new()
                .with("rss_pages", self.rss_pages)
                .with("fixed_op_nanos", self.fixed_op_nanos)
                .with("n_threads", self.n_threads)
                .with("ops", ops),
        )
    }

    /// Serialize as JSON text (see [`to_value`](Self::to_value)).
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Parse from JSON text.
    pub fn from_json(text: &str) -> Result<Trace, String> {
        let v = vulcan_json::parse(text).map_err(|e| format!("trace parse error: {e}"))?;
        Self::from_value(&v)
    }

    /// Parse from a JSON value (see [`to_value`](Self::to_value)).
    pub fn from_value(v: &Value) -> Result<Trace, String> {
        let field = |name: &str| {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("trace missing numeric \"{name}\""))
        };
        let mut ops = Vec::new();
        for (i, op) in v
            .get("ops")
            .and_then(Value::as_array)
            .ok_or("trace missing \"ops\"")?
            .iter()
            .enumerate()
        {
            let tid = op
                .get("tid")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("op {i}: missing \"tid\""))? as u32;
            let mut accesses = Vec::new();
            for a in op
                .get("accesses")
                .and_then(Value::as_array)
                .ok_or_else(|| format!("op {i}: missing \"accesses\""))?
            {
                match a.as_array() {
                    Some([offset, write]) => accesses.push((
                        offset
                            .as_u64()
                            .ok_or_else(|| format!("op {i}: non-numeric offset"))?,
                        write
                            .as_bool()
                            .ok_or_else(|| format!("op {i}: non-boolean write flag"))?,
                    )),
                    _ => return Err(format!("op {i}: access is not an [offset, write] pair")),
                }
            }
            ops.push(TraceOp { tid, accesses });
        }
        let t = Trace {
            rss_pages: field("rss_pages")?,
            fixed_op_nanos: field("fixed_op_nanos")?,
            n_threads: field("n_threads")? as usize,
            ops,
        };
        t.validate()?;
        Ok(t)
    }

    /// Check internal consistency (offsets in range, threads in range).
    pub fn validate(&self) -> Result<(), String> {
        if self.n_threads == 0 {
            return Err("trace needs at least one thread".into());
        }
        for (i, op) in self.ops.iter().enumerate() {
            if op.tid as usize >= self.n_threads {
                return Err(format!("op {i}: tid {} out of range", op.tid));
            }
            for &(offset, _) in &op.accesses {
                if offset >= self.rss_pages {
                    return Err(format!("op {i}: offset {offset} outside RSS"));
                }
            }
        }
        Ok(())
    }

    /// Total accesses recorded.
    pub fn n_accesses(&self) -> usize {
        self.ops.iter().map(|o| o.accesses.len()).sum()
    }
}

/// Replays a [`Trace`] through the [`AccessGen`] interface. Each thread
/// cycles through its own recorded ops (wrapping when exhausted), so the
/// replayed stream is stationary and runs for any duration.
#[derive(Clone, Debug)]
pub struct TraceReplayer {
    trace: Arc<Trace>,
    /// Per-thread indices into `per_thread` op lists.
    cursors: Vec<usize>,
    /// Per-thread op index lists.
    per_thread: Vec<Vec<usize>>,
}

impl TraceReplayer {
    /// Build a replayer over a validated trace.
    pub fn new(trace: Arc<Trace>) -> Result<TraceReplayer, String> {
        trace.validate()?;
        let mut per_thread = vec![Vec::new(); trace.n_threads];
        for (i, op) in trace.ops.iter().enumerate() {
            per_thread[op.tid as usize].push(i);
        }
        if per_thread.iter().any(Vec::is_empty) {
            return Err("every thread needs at least one recorded op".into());
        }
        Ok(TraceReplayer {
            cursors: vec![0; trace.n_threads],
            per_thread,
            trace,
        })
    }
}

impl AccessGen for TraceReplayer {
    fn next_op(&mut self, tid: usize, _rng: &mut SmallRng, out: &mut Vec<PageAccess>) {
        let list = &self.per_thread[tid];
        let op = &self.trace.ops[list[self.cursors[tid] % list.len()]];
        self.cursors[tid] += 1;
        out.extend(
            op.accesses
                .iter()
                .map(|&(offset, write)| PageAccess { offset, write }),
        );
    }

    fn rss_pages(&self) -> u64 {
        self.trace.rss_pages
    }

    fn fixed_op_nanos(&self) -> Nanos {
        Nanos(self.trace.fixed_op_nanos)
    }

    fn batchable(&self) -> bool {
        true
    }

    fn fill_batch(
        &mut self,
        tid: usize,
        _rng: &mut SmallRng,
        plan: &mut AccessPlan,
        max_ops: usize,
    ) -> usize {
        let list = &self.per_thread[tid];
        for _ in 0..max_ops {
            let op = &self.trace.ops[list[self.cursors[tid] % list.len()]];
            self.cursors[tid] += 1;
            for &(offset, write) in &op.accesses {
                plan.push_access(offset, write);
            }
            plan.end_op();
        }
        max_ops
    }

    fn rollback_ops(&mut self, tid: usize, n: usize) {
        // Replay consumes no RNG; the cursor is the only state.
        self.cursors[tid] -= n;
    }

    fn snapshot_state(&self) -> vulcan_json::Value {
        let cursors: Vec<u64> = self.cursors.iter().map(|&c| c as u64).collect();
        vulcan_json::snap::obj(vec![("cursors", vulcan_json::snap::u64_array(&cursors))])
    }

    fn restore_state(&mut self, v: &vulcan_json::Value) -> Result<(), String> {
        use vulcan_json::snap;
        let cursors = snap::array_u64(snap::field(v, "cursors")?)?;
        if cursors.len() != self.trace.n_threads {
            return Err("trace replayer cursors do not match thread count".to_string());
        }
        self.cursors = cursors
            .into_iter()
            .map(|c| usize::try_from(c).map_err(|_| format!("cursor {c} out of range")))
            .collect::<Result<_, String>>()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{KvConfig, KvStore};
    use crate::microbench::{MicroConfig, Microbench};

    fn record_micro() -> Trace {
        let mut g = Microbench::new(MicroConfig {
            rss_pages: 256,
            wss_pages: 64,
            ..Default::default()
        });
        Trace::record(&mut g, 2, 50, 7)
    }

    #[test]
    fn record_captures_everything() {
        let t = record_micro();
        assert_eq!(t.ops.len(), 100);
        assert_eq!(t.n_accesses(), 100 * 8);
        assert_eq!(t.rss_pages, 256);
        assert_eq!(t.n_threads, 2);
        t.validate().unwrap();
    }

    #[test]
    fn replay_reproduces_the_recording() {
        let t = record_micro();
        let mut replay = TraceReplayer::new(Arc::new(t.clone())).unwrap();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut buf = Vec::new();
        // Thread 0's first recorded op is ops[0], thread 1's is ops[1].
        replay.next_op(0, &mut rng, &mut buf);
        let got: Vec<(u64, bool)> = buf.iter().map(|a| (a.offset, a.write)).collect();
        assert_eq!(got, t.ops[0].accesses);
        buf.clear();
        replay.next_op(1, &mut rng, &mut buf);
        let got: Vec<(u64, bool)> = buf.iter().map(|a| (a.offset, a.write)).collect();
        assert_eq!(got, t.ops[1].accesses);
    }

    #[test]
    fn replay_wraps_around() {
        let t = record_micro();
        let mut replay = TraceReplayer::new(Arc::new(t.clone())).unwrap();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut buf = Vec::new();
        // Thread 0 recorded 50 ops; the 51st replayed op wraps to the 1st.
        let mut first = Vec::new();
        for i in 0..51 {
            buf.clear();
            replay.next_op(0, &mut rng, &mut buf);
            if i == 0 {
                first = buf.clone();
            }
        }
        assert_eq!(buf, first, "wrapped to the beginning");
    }

    #[test]
    fn json_roundtrip() {
        let t = record_micro();
        let back = Trace::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn validation_rejects_garbage() {
        let mut t = record_micro();
        t.ops[0].accesses[0].0 = 99_999;
        assert!(t.validate().is_err(), "out-of-range offset");
        let mut t2 = record_micro();
        t2.ops[3].tid = 9;
        assert!(TraceReplayer::new(Arc::new(t2)).is_err());
    }

    #[test]
    fn kv_trace_records_and_replays() {
        let mut kv = KvStore::new(KvConfig {
            rss_pages: 512,
            ..Default::default()
        });
        let t = Trace::record(&mut kv, 4, 25, 3);
        assert_eq!(t.ops.len(), 100);
        let replay = TraceReplayer::new(Arc::new(t)).unwrap();
        assert_eq!(replay.rss_pages(), 512);
        assert!(replay.fixed_op_nanos().0 > 0, "fixed op time preserved");
    }
}
