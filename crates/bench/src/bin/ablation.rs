//! Component ablation: which of Vulcan's four innovations buys what.
//!
//! §3.6 discusses the trade-offs of each mechanism (e.g. automatically
//! enabling/disabling per-thread replication). This harness re-runs the
//! three-application co-location with one component disabled at a time:
//!
//! * `full`            — Vulcan as shipped;
//! * `no-cbfrp`        — uniform GFMC quotas instead of Algorithm 1;
//! * `no-bias`         — one FIFO heat queue, everything async (Table 1
//!   disabled);
//! * `no-replication`  — process-wide page tables and shootdowns (§3.4
//!   disabled);
//! * `no-shadowing`    — demotions always copy (§3.5's Nomad borrow
//!   disabled);
//! * `linux-mechanism` — Vulcan policy on the vanilla mechanism (global
//!   preparation + process-wide shootdowns).

use vulcan::core::{VulcanConfig, VulcanPolicy};
use vulcan::migrate::{MechanismConfig, PrepStrategy};
use vulcan::prelude::*;
use vulcan_bench::{colocation_specs, save_json};

struct Variant {
    name: &'static str,
    cfg: VulcanConfig,
    replication: bool,
}

fn variants() -> Vec<Variant> {
    let base = VulcanConfig::default();
    vec![
        Variant {
            name: "full",
            cfg: base.clone(),
            replication: true,
        },
        Variant {
            name: "no-cbfrp",
            cfg: VulcanConfig {
                cbfrp: false,
                ..base.clone()
            },
            replication: true,
        },
        Variant {
            name: "no-bias",
            cfg: VulcanConfig {
                biased_queues: false,
                ..base.clone()
            },
            replication: true,
        },
        Variant {
            name: "no-replication",
            cfg: VulcanConfig {
                mechanism: MechanismConfig {
                    scope: ShootdownScope::ProcessWide,
                    ..MechanismConfig::vulcan()
                },
                ..base.clone()
            },
            replication: false,
        },
        Variant {
            name: "no-shadowing",
            cfg: VulcanConfig {
                mechanism: MechanismConfig {
                    shadowing: false,
                    ..MechanismConfig::vulcan()
                },
                ..base.clone()
            },
            replication: true,
        },
        Variant {
            name: "linux-mechanism",
            cfg: VulcanConfig {
                mechanism: MechanismConfig {
                    prep: PrepStrategy::BaselineGlobal,
                    scope: ShootdownScope::ProcessWide,
                    shadowing: false,
                    ..MechanismConfig::vulcan()
                },
                ..base
            },
            replication: false,
        },
    ]
}

fn main() {
    let mut table = Table::new(
        "Vulcan component ablation (3-app co-location, 200 s)",
        &[
            "variant",
            "mc latency(ns)",
            "mc FTHR",
            "CFI",
            "stall Mcyc",
            "PT overhead (KiB)",
        ],
    );
    let mut rows = Vec::new();
    for v in variants() {
        let res = SimRunner::new(
            MachineSpec::paper_testbed(),
            colocation_specs(),
            &mut |_| Box::new(HybridProfiler::vulcan_default()),
            Box::new(VulcanPolicy::with_config(v.cfg)),
            SimConfig {
                n_quanta: 200,
                replication: v.replication,
                ..Default::default()
            },
        )
        .run();
        let lat = res
            .series
            .get("memcached.latency_ns")
            .expect("series")
            .mean_after(150.0);
        let stall: u64 = res.per_workload.iter().map(|w| w.stall_cycles.0).sum();
        let pt_overhead: u64 = res
            .per_workload
            .iter()
            .map(|w| w.replication_overhead_bytes)
            .sum();
        table.row(&[
            v.name.into(),
            format!("{lat:.0}"),
            format!("{:.3}", res.workload("memcached").mean_fthr),
            format!("{:.3}", res.cfi),
            format!("{:.1}", stall as f64 / 1e6),
            format!("{}", pt_overhead / 1024),
        ]);
        rows.push(vulcan_json::Value::Object(
            vulcan_json::Map::new()
                .with("variant", v.name)
                .with("memcached_latency_ns", lat)
                .with("memcached_fthr", res.workload("memcached").mean_fthr)
                .with("cfi", res.cfi)
                .with("total_stall_cycles", stall)
                .with("pagetable_overhead_bytes", pt_overhead),
        ));
    }
    table.print();
    println!(
        "\nReading: the mechanism optimizations dominate the overhead story \
         (the linux-mechanism variant roughly doubles total stall and adds \
         latency); shadowing buys demotion latency; replication trades \
         page-table memory for targeted shootdowns (§3.6). With all three \
         apps saturating their entitlements, CBFRP degenerates to the \
         uniform split — its value shows when demands are asymmetric and \
         the LC must reclaim from an over-entitled BE (see the \
         fair_partitioning example and cbfrp unit tests)."
    );
    save_json("ablation", &rows);
}
