//! Bandwidth accounting and contention-induced latency inflation.
//!
//! §3.6 notes that co-located workloads "compete for limited system
//! resources (e.g., memory bandwidth)" and that under contention the fast
//! tier's latency advantage can shrink (the Colloid observation). We model
//! this with per-tier, per-quantum byte accounting: the utilization of the
//! previous quantum inflates access latency in the current one following a
//! queueing-style `1/(1-ρ)` curve, capped to keep the simulation stable.

use crate::tier::{TierKind, MAX_TIERS};
use crate::time::Nanos;

/// Maximum latency inflation under saturation. Beyond ~4x the real system
/// would be fully queue-bound; the cap keeps feedback loops stable.
pub const MAX_INFLATION: f64 = 4.0;

/// Tracks bytes moved per tier within a quantum and derives contention.
#[derive(Clone, Debug)]
pub struct BandwidthTracker {
    /// Peak bandwidth per tier (bytes/ns), indexed by `TierKind::index()`.
    /// Tiers absent from the machine's chain carry a placeholder peak of
    /// 1.0; they never see bytes, so their utilization is exactly 0 and
    /// their inflation exactly 1.0.
    peak: [f64; MAX_TIERS],
    /// Bytes transferred in the current quantum.
    bytes: [u64; MAX_TIERS],
    /// Latency inflation factor derived from the *previous* quantum.
    inflation: [f64; MAX_TIERS],
}

impl BandwidthTracker {
    /// Create a tracker from the chain's per-tier peak bandwidths
    /// (bytes/ns), fastest first. Tiers beyond `chain_peaks.len()` are
    /// absent and get the placeholder peak.
    pub fn new(chain_peaks: &[f64]) -> Self {
        assert!(
            !chain_peaks.is_empty() && chain_peaks.len() <= MAX_TIERS,
            "chain of {} tiers",
            chain_peaks.len()
        );
        let mut peak = [1.0; MAX_TIERS];
        for (slot, &p) in peak.iter_mut().zip(chain_peaks) {
            assert!(p > 0.0, "tier peak bandwidth must be positive");
            *slot = p;
        }
        BandwidthTracker {
            peak,
            bytes: [0; MAX_TIERS],
            inflation: [1.0; MAX_TIERS],
        }
    }

    /// Swap the per-tier peak bandwidths (what-if forks: 2× CXL, thinned
    /// NVM) while keeping the in-quantum byte counters and the inflation
    /// factors — the fork continues the run, it does not restart it.
    /// Same validation as [`new`](BandwidthTracker::new).
    pub fn set_peaks(&mut self, chain_peaks: &[f64]) {
        assert!(
            !chain_peaks.is_empty() && chain_peaks.len() <= MAX_TIERS,
            "chain of {} tiers",
            chain_peaks.len()
        );
        let mut peak = [1.0; MAX_TIERS];
        for (slot, &p) in peak.iter_mut().zip(chain_peaks) {
            assert!(p > 0.0, "tier peak bandwidth must be positive");
            *slot = p;
        }
        self.peak = peak;
    }

    /// Record `bytes` moved to/from `tier` (demand accesses and migration
    /// copies both count — migration traffic steals workload bandwidth).
    pub fn record(&mut self, tier: TierKind, bytes: u64) {
        self.bytes[tier.index()] += bytes;
    }

    /// Bytes recorded against `tier` so far this quantum.
    pub fn bytes_this_quantum(&self, tier: TierKind) -> u64 {
        self.bytes[tier.index()]
    }

    /// Zero the in-quantum byte counters, keeping the inflation factors.
    /// Shard-local tracker views start from zero so their end-of-quantum
    /// byte counts are directly the deltas to merge back.
    pub fn reset_bytes(&mut self) {
        self.bytes = [0; MAX_TIERS];
    }

    /// Utilization `ρ` of `tier` if the current quantum lasted `quantum`.
    pub fn utilization(&self, tier: TierKind, quantum: Nanos) -> f64 {
        if quantum.0 == 0 {
            return 0.0;
        }
        let offered = self.bytes[tier.index()] as f64 / quantum.0 as f64;
        offered / self.peak[tier.index()]
    }

    /// Close the quantum: derive next-quantum inflation from utilization
    /// and reset byte counters. Absent tiers see zero bytes, so their
    /// factor stays exactly 1.0 — the loop can safely cover `ALL`.
    pub fn end_quantum(&mut self, quantum: Nanos) {
        for tier in TierKind::ALL {
            let rho = self.utilization(tier, quantum).min(0.999);
            // M/M/1-style queueing delay growth, clamped.
            let f = (1.0 / (1.0 - rho)).min(MAX_INFLATION);
            self.inflation[tier.index()] = f.max(1.0);
            self.bytes[tier.index()] = 0;
        }
    }

    /// Current latency inflation factor for `tier` (≥ 1).
    pub fn inflation(&self, tier: TierKind) -> f64 {
        self.inflation[tier.index()]
    }

    /// Apply the inflation factor to an unloaded latency.
    pub fn inflate(&self, tier: TierKind, unloaded: Nanos) -> Nanos {
        Nanos((unloaded.0 as f64 * self.inflation(tier)).round() as u64)
    }
}

impl vulcan_json::Snapshot for BandwidthTracker {
    /// Inflation factors derive from the *previous* quantum, so they are
    /// live state across a quantum boundary (ISSUE 10 satellite: the
    /// cached loaded latencies in [`crate::Machine`] depend on them).
    /// Peaks are spec-derived but tiny, so they travel too; bytes are
    /// zero at a boundary yet serialized for mid-quantum generality.
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::snap;
        snap::obj(vec![
            ("peak", snap::f64_array(&self.peak)),
            ("bytes", snap::u64_array(&self.bytes)),
            ("inflation", snap::f64_array(&self.inflation)),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        fn arr<T: Copy, const N: usize>(xs: Vec<T>, key: &str) -> Result<[T; N], String> {
            <[T; N]>::try_from(xs.as_slice())
                .map_err(|_| format!("\"{key}\" needs {N} entries, got {}", xs.len()))
        }
        Ok(BandwidthTracker {
            peak: arr(snap::array_f64(snap::field(v, "peak")?)?, "peak")?,
            bytes: arr(snap::array_u64(snap::field(v, "bytes")?)?, "bytes")?,
            inflation: arr(snap::array_f64(snap::field(v, "inflation")?)?, "inflation")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_tier_has_no_inflation() {
        let mut bw = BandwidthTracker::new(&[205.0, 25.0]);
        bw.end_quantum(Nanos::millis(1));
        assert_eq!(bw.inflation(TierKind::Fast), 1.0);
        assert_eq!(bw.inflation(TierKind::Slow), 1.0);
        assert_eq!(bw.inflation(TierKind::Nvm), 1.0);
    }

    #[test]
    fn utilization_computation() {
        let mut bw = BandwidthTracker::new(&[205.0, 25.0]);
        // 25 bytes/ns * 1000 ns = 25_000 bytes saturates the slow tier.
        bw.record(TierKind::Slow, 12_500);
        let rho = bw.utilization(TierKind::Slow, Nanos(1000));
        assert!((rho - 0.5).abs() < 1e-9, "rho={rho}");
    }

    #[test]
    fn saturation_inflates_and_caps() {
        let mut bw = BandwidthTracker::new(&[205.0, 25.0]);
        bw.record(TierKind::Slow, 10 * 25_000); // 10x oversubscribed
        bw.end_quantum(Nanos(1000));
        assert_eq!(bw.inflation(TierKind::Slow), MAX_INFLATION);
        // Fast tier untouched.
        assert_eq!(bw.inflation(TierKind::Fast), 1.0);
    }

    #[test]
    fn half_load_doubles_latency() {
        let mut bw = BandwidthTracker::new(&[205.0, 25.0]);
        bw.record(TierKind::Slow, 12_500);
        bw.end_quantum(Nanos(1000));
        let inflated = bw.inflate(TierKind::Slow, Nanos(162));
        assert_eq!(inflated, Nanos(324));
    }

    #[test]
    fn third_tier_tracks_its_own_contention() {
        let mut bw = BandwidthTracker::new(&[205.0, 25.0, 8.0]);
        bw.record(TierKind::Nvm, 4_000); // ρ = 0.5 at 8 bytes/ns × 1000 ns
        bw.end_quantum(Nanos(1000));
        assert_eq!(bw.inflate(TierKind::Nvm, Nanos(350)), Nanos(700));
        assert_eq!(bw.inflation(TierKind::Slow), 1.0);
    }

    #[test]
    fn counters_reset_each_quantum() {
        let mut bw = BandwidthTracker::new(&[205.0, 25.0]);
        bw.record(TierKind::Fast, 1_000);
        bw.end_quantum(Nanos(1000));
        assert_eq!(bw.bytes_this_quantum(TierKind::Fast), 0);
    }

    #[test]
    fn migration_traffic_counts() {
        let mut bw = BandwidthTracker::new(&[205.0, 25.0]);
        bw.record(TierKind::Slow, 4096); // a page copy read
        assert_eq!(bw.bytes_this_quantum(TierKind::Slow), 4096);
    }
}
