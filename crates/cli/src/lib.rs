//! # vulcan-cli — config-driven simulation runs
//!
//! Describes experiments as JSON (machine, workloads, policy, duration)
//! and runs them through the same stack the benchmark harness uses. The
//! `vulcan-sim` binary is the entry point:
//!
//! ```text
//! vulcan-sim run config.json          # one policy
//! vulcan-sim compare config.json      # all four systems, same mix
//! vulcan-sim example                  # print a commented example config
//! ```

#![warn(missing_docs)]

use vulcan::prelude::*;
use vulcan::sim::{MachineSpec, PAGES_PER_PAPER_GB};
use vulcan_json::Value;

/// Machine description (paper-scaled units).
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Fast-tier capacity in paper-GB (scaled 1 GB → 256 pages).
    pub fast_gb: u64,
    /// Slow-tier capacity in paper-GB.
    pub slow_gb: u64,
    /// Optional third-tier (NVM) capacity in paper-GB. `None` (or JSON
    /// `null`) keeps the classic two-tier machine.
    pub nvm_gb: Option<u64>,
    /// Cores on the socket.
    pub cores: u16,
}

fn default_fast_gb() -> u64 {
    32
}
fn default_slow_gb() -> u64 {
    256
}
fn default_cores() -> u16 {
    32
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            fast_gb: default_fast_gb(),
            slow_gb: default_slow_gb(),
            nvm_gb: None,
            cores: default_cores(),
        }
    }
}

impl MachineConfig {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(MachineConfig {
            fast_gb: opt_u64(v, "fast_gb")?.unwrap_or_else(default_fast_gb),
            slow_gb: opt_u64(v, "slow_gb")?.unwrap_or_else(default_slow_gb),
            nvm_gb: opt_u64(v, "nvm_gb")?,
            cores: opt_u64(v, "cores")?.unwrap_or(default_cores() as u64) as u16,
        })
    }

    /// Total capacity across the configured chain, in pages.
    pub fn capacity_pages(&self) -> u64 {
        (self.fast_gb + self.slow_gb + self.nvm_gb.unwrap_or(0)) * PAGES_PER_PAPER_GB
    }

    /// Build the machine spec. A present `nvm_gb` extends the chain to
    /// three tiers; absent keeps the classic two-tier testbed.
    pub fn to_spec(&self) -> MachineSpec {
        let mut spec = match self.nvm_gb {
            None => MachineSpec::paper_testbed(),
            Some(_) => MachineSpec::paper_3tier(),
        };
        spec.tier_mut(TierKind::Fast).capacity_pages = self.fast_gb * PAGES_PER_PAPER_GB;
        spec.tier_mut(TierKind::Slow).capacity_pages = self.slow_gb * PAGES_PER_PAPER_GB;
        if let Some(nvm_gb) = self.nvm_gb {
            spec.tier_mut(TierKind::Nvm).capacity_pages = nvm_gb * PAGES_PER_PAPER_GB;
        }
        spec.n_cores = self.cores;
        spec
    }
}

/// One workload in the mix: either a Table 2 preset or a custom
/// microbenchmark. The JSON form is tagged by a `"kind"` field
/// (`"preset"` or `"micro"`).
#[derive(Clone, Debug)]
pub enum WorkloadConfig {
    /// A Table 2 preset: `memcached`, `pagerank` or `liblinear`.
    Preset {
        /// Preset name.
        preset: String,
        /// Start time in simulated seconds.
        start_sec: u64,
    },
    /// A Zipfian microbenchmark.
    Micro {
        /// Display name.
        name: String,
        /// Resident pages.
        rss_pages: u64,
        /// Working-set pages.
        wss_pages: u64,
        /// Read fraction (default 0.8).
        read_ratio: f64,
        /// Zipf skew (default 0.99).
        skew: f64,
        /// Worker threads (default 8).
        threads: usize,
        /// Pre-place all pages in the slow tier.
        prealloc_slow: bool,
        /// Back with transparent huge pages.
        thp: bool,
        /// Start time in simulated seconds.
        start_sec: u64,
    },
}

fn default_read_ratio() -> f64 {
    0.8
}
fn default_skew() -> f64 {
    0.99
}
fn default_threads() -> usize {
    8
}

/// Field accessors with config-friendly error messages. Missing keys and
/// explicit `null` both read as `None`; present-but-mistyped values are
/// errors.
fn opt_u64(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field \"{key}\" must be a non-negative integer")),
    }
}

fn opt_f64(v: &Value, key: &str) -> Result<Option<f64>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("field \"{key}\" must be a number")),
    }
}

fn opt_bool(v: &Value, key: &str) -> Result<Option<bool>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_bool()
            .map(Some)
            .ok_or_else(|| format!("field \"{key}\" must be a boolean")),
    }
}

fn opt_str(v: &Value, key: &str) -> Result<Option<String>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("field \"{key}\" must be a string")),
    }
}

fn req_u64(v: &Value, key: &str) -> Result<u64, String> {
    opt_u64(v, key)?.ok_or_else(|| format!("missing required field \"{key}\""))
}

fn req_str(v: &Value, key: &str) -> Result<String, String> {
    opt_str(v, key)?.ok_or_else(|| format!("missing required field \"{key}\""))
}

impl WorkloadConfig {
    fn from_value(v: &Value) -> Result<Self, String> {
        match req_str(v, "kind")?.as_str() {
            "preset" => Ok(WorkloadConfig::Preset {
                preset: req_str(v, "preset")?,
                start_sec: opt_u64(v, "start_sec")?.unwrap_or(0),
            }),
            "micro" => Ok(WorkloadConfig::Micro {
                name: req_str(v, "name")?,
                rss_pages: req_u64(v, "rss_pages")?,
                wss_pages: req_u64(v, "wss_pages")?,
                read_ratio: opt_f64(v, "read_ratio")?.unwrap_or_else(default_read_ratio),
                skew: opt_f64(v, "skew")?.unwrap_or_else(default_skew),
                threads: opt_u64(v, "threads")?.unwrap_or(default_threads() as u64) as usize,
                prealloc_slow: opt_bool(v, "prealloc_slow")?.unwrap_or(false),
                thp: opt_bool(v, "thp")?.unwrap_or(false),
                start_sec: opt_u64(v, "start_sec")?.unwrap_or(0),
            }),
            other => Err(format!(
                "workload \"kind\" must be \"preset\" or \"micro\", got \"{other}\""
            )),
        }
    }

    /// Build the workload spec.
    pub fn to_spec(&self) -> Result<WorkloadSpec, String> {
        match self {
            WorkloadConfig::Preset { preset, start_sec } => {
                let spec = match preset.as_str() {
                    "memcached" => memcached(),
                    "pagerank" => pagerank(),
                    "liblinear" => liblinear(),
                    other => return Err(format!("unknown preset '{other}'")),
                };
                Ok(spec.starting_at(Nanos::secs(*start_sec)))
            }
            WorkloadConfig::Micro {
                name,
                rss_pages,
                wss_pages,
                read_ratio,
                skew,
                threads,
                prealloc_slow,
                thp,
                start_sec,
            } => {
                let mut spec = microbench(
                    name,
                    MicroConfig {
                        rss_pages: *rss_pages,
                        wss_pages: *wss_pages,
                        read_ratio: *read_ratio,
                        skew: *skew,
                        ..Default::default()
                    },
                    *threads,
                )
                .starting_at(Nanos::secs(*start_sec));
                if *prealloc_slow {
                    spec = spec.preallocated(TierKind::Slow);
                }
                if *thp {
                    spec = spec.with_thp();
                }
                Ok(spec)
            }
        }
    }
}

/// A complete experiment description.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// The simulated machine.
    pub machine: MachineConfig,
    /// Simulated seconds to run.
    pub seconds: u64,
    /// RNG seed.
    pub seed: u64,
    /// The tiering policy. Parsed from the config's `"policy"` string at
    /// load time, so an unknown name fails once, before anything runs.
    pub policy: PolicyKind,
    /// The co-located workloads.
    pub workloads: Vec<WorkloadConfig>,
    /// Optional path to dump the full series JSON.
    pub series_out: Option<String>,
    /// Intra-cell shard count for the quantum sweep (1 = sequential).
    pub shards: usize,
}

fn default_seconds() -> u64 {
    60
}
fn default_seed() -> u64 {
    42
}
fn default_policy() -> PolicyKind {
    PolicyKind::Vulcan
}

impl ExperimentConfig {
    /// Parse a config from JSON text.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = vulcan_json::parse(text).map_err(|e| format!("config parse error: {e}"))?;
        if v.as_object().is_none() {
            return Err("config parse error: top level must be an object".into());
        }
        let machine = match v.get("machine") {
            None | Some(Value::Null) => MachineConfig::default(),
            Some(m) => MachineConfig::from_value(m)?,
        };
        let workloads = v
            .get("workloads")
            .and_then(Value::as_array)
            .ok_or("config needs a \"workloads\" array")?
            .iter()
            .map(WorkloadConfig::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        let policy = match opt_str(&v, "policy")? {
            None => default_policy(),
            Some(name) => name.parse::<PolicyKind>().map_err(|e| e.to_string())?,
        };
        let shards = match opt_u64(&v, "shards")?.unwrap_or(1) {
            0 => return Err("config error: \"shards\" must be >= 1".into()),
            n => n as usize,
        };
        Ok(ExperimentConfig {
            machine,
            seconds: opt_u64(&v, "seconds")?.unwrap_or_else(default_seconds),
            seed: opt_u64(&v, "seed")?.unwrap_or_else(default_seed),
            policy,
            workloads,
            series_out: opt_str(&v, "series_out")?,
            shards,
        })
    }

    /// Run the experiment with `policy_override` (or the config's policy).
    pub fn run(&self, policy_override: Option<PolicyKind>) -> Result<RunResult, String> {
        self.run_with_telemetry(policy_override, Telemetry::disabled())
    }

    /// Run the experiment recording into `telemetry`. Pass an enabled
    /// handle to capture counters, phase spans and the event trace;
    /// results are identical either way (same seed → same run).
    pub fn run_with_telemetry(
        &self,
        policy_override: Option<PolicyKind>,
        telemetry: Telemetry,
    ) -> Result<RunResult, String> {
        Ok(self.build_runner(policy_override, telemetry)?.run())
    }

    /// Build the configured runner without running it — the shared front
    /// half of [`run_with_telemetry`](ExperimentConfig::run_with_telemetry)
    /// and the `vulcan-sim checkpoint` verb, which steps it partway and
    /// serializes the state instead of finishing the run.
    pub fn build_runner(
        &self,
        policy_override: Option<PolicyKind>,
        telemetry: Telemetry,
    ) -> Result<SimRunner, String> {
        if self.workloads.is_empty() {
            return Err("config needs at least one workload".into());
        }
        let kind = policy_override.unwrap_or(self.policy);
        let specs: Result<Vec<WorkloadSpec>, String> =
            self.workloads.iter().map(|w| w.to_spec()).collect();
        let specs = specs?;
        let total_rss: u64 = specs.iter().map(|w| w.rss_pages()).sum();
        let capacity = self.machine.capacity_pages();
        if total_rss > capacity {
            return Err(format!(
                "combined RSS ({total_rss} pages) exceeds machine capacity ({capacity} pages)"
            ));
        }
        Ok(SimRunner::builder()
            .machine(self.machine.to_spec())
            .workloads(specs)
            .profiler_factory(move |_| kind.profiler())
            .policy(kind.make())
            .config(SimConfig {
                n_quanta: self.seconds,
                seed: self.seed,
                telemetry,
                shards: self.shards,
                ..Default::default()
            })
            .build())
    }

    /// A commented example configuration.
    pub fn example() -> &'static str {
        r#"{
  "machine": { "fast_gb": 32, "slow_gb": 256, "cores": 32 },
  "seconds": 120,
  "seed": 42,
  "policy": "vulcan",
  "shards": 1,
  "workloads": [
    { "kind": "preset", "preset": "memcached" },
    { "kind": "preset", "preset": "liblinear", "start_sec": 30 },
    { "kind": "micro", "name": "scanner", "rss_pages": 4096,
      "wss_pages": 1024, "read_ratio": 0.9, "threads": 4,
      "prealloc_slow": true, "start_sec": 60 }
  ],
  "series_out": null
}"#
    }
}

/// Render a run result as the standard report table.
pub fn report(res: &RunResult) -> String {
    let mut table = Table::new(
        format!("{} — per-workload results", res.policy),
        &[
            "workload",
            "class",
            "perf",
            "latency(ns)",
            "FTHR",
            "hot ratio",
        ],
    );
    for w in &res.per_workload {
        table.row(&[
            w.name.clone(),
            format!("{:?}", w.class),
            format!("{:.0}", w.performance()),
            format!("{:.0}", w.mean_latency_ns),
            format!("{:.3}", w.mean_fthr),
            format!("{:.3}", w.mean_hot_ratio),
        ]);
    }
    format!("{}\nCFI fairness: {:.3}\n", table.render(), res.cfi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_config_parses_and_validates() {
        let cfg = ExperimentConfig::from_json(ExperimentConfig::example()).unwrap();
        assert_eq!(cfg.workloads.len(), 3);
        assert_eq!(cfg.policy, PolicyKind::Vulcan);
        for w in &cfg.workloads {
            w.to_spec().unwrap();
        }
    }

    #[test]
    fn defaults_fill_in() {
        let cfg = ExperimentConfig::from_json(
            r#"{"workloads": [{"kind": "preset", "preset": "memcached"}]}"#,
        )
        .unwrap();
        assert_eq!(cfg.machine.fast_gb, 32);
        assert_eq!(cfg.seconds, 60);
        assert_eq!(cfg.policy, PolicyKind::Vulcan);
    }

    #[test]
    fn unknown_preset_and_policy_are_rejected() {
        let w = WorkloadConfig::Preset {
            preset: "redis".into(),
            start_sec: 0,
        };
        assert!(w.to_spec().is_err());
        // An unknown policy fails at config-parse time, not at run time.
        let err = ExperimentConfig::from_json(
            r#"{"policy": "firefly",
                "workloads": [{"kind": "preset", "preset": "memcached"}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("unknown policy 'firefly'"), "{err}");
        for kind in PolicyKind::ALL {
            let cfg = ExperimentConfig::from_json(&format!(
                r#"{{"policy": "{kind}",
                     "workloads": [{{"kind": "preset", "preset": "memcached"}}]}}"#
            ))
            .unwrap();
            assert_eq!(cfg.policy, kind);
        }
    }

    #[test]
    fn oversized_mix_is_rejected() {
        let cfg = ExperimentConfig::from_json(
            r#"{
                "machine": {"fast_gb": 1, "slow_gb": 1, "cores": 4},
                "workloads": [{"kind": "preset", "preset": "memcached"}]
            }"#,
        )
        .unwrap();
        let err = cfg.run(None).unwrap_err();
        assert!(err.contains("exceeds machine capacity"), "{err}");
    }

    #[test]
    fn tiny_run_end_to_end() {
        let cfg = ExperimentConfig::from_json(
            r#"{
                "machine": {"fast_gb": 2, "slow_gb": 16, "cores": 8},
                "seconds": 3,
                "workloads": [
                    {"kind": "micro", "name": "a", "rss_pages": 256,
                     "wss_pages": 64, "threads": 2}
                ]
            }"#,
        )
        .unwrap();
        let res = cfg.run(None).unwrap();
        assert_eq!(res.policy, "vulcan");
        assert!(res.workload("a").ops_total > 0);
        let text = report(&res);
        assert!(text.contains("CFI fairness"));
        // Policy override works too.
        let res2 = cfg.run(Some(PolicyKind::Memtis)).unwrap();
        assert_eq!(res2.policy, "memtis");
    }

    #[test]
    fn three_tier_machine_config_extends_the_chain() {
        let cfg = ExperimentConfig::from_json(
            r#"{
                "machine": {"fast_gb": 2, "slow_gb": 8, "nvm_gb": 32, "cores": 8},
                "seconds": 2,
                "workloads": [
                    {"kind": "micro", "name": "a", "rss_pages": 256,
                     "wss_pages": 64, "threads": 2}
                ]
            }"#,
        )
        .unwrap();
        let spec = cfg.machine.to_spec();
        assert_eq!(spec.n_tiers(), 3);
        assert_eq!(
            spec.tier(TierKind::Nvm).capacity_pages,
            32 * PAGES_PER_PAPER_GB
        );
        // Omitting nvm_gb keeps the two-tier machine.
        assert_eq!(MachineConfig::default().to_spec().n_tiers(), 2);
        let res = cfg.run(None).unwrap();
        assert!(res.workload("a").ops_total > 0);
    }

    #[test]
    fn empty_workloads_rejected() {
        let cfg = ExperimentConfig::from_json(r#"{"workloads": []}"#).unwrap();
        assert!(cfg.run(None).is_err());
    }
}
