//! End-to-end CLI contract for `vulcan-sim checkpoint` / `resume`: the
//! artifact files a resumed run writes are byte-identical to the
//! straight run's (the same comparison CI performs with sha256), and
//! every way a checkpoint can be unusable — version skew, truncation,
//! a foreign file — exits 2 with a pointed message, never a panic.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vulcan-sim"))
}

/// Fresh scratch directory per test (cargo runs tests concurrently).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vulcan-sim-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().unwrap();
    assert!(
        out.status.success(),
        "command failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn config_text(series_out: &std::path::Path) -> String {
    format!(
        r#"{{
  "machine": {{"fast_gb": 2, "slow_gb": 16, "cores": 8}},
  "seconds": 5,
  "seed": 42,
  "policy": "vulcan",
  "workloads": [
    {{"kind": "micro", "name": "a", "rss_pages": 256, "wss_pages": 64, "threads": 2}},
    {{"kind": "micro", "name": "b", "rss_pages": 256, "wss_pages": 64, "threads": 2,
      "prealloc_slow": true}}
  ],
  "series_out": {:?}
}}"#,
        series_out.to_str().unwrap()
    )
}

#[test]
fn static_round_trip_writes_identical_series() {
    let dir = scratch("static");
    let s1 = dir.join("s1.json");
    let cfg = dir.join("cfg.json");
    std::fs::write(&cfg, config_text(&s1)).unwrap();
    run_ok(bin().arg("run").arg(&cfg));
    let ck = dir.join("ck.json");
    run_ok(
        bin()
            .args(["checkpoint"])
            .arg(&cfg)
            .args(["--at", "2", "--out"])
            .arg(&ck),
    );
    let s2 = dir.join("s2.json");
    run_ok(bin().args(["resume"]).arg(&ck).arg("--series-out").arg(&s2));
    let (a, b) = (std::fs::read(&s1).unwrap(), std::fs::read(&s2).unwrap());
    assert!(!a.is_empty());
    assert_eq!(a, b, "resumed series differs from the straight run's");
}

#[test]
fn churn_round_trip_writes_identical_report() {
    let dir = scratch("churn");
    let (c1, c2) = (dir.join("c1.json"), dir.join("c2.json"));
    let ck = dir.join("ck.json");
    run_ok(
        bin()
            .args(["churn", "--duration", "8000000000", "--rate", "6", "--out"])
            .arg(&c1)
            .args(["--checkpoint-at", "3", "--checkpoint-out"])
            .arg(&ck),
    );
    run_ok(bin().args(["resume"]).arg(&ck).arg("--out").arg(&c2));
    let (a, b) = (std::fs::read(&c1).unwrap(), std::fs::read(&c2).unwrap());
    assert!(!a.is_empty());
    assert_eq!(a, b, "resumed churn report differs from the straight run's");
}

#[test]
fn version_skew_and_truncation_exit_2() {
    let dir = scratch("skew");
    let cfg = dir.join("cfg.json");
    std::fs::write(&cfg, config_text(&dir.join("unused.json"))).unwrap();
    let ck = dir.join("ck.json");
    run_ok(
        bin()
            .args(["checkpoint"])
            .arg(&cfg)
            .args(["--at", "1", "--out"])
            .arg(&ck),
    );
    let text = std::fs::read_to_string(&ck).unwrap();

    // A checkpoint from a future format version.
    let skewed = dir.join("ck99.json");
    std::fs::write(&skewed, text.replace("\"version\":1,", "\"version\":99,")).unwrap();
    let out = bin().args(["resume"]).arg(&skewed).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("unsupported checkpoint version 99 (this build reads version 1)"),
        "stderr: {err}"
    );

    // A payload cut off mid-write.
    let trunc = dir.join("trunc.json");
    std::fs::write(&trunc, &text[..text.len() / 2]).unwrap();
    let out = bin().args(["resume"]).arg(&trunc).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("not a vulcan checkpoint"), "stderr: {err}");

    // Not a checkpoint at all.
    let out = bin().args(["resume"]).arg(&cfg).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("not a vulcan checkpoint"), "stderr: {err}");
}

#[test]
fn checkpoint_past_the_run_exits_2() {
    let dir = scratch("past");
    let cfg = dir.join("cfg.json");
    std::fs::write(&cfg, config_text(&dir.join("unused.json"))).unwrap();
    let out = bin()
        .args(["checkpoint"])
        .arg(&cfg)
        .args(["--at", "99", "--out"])
        .arg(dir.join("ck.json"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("past the run"), "stderr: {err}");
}
