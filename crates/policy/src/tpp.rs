//! TPP: Transparent Page Placement (Maruf et al., ASPLOS'23), §2.1.
//!
//! Model of TPP's behaviour on the shared substrate:
//! * **Promotion on NUMA hinting faults** — a slow-tier page that takes a
//!   hinting fault is promoted *synchronously*, on the faulting
//!   application's critical path, using the vanilla Linux mechanism
//!   (global preparation, process-wide shootdowns).
//! * **Watermark-based proactive demotion** — when fast-tier free pages
//!   drop below the low watermark, the coldest fast pages are reclaimed
//!   to the slow tier off the critical path (kswapd-style), until the
//!   high watermark is restored.
//!
//! TPP is workload-agnostic: it keeps no per-workload accounting, which
//! is exactly why co-located high-intensity workloads monopolize the fast
//! tier (Observation #1).

use vulcan_migrate::MechanismConfig;
use vulcan_runtime::{SystemState, TieringPolicy};
use vulcan_sim::TierKind;
use vulcan_vm::Vpn;

/// TPP configuration.
#[derive(Clone, Debug)]
pub struct TppConfig {
    /// Low watermark: demotion starts below this free fraction.
    pub low_watermark: f64,
    /// High watermark: demotion stops at this free fraction.
    pub high_watermark: f64,
    /// Max promotions per workload per quantum (promotion rate limit).
    pub promotion_budget: usize,
    /// Max demotions per workload per quantum.
    pub demotion_budget: usize,
}

impl Default for TppConfig {
    fn default() -> Self {
        TppConfig {
            low_watermark: 0.02,
            high_watermark: 0.08,
            promotion_budget: 2_048,
            demotion_budget: 2_048,
        }
    }
}

/// The TPP baseline policy.
#[derive(Clone, Debug, Default)]
pub struct Tpp {
    cfg: TppConfig,
}

impl Tpp {
    /// TPP with default watermarks.
    pub fn new() -> Self {
        Self::default()
    }

    /// TPP with a custom configuration.
    pub fn with_config(cfg: TppConfig) -> Self {
        Tpp { cfg }
    }
}

impl TieringPolicy for Tpp {
    fn name(&self) -> &'static str {
        "tpp"
    }

    fn on_quantum(&mut self, state: &mut SystemState) {
        let mech = MechanismConfig::linux_baseline();

        // 1. Promotion: hint-faulted slow pages go up synchronously.
        for w in 0..state.n_workloads() {
            if !state.workloads[w].started {
                continue;
            }
            let candidates: Vec<Vpn> = {
                let ws = &state.workloads[w];
                ws.stats
                    .hint_faulted_pages
                    .iter()
                    .map(|&(vpn, _)| vpn)
                    .filter(|&vpn| ws.process.space.pte(vpn).tier() == Some(TierKind::Slow))
                    .take(self.cfg.promotion_budget)
                    .collect()
            };
            if !candidates.is_empty() && state.fast_free() > 0 {
                // TPP's promotion is on the critical path of the faulting
                // thread: charge the stall to the application.
                state.migrate_sync(w, &candidates, TierKind::Fast, &mech);
            }
        }

        // 2. Demotion: restore the free-page watermark from the coldest
        //    fast pages, round-robin across workloads (kswapd is global).
        let capacity = state.fast_capacity() as f64;
        if (state.fast_free() as f64) < self.cfg.low_watermark * capacity {
            let target_free = (self.cfg.high_watermark * capacity) as u64;
            for w in 0..state.n_workloads() {
                if state.fast_free() >= target_free {
                    break;
                }
                if !state.workloads[w].started {
                    continue;
                }
                let need = (target_free - state.fast_free()) as usize;
                let victims: Vec<Vpn> = {
                    let ws = &state.workloads[w];
                    let mut cold: Vec<(Vpn, f64)> = ws
                        .process
                        .space
                        .mapped_vpns()
                        .filter(|&v| ws.process.space.pte(v).tier() == Some(TierKind::Fast))
                        .map(|v| (v, ws.heat().get(v).heat))
                        .collect();
                    cold.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0 .0.cmp(&b.0 .0)));
                    cold.into_iter()
                        .take(need.min(self.cfg.demotion_budget))
                        .map(|(v, _)| v)
                        .collect()
                };
                if !victims.is_empty() {
                    state.migrate_background(w, &victims, TierKind::Slow, &mech);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulcan_profile::HintFaultProfiler;
    use vulcan_runtime::{SimConfig, SimRunner};
    use vulcan_sim::{MachineSpec, Nanos};
    use vulcan_workloads::{microbench, MicroConfig};

    fn quick(n_quanta: u64, fast: u64, wss: u64) -> SimRunner {
        SimRunner::builder()
            .machine(MachineSpec::small(fast, 4096, 8))
            .workloads(vec![microbench(
                "mb",
                MicroConfig {
                    rss_pages: 512,
                    wss_pages: wss,
                    ..Default::default()
                },
                2,
            )
            .preallocated(vulcan_sim::TierKind::Slow)])
            .profiler_factory(|_| Box::new(HintFaultProfiler::new(0.25)))
            .policy(Box::new(Tpp::new()))
            .config(SimConfig {
                quantum_active: Nanos::micros(500),
                n_quanta,
                ..Default::default()
            })
            .build()
    }

    #[test]
    fn promotes_hint_faulted_pages_into_fast() {
        // Data starts entirely in the slow tier; the fast tier (128) is
        // bigger than the WSS (64): TPP should pull the hot WSS up.
        let res = quick(30, 128, 64).run();
        let w = res.workload("mb");
        let final_fthr = res.series.get("mb.fthr").unwrap().last().unwrap();
        assert!(final_fthr > 0.8, "hot WSS promoted, fthr={final_fthr}");
        assert!(w.stall_cycles.0 > 0, "TPP promotion stalls the app");
    }

    #[test]
    fn maintains_free_watermark() {
        // WSS (256) exceeds the fast tier (128): promotions keep pushing
        // against capacity, and watermark demotion must keep headroom.
        let res = quick(40, 128, 256).run();
        let fast_used = res.series.get("mb.fast_pages").unwrap().last().unwrap();
        assert!(fast_used < 128.0, "watermark keeps headroom: {fast_used}");
        assert!(fast_used > 32.0, "but fast tier is well used: {fast_used}");
    }

    #[test]
    fn name() {
        assert_eq!(Tpp::new().name(), "tpp");
    }
}
