//! Plain-text table rendering for the benchmark harness.
//!
//! Every figure/table binary prints its rows through this module so the
//! output is uniform and easy to diff against EXPERIMENTS.md.

/// A simple fixed-width table builder.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Render and print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with 3 significant decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format `mean ± ci`.
pub fn pm(mean: f64, ci: f64) -> String {
    format!("{mean:.3}±{ci:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(pm(1.0, 0.5), "1.000±0.500");
    }
}
