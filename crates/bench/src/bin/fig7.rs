//! Figure 7: speedup of Vulcan's memory-migration optimizations (higher
//! is better).
//!
//! Synchronous migrations of 2–512 private pages on the 32-core testbed,
//! comparing the Linux baseline against (1) optimized migration
//! preparation alone and (2) preparation + targeted TLB shootdowns.
//!
//! Paper anchors: up to 3.44x with optimized preparation alone and 4.06x
//! combined, for 2-page migrations; gains shrink as copying dominates.

use vulcan::migrate::{migrate_sync, MechanismConfig, PrepStrategy, ShadowRegistry};
use vulcan::prelude::*;
use vulcan::sim::{CoreId, Machine, SimThreadId};
use vulcan::vm::{Asid, LocalTid, Process, TlbArray};

/// Copy-bandwidth contention factor: the microbench migrates while the
/// application saturates the slow tier, so copies run well below peak
/// (see `MigrationCosts::with_copy_contention`). Calibrated so the
/// 2-page optimized-preparation speedup lands on the paper's 3.44x.
const UNDER_LOAD: f64 = 6.0;

/// Build a 32-core machine with one 32-thread process owning `pages`
/// private slow-tier pages (one owner thread per core).
fn setup(pages: u64) -> (Process, Machine, TlbArray, ShadowRegistry) {
    let mut spec = MachineSpec::paper_testbed();
    spec.migration_costs = spec.migration_costs.with_copy_contention(UNDER_LOAD);
    let mut machine = Machine::new(spec);
    let mut process = Process::new(Asid(1), true);
    for i in 0..32u32 {
        process.spawn_thread(SimThreadId(i));
        machine.topology.pin(SimThreadId(i), CoreId(i as u16));
    }
    for v in 0..pages {
        let frame = machine.alloc(TierKind::Slow).expect("slow capacity");
        // All pages private to thread 0 (the migrating app's thread).
        process.space.map(Vpn(v), frame, LocalTid(0));
        process.space.touch(Vpn(v), LocalTid(0), false).unwrap();
    }
    (process, machine, TlbArray::new(32), ShadowRegistry::new())
}

fn migrate_cost(pages: u64, cfg: &MechanismConfig) -> f64 {
    let (mut p, mut m, mut t, mut s) = setup(pages);
    let vpns: Vec<Vpn> = (0..pages).map(Vpn).collect();
    let out = migrate_sync(&mut p, &mut m, &mut t, &mut s, &vpns, TierKind::Fast, cfg);
    assert_eq!(out.moved.len() as u64, pages);
    out.total_cycles().as_f64()
}

fn main() {
    let baseline = MechanismConfig::linux_baseline();
    let opt_prep = MechanismConfig {
        prep: PrepStrategy::Optimized,
        ..MechanismConfig::linux_baseline()
    };
    let opt_both = MechanismConfig {
        prep: PrepStrategy::Optimized,
        scope: ShootdownScope::Targeted,
        ..MechanismConfig::linux_baseline()
    };

    let mut table = Table::new(
        "Figure 7: migration speedup over the Linux baseline (32 CPUs)",
        &[
            "pages",
            "baseline (cyc)",
            "+opt prep",
            "+opt prep & TLB",
            "speedup prep",
            "speedup both",
        ],
    );
    let mut rows = Vec::new();
    for pages in [2u64, 8, 32, 128, 512] {
        let base = migrate_cost(pages, &baseline);
        let prep = migrate_cost(pages, &opt_prep);
        let both = migrate_cost(pages, &opt_both);
        table.row(&[
            pages.to_string(),
            format!("{base:.0}"),
            format!("{prep:.0}"),
            format!("{both:.0}"),
            format!("{:.2}x", base / prep),
            format!("{:.2}x", base / both),
        ]);
        rows.push(vulcan_json::Value::Object(
            vulcan_json::Map::new()
                .with("pages", pages)
                .with("baseline_cycles", base)
                .with("opt_prep_cycles", prep)
                .with("opt_both_cycles", both)
                .with("speedup_prep", base / prep)
                .with("speedup_both", base / both),
        ));
    }
    table.print();
    println!(
        "\nPaper: up to 3.44x (optimized preparation) and 4.06x (plus \
         targeted shootdowns) at 2 pages; benefits shrink for larger \
         batches as page copying dominates."
    );
    vulcan_bench::save_json_or_exit("fig7", &rows);
}
