//! Calibrated cost model for memory accesses and page migration.
//!
//! Every constant here is anchored to a number the paper reports, and the
//! anchor is documented next to the constant. Two regimes exist for TLB
//! shootdowns, matching Linux behaviour:
//!
//! * **cold path** (single-page migration, Figure 2): each unmap triggers a
//!   full IPI broadcast with synchronous acks — expensive per target;
//! * **batched path** (bulk `migrate_pages`, Figures 3/7): the kernel
//!   batches flush requests, so the per-page per-target cost is much lower
//!   but *grows with batch size* as concurrent shootdown rounds contend.
//!
//! Calibration anchors (from §2.2 and §5.2):
//! * Fig 2 — single base-page migration totals ≈50 K cycles at 2 CPUs and
//!   ≈750 K cycles at 32 CPUs; preparation share 38.3% → 76.9%.
//! * Fig 3 — TLB operations reach ≈65% of migration time at 512 pages ×
//!   32 threads; page copying dominates for small batches.
//! * Fig 4 — async copying wins for read-intensive access, loses for
//!   write-intensive (dirty retries).
//! * Fig 7 — optimized preparation alone gives ≈3.4× for 2-page
//!   migrations; adding targeted shootdown ≈4×; gains shrink with batch
//!   size as copying dominates.

use crate::tier::{TierKind, PAGE_SIZE};
use crate::time::{Cycles, Nanos};

/// Costs of ordinary memory accesses (per cache-line access).
#[derive(Clone, Debug)]
pub struct AccessCosts {
    /// TLB hit: address translation is effectively free.
    pub tlb_hit: Nanos,
    /// Four-level page-table walk on a TLB miss (walk caches warm).
    pub walk: Nanos,
    /// Extra walk cost when upper levels are cold (per extra level).
    pub walk_cold_level: Nanos,
    /// Unloaded fast-tier access latency (paper: 70 ns).
    pub fast: Nanos,
    /// Unloaded slow-tier access latency (paper: 162 ns).
    pub slow: Nanos,
    /// Unloaded NVM-class third-tier access latency ("Emulating Hybrid
    /// Memory on NUMA Hardware" calibration range; only reachable on
    /// machines whose chain includes [`TierKind::Nvm`]).
    pub nvm: Nanos,
    /// Minor page-fault service time (NUMA hinting faults add this to the
    /// faulting access — the cost AutoTiering/TPP-style profiling pays).
    pub minor_fault: Nanos,
}

impl Default for AccessCosts {
    fn default() -> Self {
        AccessCosts {
            tlb_hit: Nanos(1),
            walk: Nanos(20),
            walk_cold_level: Nanos(15),
            fast: Nanos(70),
            slow: Nanos(162),
            nvm: Nanos(350),
            minor_fault: Nanos(1_500),
        }
    }
}

impl AccessCosts {
    /// Unloaded latency of one access to `tier`.
    pub fn tier_latency(&self, tier: TierKind) -> Nanos {
        match tier {
            TierKind::Fast => self.fast,
            TierKind::Slow => self.slow,
            TierKind::Nvm => self.nvm,
        }
    }
}

impl vulcan_json::Snapshot for AccessCosts {
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::snap;
        snap::obj(vec![
            ("tlb_hit", snap::u64_value(self.tlb_hit.0)),
            ("walk", snap::u64_value(self.walk.0)),
            ("walk_cold_level", snap::u64_value(self.walk_cold_level.0)),
            ("fast", snap::u64_value(self.fast.0)),
            ("slow", snap::u64_value(self.slow.0)),
            ("nvm", snap::u64_value(self.nvm.0)),
            ("minor_fault", snap::u64_value(self.minor_fault.0)),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        let ns = |key| snap::field_u64(v, key).map(Nanos);
        Ok(AccessCosts {
            tlb_hit: ns("tlb_hit")?,
            walk: ns("walk")?,
            walk_cold_level: ns("walk_cold_level")?,
            fast: ns("fast")?,
            slow: ns("slow")?,
            nvm: ns("nvm")?,
            minor_fault: ns("minor_fault")?,
        })
    }
}

/// Costs of the five-phase page-migration mechanism (§2.1):
/// ① kernel trapping, ② PTE locking and unmapping, ③ TLB shootdown,
/// ④ content copy, ⑤ PTE remapping — plus Linux's migration
/// *preparation* (`lru_add_drain_all()` global synchronization), which
/// Figure 2 shows dominating at high core counts.
#[derive(Clone, Debug)]
pub struct MigrationCosts {
    /// Kernel entry for a migration call.
    pub trap: Cycles,
    /// PTE lock + unmap, per page.
    pub unmap: Cycles,
    /// PTE remap, per page.
    pub remap: Cycles,
    /// Copy of one 4 KiB page on the cold path (includes setup).
    ///
    /// Anchor: Fig 2 residual after preparation/shootdown at 2 CPUs.
    pub copy_single: Cycles,
    /// Per-batch fixed copy setup on the batched path (kernel entry,
    /// batching bookkeeping; ≈13 pages' worth — see DESIGN.md §3.2).
    pub copy_batch_setup: Cycles,
    /// Per-page streaming copy cost on the batched path.
    pub copy_batch_page: Cycles,

    // -- preparation (lru_add_drain_all) --
    /// Fixed preparation cost.
    pub prep_base: Cycles,
    /// Per-CPU drain work (one IPI + per-CPU LRU cache flush).
    pub prep_per_cpu: Cycles,
    /// Quadratic contention term (lock contention, cache-line bouncing,
    /// scheduling delays — §2.2 Observation #2).
    pub prep_contention: Cycles,
    /// Vulcan's optimized preparation: per-workload queues drained without
    /// global `on_each_cpu_mask()` synchronization (§3.2).
    pub prep_optimized: Cycles,

    // -- shootdown, cold path --
    /// Fixed cost of initiating an IPI broadcast.
    pub sd_cold_base: Cycles,
    /// Per-target-core cost (IPI delivery + remote flush + ack wait).
    pub sd_cold_per_target: Cycles,

    // -- shootdown, batched path --
    /// Per-page per-target cost when flushes are batched.
    pub sd_batch_per_page_target: Cycles,
    /// Contention growth per `log2(batch)` of concurrent shootdown rounds.
    pub sd_batch_contention_log: f64,
}

impl Default for MigrationCosts {
    fn default() -> Self {
        MigrationCosts {
            trap: Cycles(1_500),
            unmap: Cycles(2_500),
            remap: Cycles(2_500),
            copy_single: Cycles(12_000),
            copy_batch_setup: Cycles(24_000),
            copy_batch_page: Cycles(5_600),
            // prep(n) = 4000 + 6886 n + 344 n²
            // fit to Fig 2: prep(2) ≈ 19.15 K (38.3% of 50 K),
            //              prep(32) ≈ 576.9 K (76.9% of 750 K).
            prep_base: Cycles(4_000),
            prep_per_cpu: Cycles(6_886),
            prep_contention: Cycles(344),
            prep_optimized: Cycles(3_000),
            // sd_cold(n) = 7608 + 4742·targets
            // fit to Fig 2 residuals at 2 and 32 CPUs (≈1.6 µs per target,
            // consistent with published IPI round-trip costs).
            sd_cold_base: Cycles(7_608),
            sd_cold_per_target: Cycles(4_742),
            // Batched: 90 cycles per page per target, inflated by
            // (1 + 0.35·log2(batch)) — anchors Fig 3's 65% at 512×32.
            sd_batch_per_page_target: Cycles(90),
            sd_batch_contention_log: 0.35,
        }
    }
}

impl vulcan_json::Snapshot for MigrationCosts {
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::snap;
        snap::obj(vec![
            ("trap", snap::u64_value(self.trap.0)),
            ("unmap", snap::u64_value(self.unmap.0)),
            ("remap", snap::u64_value(self.remap.0)),
            ("copy_single", snap::u64_value(self.copy_single.0)),
            ("copy_batch_setup", snap::u64_value(self.copy_batch_setup.0)),
            ("copy_batch_page", snap::u64_value(self.copy_batch_page.0)),
            ("prep_base", snap::u64_value(self.prep_base.0)),
            ("prep_per_cpu", snap::u64_value(self.prep_per_cpu.0)),
            ("prep_contention", snap::u64_value(self.prep_contention.0)),
            ("prep_optimized", snap::u64_value(self.prep_optimized.0)),
            ("sd_cold_base", snap::u64_value(self.sd_cold_base.0)),
            (
                "sd_cold_per_target",
                snap::u64_value(self.sd_cold_per_target.0),
            ),
            (
                "sd_batch_per_page_target",
                snap::u64_value(self.sd_batch_per_page_target.0),
            ),
            (
                "sd_batch_contention_log",
                snap::f64_value(self.sd_batch_contention_log),
            ),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        let cy = |key| snap::field_u64(v, key).map(Cycles);
        Ok(MigrationCosts {
            trap: cy("trap")?,
            unmap: cy("unmap")?,
            remap: cy("remap")?,
            copy_single: cy("copy_single")?,
            copy_batch_setup: cy("copy_batch_setup")?,
            copy_batch_page: cy("copy_batch_page")?,
            prep_base: cy("prep_base")?,
            prep_per_cpu: cy("prep_per_cpu")?,
            prep_contention: cy("prep_contention")?,
            prep_optimized: cy("prep_optimized")?,
            sd_cold_base: cy("sd_cold_base")?,
            sd_cold_per_target: cy("sd_cold_per_target")?,
            sd_batch_per_page_target: cy("sd_batch_per_page_target")?,
            sd_batch_contention_log: snap::field_f64(v, "sd_batch_contention_log")?,
        })
    }
}

impl MigrationCosts {
    /// Baseline Linux migration preparation on an `n_cpus`-core system.
    pub fn prep_baseline(&self, n_cpus: u16) -> Cycles {
        let n = n_cpus as u64;
        Cycles(self.prep_base.0 + self.prep_per_cpu.0 * n + self.prep_contention.0 * n * n)
    }

    /// Vulcan's workload-dependent preparation (§3.2): constant, no global
    /// synchronization.
    pub fn prep_vulcan(&self) -> Cycles {
        self.prep_optimized
    }

    /// Cold-path shootdown with `targets` responder cores.
    pub fn shootdown_cold(&self, targets: u16) -> Cycles {
        if targets == 0 {
            return Cycles::ZERO;
        }
        Cycles(self.sd_cold_base.0 + self.sd_cold_per_target.0 * targets as u64)
    }

    /// Batched shootdown for `pages` pages with `targets` responder cores.
    pub fn shootdown_batched(&self, pages: u64, targets: u16) -> Cycles {
        if targets == 0 || pages == 0 {
            return Cycles::ZERO;
        }
        let contention = 1.0 + self.sd_batch_contention_log * (pages as f64).log2().max(0.0);
        let raw =
            pages as f64 * self.sd_batch_per_page_target.0 as f64 * targets as f64 * contention;
        Cycles(raw.round() as u64)
    }

    /// Batched copy cost for `pages` pages.
    pub fn copy_batched(&self, pages: u64) -> Cycles {
        Cycles(self.copy_batch_setup.0 + self.copy_batch_page.0 * pages)
    }

    /// Total cost of migrating one base page on the cold path with the
    /// Linux baseline mechanism on an `n_cpus` system (Figure 2's subject).
    pub fn single_page_baseline(&self, n_cpus: u16) -> SinglePageBreakdown {
        let prep = self.prep_baseline(n_cpus);
        let shootdown = self.shootdown_cold(n_cpus.saturating_sub(1));
        SinglePageBreakdown {
            prep,
            trap: self.trap,
            unmap: self.unmap,
            shootdown,
            copy: self.copy_single,
            remap: self.remap,
        }
    }

    /// Bytes touched when copying `pages` pages (read source + write dest).
    pub fn copy_bytes(&self, pages: u64) -> u64 {
        pages * PAGE_SIZE as u64
    }

    /// Costs with page copies inflated by `factor` — migration *under
    /// load*. The §5.2 microbenchmarks migrate while the application
    /// saturates slow-tier bandwidth, so copies run at a fraction of
    /// peak (queueing inflation plus allocator/rmap contention); the
    /// Figure 7 harness uses factor ≈ 6, which reproduces the paper's
    /// 3.4x headline speedup for 2-page migrations.
    pub fn with_copy_contention(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0);
        let scale = |c: Cycles| Cycles((c.0 as f64 * factor).round() as u64);
        self.copy_single = scale(self.copy_single);
        self.copy_batch_setup = scale(self.copy_batch_setup);
        self.copy_batch_page = scale(self.copy_batch_page);
        self
    }
}

/// Per-phase breakdown of a single base-page migration (Figure 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SinglePageBreakdown {
    /// Migration preparation (`lru_add_drain_all` global sync).
    pub prep: Cycles,
    /// Kernel entry.
    pub trap: Cycles,
    /// PTE lock and unmap.
    pub unmap: Cycles,
    /// TLB shootdown IPI broadcast.
    pub shootdown: Cycles,
    /// 4 KiB content copy.
    pub copy: Cycles,
    /// PTE remap to the new frame.
    pub remap: Cycles,
}

impl SinglePageBreakdown {
    /// Total cycles across all phases.
    pub fn total(&self) -> Cycles {
        self.prep + self.trap + self.unmap + self.shootdown + self.copy + self.remap
    }

    /// Fraction of total spent in preparation (Observation #2's metric).
    pub fn prep_share(&self) -> f64 {
        self.prep.as_f64() / self.total().as_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_anchor_two_cpus() {
        let m = MigrationCosts::default();
        let b = m.single_page_baseline(2);
        // Paper: ~50K cycles total, preparation ~38.3%.
        assert!(
            (49_000..=51_000).contains(&b.total().0),
            "total {}",
            b.total()
        );
        assert!(
            (0.36..=0.40).contains(&b.prep_share()),
            "share {}",
            b.prep_share()
        );
    }

    #[test]
    fn fig2_anchor_thirty_two_cpus() {
        let m = MigrationCosts::default();
        let b = m.single_page_baseline(32);
        // Paper: ~750K cycles total, preparation ~76.9%.
        assert!(
            (735_000..=765_000).contains(&b.total().0),
            "total {}",
            b.total()
        );
        assert!(
            (0.75..=0.79).contains(&b.prep_share()),
            "share {}",
            b.prep_share()
        );
    }

    #[test]
    fn prep_dominates_more_with_scale() {
        let m = MigrationCosts::default();
        let mut last = 0.0;
        for n in [2u16, 4, 8, 16, 32] {
            let share = m.single_page_baseline(n).prep_share();
            assert!(share > last, "share must grow with CPUs");
            last = share;
        }
    }

    #[test]
    fn fig3_anchor_tlb_share_at_512x32() {
        let m = MigrationCosts::default();
        // 32 threads on distinct cores => 31 remote targets.
        let tlb = m.shootdown_batched(512, 31);
        let copy = m.copy_batched(512);
        let share = tlb.as_f64() / (tlb.as_f64() + copy.as_f64());
        assert!((0.60..=0.70).contains(&share), "TLB share {share}");
    }

    #[test]
    fn fig3_copy_dominates_small_batches() {
        let m = MigrationCosts::default();
        let tlb = m.shootdown_batched(2, 31);
        let copy = m.copy_batched(2);
        assert!(
            copy.as_f64() > 3.0 * tlb.as_f64(),
            "copy {copy} vs tlb {tlb}"
        );
    }

    #[test]
    fn fig3_tlb_share_grows_with_pages_and_threads() {
        let m = MigrationCosts::default();
        let share = |pages, targets| {
            let t = m.shootdown_batched(pages, targets).as_f64();
            let c = m.copy_batched(pages).as_f64();
            t / (t + c)
        };
        assert!(share(512, 31) > share(32, 31));
        assert!(share(32, 31) > share(2, 31));
        assert!(share(512, 31) > share(512, 7));
        assert!(share(512, 7) > share(512, 1));
    }

    #[test]
    fn targeted_shootdown_is_cheaper() {
        let m = MigrationCosts::default();
        // Private page: 1 owner core instead of 31.
        assert!(m.shootdown_batched(64, 1).0 * 10 < m.shootdown_batched(64, 31).0);
        assert!(m.shootdown_cold(1) < m.shootdown_cold(31));
        assert_eq!(m.shootdown_cold(0), Cycles::ZERO);
        assert_eq!(m.shootdown_batched(0, 31), Cycles::ZERO);
    }

    #[test]
    fn optimized_prep_removes_cpu_scaling() {
        let m = MigrationCosts::default();
        assert_eq!(m.prep_vulcan(), m.prep_vulcan());
        assert!(m.prep_vulcan().0 * 100 < m.prep_baseline(32).0);
        assert!(m.prep_baseline(32) > m.prep_baseline(2));
    }

    #[test]
    fn access_cost_defaults_match_testbed() {
        let a = AccessCosts::default();
        assert_eq!(a.tier_latency(TierKind::Fast), Nanos(70));
        assert_eq!(a.tier_latency(TierKind::Slow), Nanos(162));
        assert_eq!(a.tier_latency(TierKind::Nvm), Nanos(350));
    }

    #[test]
    fn copy_bytes() {
        let m = MigrationCosts::default();
        assert_eq!(m.copy_bytes(3), 3 * 4096);
    }

    #[test]
    fn copy_contention_scales_only_copies() {
        let base = MigrationCosts::default();
        let loaded = MigrationCosts::default().with_copy_contention(6.0);
        assert_eq!(loaded.copy_single.0, base.copy_single.0 * 6);
        assert_eq!(loaded.copy_batch_page.0, base.copy_batch_page.0 * 6);
        assert_eq!(loaded.prep_baseline(32), base.prep_baseline(32));
        assert_eq!(loaded.shootdown_cold(31), base.shootdown_cold(31));
    }
}
