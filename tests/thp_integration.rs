//! Integration test: transparent huge pages end-to-end (§3.4/§3.5).
//!
//! THP-backed workloads fault whole 2 MiB regions, translate through
//! 2 MiB TLB entries (one entry covers 512 pages), and Vulcan splits
//! regions into base pages before promotion — flushing the huge TLB
//! entries so no stale 2 MiB translation survives a split.

use vulcan::prelude::*;
use vulcan::sim::HUGE_PAGE_PAGES;

fn micro(thp: bool) -> WorkloadSpec {
    let spec = microbench(
        "mb",
        MicroConfig {
            rss_pages: 8 * HUGE_PAGE_PAGES as u64, // 8 regions
            wss_pages: 8 * HUGE_PAGE_PAGES as u64, // touch everything
            skew: 0.4,
            ..Default::default()
        },
        4,
    );
    if thp {
        spec.with_thp()
    } else {
        spec
    }
}

fn runner(thp: bool, fast_pages: u64) -> vulcan::runtime::SimRunner {
    vulcan::runtime::SimRunner::builder()
        .machine(MachineSpec::small(fast_pages, 16_384, 8))
        .workloads(vec![micro(thp)])
        .profiler_factory(|_| Box::new(HybridProfiler::vulcan_default()))
        .policy(Box::new(StaticPlacement))
        .config(SimConfig {
            quantum_active: Nanos::millis(1),
            n_quanta: 8,
            ..Default::default()
        })
        .build()
}

#[test]
fn thp_faults_map_whole_regions() {
    let mut r = runner(true, 8_192);
    for _ in 0..8 {
        r.run_quantum();
    }
    let ws = &r.state.workloads[0];
    assert_eq!(ws.process.space.huge_count(), 8, "all regions THP-backed");
    assert_eq!(ws.rss_pages(), 8 * HUGE_PAGE_PAGES as u64);
    // Far fewer major faults than pages: one fault per region.
    assert!(
        ws.stats.major_faults <= 16,
        "region-granular faulting: {}",
        ws.stats.major_faults
    );
    let without = {
        let mut r = runner(false, 8_192);
        for _ in 0..8 {
            r.run_quantum();
        }
        r.state.workloads[0].stats.major_faults
    };
    assert!(
        without >= 8 * HUGE_PAGE_PAGES as u64,
        "4K faulting pays per page: {without}"
    );
}

#[test]
fn thp_regions_do_not_straddle_tiers() {
    // Fast tier holds only 2.5 regions' worth: THP faults must fall back
    // rather than split a region across tiers.
    let mut r = runner(true, (2 * HUGE_PAGE_PAGES + HUGE_PAGE_PAGES / 2) as u64);
    for _ in 0..8 {
        r.run_quantum();
    }
    let ws = &r.state.workloads[0];
    for base in (0..8 * HUGE_PAGE_PAGES as u64).step_by(HUGE_PAGE_PAGES) {
        if !ws.process.space.in_huge(Vpn(base)) {
            continue;
        }
        let tiers: std::collections::BTreeSet<_> = (base..base + HUGE_PAGE_PAGES as u64)
            .map(|v| ws.process.space.pte(Vpn(v)).tier().expect("mapped"))
            .collect();
        assert_eq!(tiers.len(), 1, "region {base} straddles tiers");
    }
}

#[test]
fn promotion_splits_huge_regions_and_flushes_tlbs() {
    let spec = micro(true).starting_at(Nanos::ZERO);
    let mut r = vulcan::runtime::SimRunner::builder()
        .machine(
            // Fast tier too small for THP faults: regions land in slow.
            MachineSpec::small(256, 16_384, 8),
        )
        .workloads(vec![spec])
        .profiler_factory(|_| Box::new(HybridProfiler::vulcan_default()))
        .policy(Box::new(VulcanPolicy::new()))
        .config(SimConfig {
            quantum_active: Nanos::millis(1),
            n_quanta: 10,
            ..Default::default()
        })
        .build();
    for _ in 0..10 {
        r.run_quantum();
    }
    let ws = &r.state.workloads[0];
    assert!(
        ws.process.space.huge_count() < 8,
        "promotion split THP regions (Memtis-style, §3.5): {} remain",
        ws.process.space.huge_count()
    );
    assert!(ws.stats.fast_used > 0, "hot base pages promoted");
    // No core's TLB may hold a huge entry for a split region.
    let asid = ws.process.asid;
    for c in 0..8u16 {
        for base in (0..8 * HUGE_PAGE_PAGES as u64).step_by(HUGE_PAGE_PAGES) {
            if !ws.process.space.in_huge(Vpn(base)) {
                // Split region: a lookup must miss (no stale 2 MiB entry).
                assert!(
                    !r.state
                        .tlbs
                        .core(vulcan::sim::CoreId(c))
                        .lookup_huge(asid, Vpn(base)),
                    "stale huge TLB entry on core {c} for region {base}"
                );
            }
        }
    }
}

#[test]
fn thp_improves_effective_tlb_reach() {
    // 4096 pages of uniform working set vs 1536-entry base TLBs: 4K
    // paging thrashes the TLB, 8 huge entries cover everything.
    let hit_ratio = |thp: bool| {
        let mut r = runner(thp, 8_192);
        for _ in 0..8 {
            r.run_quantum();
        }
        // Aggregate hit ratio over the cores that ran the workload.
        let mut hits = 0u64;
        let mut misses = 0u64;
        for c in 0..8u16 {
            let (h, m) = r.state.tlbs.core(vulcan::sim::CoreId(c)).stats();
            hits += h;
            misses += m;
        }
        hits as f64 / (hits + misses).max(1) as f64
    };
    let with = hit_ratio(true);
    let without = hit_ratio(false);
    assert!(
        with > without + 0.05,
        "huge entries extend TLB reach: thp={with:.3} base={without:.3}"
    );
}
