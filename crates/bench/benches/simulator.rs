//! Criterion benchmark of end-to-end simulation throughput: one quantum
//! of the three-application co-location per policy. This is the number
//! that determines how long every figure binary takes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vulcan::prelude::*;
use vulcan_bench::colocation_specs;

fn bench_quantum(c: &mut Criterion) {
    let mut g = c.benchmark_group("quantum");
    g.sample_size(10);
    for kind in PolicyKind::PAPER {
        g.bench_with_input(
            BenchmarkId::new("colocation", kind.name()),
            &kind,
            |b, &kind| {
                // Warm a runner past the arrivals, then time steady quanta.
                let mut runner = SimRunner::builder()
                    .machine(MachineSpec::paper_testbed())
                    .workloads(
                        colocation_specs()
                            .into_iter()
                            .map(|w| w.starting_at(Nanos::ZERO))
                            .collect(),
                    )
                    .profiler_factory(move |_| kind.profiler())
                    .policy(kind.make())
                    .config(SimConfig {
                        n_quanta: 0,
                        record_series: false,
                        ..Default::default()
                    })
                    .build();
                for _ in 0..10 {
                    runner.run_quantum();
                }
                b.iter(|| runner.run_quantum());
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_quantum);
criterion_main!(benches);
