//! Zipfian rank sampling.
//!
//! The paper's migration-policy microbenchmarks generate "memory accesses
//! to the WSS data that mimic real-world memory access patterns with a
//! Zipfian distribution" (§5.2). This sampler precomputes the CDF of a
//! Zipf(s) distribution over `n` ranks and samples by binary search —
//! exact, O(log n) per sample, and deterministic given the RNG.

use rand::Rng;

/// A Zipfian distribution over ranks `0..n` (rank 0 is the hottest).
///
/// ```
/// use rand::{rngs::SmallRng, SeedableRng};
/// use vulcan_workloads::Zipf;
///
/// let zipf = Zipf::new(1000, 0.99);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1000);
/// assert!(zipf.pmf(0) > zipf.pmf(999)); // the head is hot
/// ```
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Zipf with exponent `s` over `n` ranks. `s = 0` degenerates to
    /// uniform; YCSB's default skew is `s ≈ 0.99`.
    pub fn new(n: u64, s: f64) -> Zipf {
        assert!(n > 0, "need at least one rank");
        assert!(s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// Draw one rank.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u) as u64
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: u64) -> f64 {
        let k = k as usize;
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 0.99);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pmf_is_monotone_decreasing() {
        let z = Zipf::new(50, 1.2);
        for k in 1..50 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn samples_within_range_and_skewed() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = vec![0u64; 1000];
        for _ in 0..100_000 {
            let k = z.sample(&mut rng);
            assert!(k < 1000);
            counts[k as usize] += 1;
        }
        // Rank 0 must dominate rank 500 heavily under s≈1.
        assert!(counts[0] > 50 * counts[500].max(1));
        // Head concentration: top 10% of ranks gets well over half the mass.
        let head: u64 = counts[..100].iter().sum();
        assert!(head > 60_000, "head={head}");
    }

    #[test]
    fn single_rank_always_sampled() {
        let z = Zipf::new(1, 0.99);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn deterministic_under_same_seed() {
        let z = Zipf::new(64, 0.8);
        let a: Vec<u64> = {
            let mut rng = SmallRng::seed_from_u64(42);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = SmallRng::seed_from_u64(42);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
