//! A minimal discrete-event queue for daemon activity.
//!
//! The migration daemon (§3.2) wakes periodically to run profiling and
//! dispatch migration work; async migration threads complete copies at
//! future instants. Both are modeled as timestamped events.

use crate::time::Nanos;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An event scheduled at a simulated instant, carrying a payload.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Scheduled<E> {
    at: Nanos,
    seq: u64,
    payload: E,
}

impl<E: Eq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Ties broken by insertion order for determinism.
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E: Eq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-heap of timestamped events.
///
/// **Same-timestamp guarantee:** events scheduled at the same instant
/// fire in insertion order (FIFO), not in `BinaryHeap` sibling order.
/// Every entry carries a monotonically increasing sequence number that
/// breaks timestamp ties, and the counter survives pops, so the
/// guarantee holds across arbitrary interleavings of [`schedule`] and
/// [`pop_due`]. Consumers like the churn engine schedule many events at
/// identical nanosecond ticks (a departure and the admission review it
/// triggers) and rely on this ordering being stable run-to-run.
///
/// [`schedule`]: EventQueue::schedule
/// [`pop_due`]: EventQueue::pop_due
#[derive(Clone, Debug, Default)]
pub struct EventQueue<E: Eq> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    seq: u64,
}

impl<E: Eq> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `payload` to fire at instant `at`. Events scheduled at
    /// the same instant fire in the order they were scheduled.
    pub fn schedule(&mut self, at: Nanos, payload: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, payload }));
    }

    /// The instant of the next event, if any.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Pop the next event if it fires at or before `now`.
    pub fn pop_due(&mut self, now: Nanos) -> Option<(Nanos, E)> {
        if self.peek_time()? <= now {
            let Reverse(s) = self.heap.pop().expect("peeked");
            Some((s.at, s.payload))
        } else {
            None
        }
    }

    /// Drain every event due at or before `now`, in firing order.
    pub fn drain_due(&mut self, now: Nanos) -> Vec<(Nanos, E)> {
        let mut out = Vec::new();
        while let Some(e) = self.pop_due(now) {
            out.push(e);
        }
        out
    }

    /// Decompose into checkpoint parts: every pending entry as
    /// `(at, seq, payload)` in firing order, plus the next sequence
    /// number. The original seq values travel with the entries — they
    /// are what keeps same-instant FIFO ordering stable across a
    /// checkpoint/restore boundary.
    pub fn parts(&self) -> (Vec<(Nanos, u64, &E)>, u64) {
        let mut entries: Vec<(Nanos, u64, &E)> = self
            .heap
            .iter()
            .map(|Reverse(s)| (s.at, s.seq, &s.payload))
            .collect();
        entries.sort_by_key(|&(at, seq, _)| (at, seq));
        (entries, self.seq)
    }

    /// Rebuild a queue from [`parts`](EventQueue::parts) output.
    ///
    /// # Panics
    /// Panics if any entry's seq is `>= next_seq` or duplicated — a
    /// queue that could later mint a colliding sequence number would
    /// silently scramble same-instant ordering.
    pub fn from_parts(entries: Vec<(Nanos, u64, E)>, next_seq: u64) -> Self {
        let mut seen: Vec<u64> = entries.iter().map(|&(_, s, _)| s).collect();
        seen.sort_unstable();
        seen.windows(2).for_each(|w| {
            assert_ne!(w[0], w[1], "duplicate event seq {}", w[0]);
        });
        let heap = entries
            .into_iter()
            .map(|(at, seq, payload)| {
                assert!(seq < next_seq, "event seq {seq} >= next_seq {next_seq}");
                Reverse(Scheduled { at, seq, payload })
            })
            .collect();
        EventQueue {
            heap,
            seq: next_seq,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(30), "c");
        q.schedule(Nanos(10), "a");
        q.schedule(Nanos(20), "b");
        let fired: Vec<_> = q
            .drain_due(Nanos(100))
            .into_iter()
            .map(|(_, e)| e)
            .collect();
        assert_eq!(fired, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(10), 1);
        q.schedule(Nanos(10), 2);
        q.schedule(Nanos(10), 3);
        let fired: Vec<_> = q.drain_due(Nanos(10)).into_iter().map(|(_, e)| e).collect();
        assert_eq!(fired, vec![1, 2, 3]);
    }

    #[test]
    fn large_tie_batches_preserve_insertion_order() {
        // Enough ties that any heap-internal ordering (sibling order,
        // sift-up paths) would scramble a naive implementation.
        let mut q = EventQueue::new();
        for i in 0..1000 {
            q.schedule(Nanos(42), i);
        }
        let fired: Vec<u64> = q.drain_due(Nanos(42)).into_iter().map(|(_, e)| e).collect();
        assert_eq!(fired, (0..1000).collect::<Vec<u64>>());
    }

    #[test]
    fn ties_survive_interleaved_schedule_and_pop() {
        // The sequence counter must not reset or collide after pops:
        // a churn departure popped at tick T schedules its admission
        // review back at the same tick T, and the review must fire after
        // every event that was already queued for T.
        let mut q = EventQueue::new();
        q.schedule(Nanos(10), "departure");
        q.schedule(Nanos(10), "compaction");
        assert_eq!(q.pop_due(Nanos(10)), Some((Nanos(10), "departure")));
        q.schedule(Nanos(10), "admission-review");
        q.schedule(Nanos(5), "late-but-earlier");
        let fired: Vec<&str> = q.drain_due(Nanos(10)).into_iter().map(|(_, e)| e).collect();
        assert_eq!(
            fired,
            vec!["late-but-earlier", "compaction", "admission-review"],
            "time first, then FIFO among same-tick events, across pops"
        );
    }

    #[test]
    fn parts_roundtrip_preserves_tie_order_across_pops() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(10), "a");
        q.schedule(Nanos(10), "b");
        q.pop_due(Nanos(10)).unwrap(); // consume "a"; seq counter is now 2
        q.schedule(Nanos(10), "c");
        let (entries, next_seq) = q.parts();
        let owned: Vec<_> = entries.into_iter().map(|(at, s, p)| (at, s, *p)).collect();
        let mut back = EventQueue::from_parts(owned, next_seq);
        back.schedule(Nanos(10), "d"); // must fire after b and c
        let fired: Vec<&str> = back
            .drain_due(Nanos(10))
            .into_iter()
            .map(|(_, e)| e)
            .collect();
        assert_eq!(fired, vec!["b", "c", "d"]);
    }

    #[test]
    #[should_panic(expected = "event seq")]
    fn from_parts_rejects_future_seq() {
        let _ = EventQueue::from_parts(vec![(Nanos(1), 5u64, ())], 3);
    }

    #[test]
    fn not_due_stays_queued() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(50), ());
        assert_eq!(q.pop_due(Nanos(49)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_due(Nanos(50)), Some((Nanos(50), ())));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(Nanos(7), ());
        assert_eq!(q.peek_time(), Some(Nanos(7)));
    }
}
