//! Record a workload's access trace, save it, and replay it through a
//! different tiering policy — deterministic, shareable experiments.
//!
//! Run with: `cargo run --release --example trace_replay`

use std::sync::Arc;
use vulcan::prelude::*;
use vulcan::workloads::{replay, Trace};

fn main() {
    // 1. Record 2000 ops/thread of the Memcached-like generator.
    let mut gen = memcached().build();
    let trace = Trace::record(gen.as_mut(), 8, 2_000, 42);
    println!(
        "recorded {} ops / {} accesses over {} pages",
        trace.ops.len(),
        trace.n_accesses(),
        trace.rss_pages
    );

    // 2. Round-trip through JSON (the on-disk interchange format).
    let json = trace.to_json();
    println!("trace serializes to {} bytes of JSON", json.len());
    let trace = Arc::new(Trace::from_json(&json).expect("valid trace"));

    // 3. Replay the identical access stream under two different policies.
    let mut rows = Vec::new();
    for (label, policy) in [
        ("memtis", Box::new(Memtis::new()) as Box<dyn TieringPolicy>),
        ("vulcan", Box::new(VulcanPolicy::new())),
    ] {
        let spec = replay("kv-trace", trace.clone(), WorkloadClass::LatencyCritical);
        let res = SimRunner::builder()
            .machine(MachineSpec::small(4_096, 32_768, 16))
            .workloads(vec![spec])
            .profiler_factory(|_| profiler_for(label))
            .policy(policy)
            .config(SimConfig {
                n_quanta: 30,
                ..Default::default()
            })
            .build()
            .run();
        rows.push((label, res));
    }

    let mut table = Table::new(
        "same trace, two policies",
        &["policy", "ops/s", "latency(ns)", "FTHR"],
    );
    for (label, res) in &rows {
        let w = res.workload("kv-trace");
        table.row(&[
            label.to_string(),
            format!("{:.0}", w.mean_ops_per_sec),
            format!("{:.0}", w.mean_latency_ns),
            format!("{:.3}", w.mean_fthr),
        ]);
    }
    table.print();
    println!(
        "\nBoth policies saw byte-identical access streams — any difference \
         is the policy, not workload noise."
    );
}
