//! Figure 2: breakdown of migration costs for a single base page (4 KiB)
//! across varying numbers of CPUs.
//!
//! Paper anchors: total rises from ~50 K cycles at 2 CPUs to ~750 K at
//! 32; the preparation share grows from 38.3% to 76.9% (Observation #2).

use vulcan::prelude::Table;
use vulcan::sim::MigrationCosts;

fn main() {
    let costs = MigrationCosts::default();
    let mut table = Table::new(
        "Figure 2: single base-page migration breakdown vs CPU count (cycles)",
        &[
            "cpus",
            "prep",
            "trap",
            "unmap",
            "shootdown",
            "copy",
            "remap",
            "total",
            "prep%",
        ],
    );
    let mut rows = Vec::new();
    for cpus in [2u16, 4, 8, 16, 32] {
        let b = costs.single_page_baseline(cpus);
        table.row(&[
            cpus.to_string(),
            b.prep.to_string(),
            b.trap.to_string(),
            b.unmap.to_string(),
            b.shootdown.to_string(),
            b.copy.to_string(),
            b.remap.to_string(),
            b.total().to_string(),
            format!("{:.1}", 100.0 * b.prep_share()),
        ]);
        rows.push(vulcan_json::Value::Object(
            vulcan_json::Map::new()
                .with("cpus", cpus)
                .with("prep", b.prep.0)
                .with("trap", b.trap.0)
                .with("unmap", b.unmap.0)
                .with("shootdown", b.shootdown.0)
                .with("copy", b.copy.0)
                .with("remap", b.remap.0)
                .with("total", b.total().0)
                .with("prep_share", b.prep_share()),
        ));
    }
    table.print();
    println!(
        "\nPaper: 50K -> 750K cycles and 38.3% -> 76.9% preparation share \
         from 2 to 32 CPUs; the model is calibrated to those anchors."
    );
    vulcan_bench::save_json_or_exit("fig2", &rows);
}
