//! Memory tiers: capacity, latency and bandwidth characteristics.
//!
//! The paper's testbed (§5.1): locally-attached fast memory, 32 GB,
//! 70 ns unloaded latency; emulated CXL slow memory, 256 GB, 162 ns
//! unloaded latency; 205 GB/s local bandwidth, 25 GB/s cross-link
//! bandwidth per direction.
//!
//! Capacities are scaled for simulation: **1 paper-GB = 256 pages of
//! 4 KiB** (see DESIGN.md §5). The latency *gap* and the capacity *ratio*
//! are what drive every result in the paper, and both are preserved.

use crate::time::Nanos;

/// Base page size used throughout (4 KiB), matching the paper's focus on
/// base-page migration (§3.4 splits 2 MiB huge pages into base pages).
pub const PAGE_SIZE: usize = 4096;

/// Huge page size (2 MiB): 512 base pages.
pub const HUGE_PAGE_PAGES: usize = 512;

/// Scale factor: number of simulated 4 KiB pages representing one paper-GB.
pub const PAGES_PER_PAPER_GB: u64 = 256;

/// Which memory tier a frame lives in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TierKind {
    /// Fast, locally attached DRAM.
    Fast,
    /// Slow CXL-like far memory.
    Slow,
}

impl TierKind {
    /// Both tiers, fast first.
    pub const ALL: [TierKind; 2] = [TierKind::Fast, TierKind::Slow];

    /// The other tier (migration destination/source).
    pub fn other(self) -> TierKind {
        match self {
            TierKind::Fast => TierKind::Slow,
            TierKind::Slow => TierKind::Fast,
        }
    }

    /// Dense index for array-per-tier structures.
    pub fn index(self) -> usize {
        match self {
            TierKind::Fast => 0,
            TierKind::Slow => 1,
        }
    }
}

/// Static description of one memory tier.
#[derive(Clone, Debug, PartialEq)]
pub struct TierSpec {
    /// Which tier this describes.
    pub kind: TierKind,
    /// Capacity in 4 KiB pages.
    pub capacity_pages: u64,
    /// Unloaded random-read latency for one cache line.
    pub load_latency: Nanos,
    /// Unloaded store latency for one cache line.
    pub store_latency: Nanos,
    /// Peak bandwidth in bytes per nanosecond (= GB/s).
    pub bandwidth_bytes_per_ns: f64,
}

impl TierSpec {
    /// The paper's fast tier: 32 GB local DDR4, 70 ns, 205 GB/s.
    pub fn paper_fast() -> TierSpec {
        TierSpec {
            kind: TierKind::Fast,
            capacity_pages: 32 * PAGES_PER_PAPER_GB,
            load_latency: Nanos(70),
            store_latency: Nanos(70),
            bandwidth_bytes_per_ns: 205.0,
        }
    }

    /// The paper's slow tier: 256 GB emulated CXL, 162 ns, 25 GB/s per
    /// direction over the UPI link.
    pub fn paper_slow() -> TierSpec {
        TierSpec {
            kind: TierKind::Slow,
            capacity_pages: 256 * PAGES_PER_PAPER_GB,
            load_latency: Nanos(162),
            store_latency: Nanos(162),
            bandwidth_bytes_per_ns: 25.0,
        }
    }

    /// A tiny tier for unit tests.
    pub fn test_tier(kind: TierKind, capacity_pages: u64) -> TierSpec {
        let (lat, bw) = match kind {
            TierKind::Fast => (Nanos(70), 205.0),
            TierKind::Slow => (Nanos(162), 25.0),
        };
        TierSpec {
            kind,
            capacity_pages,
            load_latency: lat,
            store_latency: lat,
            bandwidth_bytes_per_ns: bw,
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_pages * PAGE_SIZE as u64
    }

    /// Time to stream-copy `bytes` at this tier's peak bandwidth.
    pub fn stream_time(&self, bytes: u64) -> Nanos {
        Nanos((bytes as f64 / self.bandwidth_bytes_per_ns).ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_specs_match_hardware_table() {
        let fast = TierSpec::paper_fast();
        let slow = TierSpec::paper_slow();
        assert_eq!(fast.load_latency, Nanos(70));
        assert_eq!(slow.load_latency, Nanos(162));
        // CXL adds 70–90 ns over local memory (paper cites Pond); 162-70=92.
        assert!(slow.load_latency.0 - fast.load_latency.0 >= 70);
        // Capacity ratio 256/32 = 8x is preserved under scaling.
        assert_eq!(slow.capacity_pages / fast.capacity_pages, 8);
    }

    #[test]
    fn other_tier_is_involution() {
        for t in TierKind::ALL {
            assert_eq!(t.other().other(), t);
            assert_ne!(t.other(), t);
        }
    }

    #[test]
    fn stream_time_scales_with_bytes() {
        let slow = TierSpec::paper_slow();
        let one = slow.stream_time(PAGE_SIZE as u64);
        let ten = slow.stream_time(10 * PAGE_SIZE as u64);
        assert!(ten.0 >= 10 * one.0 - 10); // ceil slack
                                           // 4096 bytes at 25 GB/s = ~164 ns
        assert!((160..=170).contains(&one.0), "got {one:?}");
    }

    #[test]
    fn indexes_are_dense() {
        assert_eq!(TierKind::Fast.index(), 0);
        assert_eq!(TierKind::Slow.index(), 1);
    }

    #[test]
    fn capacity_bytes() {
        let t = TierSpec::test_tier(TierKind::Fast, 2);
        assert_eq!(t.capacity_bytes(), 8192);
    }
}
