//! The access-generator abstraction.
//!
//! Workloads produce *operations* — short sequences of page accesses plus
//! a fixed off-memory cost (network, compute). The runtime replays these
//! against the simulated machine. Latency-critical performance is per-op
//! latency; best-effort performance is op throughput.

use rand::rngs::SmallRng;
use vulcan_sim::Nanos;

/// One page access within an operation. `offset` is relative to the
/// workload's region base; the runtime adds the base VPN.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageAccess {
    /// Page offset within the workload's RSS region.
    pub offset: u64,
    /// Whether the access writes.
    pub write: bool,
}

impl PageAccess {
    /// A read of `offset`.
    pub fn read(offset: u64) -> Self {
        PageAccess {
            offset,
            write: false,
        }
    }

    /// A write of `offset`.
    pub fn write(offset: u64) -> Self {
        PageAccess {
            offset,
            write: true,
        }
    }
}

/// A workload's access generator.
pub trait AccessGen: Send {
    /// Append the accesses of thread `tid`'s next operation to `out`
    /// (which the caller clears).
    fn next_op(&mut self, tid: usize, rng: &mut SmallRng, out: &mut Vec<PageAccess>);

    /// The workload's resident set size in pages.
    fn rss_pages(&self) -> u64;

    /// Off-memory time per operation (request parsing, compute, network).
    /// This is what separates a latency-critical service issuing sparse
    /// accesses from a best-effort sweep saturating the memory system.
    fn fixed_op_nanos(&self) -> Nanos;
}

/// Split a region of `len` pages into `n` contiguous per-thread shards;
/// returns thread `tid`'s `[start, end)` offsets relative to the region.
pub fn shard(len: u64, n: usize, tid: usize) -> (u64, u64) {
    debug_assert!(tid < n);
    let n = n as u64;
    let tid = tid as u64;
    let base = len / n;
    let rem = len % n;
    let start = tid * base + tid.min(rem);
    let extra = if tid < rem { 1 } else { 0 };
    (start, start + base + extra)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_partition_the_region() {
        for len in [1u64, 7, 100, 1000] {
            for n in [1usize, 3, 8] {
                let mut covered = 0;
                let mut prev_end = 0;
                for tid in 0..n {
                    let (s, e) = shard(len, n, tid);
                    assert_eq!(s, prev_end, "shards are contiguous");
                    assert!(e >= s);
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, len, "len={len} n={n}");
                assert_eq!(prev_end, len);
            }
        }
    }

    #[test]
    fn shards_are_balanced() {
        for tid in 0..8 {
            let (s, e) = shard(100, 8, tid);
            assert!((e - s) == 12 || (e - s) == 13);
        }
    }

    #[test]
    fn access_constructors() {
        assert!(!PageAccess::read(5).write);
        assert!(PageAccess::write(5).write);
        assert_eq!(PageAccess::read(5).offset, 5);
    }
}
