//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this shim
//! provides the subset of proptest's API the workspace tests use:
//! [`Strategy`] with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`any`], [`Just`], `collection::{vec, btree_map,
//! btree_set}`, [`prop_oneof!`], [`ProptestConfig`], and the
//! [`proptest!`] / [`prop_assert!`] macros.
//!
//! Semantics differ from upstream in two deliberate ways: inputs are
//! sampled from a deterministic RNG seeded by the test's module path and
//! name (no `.proptest-regressions` persistence), and failures are plain
//! panics without input shrinking. That keeps runs reproducible without
//! wall-clock or filesystem state, which is all the workspace needs.

pub mod strategy;

pub mod test_runner {
    //! Test configuration and the deterministic RNG behind sampling.

    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    /// Per-block configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of sampled cases per test function.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` sampled inputs per test.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    /// Deterministic xoshiro256** generator seeded from the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed from an arbitrary label (the generated tests pass
        /// `module_path!()::name`, so every test gets a stable, distinct
        /// stream).
        pub fn for_test(label: &str) -> TestRng {
            // DefaultHasher uses fixed keys, so this is deterministic
            // across runs and builds.
            let mut h = DefaultHasher::new();
            label.hash(&mut h);
            TestRng::seeded(h.finish())
        }

        fn seeded(seed: u64) -> TestRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                // SplitMix64 expansion of the 64-bit seed.
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *w = z ^ (z >> 31);
            }
            TestRng { s }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// A uniform draw in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn next_below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the "standard" strategy for a type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only; upstream's NaN/Inf corners are not
            // exercised by this workspace.
            rng.next_f64() * 2.0e9 - 1.0e9
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(PhantomData<T>);

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies: `vec`, `btree_map`, `btree_set`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive bound on collection sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.next_below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `BTreeMap` with `size`-many distinct keys (duplicate draws are
    /// retried a bounded number of times, then dropped).
    pub fn btree_map<K, V>(
        keys: K,
        values: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy {
            keys,
            values,
            size: size.into(),
        }
    }

    /// Strategy returned by [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let target = self.size.pick(rng).max(self.size.lo);
            let mut map = BTreeMap::new();
            let mut attempts = 0;
            while map.len() < target && attempts < target * 16 + 64 {
                attempts += 1;
                let k = self.keys.sample(rng);
                map.entry(k).or_insert_with(|| self.values.sample(rng));
            }
            map
        }
    }

    /// A `BTreeSet` with `size`-many distinct elements.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng).max(self.size.lo);
            let mut set = BTreeSet::new();
            let mut attempts = 0;
            while set.len() < target && attempts < target * 16 + 64 {
                attempts += 1;
                set.insert(self.element.sample(rng));
            }
            set
        }
    }
}

pub mod prelude {
    //! The usual glob import, mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property body (plain panic; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![$(::std::boxed::Box::new($strat)),+])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written by the caller, as with
/// upstream proptest) that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(
            a in 3u8..=5,
            pair in (0u64..10, any::<bool>()),
            v in crate::collection::vec(0u32..100, 1..8),
        ) {
            prop_assert!((3..=5).contains(&a));
            prop_assert!(pair.0 < 10);
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn map_and_flat_map(
            x in (1u64..100).prop_map(|n| n * 2),
            (lo, hi) in (10u64..20).prop_flat_map(|lo| (Just(lo), lo..30)),
        ) {
            prop_assert!(x % 2 == 0 && x < 200);
            prop_assert!((10..20).contains(&lo));
            prop_assert!(lo <= hi && hi < 30);
        }

        #[test]
        fn oneof_picks_from_all(choice in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(choice == 1 || choice == 2);
        }
    }

    #[test]
    fn collections_hit_requested_sizes() {
        let mut rng = crate::test_runner::TestRng::for_test("sizes");
        use crate::strategy::Strategy;
        for _ in 0..64 {
            let m = crate::collection::btree_map(0u64..1000, 0u8..4, 5..=5).sample(&mut rng);
            assert_eq!(m.len(), 5);
            let s = crate::collection::btree_set(0u64..1000, 3..=3).sample(&mut rng);
            assert_eq!(s.len(), 3);
        }
    }

    #[test]
    fn deterministic_per_label() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u64..1_000_000, 16..=16);
        let mut a = crate::test_runner::TestRng::for_test("label");
        let mut b = crate::test_runner::TestRng::for_test("label");
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
    }
}
