//! Biased-policy lineage study (§3.5): MTM introduced the read/write
//! copy-engine split; Vulcan adds thread-level ownership (targeted
//! shootdowns, private-first priority) and fairness on top. This bench
//! runs the lineage on one workload with controllable sharing structure:
//! PageRank's mix of private edge shards, private next-rank writes and a
//! shared rank array exercises every one of Table 1's four classes.

use vulcan::core::{VulcanConfig, VulcanPolicy};
use vulcan::prelude::*;
use vulcan_bench::save_json;

fn workload(which: &str) -> WorkloadSpec {
    match which {
        "pagerank" => pagerank(),
        // Write-heavy drifting hot set: the worst case for async-only
        // promotion (every transaction lands in the dirty window).
        "write-heavy" => microbench(
            "write-heavy",
            MicroConfig {
                rss_pages: 8_192,
                wss_pages: 128,
                read_ratio: 0.1,
                skew: 1.2,
                wss_drift: 1,
                ..Default::default()
            },
            8,
        )
        .preallocated(TierKind::Slow),
        _ => unreachable!(),
    }
}

fn run(policy: Box<dyn TieringPolicy>, which: &str, replication: bool) -> RunResult {
    SimRunner::new(
        MachineSpec::small(4_096, 32_768, 16),
        vec![workload(which)],
        // Same profiler for every variant: isolate the *policy*.
        &mut |_| Box::new(vulcan::profile::PebsProfiler::new(16)),
        policy,
        SimConfig {
            n_quanta: 40,
            replication,
            ..Default::default()
        },
    )
    .run()
}

fn variants() -> Vec<(&'static str, Box<dyn TieringPolicy>, bool)> {
    vec![
        ("mtm (r/w split only)", Box::new(Mtm::new()), false),
        (
            "vulcan no-bias (all async)",
            Box::new(VulcanPolicy::with_config(VulcanConfig {
                biased_queues: false,
                ..Default::default()
            })),
            true,
        ),
        ("vulcan (table 1)", Box::new(VulcanPolicy::new()), true),
    ]
}

fn main() {
    let mut table = Table::new(
        "biased-policy lineage (same PEBS profiler for every variant)",
        &["workload", "variant", "ops/s", "FTHR", "app stall (Mcyc)"],
    );
    let mut rows = Vec::new();
    for which in ["pagerank", "write-heavy"] {
        for (label, policy, replication) in variants() {
            let res = run(policy, which, replication);
            let w = &res.per_workload[0];
            table.row(&[
                which.into(),
                label.into(),
                format!("{:.0}", w.mean_ops_per_sec),
                format!("{:.3}", w.mean_fthr),
                format!("{:.1}", w.stall_cycles.0 as f64 / 1e6),
            ]);
            rows.push(vulcan_json::Value::Object(
                vulcan_json::Map::new()
                    .with("workload", which)
                    .with("variant", label)
                    .with("ops_per_sec", w.mean_ops_per_sec)
                    .with("fthr", w.mean_fthr)
                    .with("stall_cycles", w.stall_cycles.0),
            ));
        }
    }
    table.print();
    println!(
        "\nMTM pays process-wide shootdowns and global preparation for every \
         sync copy; Vulcan's ownership-targeted mechanism cuts the stall, and \
         Table 1's priorities put the cheap (private, read-intensive) pages \
         first. The no-bias variant shows what the queues themselves add."
    );
    save_json("bias_study", &rows);
}
