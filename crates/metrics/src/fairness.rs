//! Fairness metrics: Jain's index and the paper's FTHR-weighted
//! Cumulative Fairness Index (CFI).
//!
//! §5.3 "Fairness Model": Jain's fairness index is applied to the
//! cumulative efficiency-adjusted allocation
//! `X_i = Σ_t x_i(t) · FTHR_i(t)`, giving
//! `CFI = (Σ X_i)² / (N · Σ X_i²)`   (equation 4).

/// Jain's fairness index over non-negative allocations.
///
/// Ranges from `1/n` (one workload gets everything) to `1` (perfectly
/// equal). Returns 1.0 for an empty or all-zero input (vacuously fair).
///
/// ```
/// use vulcan_metrics::jain_index;
/// assert_eq!(jain_index(&[5.0, 5.0, 5.0]), 1.0);        // equal
/// assert_eq!(jain_index(&[9.0, 0.0, 0.0]), 1.0 / 3.0);  // monopoly
/// ```
pub fn jain_index(xs: &[f64]) -> f64 {
    debug_assert!(xs.iter().all(|&x| x >= 0.0), "allocations must be >= 0");
    let n = xs.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sumsq: f64 = xs.iter().map(|x| x * x).sum();
    if sumsq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sumsq)
}

/// Accumulator for the FTHR-weighted Cumulative Fairness Index.
#[derive(Clone, Debug, Default)]
pub struct CfiAccumulator {
    /// `X_i` per workload.
    x: Vec<f64>,
    /// Samples folded in.
    samples: u64,
}

impl CfiAccumulator {
    /// Accumulator for `n` workloads.
    pub fn new(n: usize) -> Self {
        CfiAccumulator {
            x: vec![0.0; n],
            samples: 0,
        }
    }

    /// Fold in one sampling interval: `alloc[i]` is workload *i*'s fast
    /// memory allocation `x_i(t)` and `fthr[i]` its fast-tier hit ratio.
    pub fn record(&mut self, alloc: &[f64], fthr: &[f64]) {
        assert_eq!(alloc.len(), self.x.len());
        assert_eq!(fthr.len(), self.x.len());
        for i in 0..self.x.len() {
            debug_assert!((0.0..=1.0).contains(&fthr[i]), "FTHR out of range");
            self.x[i] += alloc[i] * fthr[i];
        }
        self.samples += 1;
    }

    /// The cumulative efficiency-adjusted allocations `X_i`.
    pub fn cumulative(&self) -> &[f64] {
        &self.x
    }

    /// Equation 4: Jain's index over the `X_i`.
    pub fn cfi(&self) -> f64 {
        jain_index(&self.x)
    }

    /// Number of recorded intervals.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_allocation_is_perfectly_fair() {
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monopolized_allocation_hits_lower_bound() {
        let j = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((j - 0.25).abs() < 1e-12, "1/n for total monopoly");
    }

    #[test]
    fn index_is_scale_invariant() {
        let a = jain_index(&[1.0, 2.0, 3.0]);
        let b = jain_index(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert_eq!(jain_index(&[7.0]), 1.0);
    }

    #[test]
    fn more_unequal_is_less_fair() {
        let mild = jain_index(&[4.0, 5.0, 6.0]);
        let harsh = jain_index(&[1.0, 5.0, 9.0]);
        assert!(mild > harsh);
    }

    #[test]
    fn cfi_weights_by_fthr() {
        // Equal allocations but one workload's allocation is useless
        // (FTHR 0): CFI must punish the *efficiency-adjusted* inequality.
        let mut acc = CfiAccumulator::new(2);
        acc.record(&[10.0, 10.0], &[1.0, 0.0]);
        assert!(acc.cfi() < 0.6);
        assert_eq!(acc.cumulative(), &[10.0, 0.0]);
        assert_eq!(acc.samples(), 1);
    }

    #[test]
    fn cfi_accumulates_over_time() {
        let mut acc = CfiAccumulator::new(2);
        // Alternating monopoly evens out cumulatively.
        for t in 0..10 {
            if t % 2 == 0 {
                acc.record(&[10.0, 0.0], &[1.0, 1.0]);
            } else {
                acc.record(&[0.0, 10.0], &[1.0, 1.0]);
            }
        }
        assert!((acc.cfi() - 1.0).abs() < 1e-12, "long-term fairness");
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let mut acc = CfiAccumulator::new(2);
        acc.record(&[1.0], &[1.0, 1.0]);
    }
}
