//! Extended system comparison: the paper's four systems plus the MTM
//! ancestor, the uniform-partition straw man (§3.3 dismisses it as
//! inefficient) and the no-migration floor, all on the §5.3 three-app
//! co-location. This situates Vulcan in the wider design space the paper
//! surveys in §2.1/§6.

use vulcan::prelude::*;
use vulcan_bench::suite::{extended_grid, SuiteOpts};
use vulcan_bench::{init_threads, save_json_or_exit};

fn main() {
    init_threads();
    // One cell per registered system ([`PolicyKind::ALL`]), run on the
    // thread pool; results come back in registry order.
    let ordered = extended_grid(&SuiteOpts::full()).run();

    let mut table = Table::new(
        "extended comparison: 7 systems, 3-app co-location, 200 s",
        &["system", "mc latency(ns)", "pr ops/s", "lib ops/s", "CFI"],
    );
    let mut rows = Vec::new();
    for res in &ordered {
        let lat = res
            .series
            .get("memcached.latency_ns")
            .expect("series")
            .mean_after(150.0);
        let pr = res
            .series
            .get("pagerank.ops_per_sec")
            .expect("series")
            .mean_after(150.0);
        let lib = res
            .series
            .get("liblinear.ops_per_sec")
            .expect("series")
            .mean_after(150.0);
        table.row(&[
            res.policy.clone(),
            format!("{lat:.0}"),
            format!("{pr:.0}"),
            format!("{lib:.0}"),
            format!("{:.3}", res.cfi),
        ]);
        rows.push(vulcan_json::Value::Object(
            vulcan_json::Map::new()
                .with("system", &res.policy)
                .with("memcached_latency_ns", lat)
                .with("pagerank_ops", pr)
                .with("liblinear_ops", lib)
                .with("cfi", res.cfi),
        ));
    }
    table.print();
    println!(
        "\nThe no-migration floor shows what tiering buys at all; the uniform \
         straw man is fair but wastes capacity on demand mismatches; the \
         hotness-ranked systems (TPP/Memtis/Nomad/MTM) trade the LC workload \
         away; Vulcan holds both ends."
    );
    save_json_or_exit("extended_compare", &rows);
}
