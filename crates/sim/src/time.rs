//! Simulated time: nanoseconds and CPU cycles.
//!
//! The simulator accounts costs in **nanoseconds** (the natural unit for
//! memory latencies) but the paper reports migration costs in **cycles**
//! (Figure 2: 50K–750K cycles). The evaluation platform is an Intel Xeon
//! Platinum 8378A, which runs at 3.0 GHz base clock, so we fix the
//! conversion at 3 cycles per nanosecond.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// CPU frequency used for cycle/nanosecond conversion (Xeon 8378A base clock).
pub const CYCLES_PER_NANO: u64 = 3;

/// A duration or instant measured in simulated nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

/// A duration measured in simulated CPU cycles.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Nanos {
    /// Zero nanoseconds.
    pub const ZERO: Nanos = Nanos(0);

    /// One simulated microsecond.
    pub const fn micros(us: u64) -> Nanos {
        Nanos(us * 1_000)
    }

    /// One simulated millisecond.
    pub const fn millis(ms: u64) -> Nanos {
        Nanos(ms * 1_000_000)
    }

    /// One simulated second.
    pub const fn secs(s: u64) -> Nanos {
        Nanos(s * 1_000_000_000)
    }

    /// Convert to cycles at the platform clock.
    pub const fn to_cycles(self) -> Cycles {
        Cycles(self.0 * CYCLES_PER_NANO)
    }

    /// Nanoseconds as a float (for metrics/reporting).
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Seconds as a float (for plotting timelines).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }
}

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Convert to nanoseconds at the platform clock (rounds down).
    pub const fn to_nanos(self) -> Nanos {
        Nanos(self.0 / CYCLES_PER_NANO)
    }

    /// Cycles as a float (for metrics/reporting).
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

macro_rules! impl_arith {
    ($t:ident) => {
        impl Add for $t {
            type Output = $t;
            fn add(self, rhs: $t) -> $t {
                $t(self.0 + rhs.0)
            }
        }
        impl AddAssign for $t {
            fn add_assign(&mut self, rhs: $t) {
                self.0 += rhs.0;
            }
        }
        impl Sub for $t {
            type Output = $t;
            fn sub(self, rhs: $t) -> $t {
                $t(self.0 - rhs.0)
            }
        }
        impl SubAssign for $t {
            fn sub_assign(&mut self, rhs: $t) {
                self.0 -= rhs.0;
            }
        }
        impl Mul<u64> for $t {
            type Output = $t;
            fn mul(self, rhs: u64) -> $t {
                $t(self.0 * rhs)
            }
        }
        impl Div<u64> for $t {
            type Output = $t;
            fn div(self, rhs: u64) -> $t {
                $t(self.0 / rhs)
            }
        }
        impl Sum for $t {
            fn sum<I: Iterator<Item = $t>>(iter: I) -> $t {
                $t(iter.map(|v| v.0).sum())
            }
        }
        impl fmt::Debug for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", self.0, stringify!($t))
            }
        }
        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

impl_arith!(Nanos);
impl_arith!(Cycles);

/// A monotonically advancing simulated clock.
///
/// Each simulated hardware thread owns one `SimClock`; the global timeline of
/// a run is the maximum over per-thread clocks at quantum boundaries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimClock {
    now: Nanos,
}

impl SimClock {
    /// A clock starting at time zero.
    pub fn new() -> Self {
        SimClock { now: Nanos::ZERO }
    }

    /// A clock starting at a given instant (used for staggered workload starts).
    pub fn starting_at(start: Nanos) -> Self {
        SimClock { now: start }
    }

    /// The current instant.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Advance by a duration, returning the new instant.
    pub fn advance(&mut self, dt: Nanos) -> Nanos {
        self.now += dt;
        self.now
    }

    /// Move the clock forward to `t` if `t` is later (e.g. after blocking on
    /// a synchronous migration that completes at `t`).
    pub fn sync_to(&mut self, t: Nanos) {
        if t > self.now {
            self.now = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_roundtrip() {
        let n = Nanos(1234);
        assert_eq!(n.to_cycles(), Cycles(1234 * CYCLES_PER_NANO));
        assert_eq!(n.to_cycles().to_nanos(), n);
    }

    #[test]
    fn constructors() {
        assert_eq!(Nanos::micros(2), Nanos(2_000));
        assert_eq!(Nanos::millis(2), Nanos(2_000_000));
        assert_eq!(Nanos::secs(2), Nanos(2_000_000_000));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Nanos(5) + Nanos(7), Nanos(12));
        assert_eq!(Nanos(7) - Nanos(5), Nanos(2));
        assert_eq!(Nanos(5) * 3, Nanos(15));
        assert_eq!(Nanos(15) / 3, Nanos(5));
        let mut a = Cycles(1);
        a += Cycles(2);
        assert_eq!(a, Cycles(3));
        a -= Cycles(1);
        assert_eq!(a, Cycles(2));
    }

    #[test]
    fn saturating() {
        assert_eq!(Nanos(3).saturating_sub(Nanos(5)), Nanos::ZERO);
        assert_eq!(Cycles(5).saturating_sub(Cycles(3)), Cycles(2));
    }

    #[test]
    fn sum_iter() {
        let total: Nanos = [Nanos(1), Nanos(2), Nanos(3)].into_iter().sum();
        assert_eq!(total, Nanos(6));
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), Nanos::ZERO);
        c.advance(Nanos(100));
        assert_eq!(c.now(), Nanos(100));
        c.sync_to(Nanos(50)); // earlier: no-op
        assert_eq!(c.now(), Nanos(100));
        c.sync_to(Nanos(150));
        assert_eq!(c.now(), Nanos(150));
    }

    #[test]
    fn staggered_start() {
        let c = SimClock::starting_at(Nanos::secs(50));
        assert_eq!(c.now(), Nanos::secs(50));
    }

    #[test]
    fn seconds_float() {
        assert!((Nanos::secs(2).as_secs_f64() - 2.0).abs() < 1e-12);
    }
}
