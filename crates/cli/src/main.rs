//! `vulcan-sim` — run tiered-memory experiments from a JSON config.

use vulcan::prelude::{PolicyKind, Telemetry};
use vulcan_cli::{report, ExperimentConfig};

const USAGE: &str = "\
vulcan-sim — tiered-memory simulation runner (Vulcan reproduction)

USAGE:
    vulcan-sim run [OPTIONS] <config.json>   run the config's policy
    vulcan-sim compare <config.json>         run tpp, memtis, nomad and vulcan
    vulcan-sim example                       print an example config
    vulcan-sim help                          this text

OPTIONS (run):
    --trace <out.jsonl>   write the structured event trace as JSON lines
    --metrics             print the telemetry summary after the run
";

/// A usage or configuration error (exit status 2), as opposed to a
/// runtime failure such as an unwritable output file (exit status 1).
enum CliError {
    Usage(String),
    Runtime(String),
}

impl CliError {
    fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Runtime(_) => 1,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Runtime(m) => m,
        }
    }
}

fn load(path: &str) -> Result<ExperimentConfig, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Usage(format!("cannot read {path}: {e}")))?;
    ExperimentConfig::from_json(&text).map_err(CliError::Usage)
}

fn dump_series(cfg: &ExperimentConfig, res: &vulcan::prelude::RunResult) -> Result<(), CliError> {
    if let Some(path) = &cfg.series_out {
        std::fs::write(path, res.series.to_json())
            .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
        println!("[series written to {path}]");
    }
    Ok(())
}

struct RunArgs {
    config: String,
    trace: Option<String>,
    metrics: bool,
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, CliError> {
    let mut config = None;
    let mut trace = None;
    let mut metrics = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace" => {
                trace = Some(
                    it.next()
                        .ok_or_else(|| CliError::Usage("--trace needs an output path".into()))?
                        .clone(),
                );
            }
            "--metrics" => metrics = true,
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown option '{flag}'")));
            }
            path if config.is_none() => config = Some(path.to_string()),
            extra => {
                return Err(CliError::Usage(format!("unexpected argument '{extra}'")));
            }
        }
    }
    Ok(RunArgs {
        config: config.ok_or_else(|| CliError::Usage("run needs a config path".into()))?,
        trace,
        metrics,
    })
}

fn cmd_run(args: &[String]) -> Result<(), CliError> {
    let run = parse_run_args(args)?;
    let cfg = load(&run.config)?;
    let telemetry = if run.trace.is_some() || run.metrics {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let res = cfg
        .run_with_telemetry(None, telemetry.clone())
        .map_err(CliError::Usage)?;
    print!("{}", report(&res));
    if let Some(path) = &run.trace {
        std::fs::write(path, telemetry.events_jsonl())
            .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
        println!("[trace written to {path}]");
    }
    if run.metrics {
        println!();
        print!("{}", telemetry.summary());
    }
    dump_series(&cfg, &res)
}

fn cmd_compare(args: &[String]) -> Result<(), CliError> {
    let path = args
        .first()
        .ok_or_else(|| CliError::Usage("compare needs a config path".into()))?;
    let cfg = load(path)?;
    for policy in PolicyKind::PAPER {
        let res = cfg.run(Some(policy)).map_err(CliError::Usage)?;
        print!("{}", report(&res));
        println!();
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("example") => {
            println!("{}", ExperimentConfig::example());
            Ok(())
        }
        Some("help") | Some("--help") | Some("-h") => {
            print!("{USAGE}");
            Ok(())
        }
        None => Err(CliError::Usage("missing subcommand".into())),
        Some(other) => Err(CliError::Usage(format!("unknown subcommand '{other}'"))),
    };
    if let Err(e) = result {
        eprintln!("error: {}", e.message());
        if matches!(e, CliError::Usage(_)) {
            eprint!("\n{USAGE}");
        }
        std::process::exit(e.exit_code());
    }
}
