//! Integration test: the §5.3 three-application study end-to-end.
//!
//! All four tiering systems run the staggered Memcached / PageRank /
//! Liblinear co-location; the test checks the headline orderings of
//! Figure 10 and global invariants of the simulation.

use vulcan::prelude::*;

fn specs() -> Vec<WorkloadSpec> {
    vec![
        memcached(),
        pagerank().starting_at(Nanos::secs(15)),
        liblinear().starting_at(Nanos::secs(35)),
    ]
}

fn run(kind: PolicyKind) -> RunResult {
    SimRunner::builder()
        .machine(MachineSpec::paper_testbed())
        .workloads(specs())
        .profiler_factory(move |_| kind.profiler())
        .policy(kind.make())
        .config(SimConfig {
            quantum_active: Nanos::micros(500),
            n_quanta: 110,
            ..Default::default()
        })
        .build()
        .run()
}

#[test]
fn all_policies_complete_with_sane_metrics() {
    for kind in PolicyKind::PAPER {
        let name = kind.name();
        let res = run(kind);
        assert_eq!(res.policy, name);
        assert!((0.0..=1.0).contains(&res.cfi), "{name}: cfi={}", res.cfi);
        for w in &res.per_workload {
            assert!(w.ops_total > 0, "{name}/{}: no progress", w.name);
            assert!(w.mean_latency_ns > 0.0);
            assert!((0.0..=1.0).contains(&w.mean_fthr));
            assert!((0.0..=1.0).contains(&w.mean_hot_ratio));
        }
        // Fast-tier occupancy never exceeds capacity.
        let cap = 8192.0;
        let total_fast: f64 = res
            .per_workload
            .iter()
            .filter_map(|w| {
                res.series
                    .get(&format!("{}.fast_pages", w.name))
                    .and_then(|s| s.last())
            })
            .sum();
        assert!(
            total_fast <= cap,
            "{name}: fast over-committed {total_fast}"
        );
    }
}

#[test]
fn vulcan_is_fairest() {
    let vulcan = run(PolicyKind::Vulcan);
    for baseline in [PolicyKind::Memtis, PolicyKind::Nomad] {
        let other = run(baseline);
        assert!(
            vulcan.cfi > other.cfi,
            "vulcan cfi {:.3} must beat {baseline} {:.3} (Figure 10b)",
            vulcan.cfi,
            other.cfi
        );
    }
}

#[test]
fn vulcan_protects_the_lc_workload() {
    // Figure 10a compares steady-state co-located performance. At this
    // abbreviated test scale the latency gap is noise-level, so we
    // assert the robust underlying signal — the LC workload's fast-tier
    // hit ratio — and leave the strict performance ordering to the
    // full-scale `fig10` bench (200 s, multiple trials).
    let vulcan = run(PolicyKind::Vulcan);
    let memtis = run(PolicyKind::Memtis);
    let fthr = |r: &RunResult| {
        r.series
            .get("memcached.fthr")
            .expect("series recorded")
            .mean_after(70.0)
    };
    let (v, m) = (fthr(&vulcan), fthr(&memtis));
    assert!(
        v > m,
        "Figure 10a (signal): vulcan fthr {v:.3} vs memtis {m:.3}"
    );
}

#[test]
fn staggered_arrivals_reshape_allocations() {
    let res = run(PolicyKind::Vulcan);
    let mc_fast = res.series.get("memcached.fast_pages").unwrap();
    // While alone, memcached may hold far more than its eventual share;
    // after liblinear arrives the partition tightens.
    let early = mc_fast
        .points
        .iter()
        .filter(|&&(t, _)| (5.0..15.0).contains(&t))
        .map(|&(_, v)| v)
        .fold(0.0_f64, f64::max);
    let late = mc_fast.mean_after(80.0);
    assert!(
        late < early,
        "GFMC shrinks as co-runners arrive: early={early:.0} late={late:.0}"
    );
    // GPT series reflects the shrinking entitlement (Figure 9c).
    let gpt = res.series.get("memcached.gpt").unwrap();
    let gpt_early = gpt.points[2].1;
    let gpt_late = gpt.last().unwrap();
    assert!(gpt_late < gpt_early, "{gpt_early} -> {gpt_late}");
}

#[test]
fn be_workloads_are_not_starved_by_vulcan() {
    // "Leave no one behind": even the greedy BE sweep keeps a nonzero
    // fast-tier share and makes progress under Vulcan.
    let res = run(PolicyKind::Vulcan);
    let lib_fast = res
        .series
        .get("liblinear.fast_pages")
        .unwrap()
        .mean_after(80.0);
    assert!(
        lib_fast > 256.0,
        "liblinear holds fast memory: {lib_fast:.0}"
    );
    assert!(res.workload("liblinear").ops_total > 0);
}
