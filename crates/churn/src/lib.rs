//! Datacenter churn for the Vulcan simulator: an open-loop multi-tenant
//! tenancy engine — Poisson arrivals, Pareto lifetimes, capacity-gated
//! admission with a bounded FIFO queue, periodic tier compaction — all
//! scheduled as deterministic events over `vulcan_sim::EventQueue` and
//! driven quantum-by-quantum against a `vulcan_runtime::SimRunner`.
//!
//! The static experiment suite answers "how do the policies share a
//! machine between N fixed tenants"; this crate answers the harder
//! datacenter question: how do they behave when tenants keep *arriving
//! and leaving* — hundreds of lifetimes per run — and the fast tier is
//! repeatedly fragmented by departures and refilled by admissions.
//!
//! Everything is reproducible: all randomness is counter-hashed from the
//! run seed ([`ChurnStreams`]), the engine is single-threaded per run,
//! and a rate-0 engine schedules no events at all, collapsing exactly to
//! the static `SimRunner::run` loop (the control cell of the churn
//! bench).

#![warn(missing_docs)]

mod catalog;
mod dist;
mod engine;

pub use catalog::{Catalog, TenantTemplate};
pub use dist::{ChurnStreams, Stream, N_STREAMS};
pub use engine::{ChurnConfig, ChurnEngine, ChurnReport, ChurnStats, WindowSample};

#[cfg(test)]
mod tests {
    use super::*;
    use vulcan_profile::PebsProfiler;
    use vulcan_runtime::{SimConfig, SimRunner, StaticPlacement, TieringPolicy};
    use vulcan_sim::{MachineSpec, Nanos};
    use vulcan_workloads::{microbench, MicroConfig, WorkloadSpec};

    fn base_specs() -> Vec<WorkloadSpec> {
        vec![
            microbench(
                "static-a",
                MicroConfig {
                    rss_pages: 256,
                    wss_pages: 64,
                    ..Default::default()
                },
                2,
            ),
            microbench(
                "static-b",
                MicroConfig {
                    rss_pages: 256,
                    wss_pages: 64,
                    ..Default::default()
                },
                2,
            ),
        ]
    }

    fn runner(machine: MachineSpec, policy: Box<dyn TieringPolicy>, seed: u64) -> SimRunner {
        SimRunner::builder()
            .machine(machine)
            .workloads(base_specs())
            .profiler_factory(|_| Box::new(PebsProfiler::new(4)))
            .policy(policy)
            .config(SimConfig {
                quantum_active: Nanos::micros(200),
                n_quanta: 0, // the engine owns stepping
                seed,
                ..Default::default()
            })
            .build()
    }

    fn churny_cfg(n_quanta: u64) -> ChurnConfig {
        ChurnConfig {
            arrival_rate_per_sec: 6.0,
            lifetime_xm: Nanos::secs(2),
            lifetime_alpha: 1.5,
            n_quanta,
            compaction_period: Nanos::secs(4),
            ..Default::default()
        }
    }

    #[test]
    fn churn_spawns_departs_and_conserves_frames() {
        let r = runner(
            MachineSpec::small(1_024, 16_384, 8),
            Box::new(StaticPlacement),
            42,
        );
        let engine = ChurnEngine::new(r, 42, churny_cfg(40), Catalog::default_mix());
        let report = engine.run();
        assert!(
            report.stats.arrivals >= 100,
            "open loop at rate 6 over 40 s"
        );
        assert!(report.stats.spawned() >= 50, "most arrivals admitted");
        assert!(report.stats.departed >= 20, "lifetimes expire mid-run");
        assert_eq!(report.leaked_fast, 0, "fast frames conserved");
        assert_eq!(report.leaked_slow, 0, "slow frames conserved");
        // Every arrival is accounted for exactly once at arrival time.
        assert_eq!(
            report.stats.arrivals,
            report.stats.admitted + report.stats.queued + report.stats.rejected
        );
        // Queue exits never exceed queue entries.
        assert!(report.stats.admitted_from_queue + report.stats.timed_out <= report.stats.queued);
        assert!(report.stats.compaction_rounds >= 9, "4 s period over 40 s");
        assert_eq!(report.windows.len(), 40);
    }

    #[test]
    fn same_seed_reruns_are_identical() {
        let run = |seed: u64| {
            let r = runner(
                MachineSpec::small(1_024, 16_384, 8),
                Box::new(StaticPlacement),
                seed,
            );
            ChurnEngine::new(r, seed, churny_cfg(25), Catalog::default_mix()).run()
        };
        let (a, b) = (run(42), run(42));
        assert_eq!(a.stats, b.stats);
        assert_eq!(format!("{:?}", a.windows), format!("{:?}", b.windows));
        assert_eq!(format!("{:?}", a.run), format!("{:?}", b.run));
        // And a different seed takes a different trajectory.
        let c = run(43);
        assert_ne!(format!("{:?}", a.stats), format!("{:?}", c.stats));
    }

    #[test]
    fn rate_zero_engine_is_exactly_the_static_run() {
        let n_quanta = 12;
        let mut static_runner = runner(
            MachineSpec::small(512, 4_096, 8),
            Box::new(StaticPlacement),
            7,
        );
        for _ in 0..n_quanta {
            static_runner.run_quantum();
        }
        let baseline = static_runner.into_result();

        let r = runner(
            MachineSpec::small(512, 4_096, 8),
            Box::new(StaticPlacement),
            7,
        );
        let engine = ChurnEngine::new(
            r,
            7,
            ChurnConfig::control(n_quanta as u64),
            Catalog::default_mix(),
        );
        let report = engine.run();
        assert_eq!(report.stats.arrivals, 0);
        assert_eq!(report.stats.compaction_rounds, 0);
        // finish() tears the static tenants down, which the plain runner
        // does not do — but it only frees frames, after into_result's
        // inputs are all settled. The summaries must match bit for bit.
        assert_eq!(format!("{baseline:?}"), format!("{:?}", report.run));
        assert_eq!(report.leaked_fast, 0);
        assert_eq!(report.leaked_slow, 0);
    }

    #[test]
    fn exhausted_machine_queues_then_rejects_then_times_out() {
        // Two static 256-page tenants, preallocated so the capacity is
        // physically gone at t = 0, leave a 64+512-page machine with no
        // headroom for any catalog template (min 192 pages RSS).
        let specs: Vec<WorkloadSpec> = base_specs()
            .into_iter()
            .map(|mut s| {
                s.prealloc = Some(vulcan_sim::TierKind::Slow);
                s
            })
            .collect();
        let r = SimRunner::builder()
            .machine(MachineSpec::small(64, 512, 8))
            .workloads(specs)
            .profiler_factory(|_| Box::new(PebsProfiler::new(4)))
            .policy(Box::new(StaticPlacement))
            .config(SimConfig {
                quantum_active: Nanos::micros(200),
                n_quanta: 0,
                seed: 11,
                ..Default::default()
            })
            .build();
        let cfg = ChurnConfig {
            arrival_rate_per_sec: 4.0,
            max_queue: 2,
            queue_timeout: Nanos::secs(3),
            compaction_period: Nanos::ZERO,
            n_quanta: 20,
            ..Default::default()
        };
        let report = ChurnEngine::new(r, 11, cfg, Catalog::default_mix()).run();
        assert!(report.stats.arrivals >= 40);
        assert_eq!(report.stats.spawned(), 0, "nothing ever fits");
        assert!(report.stats.queued >= 2, "queue fills first");
        assert!(report.stats.rejected > 0, "then arrivals bounce");
        // Departures never happen, so reviews only fire... never: with
        // no departures and no compaction there is no review event, and
        // queued tenants are only dropped when one runs. The stale queue
        // is retired by the end-of-run accounting instead.
        assert_eq!(report.stats.admitted_from_queue + report.stats.timed_out, 0);
        assert_eq!(report.leaked_fast, 0);
        assert_eq!(report.leaked_slow, 0);
    }

    #[test]
    fn departures_trigger_same_tick_queue_admission() {
        // Machine fits the two 256-page statics plus roughly one tenant:
        // queued tenants can only enter when a predecessor departs, so
        // any admitted_from_queue proves the departure → same-tick
        // review → admit chain works.
        let r = runner(
            MachineSpec::small(256, 896, 8),
            Box::new(StaticPlacement),
            5,
        );
        let cfg = ChurnConfig {
            arrival_rate_per_sec: 3.0,
            lifetime_xm: Nanos::secs(1),
            lifetime_alpha: 3.0, // short lifetimes: lots of turnover
            max_queue: 6,
            queue_timeout: Nanos::secs(30),
            compaction_period: Nanos::ZERO,
            n_quanta: 40,
            ..Default::default()
        };
        let report = ChurnEngine::new(r, 5, cfg, Catalog::default_mix()).run();
        assert!(report.stats.departed > 0);
        assert!(
            report.stats.admitted_from_queue > 0,
            "no queued tenant was ever admitted on departure: {:?}",
            report.stats
        );
        assert_eq!(report.leaked_fast, 0);
        assert_eq!(report.leaked_slow, 0);
    }

    #[test]
    fn compaction_reclaims_shadows_and_promotes() {
        let r = runner(
            MachineSpec::small(1_024, 16_384, 8),
            Box::new(StaticPlacement),
            13,
        );
        let cfg = ChurnConfig {
            arrival_rate_per_sec: 6.0,
            lifetime_xm: Nanos::secs(1),
            lifetime_alpha: 2.0,
            compaction_period: Nanos::secs(2),
            n_quanta: 30,
            ..Default::default()
        };
        let report = ChurnEngine::new(r, 13, cfg, Catalog::default_mix()).run();
        assert!(report.stats.compaction_rounds >= 14);
        assert!(
            report.stats.compaction_promoted > 0,
            "hot slow pages move into fast headroom: {:?}",
            report.stats
        );
        assert_eq!(report.leaked_fast, 0);
        assert_eq!(report.leaked_slow, 0);
    }

    #[test]
    fn windows_report_fairness_only_over_live_tenants() {
        let r = runner(
            MachineSpec::small(1_024, 16_384, 8),
            Box::new(StaticPlacement),
            42,
        );
        let report = ChurnEngine::new(r, 42, churny_cfg(30), Catalog::default_mix()).run();
        for w in &report.windows {
            // Two static tenants never depart, so every window is live.
            assert!(w.active >= 2);
            let jain = w.jain_fthr.expect("live window has a Jain index");
            assert!((0.0..=1.0).contains(&jain), "jain {jain}");
            assert!((0.0..=1.0).contains(&w.fast_util), "util {}", w.fast_util);
        }
        assert!(report.mean_windowed_jain().is_some());
        assert!(report.stats.peak_active > 2);
    }

    #[test]
    fn per_policy_runs_stay_deterministic_with_vulcan() {
        // The full Vulcan policy exercises dynamic per-workload growth
        // (CB-FRP ledger, classifier) under churn.
        let run = || {
            let kind = vulcan::registry::PolicyKind::Vulcan;
            let r = SimRunner::builder()
                .machine(MachineSpec::small(1_024, 16_384, 8))
                .workloads(base_specs())
                .profiler_factory(move |_| kind.profiler())
                .policy(vulcan::registry::PolicyKind::Vulcan.make())
                .config(SimConfig {
                    quantum_active: Nanos::micros(200),
                    n_quanta: 0,
                    seed: 42,
                    ..Default::default()
                })
                .build();
            ChurnEngine::new(r, 42, churny_cfg(25), Catalog::default_mix()).run()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.stats, b.stats);
        assert_eq!(format!("{:?}", a.run), format!("{:?}", b.run));
        assert_eq!(a.leaked_fast, 0);
        assert_eq!(a.leaked_slow, 0);
        // Churned tenants end up preallocated in slow and partially
        // promoted; the machine saw real tiering traffic.
        assert!(a.stats.spawned() > 10);
    }

    #[test]
    fn engine_survives_pathological_tiny_quanta_and_huge_rate() {
        // Stress the event loop: many arrivals per quantum, lifetimes
        // shorter than a quantum (spawn + teardown inside one drain).
        let r = runner(
            MachineSpec::small(2_048, 32_768, 8),
            Box::new(StaticPlacement),
            3,
        );
        let cfg = ChurnConfig {
            arrival_rate_per_sec: 40.0,
            lifetime_xm: Nanos::millis(200),
            lifetime_alpha: 2.0,
            compaction_period: Nanos::secs(1),
            n_quanta: 10,
            ..Default::default()
        };
        let report = ChurnEngine::new(r, 3, cfg, Catalog::default_mix()).run();
        assert!(report.stats.arrivals >= 300);
        assert!(report.stats.departed >= 100);
        assert_eq!(report.leaked_fast, 0);
        assert_eq!(report.leaked_slow, 0);
    }

    #[test]
    fn report_summaries_are_computable() {
        let r = runner(
            MachineSpec::small(1_024, 16_384, 8),
            Box::new(StaticPlacement),
            42,
        );
        let report = ChurnEngine::new(r, 42, churny_cfg(20), Catalog::default_mix()).run();
        assert!(report.mean_windowed_fthr().unwrap() > 0.0);
        let p99 = report.p99_latency_ns().expect("latency samples exist");
        assert!(p99 > 0.0);
        // Tenants appear in the run result alongside the statics.
        assert!(report.run.per_workload.len() > 2);
        assert!(report
            .run
            .per_workload
            .iter()
            .any(|w| w.name.starts_with("kv-") || w.name.starts_with("zipf-")));
        // Prealloc'd slow: fast residency only via policy/compaction.
        assert_eq!(report.run.per_workload[0].name, "static-a");
    }

    #[test]
    fn teardown_mid_flight_aborts_async_and_conserves() {
        // Force in-flight async migrations at departure time by using
        // the Vulcan policy (it drives migrate_async) with fast churn.
        let kind = vulcan::registry::PolicyKind::Vulcan;
        let r = SimRunner::builder()
            .machine(MachineSpec::small(512, 8_192, 8))
            .workloads(base_specs())
            .profiler_factory(move |_| kind.profiler())
            .policy(kind.make())
            .config(SimConfig {
                quantum_active: Nanos::micros(200),
                n_quanta: 0,
                seed: 21,
                ..Default::default()
            })
            .build();
        let cfg = ChurnConfig {
            arrival_rate_per_sec: 10.0,
            lifetime_xm: Nanos::millis(600),
            lifetime_alpha: 2.5,
            compaction_period: Nanos::secs(2),
            n_quanta: 25,
            ..Default::default()
        };
        let report = ChurnEngine::new(r, 21, cfg, Catalog::default_mix()).run();
        assert!(report.stats.departed > 20);
        assert_eq!(report.leaked_fast, 0);
        assert_eq!(report.leaked_slow, 0);
    }

    #[test]
    fn tier_pressure_is_visible_in_windows() {
        let r = runner(
            MachineSpec::small(256, 16_384, 8),
            Box::new(StaticPlacement),
            42,
        );
        let report = ChurnEngine::new(r, 42, churny_cfg(20), Catalog::default_mix()).run();
        // 256 fast pages against 512 static + churn: the fast tier
        // stays pressured, so utilization is high in every window.
        assert!(report.windows.iter().all(|w| w.fast_util >= 0.0));
        let last = report.windows.last().unwrap();
        assert!(last.t_secs >= 19.0, "windows are timestamped");
        assert_eq!(
            report.windows.len() as u64,
            churny_cfg(20).n_quanta,
            "one window per quantum"
        );
    }

    #[test]
    fn queue_timeout_drops_stale_entries_on_review() {
        // One departing tenant frees too little for the big queue head,
        // but the review it triggers must still expire stale entries.
        let r = runner(
            MachineSpec::small(128, 720, 8),
            Box::new(StaticPlacement),
            29,
        );
        let cfg = ChurnConfig {
            arrival_rate_per_sec: 5.0,
            lifetime_xm: Nanos::millis(800),
            lifetime_alpha: 3.0,
            max_queue: 4,
            queue_timeout: Nanos::secs(2),
            compaction_period: Nanos::ZERO,
            n_quanta: 30,
            ..Default::default()
        };
        let report = ChurnEngine::new(r, 29, cfg, Catalog::default_mix()).run();
        // Something churned (departures drive reviews)…
        assert!(report.stats.departed > 0 || report.stats.queued > 0);
        // …and the invariants held throughout.
        assert_eq!(
            report.stats.arrivals,
            report.stats.admitted + report.stats.queued + report.stats.rejected
        );
        assert_eq!(report.leaked_fast, 0);
        assert_eq!(report.leaked_slow, 0);
    }
}
