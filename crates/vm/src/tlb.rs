//! Per-core set-associative TLBs.
//!
//! Each simulated core caches translations in a set-associative TLB keyed
//! by (ASID, VPN). TLB shootdowns during migration invalidate entries on
//! remote cores — the coherence traffic §2.2 Observation #3 measures.
//! Sizing follows a typical server-class second-level TLB (1536 entries,
//! 12-way is common; we use 128 sets × 12 ways).

use crate::addr::Vpn;
use vulcan_sim::{CoreId, FrameId};

/// An address-space identifier (one per process).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Asid(pub u16);

#[derive(Clone, Copy, Debug)]
struct Way {
    asid: Asid,
    vpn: Vpn,
    frame: FrameId,
    stamp: u32,
}

#[derive(Clone, Copy, Debug)]
struct HugeWay {
    asid: Asid,
    /// 2 MiB-aligned base VPN of the covered region.
    base: u64,
    stamp: u32,
}

/// A single core's TLB.
///
/// Two structures, as in real cores: a large base-page array and a
/// smaller 2 MiB-entry array. One huge entry covers 512 base pages —
/// the TLB-coverage benefit THP buys (§3.5 keeps THP enabled by default
/// and splits only on promotion).
///
/// Ways live in one flat slot array per structure (`set * ways` stride)
/// with a per-set occupancy count, instead of a `Vec` per set: one
/// allocation, no pointer chase per probe, and the batched plane sweep
/// ([`Tlb::probe_read_one`]) walks it linearly. Within a set the scan
/// order is insertion order and eviction replaces the minimum-stamp way
/// in place — exactly the semantics the per-set `Vec`s had.
#[derive(Clone, Debug)]
pub struct Tlb {
    slots: Vec<Way>,
    lens: Vec<u32>,
    n_sets: usize,
    ways: usize,
    huge_slots: Vec<HugeWay>,
    huge_lens: Vec<u32>,
    huge_ways: usize,
    clock: u32,
    hits: u64,
    misses: u64,
}

/// Filler for unoccupied flat slots (never read: `lens` bounds scans).
const EMPTY_WAY: Way = Way {
    asid: Asid(0),
    vpn: Vpn(0),
    frame: FrameId {
        tier: vulcan_sim::TierKind::Fast,
        index: 0,
    },
    stamp: 0,
};

const EMPTY_HUGE_WAY: HugeWay = HugeWay {
    asid: Asid(0),
    base: 0,
    stamp: 0,
};

/// The number of huge-TLB sets (fixed; 16 sets × 8 ways = 128 entries).
const HUGE_SETS: usize = 16;

/// `Vec::retain` over one flat set: keep ways satisfying `keep`,
/// shifting survivors left (preserving scan order); returns whether
/// anything was dropped.
fn retain_set<W: Copy>(slots: &mut [W], len: &mut u32, mut keep: impl FnMut(&W) -> bool) -> bool {
    let n = *len as usize;
    let mut kept = 0;
    for i in 0..n {
        if keep(&slots[i]) {
            slots[kept] = slots[i];
            kept += 1;
        }
    }
    *len = kept as u32;
    kept != n
}

impl Tlb {
    /// A TLB with `sets` sets of `ways` ways.
    pub fn new(sets: usize, ways: usize) -> Tlb {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Tlb {
            slots: vec![EMPTY_WAY; sets * ways],
            lens: vec![0; sets],
            n_sets: sets,
            ways,
            huge_slots: vec![EMPTY_HUGE_WAY; HUGE_SETS * 8],
            huge_lens: vec![0; HUGE_SETS],
            huge_ways: 8,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Default server-class sizing: 128 sets × 12 ways = 1536 base
    /// entries plus 128 huge (2 MiB) entries.
    pub fn server_default() -> Tlb {
        Tlb::new(128, 12)
    }

    fn huge_set_of(&self, base: u64) -> usize {
        ((base >> 9) as usize) & (self.huge_lens.len() - 1)
    }

    /// The occupied slice of huge set `set`, mutable.
    #[inline]
    fn huge_set_mut(&mut self, set: usize) -> &mut [HugeWay] {
        let base = set * self.huge_ways;
        &mut self.huge_slots[base..base + self.huge_lens[set] as usize]
    }

    /// Look up a 2 MiB translation covering `vpn` (base = `vpn & !511`).
    #[inline]
    pub fn lookup_huge(&mut self, asid: Asid, vpn: Vpn) -> bool {
        self.clock = self.clock.wrapping_add(1);
        let stamp = self.clock;
        let base = vpn.huge_base().0;
        let set = self.huge_set_of(base);
        if let Some(w) = self
            .huge_set_mut(set)
            .iter_mut()
            .find(|w| w.asid == asid && w.base == base)
        {
            w.stamp = stamp;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        false
    }

    /// Install a 2 MiB translation for the region containing `vpn`.
    pub fn insert_huge(&mut self, asid: Asid, vpn: Vpn) {
        self.clock = self.clock.wrapping_add(1);
        let stamp = self.clock;
        let base = vpn.huge_base().0;
        let ways = self.huge_ways;
        let set = self.huge_set_of(base);
        if let Some(w) = self
            .huge_set_mut(set)
            .iter_mut()
            .find(|w| w.asid == asid && w.base == base)
        {
            w.stamp = stamp;
            return;
        }
        let way = HugeWay { asid, base, stamp };
        let len = self.huge_lens[set] as usize;
        let slot_base = set * ways;
        if len < ways {
            self.huge_slots[slot_base + len] = way;
            self.huge_lens[set] += 1;
        } else {
            *self.huge_slots[slot_base..slot_base + ways]
                .iter_mut()
                .min_by_key(|w| w.stamp)
                .expect("full set") = way;
        }
    }

    /// Drop the 2 MiB entry covering `vpn` (after a THP split).
    pub fn invalidate_huge(&mut self, asid: Asid, vpn: Vpn) -> bool {
        let base = vpn.huge_base().0;
        let set = self.huge_set_of(base);
        let ways = self.huge_ways;
        retain_set(
            &mut self.huge_slots[set * ways..(set + 1) * ways],
            &mut self.huge_lens[set],
            |w| !(w.asid == asid && w.base == base),
        )
    }

    fn set_of(&self, vpn: Vpn) -> usize {
        (vpn.0 as usize) & (self.n_sets - 1)
    }

    /// Look up a translation; records hit/miss statistics.
    #[inline]
    pub fn lookup(&mut self, asid: Asid, vpn: Vpn) -> Option<FrameId> {
        self.clock = self.clock.wrapping_add(1);
        let stamp = self.clock;
        let set = self.set_of(vpn);
        let base = set * self.ways;
        // VPN first: it discriminates more than the ASID, so mismatching
        // ways fail on the first compare.
        if let Some(way) = self.slots[base..base + self.lens[set] as usize]
            .iter_mut()
            .find(|w| w.vpn == vpn && w.asid == asid)
        {
            way.stamp = stamp;
            self.hits += 1;
            return Some(way.frame);
        }
        self.misses += 1;
        None
    }

    /// One read-probe of the batched plane sweep: [`Tlb::lookup`]
    /// specialized to the hit case. On a hit it applies exactly
    /// `lookup`'s side effects (clock bump, stamp refresh, hit count)
    /// and returns the frame; on a miss the TLB is left completely
    /// untouched — no miss count, no clock tick — so the cold path's
    /// own `lookup` replays the access's single miss exactly.
    #[inline]
    pub fn probe_read_one(&mut self, asid: Asid, vpn: Vpn) -> Option<FrameId> {
        let set = self.set_of(vpn);
        let base = set * self.ways;
        let pos = self.slots[base..base + self.lens[set] as usize]
            .iter()
            .position(|w| w.vpn == vpn && w.asid == asid)?;
        self.clock = self.clock.wrapping_add(1);
        self.hits += 1;
        let way = &mut self.slots[base + pos];
        way.stamp = self.clock;
        Some(way.frame)
    }

    /// Install a translation, evicting LRU within the set if needed.
    pub fn insert(&mut self, asid: Asid, vpn: Vpn, frame: FrameId) {
        self.clock = self.clock.wrapping_add(1);
        let stamp = self.clock;
        let ways = self.ways;
        let set = self.set_of(vpn);
        let base = set * ways;
        let len = self.lens[set] as usize;
        if let Some(way) = self.slots[base..base + len]
            .iter_mut()
            .find(|w| w.asid == asid && w.vpn == vpn)
        {
            way.frame = frame;
            way.stamp = stamp;
            return;
        }
        let way = Way {
            asid,
            vpn,
            frame,
            stamp,
        };
        if len < ways {
            self.slots[base + len] = way;
            self.lens[set] += 1;
        } else {
            let lru = self.slots[base..base + ways]
                .iter_mut()
                .min_by_key(|w| w.stamp)
                .expect("non-empty full set");
            *lru = way;
        }
    }

    /// Invalidate one page's translation (remote `invlpg`).
    /// Returns true if an entry was present.
    pub fn invalidate(&mut self, asid: Asid, vpn: Vpn) -> bool {
        let set = self.set_of(vpn);
        let ways = self.ways;
        retain_set(
            &mut self.slots[set * ways..(set + 1) * ways],
            &mut self.lens[set],
            |w| !(w.asid == asid && w.vpn == vpn),
        )
    }

    /// Flush every entry of one address space (full-ASID shootdown).
    pub fn flush_asid(&mut self, asid: Asid) {
        for set in 0..self.n_sets {
            let ways = self.ways;
            retain_set(
                &mut self.slots[set * ways..(set + 1) * ways],
                &mut self.lens[set],
                |w| w.asid != asid,
            );
        }
        for set in 0..self.huge_lens.len() {
            let ways = self.huge_ways;
            retain_set(
                &mut self.huge_slots[set * ways..(set + 1) * ways],
                &mut self.huge_lens[set],
                |w| w.asid != asid,
            );
        }
    }

    /// Flush everything (context switch without PCID).
    pub fn flush_all(&mut self) {
        self.lens.fill(0);
        self.huge_lens.fill(0);
    }

    /// A minimal do-nothing stand-in left behind when a core's real TLB
    /// is leased out to a shard. Never looked up by construction (shards
    /// only touch their own cores); sized to satisfy the power-of-two
    /// invariants without allocating way storage.
    fn placeholder() -> Tlb {
        Tlb {
            slots: Vec::new(),
            lens: vec![0],
            n_sets: 1,
            ways: 0,
            huge_slots: Vec::new(),
            huge_lens: vec![0; HUGE_SETS],
            huge_ways: 0,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Base-page entries currently cached.
    pub fn occupancy(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).sum()
    }

    /// Huge (2 MiB) entries currently cached.
    pub fn huge_occupancy(&self) -> usize {
        self.huge_lens.iter().map(|&l| l as usize).sum()
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit ratio in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One TLB per core of the machine.
#[derive(Clone, Debug)]
pub struct TlbArray {
    tlbs: Vec<Tlb>,
}

impl TlbArray {
    /// Build `n_cores` server-default TLBs.
    pub fn new(n_cores: u16) -> TlbArray {
        TlbArray {
            tlbs: (0..n_cores).map(|_| Tlb::server_default()).collect(),
        }
    }

    /// The TLB of `core`.
    #[inline]
    pub fn core(&mut self, core: CoreId) -> &mut Tlb {
        &mut self.tlbs[core.0 as usize]
    }

    /// Read-only view of one core's TLB.
    pub fn core_ref(&self, core: CoreId) -> &Tlb {
        &self.tlbs[core.0 as usize]
    }

    /// Invalidate `vpn` on every listed core; returns how many cores
    /// actually held the translation.
    pub fn invalidate_on(
        &mut self,
        cores: impl IntoIterator<Item = CoreId>,
        asid: Asid,
        vpn: Vpn,
    ) -> usize {
        cores
            .into_iter()
            .filter(|&c| self.tlbs[c.0 as usize].invalidate(asid, vpn))
            .count()
    }

    /// Drop the huge entry covering `vpn` on every listed core (THP
    /// split); returns how many cores held it.
    pub fn invalidate_huge_on(
        &mut self,
        cores: impl IntoIterator<Item = CoreId>,
        asid: Asid,
        vpn: Vpn,
    ) -> usize {
        cores
            .into_iter()
            .filter(|&c| self.tlbs[c.0 as usize].invalidate_huge(asid, vpn))
            .count()
    }

    /// Move the listed cores' TLBs into a new same-sized array, leaving
    /// cheap placeholders behind. The caller swaps the (updated) TLBs
    /// back per core when the shard finishes — the same `mem::swap` both
    /// directions, so no TLB state is ever copied.
    pub fn lease_cores(&mut self, cores: &[CoreId]) -> TlbArray {
        let mut out = TlbArray {
            tlbs: (0..self.tlbs.len()).map(|_| Tlb::placeholder()).collect(),
        };
        for &c in cores {
            std::mem::swap(&mut self.tlbs[c.0 as usize], &mut out.tlbs[c.0 as usize]);
        }
        out
    }

    /// Number of cores.
    pub fn len(&self) -> usize {
        self.tlbs.len()
    }

    /// Whether there are no cores (never true for a real machine).
    pub fn is_empty(&self) -> bool {
        self.tlbs.is_empty()
    }
}

impl vulcan_json::Snapshot for Tlb {
    /// Way order within a set, per-way stamps and the global clock are
    /// all behavioral (set scans run in insertion order; eviction picks
    /// the minimum-stamp way), so every occupied way travels verbatim in
    /// set-major order as parallel flat arrays. Hit/miss counters feed
    /// FTHR telemetry and policy decisions, so they travel too.
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::snap;
        let mut asids = Vec::new();
        let mut vpns = Vec::new();
        let mut tiers = Vec::new();
        let mut frames = Vec::new();
        let mut stamps = Vec::new();
        for set in 0..self.n_sets {
            let base = set * self.ways;
            for w in &self.slots[base..base + self.lens[set] as usize] {
                asids.push(w.asid.0 as u64);
                vpns.push(w.vpn.0);
                tiers.push(w.frame.tier.index() as u64);
                frames.push(w.frame.index as u64);
                stamps.push(w.stamp as u64);
            }
        }
        let mut h_asids = Vec::new();
        let mut h_bases = Vec::new();
        let mut h_stamps = Vec::new();
        for set in 0..self.huge_lens.len() {
            let base = set * self.huge_ways;
            for w in &self.huge_slots[base..base + self.huge_lens[set] as usize] {
                h_asids.push(w.asid.0 as u64);
                h_bases.push(w.base);
                h_stamps.push(w.stamp as u64);
            }
        }
        let lens: Vec<u64> = self.lens.iter().map(|&l| l as u64).collect();
        let huge_lens: Vec<u64> = self.huge_lens.iter().map(|&l| l as u64).collect();
        snap::obj(vec![
            ("sets", snap::u64_value(self.n_sets as u64)),
            ("ways", snap::u64_value(self.ways as u64)),
            ("lens", snap::u64_array(&lens)),
            ("way_asid", snap::u64_array(&asids)),
            ("way_vpn", snap::u64_array(&vpns)),
            ("way_tier", snap::u64_array(&tiers)),
            ("way_frame", snap::u64_array(&frames)),
            ("way_stamp", snap::u64_array(&stamps)),
            ("huge_ways", snap::u64_value(self.huge_ways as u64)),
            ("huge_lens", snap::u64_array(&huge_lens)),
            ("huge_asid", snap::u64_array(&h_asids)),
            ("huge_base", snap::u64_array(&h_bases)),
            ("huge_stamp", snap::u64_array(&h_stamps)),
            ("clock", snap::u64_value(self.clock as u64)),
            ("hits", snap::u64_value(self.hits)),
            ("misses", snap::u64_value(self.misses)),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        use vulcan_sim::TierKind;
        let n_sets = snap::field_usize(v, "sets")?;
        let ways = snap::field_usize(v, "ways")?;
        if !n_sets.is_power_of_two() {
            return Err(format!("set count {n_sets} not a power of two"));
        }
        let huge_ways = snap::field_usize(v, "huge_ways")?;
        let u32s = |key: &str| -> Result<Vec<u32>, String> {
            snap::array_u64(snap::field(v, key)?)?
                .into_iter()
                .map(|x| u32::try_from(x).map_err(|_| format!("\"{key}\" entry out of u32 range")))
                .collect()
        };
        let lens = u32s("lens")?;
        let huge_lens = u32s("huge_lens")?;
        if lens.len() != n_sets || huge_lens.len() != HUGE_SETS {
            return Err("TLB set-length arrays have wrong shape".into());
        }
        let asids = u32s("way_asid")?;
        let vpns = snap::array_u64(snap::field(v, "way_vpn")?)?;
        let tiers = u32s("way_tier")?;
        let frames = u32s("way_frame")?;
        let stamps = u32s("way_stamp")?;
        let occupied: usize = lens.iter().map(|&l| l as usize).sum();
        if [
            asids.len(),
            vpns.len(),
            tiers.len(),
            frames.len(),
            stamps.len(),
        ]
        .iter()
        .any(|&n| n != occupied)
        {
            return Err("TLB way arrays disagree with set lengths".into());
        }
        let mut slots = vec![EMPTY_WAY; n_sets * ways];
        let mut cursor = 0;
        for (set, &len) in lens.iter().enumerate() {
            if len as usize > ways {
                return Err(format!("set {set} holds {len} ways, capacity {ways}"));
            }
            for i in 0..len as usize {
                let tier = *TierKind::ALL
                    .get(tiers[cursor] as usize)
                    .ok_or_else(|| format!("bad tier index {}", tiers[cursor]))?;
                slots[set * ways + i] = Way {
                    asid: Asid(
                        u16::try_from(asids[cursor])
                            .map_err(|_| "asid out of u16 range".to_string())?,
                    ),
                    vpn: Vpn(vpns[cursor]),
                    frame: FrameId {
                        tier,
                        index: frames[cursor],
                    },
                    stamp: stamps[cursor],
                };
                cursor += 1;
            }
        }
        let h_asids = u32s("huge_asid")?;
        let h_bases = snap::array_u64(snap::field(v, "huge_base")?)?;
        let h_stamps = u32s("huge_stamp")?;
        let h_occupied: usize = huge_lens.iter().map(|&l| l as usize).sum();
        if h_asids.len() != h_occupied
            || h_bases.len() != h_occupied
            || h_stamps.len() != h_occupied
        {
            return Err("huge-TLB way arrays disagree with set lengths".into());
        }
        let mut huge_slots = vec![EMPTY_HUGE_WAY; HUGE_SETS * huge_ways];
        let mut cursor = 0;
        for (set, &len) in huge_lens.iter().enumerate() {
            if len as usize > huge_ways {
                return Err(format!(
                    "huge set {set} holds {len} ways, capacity {huge_ways}"
                ));
            }
            for i in 0..len as usize {
                huge_slots[set * huge_ways + i] = HugeWay {
                    asid: Asid(
                        u16::try_from(h_asids[cursor])
                            .map_err(|_| "asid out of u16 range".to_string())?,
                    ),
                    base: h_bases[cursor],
                    stamp: h_stamps[cursor],
                };
                cursor += 1;
            }
        }
        Ok(Tlb {
            slots,
            lens,
            n_sets,
            ways,
            huge_slots,
            huge_lens,
            huge_ways,
            clock: u32::try_from(snap::field_u64(v, "clock")?)
                .map_err(|_| "clock out of u32 range".to_string())?,
            hits: snap::field_u64(v, "hits")?,
            misses: snap::field_u64(v, "misses")?,
        })
    }
}

impl vulcan_json::Snapshot for TlbArray {
    fn snapshot(&self) -> vulcan_json::Value {
        vulcan_json::Value::Array(self.tlbs.iter().map(|t| t.snapshot()).collect())
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        let arr = v
            .as_array()
            .ok_or_else(|| "TlbArray snapshot must be an array".to_string())?;
        Ok(TlbArray {
            tlbs: arr.iter().map(Tlb::restore).collect::<Result<_, _>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulcan_sim::TierKind;

    fn frame(index: u32) -> FrameId {
        FrameId {
            tier: TierKind::Fast,
            index,
        }
    }

    #[test]
    fn miss_then_hit() {
        let mut tlb = Tlb::server_default();
        let asid = Asid(1);
        assert_eq!(tlb.lookup(asid, Vpn(5)), None);
        tlb.insert(asid, Vpn(5), frame(9));
        assert_eq!(tlb.lookup(asid, Vpn(5)), Some(frame(9)));
        assert_eq!(tlb.stats(), (1, 1));
        assert!((tlb.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn asids_do_not_collide() {
        let mut tlb = Tlb::server_default();
        tlb.insert(Asid(1), Vpn(5), frame(1));
        tlb.insert(Asid(2), Vpn(5), frame(2));
        assert_eq!(tlb.lookup(Asid(1), Vpn(5)), Some(frame(1)));
        assert_eq!(tlb.lookup(Asid(2), Vpn(5)), Some(frame(2)));
    }

    #[test]
    fn reinsert_updates_frame() {
        let mut tlb = Tlb::server_default();
        tlb.insert(Asid(1), Vpn(5), frame(1));
        tlb.insert(Asid(1), Vpn(5), frame(2));
        assert_eq!(tlb.lookup(Asid(1), Vpn(5)), Some(frame(2)));
        assert_eq!(tlb.occupancy(), 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut tlb = Tlb::new(1, 2); // one set, two ways
        let asid = Asid(1);
        tlb.insert(asid, Vpn(1), frame(1));
        tlb.insert(asid, Vpn(2), frame(2));
        tlb.lookup(asid, Vpn(1)); // make vpn=2 the LRU
        tlb.insert(asid, Vpn(3), frame(3));
        assert_eq!(tlb.lookup(asid, Vpn(2)), None, "LRU way evicted");
        assert!(tlb.lookup(asid, Vpn(1)).is_some());
        assert!(tlb.lookup(asid, Vpn(3)).is_some());
    }

    #[test]
    fn invalidate_single_page() {
        let mut tlb = Tlb::server_default();
        tlb.insert(Asid(1), Vpn(5), frame(1));
        assert!(tlb.invalidate(Asid(1), Vpn(5)));
        assert!(!tlb.invalidate(Asid(1), Vpn(5)));
        assert_eq!(tlb.lookup(Asid(1), Vpn(5)), None);
    }

    #[test]
    fn flush_asid_leaves_other_processes() {
        let mut tlb = Tlb::server_default();
        tlb.insert(Asid(1), Vpn(5), frame(1));
        tlb.insert(Asid(2), Vpn(6), frame(2));
        tlb.flush_asid(Asid(1));
        assert_eq!(tlb.lookup(Asid(1), Vpn(5)), None);
        assert!(tlb.lookup(Asid(2), Vpn(6)).is_some());
    }

    #[test]
    fn flush_all() {
        let mut tlb = Tlb::server_default();
        tlb.insert(Asid(1), Vpn(5), frame(1));
        tlb.flush_all();
        assert_eq!(tlb.occupancy(), 0);
    }

    #[test]
    fn huge_entries_cover_whole_regions() {
        let mut tlb = Tlb::server_default();
        let asid = Asid(1);
        assert!(!tlb.lookup_huge(asid, Vpn(700)));
        tlb.insert_huge(asid, Vpn(700)); // region base 512
        assert!(tlb.lookup_huge(asid, Vpn(512)), "same region");
        assert!(tlb.lookup_huge(asid, Vpn(1023)), "same region");
        assert!(!tlb.lookup_huge(asid, Vpn(1024)), "next region");
        assert_eq!(tlb.huge_occupancy(), 1, "one entry, 512 pages");
    }

    #[test]
    fn huge_invalidation_after_split() {
        let mut tlb = Tlb::server_default();
        let asid = Asid(1);
        tlb.insert_huge(asid, Vpn(512));
        assert!(tlb.invalidate_huge(asid, Vpn(600)));
        assert!(!tlb.lookup_huge(asid, Vpn(512)));
        assert!(!tlb.invalidate_huge(asid, Vpn(600)), "idempotent");
    }

    #[test]
    fn huge_entries_flushed_with_asid() {
        let mut tlb = Tlb::server_default();
        tlb.insert_huge(Asid(1), Vpn(0));
        tlb.insert_huge(Asid(2), Vpn(0));
        tlb.flush_asid(Asid(1));
        assert!(!tlb.lookup_huge(Asid(1), Vpn(0)));
        assert!(tlb.lookup_huge(Asid(2), Vpn(0)));
        tlb.flush_all();
        assert_eq!(tlb.huge_occupancy(), 0);
    }

    #[test]
    fn huge_lru_eviction() {
        let mut tlb = Tlb::new(128, 12);
        let asid = Asid(1);
        // 16 sets x 8 ways = 128 huge entries; insert regions mapping to
        // one set (base>>9 multiples of 16) to force eviction.
        for i in 0..9u64 {
            tlb.insert_huge(asid, Vpn(i * 16 * 512));
        }
        assert!(!tlb.lookup_huge(asid, Vpn(0)), "LRU way evicted");
        assert!(tlb.lookup_huge(asid, Vpn(8 * 16 * 512)));
    }

    #[test]
    fn array_invalidation_counts_holders() {
        let mut arr = TlbArray::new(4);
        arr.core(CoreId(0)).insert(Asid(1), Vpn(9), frame(1));
        arr.core(CoreId(2)).insert(Asid(1), Vpn(9), frame(1));
        let held = arr.invalidate_on([CoreId(0), CoreId(1), CoreId(2)], Asid(1), Vpn(9));
        assert_eq!(held, 2);
        assert_eq!(arr.core(CoreId(0)).lookup(Asid(1), Vpn(9)), None);
    }

    /// A restored TLB must evict exactly the same victims as the
    /// original: stamps, way order and the clock all travel, so the LRU
    /// decisions downstream of the checkpoint are bit-identical.
    #[test]
    fn snapshot_roundtrip_preserves_lru_and_stats() {
        use vulcan_json::Snapshot;
        let mut orig = Tlb::new(4, 2); // tiny, to force evictions
        let asid = Asid(3);
        for i in 0..10u64 {
            orig.insert(asid, Vpn(i), frame(i as u32));
            orig.lookup(asid, Vpn(i / 2)); // mixed hits/misses, stamp churn
        }
        orig.insert_huge(asid, Vpn(512));
        orig.lookup_huge(asid, Vpn(513));
        let snap = orig.snapshot();
        let mut back = Tlb::restore(&snap).expect("restore");
        assert_eq!(back.snapshot(), snap, "idempotent");
        assert_eq!(back.stats(), orig.stats());
        assert_eq!(back.occupancy(), orig.occupancy());
        // Continue both with the same pressure; evictions must agree.
        for i in 10..40u64 {
            assert_eq!(
                orig.lookup(asid, Vpn(i % 13)),
                back.lookup(asid, Vpn(i % 13)),
                "lookup {i}"
            );
            orig.insert(asid, Vpn(i), frame(i as u32));
            back.insert(asid, Vpn(i), frame(i as u32));
        }
        assert_eq!(back.snapshot(), orig.snapshot(), "lockstep after resume");
    }

    #[test]
    fn restore_rejects_overfull_set() {
        use vulcan_json::Snapshot;
        let mut tlb = Tlb::new(2, 2);
        tlb.insert(Asid(1), Vpn(0), frame(0));
        let mut v = tlb.snapshot();
        if let vulcan_json::Value::Object(m) = &mut v {
            m.insert("ways", vulcan_json::snap::u64_value(0));
        }
        assert!(Tlb::restore(&v).is_err());
    }

    #[test]
    fn array_roundtrip() {
        use vulcan_json::Snapshot;
        let mut arr = TlbArray::new(3);
        arr.core(CoreId(1)).insert(Asid(1), Vpn(42), frame(7));
        let back = TlbArray::restore(&arr.snapshot()).expect("restore");
        assert_eq!(back.snapshot(), arr.snapshot());
        assert_eq!(back.len(), 3);
    }
}
