//! Advanced profiling mechanisms from §2.1's survey.
//!
//! * [`ChronoProfiler`] — timer-based hotness measurement in the style of
//!   Chrono (EuroSys'25): instead of counting accesses, it measures each
//!   page's *idle time* between observed accesses; short idle times mean
//!   hot pages. This estimates access frequency better than raw counts
//!   when sampling is sparse ("improves the estimation of access
//!   frequency by recording idle time").
//! * [`TelescopeProfiler`] — hierarchical page-table profiling in the
//!   style of Telescope (ATC'24): probe upper-level regions first and
//!   descend into the per-PTE scan only for regions showing activity,
//!   making the epoch cost proportional to the *active* footprint rather
//!   than the RSS — the fix for page-table scanning's terabyte-scale
//!   problem.

use crate::heat::HeatMap;
use crate::sampler::{EpochOutcome, Profiler, DEFAULT_DECAY};
use std::collections::HashMap;
use vulcan_sim::Cycles;
use vulcan_vm::{AddressSpace, Vpn, FANOUT};

/// Timer-based (idle-time) hotness profiler.
#[derive(Clone, Debug)]
pub struct ChronoProfiler {
    heat: HeatMap,
    /// Sampling period over the access stream.
    period: u64,
    countdown: u64,
    /// Current epoch number (the "timer").
    epoch: u64,
    /// Last epoch each sampled page was seen in.
    last_seen: HashMap<u64, u64>,
    samples: u64,
}

impl ChronoProfiler {
    /// Sample every `period`-th access, deriving heat from idle time.
    pub fn new(period: u64) -> Self {
        assert!(period > 0);
        ChronoProfiler {
            heat: HeatMap::new(DEFAULT_DECAY),
            period,
            countdown: period,
            epoch: 0,
            last_seen: HashMap::new(),
            samples: 0,
        }
    }

    /// Samples taken so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The idle-time weight: a page seen again after `idle` epochs gets
    /// heat proportional to `1 / (idle + 1)` per sampled access — pages
    /// re-seen within the same epoch score highest.
    fn idle_weight(idle: u64) -> f64 {
        1.0 / (idle as f64 + 1.0)
    }
}

impl Profiler for ChronoProfiler {
    fn on_access(&mut self, vpn: Vpn, is_write: bool) {
        self.countdown -= 1;
        if self.countdown != 0 {
            return;
        }
        self.countdown = self.period;
        self.samples += 1;
        let idle = self
            .last_seen
            .insert(vpn.0, self.epoch)
            .map_or(0, |last| self.epoch - last);
        // One sample represents `period` accesses, weighted by recency.
        self.heat
            .record(vpn, is_write, self.period as f64 * Self::idle_weight(idle));
    }

    fn on_access_batch(&mut self, batch: &crate::sampler::AccessBatch) {
        // Hint faults are a no-op for Chrono; the idle-time bookkeeping
        // only runs at sampled accesses, so the countdown skips ahead.
        let n = batch.offsets.len() as u64;
        let mut pos = 0u64;
        while self.countdown <= n - pos {
            pos += self.countdown;
            let i = (pos - 1) as usize;
            self.countdown = self.period;
            self.samples += 1;
            let vpn = Vpn(batch.offsets[i]);
            let idle = self
                .last_seen
                .insert(vpn.0, self.epoch)
                .map_or(0, |last| self.epoch - last);
            self.heat.record(
                vpn,
                batch.writes[i],
                self.period as f64 * Self::idle_weight(idle),
            );
        }
        self.countdown -= n - pos;
    }

    fn epoch(&mut self, _space: &mut AddressSpace) -> EpochOutcome {
        self.epoch += 1;
        self.heat.decay_epoch();
        // Prune pages idle for many epochs (bounded metadata).
        let horizon = self.epoch.saturating_sub(16);
        self.last_seen.retain(|_, &mut last| last >= horizon);
        EpochOutcome::cost(Cycles(2_500))
    }

    fn heat(&self) -> &HeatMap {
        &self.heat
    }

    fn heat_mut(&mut self) -> &mut HeatMap {
        &mut self.heat
    }
}

/// Hierarchical page-table profiler.
#[derive(Clone, Debug)]
pub struct TelescopeProfiler {
    heat: HeatMap,
    /// Cycles to probe one PTE (test accessed bit).
    per_pte: Cycles,
    /// Pages probed per region before deciding it is idle.
    probes_per_region: usize,
    /// Statistics: regions skipped as idle.
    regions_skipped: u64,
    /// Statistics: regions fully scanned.
    regions_scanned: u64,
    /// Scratch buffer of mapped VPNs, reused across epochs.
    scratch: Vec<Vpn>,
    /// Scratch buffer of per-region `[start, end)` runs into `scratch`.
    region_scratch: Vec<(usize, usize)>,
}

impl TelescopeProfiler {
    /// A hierarchical scanner with default probe budget (8 PTEs/region).
    pub fn new() -> Self {
        TelescopeProfiler {
            heat: HeatMap::new(DEFAULT_DECAY),
            per_pte: Cycles(30),
            probes_per_region: 8,
            regions_skipped: 0,
            regions_scanned: 0,
            scratch: Vec::new(),
            region_scratch: Vec::new(),
        }
    }

    /// (regions skipped as idle, regions fully scanned) so far.
    pub fn region_stats(&self) -> (u64, u64) {
        (self.regions_skipped, self.regions_scanned)
    }
}

impl Default for TelescopeProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Profiler for TelescopeProfiler {
    fn on_access(&mut self, _vpn: Vpn, _is_write: bool) {
        // Like plain scanning, activity is read from PTE accessed bits.
    }

    fn on_access_batch(&mut self, _batch: &crate::sampler::AccessBatch) {
        // Activity is read from PTE bits at epoch time; planes are free.
    }

    fn epoch(&mut self, space: &mut AddressSpace) -> EpochOutcome {
        self.heat.decay_epoch();
        // Group the RSS into leaf-table regions (512 contiguous pages):
        // one flat reused VPN buffer plus `[start, end)` runs per region,
        // instead of a fresh Vec-of-Vecs every epoch.
        let mut pages = std::mem::take(&mut self.scratch);
        pages.clear();
        pages.extend(space.mapped_vpns());
        let mut regions = std::mem::take(&mut self.region_scratch);
        regions.clear();
        let mut i = 0;
        while i < pages.len() {
            let region = pages[i].0 / FANOUT as u64;
            let start = i;
            while i < pages.len() && pages[i].0 / FANOUT as u64 == region {
                i += 1;
            }
            regions.push((start, i));
        }

        let mut cost = Cycles::ZERO;
        for &(start, end) in &regions {
            let run = &pages[start..end];
            // Stage 1: probe a sparse sample of the region.
            let stride = (run.len() / self.probes_per_region).max(1);
            let mut active = false;
            for vpn in run.iter().step_by(stride) {
                cost += self.per_pte;
                if space.pte(*vpn).accessed() {
                    active = true;
                    break;
                }
            }
            if !active {
                self.regions_skipped += 1;
                continue;
            }
            // Stage 2: full scan of the active region, clearing A/D bits.
            self.regions_scanned += 1;
            for vpn in run {
                cost += self.per_pte;
                let pte = space.pte(*vpn);
                if pte.accessed() {
                    self.heat.record(*vpn, pte.dirty(), 1.0);
                    space.set_pte(*vpn, pte.clear_accessed().clear_dirty());
                }
            }
        }
        self.scratch = pages;
        self.region_scratch = regions;
        EpochOutcome::cost(cost)
    }

    fn heat(&self) -> &HeatMap {
        &self.heat
    }

    fn heat_mut(&mut self) -> &mut HeatMap {
        &mut self.heat
    }
}

impl vulcan_json::Snapshot for ChronoProfiler {
    /// `last_seen` is a HashMap; it serializes sorted by key so the
    /// snapshot bytes are deterministic (iteration order never leaks
    /// into behavior — lookups are keyed).
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::snap;
        let mut pairs: Vec<(u64, u64)> = self.last_seen.iter().map(|(&k, &v)| (k, v)).collect();
        pairs.sort_unstable();
        let keys: Vec<u64> = pairs.iter().map(|&(k, _)| k).collect();
        let seen: Vec<u64> = pairs.iter().map(|&(_, v)| v).collect();
        snap::obj(vec![
            ("period", snap::u64_value(self.period)),
            ("countdown", snap::u64_value(self.countdown)),
            ("epoch", snap::u64_value(self.epoch)),
            ("last_seen_keys", snap::u64_array(&keys)),
            ("last_seen_epochs", snap::u64_array(&seen)),
            ("samples", snap::u64_value(self.samples)),
            ("heat", self.heat.snapshot()),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        let period = snap::field_u64(v, "period")?;
        if period == 0 {
            return Err("Chrono period must be positive".into());
        }
        let keys = snap::array_u64(snap::field(v, "last_seen_keys")?)?;
        let seen = snap::array_u64(snap::field(v, "last_seen_epochs")?)?;
        if keys.len() != seen.len() {
            return Err("last_seen key/epoch arrays disagree".into());
        }
        Ok(ChronoProfiler {
            heat: HeatMap::restore(snap::field(v, "heat")?)?,
            period,
            countdown: snap::field_u64(v, "countdown")?,
            epoch: snap::field_u64(v, "epoch")?,
            last_seen: keys.into_iter().zip(seen).collect(),
            samples: snap::field_u64(v, "samples")?,
        })
    }
}

impl vulcan_json::Snapshot for TelescopeProfiler {
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::snap;
        snap::obj(vec![
            ("per_pte", snap::u64_value(self.per_pte.0)),
            (
                "probes_per_region",
                snap::u64_value(self.probes_per_region as u64),
            ),
            ("regions_skipped", snap::u64_value(self.regions_skipped)),
            ("regions_scanned", snap::u64_value(self.regions_scanned)),
            ("heat", self.heat.snapshot()),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        Ok(TelescopeProfiler {
            heat: HeatMap::restore(snap::field(v, "heat")?)?,
            per_pte: Cycles(snap::field_u64(v, "per_pte")?),
            probes_per_region: snap::field_usize(v, "probes_per_region")?,
            regions_skipped: snap::field_u64(v, "regions_skipped")?,
            regions_scanned: snap::field_u64(v, "regions_scanned")?,
            scratch: Vec::new(),
            region_scratch: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulcan_sim::{FrameId, TierKind};
    use vulcan_vm::LocalTid;

    fn space_with_pages(n: u64) -> AddressSpace {
        let mut s = AddressSpace::new(false);
        for v in 0..n {
            s.map(
                Vpn(v),
                FrameId {
                    tier: TierKind::Slow,
                    index: v as u32,
                },
                LocalTid(0),
            );
        }
        s
    }

    #[test]
    fn chrono_prefers_recently_reseen_pages() {
        let mut p = ChronoProfiler::new(1);
        let mut space = AddressSpace::new(false);
        // Page 1: accessed every epoch. Page 2: same total count, but all
        // in one burst long ago.
        for _ in 0..8 {
            p.on_access(Vpn(2), false);
        }
        for _ in 0..8 {
            p.on_access(Vpn(1), false);
            p.epoch(&mut space);
        }
        // Count-based profiling would tie them; idle-time profiling must
        // rank the steadily re-accessed page hotter.
        assert!(
            p.heat().get(Vpn(1)).heat > p.heat().get(Vpn(2)).heat,
            "steady {} vs burst {}",
            p.heat().get(Vpn(1)).heat,
            p.heat().get(Vpn(2)).heat
        );
    }

    #[test]
    fn chrono_idle_weight_decreases() {
        assert!(ChronoProfiler::idle_weight(0) > ChronoProfiler::idle_weight(1));
        assert!(ChronoProfiler::idle_weight(1) > ChronoProfiler::idle_weight(10));
        assert_eq!(ChronoProfiler::idle_weight(0), 1.0);
    }

    #[test]
    fn chrono_samples_by_period() {
        let mut p = ChronoProfiler::new(10);
        for _ in 0..100 {
            p.on_access(Vpn(3), false);
        }
        assert_eq!(p.samples(), 10);
    }

    #[test]
    fn chrono_prunes_stale_metadata() {
        let mut p = ChronoProfiler::new(1);
        let mut space = AddressSpace::new(false);
        p.on_access(Vpn(9), false);
        for _ in 0..40 {
            p.epoch(&mut space);
        }
        assert!(p.last_seen.is_empty(), "stale timers pruned");
    }

    #[test]
    fn telescope_skips_idle_regions() {
        // 8 leaf regions; only region 0 is touched.
        let mut s = space_with_pages(8 * 512);
        for v in 0..64u64 {
            s.touch(Vpn(v), LocalTid(0), false).unwrap();
        }
        let mut p = TelescopeProfiler::new();
        let out = p.epoch(&mut s);
        let (skipped, scanned) = p.region_stats();
        assert_eq!(scanned, 1, "only the active region descends");
        assert_eq!(skipped, 7);
        // Cost must be far below a full per-PTE scan (4096 * 30).
        assert!(
            out.cycles.0 < 4096 * 30 / 2,
            "hierarchical cost {} vs flat {}",
            out.cycles.0,
            4096 * 30
        );
        assert!(p.heat().get(Vpn(0)).heat > 0.0);
    }

    #[test]
    fn telescope_equivalent_on_dense_access() {
        let mut s = space_with_pages(1024);
        for v in 0..1024u64 {
            s.touch(Vpn(v), LocalTid(0), false).unwrap();
        }
        let mut flat = crate::sampler::PtScanProfiler::new();
        let mut tele = TelescopeProfiler::new();
        let mut s2 = s.clone();
        flat.epoch(&mut s);
        tele.epoch(&mut s2);
        for v in 0..1024u64 {
            assert_eq!(
                flat.heat().get(Vpn(v)).heat,
                tele.heat().get(Vpn(v)).heat,
                "same heat on fully-active footprints"
            );
        }
    }

    #[test]
    fn telescope_probe_can_miss_sparse_activity() {
        // A single touched page in a 512-page region may fall between
        // probes — the sampling-induced false negative Telescope accepts
        // in exchange for scan cost. This documents the trade-off.
        let mut s = space_with_pages(512);
        s.touch(Vpn(1), LocalTid(0), false).unwrap(); // off the probe stride
        let mut p = TelescopeProfiler::new();
        p.epoch(&mut s);
        let (skipped, scanned) = p.region_stats();
        assert_eq!((skipped, scanned), (1, 0), "sparse touch missed by probes");
    }
}
