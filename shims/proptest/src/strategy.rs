//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for sampling values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree or shrinking — a
/// strategy is just a deterministic sampler over a [`TestRng`].
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every sampled value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Derive a second strategy from each sampled value and sample that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.sample(rng)).sample(rng)
    }
}

/// Uniform choice among boxed strategies; built by [`prop_oneof!`].
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.next_below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// Build a [`Union`]; used by the [`prop_oneof!`] macro expansion.
///
/// [`prop_oneof!`]: crate::prop_oneof
pub fn union<T>(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
    Union { options }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.next_below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.next_below(span + 1) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.next_below(span) as i64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(rng.next_below(span + 1) as i64) as $t
            }
        }
    )*};
}
impl_range_strategy_signed!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
