//! Figure 1: hot and cold pages identified over time under MEMTIS for
//! Memcached (LC) and Liblinear (BE) — solo and co-located — plus the
//! (d) panel: hot-page ratio and normalized performance.
//!
//! Paper anchors: Memcached's hot-page ratio collapses from ~75% solo to
//! <28% co-located; its normalized performance drops to ~0.8x while
//! Liblinear's fast-tier occupancy dominates (Observation #1).

use vulcan::prelude::*;
use vulcan_bench::suite::{fig1_grid, SuiteOpts};
use vulcan_bench::{init_threads, save_json_or_exit};
use vulcan_json::{Map, Value};

fn main() {
    init_threads();
    // Grid order: [solo_mc, solo_lib, co] (see `fig1_grid`).
    let mut results = fig1_grid(&SuiteOpts::full()).run();
    let co = results.pop().expect("co cell");
    let solo_lib = results.pop().expect("solo_lib cell");
    let solo_mc = results.pop().expect("solo_mc cell");

    // Panels (a)-(c): hot (fast-resident) vs cold page counts over time.
    let mut panels = Map::new();
    for (label, res, names) in [
        ("a_memcached_solo", &solo_mc, vec!["memcached"]),
        ("b_liblinear_solo", &solo_lib, vec!["liblinear"]),
        ("c_colocated", &co, vec!["memcached", "liblinear"]),
    ] {
        let mut series = Map::new();
        for name in names {
            for kind in ["fast_pages", "slow_pages"] {
                let s = res.series.get(&format!("{name}.{kind}")).expect("series");
                series.insert(
                    format!("{name}.{kind}"),
                    vulcan_json::pairs_to_value(&s.points),
                );
            }
        }
        panels.insert(label, Value::Object(series));
    }

    // Panel (d): settled hot-page ratio and normalized performance.
    let settle = 30.0;
    let ratio = |r: &RunResult, name: &str| {
        r.series
            .get(&format!("{name}.hot_ratio"))
            .expect("series")
            .mean_after(settle)
    };
    let mc_solo_ratio = ratio(&solo_mc, "memcached");
    let mc_co_ratio = ratio(&co, "memcached");
    let lib_solo_ratio = ratio(&solo_lib, "liblinear");
    let lib_co_ratio = ratio(&co, "liblinear");
    let mc_norm =
        co.workload("memcached").performance() / solo_mc.workload("memcached").performance();
    let lib_norm =
        co.workload("liblinear").performance() / solo_lib.workload("liblinear").performance();

    let mut table = Table::new(
        "Figure 1(d): impact of co-location under MEMTIS",
        &[
            "workload",
            "hot ratio solo",
            "hot ratio co-located",
            "normalized perf",
        ],
    );
    table.row(&[
        "memcached (LC)".into(),
        format!("{:.2}", mc_solo_ratio),
        format!("{:.2}", mc_co_ratio),
        format!("{mc_norm:.2}"),
    ]);
    table.row(&[
        "liblinear (BE)".into(),
        format!("{:.2}", lib_solo_ratio),
        format!("{:.2}", lib_co_ratio),
        format!("{lib_norm:.2}"),
    ]);
    table.print();
    println!(
        "\nPaper: Memcached ~75% -> <28% hot ratio, performance -> 0.8x; \
         Liblinear dominates the fast tier and tolerates co-location."
    );

    panels.insert(
        "d_summary",
        Map::new()
            .with(
                "memcached",
                Map::new()
                    .with("solo_ratio", mc_solo_ratio)
                    .with("co_ratio", mc_co_ratio)
                    .with("normalized_perf", mc_norm),
            )
            .with(
                "liblinear",
                Map::new()
                    .with("solo_ratio", lib_solo_ratio)
                    .with("co_ratio", lib_co_ratio)
                    .with("normalized_perf", lib_norm),
            ),
    );
    save_json_or_exit("fig1", &Value::Object(panels));
}
