//! The tiered-memory QoS model of §3.3.
//!
//! * `GPT_i = GFMC / RSS_i`, clamped to 1 when the equal share covers the
//!   workload's resident set — the per-workload guaranteed performance
//!   target.
//! * `FTHR_i` — the fast-tier hit ratio, an EMA over per-interval hit
//!   ratios (equations 1–2); maintained by the runtime
//!   ([`vulcan_runtime::WorkloadStats`]).
//! * `demand_i = alloc_i + (GPT_i − FTHR_i) · RSS_i · log²(RSS_i)`
//!   (equation 3) — the fast-memory demand update, clamped to
//!   `[0, RSS_i]`. The log argument uses RSS in paper-GB (the unit the
//!   paper reports RSS in); the simulator's page-scaled RSS would inflate
//!   the log² factor ~4× without changing behaviour, since the adjustment
//!   saturates at the clamp for any meaningful GPT−FTHR gap.

use vulcan_sim::PAGES_PER_PAPER_GB;

/// Guaranteed Fast Memory Capacity: the equal split of fast memory among
/// the `n` currently co-located workloads (dynamically adjusted with n).
pub fn gfmc(fast_capacity_pages: u64, n_workloads: usize) -> u64 {
    if n_workloads == 0 {
        fast_capacity_pages
    } else {
        fast_capacity_pages / n_workloads as u64
    }
}

/// The guaranteed performance target `GPT_i` (§3.3): 1 when GFMC covers
/// the RSS, else the fraction of the RSS the equal share can hold.
pub fn gpt(gfmc_pages: u64, rss_pages: u64) -> f64 {
    if rss_pages == 0 || gfmc_pages >= rss_pages {
        1.0
    } else {
        gfmc_pages as f64 / rss_pages as f64
    }
}

/// Equation 3: the updated fast-memory demand in pages.
///
/// ```
/// use vulcan_core::{demand, gfmc, gpt};
///
/// let gfmc = gfmc(8192, 2);          // 4096 pages each
/// let gpt = gpt(gfmc, 13_056);       // ≈ 0.31 for memcached's RSS
/// // FTHR far below target: demand grows (clamped to the RSS).
/// assert!(demand(1000, gpt, 0.1, 13_056) > 1000);
/// // FTHR above target: demand shrinks.
/// assert!(demand(5000, gpt, 0.9, 13_056) < 5000);
/// ```
///
/// A workload whose `FTHR` trails its `GPT` is under-allocated and its
/// demand grows; one exceeding its target shrinks. The `RSS·log²(RSS)`
/// factor makes the adjustment proportional to footprint ("a scalable and
/// workload-sensitive mechanism"). Clamped to `[0, RSS]` — no workload
/// can demand more fast memory than it has pages.
pub fn demand(alloc_pages: u64, gpt: f64, fthr: f64, rss_pages: u64) -> u64 {
    if rss_pages == 0 {
        return 0;
    }
    let rss_gb = (rss_pages as f64 / PAGES_PER_PAPER_GB as f64).max(1.0);
    let log2 = rss_gb.log2().max(0.0);
    let adjust = (gpt - fthr) * rss_pages as f64 * log2 * log2;
    let d = alloc_pages as f64 + adjust;
    d.clamp(0.0, rss_pages as f64).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gfmc_splits_evenly_and_adapts_to_n() {
        assert_eq!(gfmc(8192, 2), 4096);
        assert_eq!(gfmc(8192, 3), 2730);
        assert_eq!(gfmc(8192, 0), 8192);
    }

    #[test]
    fn gpt_clamps_at_one() {
        assert_eq!(gpt(4096, 1024), 1.0, "share covers RSS");
        assert_eq!(gpt(4096, 0), 1.0, "empty RSS is trivially covered");
        let g = gpt(4096, 8192);
        assert!((g - 0.5).abs() < 1e-12);
    }

    #[test]
    fn under_allocated_workload_demands_more() {
        // FTHR far below GPT: demand grows beyond current allocation.
        let d = demand(1000, 0.8, 0.3, 13_056);
        assert!(d > 1000);
    }

    #[test]
    fn over_served_workload_releases() {
        // FTHR above GPT: demand shrinks below current allocation.
        let d = demand(5000, 0.4, 0.95, 13_056);
        assert!(d < 5000);
    }

    #[test]
    fn demand_clamps_to_rss() {
        assert_eq!(demand(10_000, 1.0, 0.0, 13_056), 13_056);
        assert_eq!(demand(100, 0.0, 1.0, 13_056), 0);
        assert_eq!(demand(0, 1.0, 1.0, 0), 0);
    }

    #[test]
    fn satisfied_workload_holds_steady() {
        // FTHR == GPT: demand equals current allocation.
        assert_eq!(demand(4096, 0.6, 0.6, 13_056), 4096);
    }

    #[test]
    fn larger_footprints_adjust_faster() {
        let small = demand(100, 0.8, 0.4, 1_024) - 100;
        let large = demand(100, 0.8, 0.4, 65_536) - 100;
        assert!(large > small, "log² scaling: {large} vs {small}");
    }
}
