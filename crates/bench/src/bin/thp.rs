//! Transparent-huge-page study (§3.4/§3.5): Vulcan "enables THPs to
//! maximize TLB coverage by default, despite proactively splitting them
//! into base pages during promotion". This bench quantifies both halves:
//! the TLB-reach benefit of 2 MiB entries, and the migration-granularity
//! benefit of splitting before promotion.

use vulcan::prelude::*;
use vulcan::sim::{CoreId, HUGE_PAGE_PAGES};
use vulcan_bench::save_json;

fn run(thp: bool, wss_regions: u64, seed: u64) -> (f64, f64, u64) {
    let spec = {
        let s = microbench(
            "mb",
            MicroConfig {
                rss_pages: 16 * HUGE_PAGE_PAGES as u64,
                wss_pages: wss_regions * HUGE_PAGE_PAGES as u64,
                skew: 0.6,
                ..Default::default()
            },
            8,
        );
        if thp {
            s.with_thp()
        } else {
            s
        }
    };
    let mut runner = vulcan::runtime::SimRunner::new(
        MachineSpec::paper_testbed(),
        vec![spec],
        &mut |_| Box::new(HybridProfiler::vulcan_default()),
        Box::new(VulcanPolicy::new()),
        SimConfig {
            n_quanta: 0,
            seed,
            ..Default::default()
        },
    );
    for _ in 0..15 {
        runner.run_quantum();
    }
    let mut hits = 0u64;
    let mut misses = 0u64;
    for c in 0..8u16 {
        let (h, m) = runner.state.tlbs.core(CoreId(c)).stats();
        hits += h;
        misses += m;
    }
    let tlb_hit = hits as f64 / (hits + misses).max(1) as f64;
    let huge_left = runner.state.workloads[0].process.space.huge_count() as u64;
    let res = runner.run();
    (res.workload("mb").mean_ops_per_sec, tlb_hit, huge_left)
}

fn main() {
    let mut table = Table::new(
        "THP study: TLB reach and split-on-promotion (Vulcan policy)",
        &[
            "WSS (2MiB regions)",
            "paging",
            "ops/s",
            "TLB hit ratio",
            "THP regions left",
        ],
    );
    let mut rows = Vec::new();
    for wss_regions in [4u64, 8, 16] {
        for thp in [false, true] {
            let (ops, tlb, huge) = run(thp, wss_regions, 1);
            table.row(&[
                wss_regions.to_string(),
                if thp { "2MiB (THP)" } else { "4KiB" }.into(),
                format!("{ops:.0}"),
                format!("{tlb:.3}"),
                huge.to_string(),
            ]);
            rows.push(vulcan_json::Value::Object(
                vulcan_json::Map::new()
                    .with("wss_regions", wss_regions)
                    .with("thp", thp)
                    .with("ops_per_sec", ops)
                    .with("tlb_hit_ratio", tlb)
                    .with("huge_regions_left", huge),
            ));
        }
    }
    table.print();
    println!(
        "\nTHP extends TLB reach (one entry per 512 pages) for large working \
         sets; Vulcan still splits the regions it promotes, so base-page \
         migration granularity is preserved (fewer THP regions remain when \
         tiering pressure is high)."
    );
    save_json("thp", &rows);
}
