//! Offline stand-in for the `rayon` crate, backed by a real thread pool.
//!
//! The build environment has no access to crates.io, so this shim keeps
//! the upstream package name and an API subset — but unlike the original
//! sequential placeholder it now executes work items on a scoped thread
//! pool (`std::thread::scope`):
//!
//! * the pool is sized from [`std::thread::available_parallelism`],
//!   overridable with the `RAYON_NUM_THREADS` environment variable or
//!   programmatically via [`pool::set_num_threads`] (the `--threads`
//!   flag of the benchmark binaries);
//! * work is distributed in chunks claimed from an atomic cursor, so
//!   threads that finish early pick up the remaining chunks;
//! * results are collected **index-ordered**: `map`/`flat_map`/`collect`
//!   produce exactly the sequence a sequential iterator would, so every
//!   artifact derived from a parallel sweep is byte-identical no matter
//!   how many threads ran it;
//! * a panicking work item is caught, the remaining items still run to
//!   completion on the surviving workers, and the first panic payload is
//!   re-raised on the caller's thread once the scope joins.
//!
//! Nested parallel calls (a parallel iterator inside a pool worker) run
//! sequentially on the worker that spawned them instead of growing the
//! thread count multiplicatively.

pub mod pool {
    //! The scoped worker pool executing parallel-iterator work.

    use std::cell::Cell;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Programmatic thread-count override; 0 means "not set".
    static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

    thread_local! {
        /// Set while the current thread is a pool worker: nested
        /// parallel calls fall back to sequential execution.
        static IN_POOL: Cell<bool> = const { Cell::new(false) };
    }

    /// Force the pool size for subsequent parallel calls (`--threads`).
    /// Takes precedence over `RAYON_NUM_THREADS`; 0 clears the override.
    pub fn set_num_threads(n: usize) {
        THREAD_OVERRIDE.store(n, Ordering::SeqCst);
    }

    /// The number of worker threads a parallel call will use: the
    /// [`set_num_threads`] override, else `RAYON_NUM_THREADS`, else
    /// [`std::thread::available_parallelism`].
    pub fn current_num_threads() -> usize {
        match THREAD_OVERRIDE.load(Ordering::SeqCst) {
            0 => {}
            n => return n,
        }
        if let Some(n) = std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return n;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Apply `f` to every item on the current pool, returning results in
    /// input order. Panics from `f` are re-raised after all other items
    /// finished.
    pub fn run<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        run_on(current_num_threads(), items, f)
    }

    /// [`run`] with an explicit thread count (used by the pool's own
    /// tests; prefer `run` + [`set_num_threads`] elsewhere).
    pub fn run_on<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        let workers = threads.min(n);
        if workers <= 1 || IN_POOL.with(Cell::get) {
            return items.into_iter().map(f).collect();
        }

        // Work slots and result slots share the item index, so output
        // order never depends on scheduling. Chunks amortize the cursor
        // contention while staying small enough to balance uneven items.
        let chunk = (n / (workers * 4)).max(1);
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<R>>> = std::iter::repeat_with(|| Mutex::new(None))
            .take(n)
            .collect();
        let cursor = AtomicUsize::new(0);
        let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    IN_POOL.with(|c| c.set(true));
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        for i in start..(start + chunk).min(n) {
                            let item = slots[i]
                                .lock()
                                .expect("work slot lock")
                                .take()
                                .expect("each slot is claimed exactly once");
                            match catch_unwind(AssertUnwindSafe(|| f(item))) {
                                Ok(r) => *results[i].lock().expect("result slot lock") = Some(r),
                                Err(payload) => {
                                    let mut p = first_panic.lock().expect("panic slot lock");
                                    if p.is_none() {
                                        *p = Some(payload);
                                    }
                                }
                            }
                        }
                    }
                });
            }
        });

        if let Some(payload) = first_panic.into_inner().expect("panic slot") {
            resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot")
                    .expect("every index produced a result")
            })
            .collect()
    }
}

pub mod prelude {
    //! The usual glob import, mirroring `rayon::prelude`.

    use crate::pool;

    /// A parallel iterator: a chain of adapters over a materialized item
    /// list, executed on the pool with index-ordered results.
    pub trait ParallelIterator: Sized + Send {
        /// The element type produced by this stage.
        type Item: Send;

        /// Execute the chain, returning the items in sequential order.
        fn run(self) -> Vec<Self::Item>;

        /// Apply `f` to every item in parallel.
        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync + Send,
        {
            Map { inner: self, f }
        }

        /// Apply `f` in parallel and flatten the per-item sequences in
        /// input order.
        fn flat_map<PI, F>(self, f: F) -> FlatMap<Self, F>
        where
            PI: IntoIterator + Send,
            PI::Item: Send,
            F: Fn(Self::Item) -> PI + Sync + Send,
        {
            FlatMap { inner: self, f }
        }

        /// Pair every item with its sequential index.
        fn enumerate(self) -> Enumerate<Self> {
            Enumerate { inner: self }
        }

        /// Run the chain for its side effects.
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync + Send,
        {
            self.map(f).run();
        }

        /// Execute and collect into any `FromIterator` container, in
        /// sequential order.
        fn collect<C>(self) -> C
        where
            C: FromIterator<Self::Item>,
        {
            self.run().into_iter().collect()
        }

        /// Execute and sum the results.
        fn sum<S>(self) -> S
        where
            S: std::iter::Sum<Self::Item>,
        {
            self.run().into_iter().sum()
        }

        /// Execute and count the results.
        fn count(self) -> usize {
            self.run().len()
        }
    }

    /// The source stage: a materialized list of items.
    pub struct IntoParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for IntoParIter<T> {
        type Item = T;
        fn run(self) -> Vec<T> {
            self.items
        }
    }

    /// Parallel `map` stage.
    pub struct Map<I, F> {
        inner: I,
        f: F,
    }

    impl<I, R, F> ParallelIterator for Map<I, F>
    where
        I: ParallelIterator,
        R: Send,
        F: Fn(I::Item) -> R + Sync + Send,
    {
        type Item = R;
        fn run(self) -> Vec<R> {
            pool::run(self.inner.run(), self.f)
        }
    }

    /// Parallel `flat_map` stage.
    pub struct FlatMap<I, F> {
        inner: I,
        f: F,
    }

    impl<I, PI, F> ParallelIterator for FlatMap<I, F>
    where
        I: ParallelIterator,
        PI: IntoIterator + Send,
        PI::Item: Send,
        F: Fn(I::Item) -> PI + Sync + Send,
    {
        type Item = PI::Item;
        fn run(self) -> Vec<PI::Item> {
            pool::run(self.inner.run(), self.f)
                .into_iter()
                .flatten()
                .collect()
        }
    }

    /// Index-pairing stage (cheap, sequential).
    pub struct Enumerate<I> {
        inner: I,
    }

    impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
        type Item = (usize, I::Item);
        fn run(self) -> Vec<(usize, I::Item)> {
            self.inner.run().into_iter().enumerate().collect()
        }
    }

    /// `into_par_iter()` for owned collections and ranges.
    pub trait IntoParallelIterator: IntoIterator + Sized
    where
        Self::Item: Send,
    {
        /// Convert into a parallel iterator over the owned items.
        fn into_par_iter(self) -> IntoParIter<Self::Item> {
            IntoParIter {
                items: self.into_iter().collect(),
            }
        }
    }

    impl<T: IntoIterator> IntoParallelIterator for T where T::Item: Send {}

    /// `par_iter()` for borrowed slices and `Vec`s.
    pub trait IntoParallelRefIterator<'a> {
        /// The borrowed element type.
        type Item: Send + 'a;
        /// Iterate shared references to the items in parallel.
        fn par_iter(&'a self) -> IntoParIter<Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        fn par_iter(&'a self) -> IntoParIter<&'a T> {
            IntoParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        fn par_iter(&'a self) -> IntoParIter<&'a T> {
            IntoParIter {
                items: self.iter().collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::pool;
    use super::prelude::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn par_iter_matches_iter() {
        let xs = [1, 2, 3, 4];
        let doubled: Vec<i32> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: i32 = (0..5).into_par_iter().sum();
        assert_eq!(sum, 10);
    }

    #[test]
    fn order_is_sequential_regardless_of_threads() {
        let expected: Vec<u64> = (0..257u64).map(|x| x * x).collect();
        for threads in [1, 2, 4, 13] {
            let got = pool::run_on(threads, (0..257u64).collect(), |x| x * x);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn flat_map_enumerate_chain_preserves_order() {
        let grid: Vec<(usize, u64)> = [10u64, 20, 30]
            .par_iter()
            .enumerate()
            .flat_map(|(i, &base)| (0..4u64).map(|t| (i, base + t)).collect::<Vec<_>>())
            .collect();
        let expected: Vec<(usize, u64)> = [10u64, 20, 30]
            .iter()
            .enumerate()
            .flat_map(|(i, &base)| (0..4u64).map(move |t| (i, base + t)))
            .collect();
        assert_eq!(grid, expected);
    }

    #[test]
    fn nested_parallelism_runs_and_stays_ordered() {
        let out: Vec<Vec<u64>> = pool::run_on(4, (0..8u64).collect(), |i| {
            // Inner parallel call from a worker: must degrade to
            // sequential execution, not deadlock or nest scopes.
            (0..4u64).into_par_iter().map(|j| i * 10 + j).collect()
        });
        assert_eq!(out[3], vec![30, 31, 32, 33]);
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn panic_propagates_without_poisoning_other_results() {
        const N: usize = 16;
        let completed = AtomicU64::new(0);
        let sum = AtomicU64::new(0);
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool::run_on(4, (0..N as u64).collect(), |i| {
                if i == 3 {
                    panic!("cell 3 exploded");
                }
                completed.fetch_add(1, Ordering::SeqCst);
                sum.fetch_add(i, Ordering::SeqCst);
                i
            })
        }));
        let payload = err.expect_err("panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("panic payload is preserved");
        assert_eq!(msg, "cell 3 exploded");
        // Every other cell still ran exactly once and produced its value.
        assert_eq!(completed.load(Ordering::SeqCst), (N - 1) as u64);
        let expected: u64 = (0..N as u64).filter(|&i| i != 3).sum();
        assert_eq!(sum.load(Ordering::SeqCst), expected);
    }

    #[test]
    fn chunking_covers_every_item_exactly_once() {
        for n in [0usize, 1, 2, 7, 64, 100] {
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            let out = pool::run_on(3, (0..n).collect(), |i| {
                hits[i].fetch_add(1, Ordering::SeqCst);
                i
            });
            assert_eq!(out, (0..n).collect::<Vec<_>>());
            assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
        }
    }

    #[test]
    fn thread_count_override_wins() {
        pool::set_num_threads(3);
        assert_eq!(pool::current_num_threads(), 3);
        pool::set_num_threads(0);
        assert!(pool::current_num_threads() >= 1);
    }
}
