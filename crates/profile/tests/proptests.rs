//! Property-based tests for the heat profiling substrate.
//!
//! The flat epoch-versioned `HeatMap` (dense table + open-addressed
//! spill) must be observationally identical — bitwise, since every
//! arithmetic step happens in the same order — to the plain `HashMap`
//! model it replaced. These tests drive both through adversarial
//! interleavings: keys straddling the dense/spill boundary, spill keys
//! chosen to collide in the probe sequence, and churn/decay patterns
//! that trigger spill compaction.

use proptest::prelude::*;
use std::collections::HashMap;
use vulcan_profile::HeatMap;
use vulcan_vm::Vpn;

/// Mirrors `heat::DENSE_LIMIT` (the dense/spill boundary).
const DENSE_LIMIT: u64 = 1 << 21;

/// Mirrors `heat::PRUNE_THRESHOLD`.
const PRUNE_THRESHOLD: f64 = 1e-3;

/// Mirrors `Spill::hash` (SplitMix64 finalizer) so the test can
/// construct keys that genuinely collide in the spill table's initial
/// 64-slot probe space.
fn splitmix64(key: u64) -> usize {
    let mut x = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x as usize
}

/// `count` spill-range keys that all land in probe bucket 0 of a
/// 64-slot table: a maximal-length collision chain.
fn colliding_spill_keys(count: usize) -> Vec<u64> {
    (DENSE_LIMIT..)
        .filter(|&k| splitmix64(k) & 63 == 0)
        .take(count)
        .collect()
}

/// The reference model: exactly the `HashMap` semantics the flat table
/// replaced. Same arithmetic in the same order, so comparisons below
/// are exact (`==`), not approximate.
#[derive(Default)]
struct RefModel {
    map: HashMap<u64, (f64, f64, f64)>, // heat, reads, writes
}

impl RefModel {
    fn record(&mut self, key: u64, is_write: bool, weight: f64) {
        let s = self.map.entry(key).or_default();
        s.0 += weight;
        if is_write {
            s.2 += weight;
        } else {
            s.1 += weight;
        }
    }

    fn decay(&mut self, d: f64) {
        self.map.retain(|_, s| {
            s.0 *= d;
            s.1 *= d;
            s.2 *= d;
            s.0 >= PRUNE_THRESHOLD
        });
    }

    fn get(&self, key: u64) -> (f64, f64, f64) {
        self.map.get(&key).copied().unwrap_or_default()
    }
}

#[derive(Clone, Copy, Debug)]
enum Op {
    /// Record `weight` accesses to the key-universe index.
    Record {
        idx: usize,
        write: bool,
        weight: f64,
    },
    /// One epoch of decay.
    Decay,
    /// Forget the key-universe index.
    Forget { idx: usize },
}

fn arb_op(universe: usize) -> impl Strategy<Value = Op> {
    // Selector-weighted: 6/9 record, 2/9 decay, 1/9 forget.
    (0usize..9, 0..universe, any::<bool>(), 0.01f64..8.0).prop_map(|(sel, idx, write, weight)| {
        match sel {
            0..=5 => Op::Record { idx, write, weight },
            6 | 7 => Op::Decay,
            _ => Op::Forget { idx },
        }
    })
}

/// A key universe straddling every regime: dense slots, ordinary spill
/// keys, and a spill collision chain sharing one probe bucket.
fn key_universe() -> Vec<u64> {
    let mut keys: Vec<u64> = vec![0, 1, 63, 1024, DENSE_LIMIT - 1];
    keys.extend([DENSE_LIMIT, DENSE_LIMIT + 7, u64::MAX - 1]);
    keys.extend(colliding_spill_keys(16));
    keys
}

proptest! {
    /// The flat table matches the `HashMap` reference bitwise after
    /// every operation, for arbitrary record/decay/forget interleavings
    /// over dense, spill and colliding keys.
    #[test]
    fn heat_map_matches_hashmap_reference(
        decay in 0.0f64..=1.0,
        ops in proptest::collection::vec(arb_op(24), 1..200),
    ) {
        let keys = key_universe();
        let mut heat = HeatMap::new(decay);
        let mut reference = RefModel::default();
        for op in ops {
            match op {
                Op::Record { idx, write, weight } => {
                    heat.record(Vpn(keys[idx]), write, weight);
                    reference.record(keys[idx], write, weight);
                }
                Op::Decay => {
                    heat.decay_epoch();
                    reference.decay(decay);
                }
                Op::Forget { idx } => {
                    heat.forget(Vpn(keys[idx]));
                    reference.map.remove(&keys[idx]);
                }
            }
            prop_assert_eq!(heat.len(), reference.map.len());
            for &k in &keys {
                let got = heat.get(Vpn(k));
                let want = reference.get(k);
                prop_assert_eq!((got.heat, got.reads, got.writes), want, "key {:#x}", k);
            }
        }
    }

    /// A long probe chain of colliding spill keys survives growth,
    /// decay-driven compaction and resurrection with exact stats.
    #[test]
    fn colliding_spill_chain_is_exact(
        rounds in 1usize..30,
        weight in 0.5f64..4.0,
    ) {
        let chain = colliding_spill_keys(40);
        let mut heat = HeatMap::new(0.5);
        let mut reference = RefModel::default();
        for r in 0..rounds {
            // Rotate which half of the chain is hot so compaction sees
            // both deaths and resurrections of colliding keys.
            for (i, &k) in chain.iter().enumerate() {
                if (i + r) % 2 == 0 {
                    heat.record(Vpn(k), i % 3 == 0, weight);
                    reference.record(k, i % 3 == 0, weight);
                }
            }
            heat.decay_epoch();
            reference.decay(0.5);
            for &k in &chain {
                let got = heat.get(Vpn(k));
                prop_assert_eq!((got.heat, got.reads, got.writes), reference.get(k));
            }
        }
    }

    /// Spill capacity tracks the live set, not insertion history:
    /// churning through distinct sparse VPNs must not grow the table
    /// beyond a small multiple of the per-round working set.
    #[test]
    fn spill_capacity_bounded_by_live_set(
        rounds in 10usize..60,
        per_round in 1usize..80,
    ) {
        let mut heat = HeatMap::new(0.0); // nothing survives an epoch
        for r in 0..rounds {
            for i in 0..per_round {
                let key = DENSE_LIMIT + (r * per_round + i) as u64;
                heat.record(Vpn(key), false, 1.0);
            }
            heat.decay_epoch();
        }
        // Compaction bounds capacity by the live set (≤ per_round < 80
        // keys → ≤ 128 slots at 70% load) plus the 2× used hysteresis
        // and the 64-slot floor — far below `rounds * per_round` history.
        prop_assert!(
            heat.spill_capacity() <= 512,
            "spill capacity {} grew with history",
            heat.spill_capacity()
        );
    }
}
