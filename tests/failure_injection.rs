//! Failure-injection and edge-case integration tests: the simulator must
//! behave sanely at capacity boundaries, degenerate machine shapes, and
//! under policy decisions that race with resource exhaustion.

use vulcan::prelude::*;
use vulcan::runtime::SimRunner;

fn micro(name: &str, rss: u64, wss: u64, threads: usize) -> WorkloadSpec {
    microbench(
        name,
        MicroConfig {
            rss_pages: rss,
            wss_pages: wss,
            ..Default::default()
        },
        threads,
    )
}

fn run(
    machine: MachineSpec,
    specs: Vec<WorkloadSpec>,
    policy: Box<dyn TieringPolicy>,
    n_quanta: u64,
) -> RunResult {
    SimRunner::builder()
        .machine(machine)
        .workloads(specs)
        .profiler_factory(|_| Box::new(HybridProfiler::vulcan_default()))
        .policy(policy)
        .config(SimConfig {
            quantum_active: Nanos::micros(500),
            n_quanta,
            ..Default::default()
        })
        .build()
        .run()
}

#[test]
fn tiny_fast_tier_still_works() {
    // A 16-page fast tier cannot hold anyone's hot set; everything must
    // still run, and no policy may over-commit.
    for policy in [
        Box::new(VulcanPolicy::new()) as Box<dyn TieringPolicy>,
        Box::new(Memtis::new()),
        Box::new(Tpp::new()),
        Box::new(Nomad::new()),
    ] {
        let res = run(
            MachineSpec::small(16, 8_192, 4),
            vec![micro("a", 1_024, 512, 2), micro("b", 1_024, 512, 2)],
            policy,
            10,
        );
        for w in &res.per_workload {
            assert!(w.ops_total > 0, "{}: starved under tiny fast tier", w.name);
            assert!(w.mean_fthr <= 1.0);
        }
    }
}

#[test]
fn slow_tier_pressure_evicts_shadows() {
    // RSS + retained shadows would exceed the slow tier; the demand-fault
    // path must reclaim shadow frames instead of aborting.
    let res = run(
        // 512 fast + 1100 slow; RSS 1400 with shadow retention pressure.
        MachineSpec::small(512, 1_100, 4),
        vec![micro("a", 1_400, 600, 2)],
        Box::new(VulcanPolicy::new()),
        15,
    );
    let w = res.workload("a");
    assert!(w.ops_total > 0);
    assert!(w.mean_fthr > 0.0);
}

#[test]
fn single_core_single_thread() {
    let res = run(
        MachineSpec::small(64, 1_024, 1),
        vec![micro("solo", 256, 64, 1)],
        Box::new(VulcanPolicy::new()),
        8,
    );
    assert!(res.workload("solo").ops_total > 0);
    // One core: targeted and process-wide shootdowns both have at most
    // one responder; nothing should panic or stall pathologically.
}

#[test]
fn more_threads_than_cores_oversubscribes() {
    let res = run(
        MachineSpec::small(128, 2_048, 2),
        vec![micro("packed", 512, 128, 8)], // 8 threads on 2 cores
        Box::new(VulcanPolicy::new()),
        8,
    );
    assert!(res.workload("packed").ops_total > 0);
}

#[test]
fn many_small_workloads() {
    // Twelve co-located workloads: GFMC shrinks to 1/12th; CBFRP and the
    // classifier must scale and no allocation may go negative.
    let specs: Vec<WorkloadSpec> = (0..12)
        .map(|i| micro(&format!("w{i}"), 256, 64, 1))
        .collect();
    let res = run(
        MachineSpec::small(1_024, 8_192, 16),
        specs,
        Box::new(VulcanPolicy::new()),
        12,
    );
    for w in &res.per_workload {
        assert!(w.ops_total > 0, "{} starved", w.name);
    }
    assert!((0.0..=1.0).contains(&res.cfi));
}

#[test]
fn combined_rss_filling_both_tiers_completely() {
    // RSS exactly equals total capacity: every allocation path runs at
    // the boundary. (No shadows can be retained: shadowing yields its
    // frames back under pressure.)
    let res = run(
        MachineSpec::small(256, 768, 4),
        vec![micro("full", 1_024, 256, 2)],
        Box::new(VulcanPolicy::new()),
        10,
    );
    assert!(res.workload("full").ops_total > 0);
}

#[test]
fn policy_requesting_nonsense_pages_is_harmless() {
    // Drive migration helpers directly with unmapped/foreign pages.
    struct Chaos;
    impl TieringPolicy for Chaos {
        fn name(&self) -> &'static str {
            "chaos"
        }
        fn on_quantum(&mut self, state: &mut vulcan::runtime::SystemState) {
            let junk: Vec<Vpn> = (100_000..100_064).map(Vpn).collect();
            let mech = MechanismConfig::vulcan();
            let out = state.migrate_sync(0, &junk, TierKind::Fast, &mech);
            assert!(out.moved.is_empty(), "unmapped pages cannot move");
            state.migrate_async(0, &junk, TierKind::Fast);
            state.poll_async(0, &mech);
            // Demoting pages already slow is a no-op, not an error.
            let slow_pages: Vec<Vpn> = (0..16).map(Vpn).collect();
            state.migrate_background(0, &slow_pages, TierKind::Slow, &mech);
        }
    }
    let res = run(
        MachineSpec::small(128, 2_048, 4),
        vec![micro("victim", 512, 128, 2).preallocated(TierKind::Slow)],
        Box::new(Chaos),
        5,
    );
    assert!(res.workload("victim").ops_total > 0);
}

#[test]
fn zero_quanta_run_is_empty_but_valid() {
    let res = run(
        MachineSpec::small(64, 512, 2),
        vec![micro("idle", 128, 32, 1)],
        Box::new(StaticPlacement),
        0,
    );
    assert_eq!(res.workload("idle").ops_total, 0);
    assert!((0.0..=1.0).contains(&res.cfi));
}

#[test]
fn determinism_across_policies_with_shared_seed() {
    // Two identical runs of the same policy + seed must agree exactly,
    // even with async engines and swaps in play.
    let make = || {
        run(
            MachineSpec::small(512, 4_096, 8),
            vec![
                micro("a", 1_024, 256, 2).preallocated(TierKind::Slow),
                micro("b", 1_024, 256, 2),
            ],
            Box::new(VulcanPolicy::new()),
            12,
        )
    };
    let (r1, r2) = (make(), make());
    assert_eq!(r1.workload("a").ops_total, r2.workload("a").ops_total);
    assert_eq!(r1.workload("b").ops_total, r2.workload("b").ops_total);
    assert_eq!(r1.cfi, r2.cfi);
}
