//! Seeded, deterministic fault injection for the simulated substrate.
//!
//! A [`FaultPlan`] is derived from the run seed and draws per-site
//! decision streams from a stateless counter hash (splitmix64), so the
//! same seed yields the same fault schedule regardless of thread count,
//! and adding a new injection site never perturbs the streams of the
//! existing ones. With all rates at zero (the default) every hook is an
//! exact no-op — simulation output stays byte-identical to a run without
//! the subsystem.
//!
//! The five injectable fault classes (ISSUE 5):
//!
//! | site | consumer degradation contract |
//! |------|-------------------------------|
//! | [`FaultSite::AllocFast`] / [`FaultSite::AllocSlow`] | runtime charges a modeled stall, reclaims shadows / demotes for space, then retries uninjected |
//! | [`FaultSite::CopyFail`] | migration engine frees the destination frame, restores the source PTE and reports a typed error (requeue / abort) |
//! | [`FaultSite::ShootdownTimeout`] | bounded IPI retry with exponential backoff, every round charged to the cost model |
//! | [`FaultSite::Throttle`] | per-quantum loaded-latency inflation of both tiers |
//! | [`FaultSite::SampleDrop`] | profiler misses the access; heat decays as if the page were cold |

use crate::tier::TierKind;

/// Number of distinct injection sites.
pub const N_FAULT_SITES: usize = 7;

/// An injection site: each owns an independent decision stream.
///
/// `AllocNvm` is appended *after* the original six sites: stream keys
/// are index-derived, so appending never perturbs existing schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// Fast-tier frame allocation reports exhaustion.
    AllocFast,
    /// Slow-tier frame allocation reports exhaustion.
    AllocSlow,
    /// A migration page copy fails mid-flight.
    CopyFail,
    /// A TLB-shootdown IPI acknowledgment times out.
    ShootdownTimeout,
    /// One quantum of transient tier-bandwidth throttling.
    Throttle,
    /// The profiler drops an access sample.
    SampleDrop,
    /// NVM-tier frame allocation reports exhaustion (3-tier chains).
    AllocNvm,
}

impl FaultSite {
    /// All sites, in stream order.
    pub const ALL: [FaultSite; N_FAULT_SITES] = [
        FaultSite::AllocFast,
        FaultSite::AllocSlow,
        FaultSite::CopyFail,
        FaultSite::ShootdownTimeout,
        FaultSite::Throttle,
        FaultSite::SampleDrop,
        FaultSite::AllocNvm,
    ];

    /// Dense index of the site (stream/counter slot).
    pub fn index(self) -> usize {
        match self {
            FaultSite::AllocFast => 0,
            FaultSite::AllocSlow => 1,
            FaultSite::CopyFail => 2,
            FaultSite::ShootdownTimeout => 3,
            FaultSite::Throttle => 4,
            FaultSite::SampleDrop => 5,
            FaultSite::AllocNvm => 6,
        }
    }

    /// The allocation-exhaustion site of one tier.
    pub fn alloc_for(tier: TierKind) -> FaultSite {
        match tier {
            TierKind::Fast => FaultSite::AllocFast,
            TierKind::Slow => FaultSite::AllocSlow,
            TierKind::Nvm => FaultSite::AllocNvm,
        }
    }

    /// Stable snake_case name (telemetry counters, chaos artifacts).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::AllocFast => "alloc_fast",
            FaultSite::AllocSlow => "alloc_slow",
            FaultSite::CopyFail => "copy_fail",
            FaultSite::ShootdownTimeout => "shootdown_timeout",
            FaultSite::Throttle => "throttle",
            FaultSite::SampleDrop => "sample_drop",
            FaultSite::AllocNvm => "alloc_nvm",
        }
    }
}

/// Per-site fault rates and degradation knobs. The default is fully
/// disabled (every rate zero), which the plan treats as an exact no-op.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// Probability a fast-tier allocation reports exhaustion.
    pub alloc_fast_rate: f64,
    /// Probability a slow-tier allocation reports exhaustion.
    pub alloc_slow_rate: f64,
    /// Probability a migration page copy fails.
    pub copy_fail_rate: f64,
    /// Probability one shootdown round times out (rolled per attempt).
    pub shootdown_timeout_rate: f64,
    /// Probability a quantum is bandwidth-throttled.
    pub throttle_rate: f64,
    /// Loaded-latency multiplier while a quantum is throttled (≥ 1).
    pub throttle_factor: f64,
    /// Probability the profiler drops an access sample.
    pub sample_drop_rate: f64,
    /// Probability an NVM-tier allocation reports exhaustion.
    pub alloc_nvm_rate: f64,
    /// Retry budget for timed-out shootdown acks before escalation.
    pub max_shootdown_retries: u32,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            alloc_fast_rate: 0.0,
            alloc_slow_rate: 0.0,
            copy_fail_rate: 0.0,
            shootdown_timeout_rate: 0.0,
            throttle_rate: 0.0,
            throttle_factor: 2.0,
            sample_drop_rate: 0.0,
            alloc_nvm_rate: 0.0,
            max_shootdown_retries: 3,
        }
    }
}

impl FaultConfig {
    /// A config injecting a single site at `rate`, defaults elsewhere.
    pub fn single(site: FaultSite, rate: f64) -> FaultConfig {
        let mut cfg = FaultConfig::default();
        match site {
            FaultSite::AllocFast => cfg.alloc_fast_rate = rate,
            FaultSite::AllocSlow => cfg.alloc_slow_rate = rate,
            FaultSite::CopyFail => cfg.copy_fail_rate = rate,
            FaultSite::ShootdownTimeout => cfg.shootdown_timeout_rate = rate,
            FaultSite::Throttle => cfg.throttle_rate = rate,
            FaultSite::SampleDrop => cfg.sample_drop_rate = rate,
            FaultSite::AllocNvm => cfg.alloc_nvm_rate = rate,
        }
        cfg
    }

    /// The configured rate of one site.
    pub fn rate(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::AllocFast => self.alloc_fast_rate,
            FaultSite::AllocSlow => self.alloc_slow_rate,
            FaultSite::CopyFail => self.copy_fail_rate,
            FaultSite::ShootdownTimeout => self.shootdown_timeout_rate,
            FaultSite::Throttle => self.throttle_rate,
            FaultSite::SampleDrop => self.sample_drop_rate,
            FaultSite::AllocNvm => self.alloc_nvm_rate,
        }
    }

    /// True if any site has a non-zero rate.
    pub fn any_enabled(&self) -> bool {
        FaultSite::ALL.iter().any(|&s| self.rate(s) > 0.0)
    }

    fn validate(&self) {
        for site in FaultSite::ALL {
            let r = self.rate(site);
            assert!(
                (0.0..=1.0).contains(&r),
                "fault rate for {} out of [0,1]: {r}",
                site.name()
            );
        }
        assert!(
            self.throttle_factor >= 1.0,
            "throttle_factor must be ≥ 1, got {}",
            self.throttle_factor
        );
    }
}

impl vulcan_json::Snapshot for FaultConfig {
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::snap;
        snap::obj(vec![
            ("alloc_fast_rate", snap::f64_value(self.alloc_fast_rate)),
            ("alloc_slow_rate", snap::f64_value(self.alloc_slow_rate)),
            ("copy_fail_rate", snap::f64_value(self.copy_fail_rate)),
            (
                "shootdown_timeout_rate",
                snap::f64_value(self.shootdown_timeout_rate),
            ),
            ("throttle_rate", snap::f64_value(self.throttle_rate)),
            ("throttle_factor", snap::f64_value(self.throttle_factor)),
            ("sample_drop_rate", snap::f64_value(self.sample_drop_rate)),
            ("alloc_nvm_rate", snap::f64_value(self.alloc_nvm_rate)),
            (
                "max_shootdown_retries",
                snap::u64_value(self.max_shootdown_retries as u64),
            ),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        let retries = snap::field_u64(v, "max_shootdown_retries")?;
        Ok(FaultConfig {
            alloc_fast_rate: snap::field_f64(v, "alloc_fast_rate")?,
            alloc_slow_rate: snap::field_f64(v, "alloc_slow_rate")?,
            copy_fail_rate: snap::field_f64(v, "copy_fail_rate")?,
            shootdown_timeout_rate: snap::field_f64(v, "shootdown_timeout_rate")?,
            throttle_rate: snap::field_f64(v, "throttle_rate")?,
            throttle_factor: snap::field_f64(v, "throttle_factor")?,
            sample_drop_rate: snap::field_f64(v, "sample_drop_rate")?,
            alloc_nvm_rate: snap::field_f64(v, "alloc_nvm_rate")?,
            max_shootdown_retries: u32::try_from(retries)
                .map_err(|_| "max_shootdown_retries out of u32 range".to_string())?,
        })
    }
}

/// Running injection/recovery tallies, per site.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Faults injected (decisions that returned "fail"), per site.
    pub injected: [u64; N_FAULT_SITES],
    /// Graceful recoveries noted by consumers, per site.
    pub recovered: [u64; N_FAULT_SITES],
}

impl FaultStats {
    /// Total faults injected across all sites.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Total recoveries across all sites.
    pub fn total_recovered(&self) -> u64 {
        self.recovered.iter().sum()
    }
}

/// splitmix64: the standard 64-bit finalizer-based mixer.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded, deterministic fault schedule.
///
/// Each decision hashes `(stream_key(seed, site), counter)` — no shared
/// RNG state, so site streams are mutually independent and the schedule
/// is a pure function of `(seed, site, nth-decision-at-site)`.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    /// Per-site stream keys, pre-mixed from the seed.
    streams: [u64; N_FAULT_SITES],
    /// Per-site decision counters.
    counters: [u64; N_FAULT_SITES],
    stats: FaultStats,
    enabled: bool,
}

impl FaultPlan {
    /// A fully disabled plan: every decision is "no fault", for free.
    pub fn disabled() -> FaultPlan {
        FaultPlan {
            cfg: FaultConfig::default(),
            streams: [0; N_FAULT_SITES],
            counters: [0; N_FAULT_SITES],
            stats: FaultStats::default(),
            enabled: false,
        }
    }

    /// Derive a plan from the run seed.
    pub fn new(seed: u64, cfg: FaultConfig) -> FaultPlan {
        cfg.validate();
        let enabled = cfg.any_enabled();
        let mut streams = [0u64; N_FAULT_SITES];
        for (i, s) in streams.iter_mut().enumerate() {
            // Distinct stream keys per site; double-mix decorrelates
            // nearby seeds.
            *s = splitmix64(splitmix64(seed) ^ ((i as u64 + 1) << 56));
        }
        FaultPlan {
            cfg,
            streams,
            counters: [0; N_FAULT_SITES],
            stats: FaultStats::default(),
            enabled,
        }
    }

    /// Whether any fault site is active.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The plan's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Injection/recovery tallies so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Record that a consumer degraded gracefully after an injection.
    pub fn note_recovery(&mut self, site: FaultSite) {
        self.stats.recovered[site.index()] += 1;
    }

    /// Draw the next decision for `site`: true means "inject the fault".
    #[inline]
    pub fn roll(&mut self, site: FaultSite) -> bool {
        if !self.enabled {
            return false;
        }
        let rate = self.cfg.rate(site);
        if rate <= 0.0 {
            return false;
        }
        let i = site.index();
        let n = self.counters[i];
        self.counters[i] += 1;
        // 53 uniform mantissa bits → u in [0, 1).
        let u = (splitmix64(self.streams[i] ^ n) >> 11) as f64 * 2f64.powi(-53);
        let inject = u < rate;
        if inject {
            self.stats.injected[i] += 1;
        }
        inject
    }

    /// Decision: does this allocation in `tier` report exhaustion?
    #[inline]
    pub fn alloc_fails(&mut self, tier: TierKind) -> bool {
        self.roll(FaultSite::alloc_for(tier))
    }

    /// Decision: does this migration page copy fail?
    #[inline]
    pub fn copy_fails(&mut self) -> bool {
        self.roll(FaultSite::CopyFail)
    }

    /// Decision: does this shootdown round's ack time out?
    #[inline]
    pub fn shootdown_times_out(&mut self) -> bool {
        self.roll(FaultSite::ShootdownTimeout)
    }

    /// Decision: is this quantum bandwidth-throttled?
    #[inline]
    pub fn quantum_throttled(&mut self) -> bool {
        self.roll(FaultSite::Throttle)
    }

    /// Decision: is this profiler sample dropped?
    #[inline]
    pub fn sample_dropped(&mut self) -> bool {
        self.roll(FaultSite::SampleDrop)
    }

    /// Whether [`sample_dropped`](Self::sample_dropped) can ever return
    /// true. When false the roll is a guaranteed no-op (no RNG draw, no
    /// counter movement), so callers may skip it wholesale.
    #[inline]
    pub fn sample_drops_armed(&self) -> bool {
        self.enabled && self.cfg.sample_drop_rate > 0.0
    }
}

impl vulcan_json::Snapshot for FaultPlan {
    /// Full live state: stream keys and per-site decision counters are
    /// serialized verbatim so a restored plan continues its schedule at
    /// exactly the next decision (ISSUE 10 satellite: per-site counters
    /// are hidden state the round-trip oracle must preserve).
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::{snap, Value};
        snap::obj(vec![
            ("cfg", self.cfg.snapshot()),
            ("streams", snap::u64_array(&self.streams)),
            ("counters", snap::u64_array(&self.counters)),
            ("injected", snap::u64_array(&self.stats.injected)),
            ("recovered", snap::u64_array(&self.stats.recovered)),
            ("enabled", Value::Bool(self.enabled)),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        let arr = |key| -> Result<[u64; N_FAULT_SITES], String> {
            let xs = snap::array_u64(snap::field(v, key)?)?;
            <[u64; N_FAULT_SITES]>::try_from(xs)
                .map_err(|xs| format!("\"{key}\" needs {N_FAULT_SITES} entries, got {}", xs.len()))
        };
        let cfg = FaultConfig::restore(snap::field(v, "cfg")?)?;
        cfg.validate();
        Ok(FaultPlan {
            cfg,
            streams: arr("streams")?,
            counters: arr("counters")?,
            stats: FaultStats {
                injected: arr("injected")?,
                recovered: arr("recovered")?,
            },
            enabled: snap::field_bool(v, "enabled")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restored_plan_continues_the_decision_stream() {
        use vulcan_json::Snapshot;
        let cfg = FaultConfig::single(FaultSite::CopyFail, 0.3);
        let mut a = FaultPlan::new(7, cfg);
        for _ in 0..123 {
            a.copy_fails();
        }
        let text = a.snapshot().to_json();
        let mut b = FaultPlan::restore(&vulcan_json::parse(&text).unwrap()).unwrap();
        assert_eq!(a.stats(), b.stats());
        let sa: Vec<bool> = (0..200).map(|_| a.copy_fails()).collect();
        let sb: Vec<bool> = (0..200).map(|_| b.copy_fails()).collect();
        assert_eq!(sa, sb, "restored stream must continue, not restart");
    }

    #[test]
    fn disabled_plan_never_injects_and_keeps_counters_idle() {
        let mut p = FaultPlan::disabled();
        for _ in 0..1000 {
            assert!(!p.alloc_fails(TierKind::Fast));
            assert!(!p.copy_fails());
            assert!(!p.sample_dropped());
        }
        assert_eq!(p.stats().total_injected(), 0);
        assert_eq!(p.counters, [0; N_FAULT_SITES]);
    }

    #[test]
    fn unarmed_sample_drop_roll_is_a_pure_no_op() {
        // The hot path skips `sample_dropped()` entirely when no
        // sample-drop rate is armed (ISSUE 8 satellite); that is only
        // byte-identical if an unarmed roll perturbs neither counters
        // nor any other site's decision stream.
        let cfg = FaultConfig::single(FaultSite::AllocFast, 0.2);
        let mut with_rolls = FaultPlan::new(9, cfg.clone());
        let mut without = FaultPlan::new(9, cfg);
        assert!(with_rolls.is_enabled());
        assert!(!with_rolls.sample_drops_armed());
        let a: Vec<bool> = (0..500)
            .map(|_| {
                assert!(!with_rolls.sample_dropped());
                with_rolls.alloc_fails(TierKind::Fast)
            })
            .collect();
        let b: Vec<bool> = (0..500)
            .map(|_| without.alloc_fails(TierKind::Fast))
            .collect();
        assert_eq!(a, b);
        assert_eq!(with_rolls.counters, without.counters);
        assert!(
            FaultPlan::new(9, FaultConfig::single(FaultSite::SampleDrop, 0.1)).sample_drops_armed()
        );
    }

    #[test]
    fn zero_rate_config_is_noop_even_when_constructed() {
        let mut p = FaultPlan::new(42, FaultConfig::default());
        assert!(!p.is_enabled());
        for _ in 0..1000 {
            assert!(!p.roll(FaultSite::CopyFail));
        }
        assert_eq!(p.counters, [0; N_FAULT_SITES]);
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = FaultConfig::single(FaultSite::CopyFail, 0.3);
        let mut a = FaultPlan::new(7, cfg.clone());
        let mut b = FaultPlan::new(7, cfg);
        let sa: Vec<bool> = (0..500).map(|_| a.copy_fails()).collect();
        let sb: Vec<bool> = (0..500).map(|_| b.copy_fails()).collect();
        assert_eq!(sa, sb);
        assert!(sa.iter().any(|&x| x), "rate 0.3 over 500 draws injects");
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = FaultConfig::single(FaultSite::Throttle, 0.5);
        let mut a = FaultPlan::new(1, cfg.clone());
        let mut b = FaultPlan::new(2, cfg);
        let sa: Vec<bool> = (0..256).map(|_| a.quantum_throttled()).collect();
        let sb: Vec<bool> = (0..256).map(|_| b.quantum_throttled()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn site_streams_are_independent() {
        // Interleaving draws at another site must not change a site's
        // stream (the property that makes schedules thread-count and
        // call-order invariant across unrelated subsystems).
        let mut cfg = FaultConfig::single(FaultSite::CopyFail, 0.4);
        cfg.alloc_fast_rate = 0.4;
        let mut solo = FaultPlan::new(99, cfg.clone());
        let expect: Vec<bool> = (0..200).map(|_| solo.copy_fails()).collect();
        let mut mixed = FaultPlan::new(99, cfg);
        let got: Vec<bool> = (0..200)
            .map(|_| {
                mixed.alloc_fails(TierKind::Fast);
                mixed.copy_fails()
            })
            .collect();
        assert_eq!(expect, got);
    }

    #[test]
    fn empirical_rate_tracks_configured_rate() {
        let mut p = FaultPlan::new(5, FaultConfig::single(FaultSite::SampleDrop, 0.1));
        let n = 20_000;
        let hits = (0..n).filter(|_| p.sample_dropped()).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "empirical rate {rate}");
        assert_eq!(
            p.stats().injected[FaultSite::SampleDrop.index()],
            hits as u64
        );
    }

    #[test]
    fn rate_one_always_injects() {
        let mut p = FaultPlan::new(3, FaultConfig::single(FaultSite::AllocSlow, 1.0));
        assert!((0..100).all(|_| p.alloc_fails(TierKind::Slow)));
        assert!(!p.alloc_fails(TierKind::Fast), "other site untouched");
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn invalid_rate_rejected() {
        let _ = FaultPlan::new(0, FaultConfig::single(FaultSite::CopyFail, 1.5));
    }

    #[test]
    fn recovery_accounting() {
        let mut p = FaultPlan::new(1, FaultConfig::single(FaultSite::CopyFail, 1.0));
        assert!(p.copy_fails());
        p.note_recovery(FaultSite::CopyFail);
        assert_eq!(p.stats().total_injected(), 1);
        assert_eq!(p.stats().total_recovered(), 1);
    }

    #[test]
    fn nvm_alloc_site_rolls_its_own_stream() {
        let mut p = FaultPlan::new(11, FaultConfig::single(FaultSite::AllocNvm, 1.0));
        assert!((0..50).all(|_| p.alloc_fails(TierKind::Nvm)));
        assert!(!p.alloc_fails(TierKind::Fast), "other sites untouched");
        assert!(!p.alloc_fails(TierKind::Slow));
        assert_eq!(FaultSite::AllocNvm.index(), N_FAULT_SITES - 1, "appended");
        for t in TierKind::ALL {
            assert!(FaultSite::alloc_for(t).name().starts_with("alloc_"));
        }
    }

    #[test]
    fn site_names_stable_and_distinct() {
        let names: Vec<&str> = FaultSite::ALL.iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), N_FAULT_SITES);
        assert_eq!(names[0], "alloc_fast");
        assert_eq!(names[3], "shootdown_timeout");
    }
}
