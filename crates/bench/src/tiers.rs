//! `vulcan-bench tiers` — race the policy registry across tier-chain
//! shapes (ISSUE 9).
//!
//! The two-tier grids elsewhere in the suite can never catch a policy
//! that silently assumes "not fast" means "slow". This grid crosses the
//! registered policies with {2,3}-tier machine shapes on a pressured
//! co-location whose combined RSS exceeds fast+slow on the thin shapes,
//! so the lower chain genuinely fills: a latency-critical front end plus
//! the THP-enabled buffer-pool family, whose scan/lookup phase shifts
//! are exactly the access pattern that should push cold relation pages
//! *past* the slow tier instead of pinning capacity there.
//!
//! Each cell is stepped to completion, torn down, and audited: every
//! chain tier's allocator must report zero used frames (frame
//! conservation is an N-tier property now, not a fast/slow pair
//! property). Per-cell rows report mean FTHR, Jain fairness over the
//! per-workload FTHRs, and the p99 of per-quantum op latency — the
//! "leave no one behind" metrics, per chain shape — and land in
//! `target/experiments/tiers.json`. Cells are deterministic, so the
//! artifact is byte-identical across reruns and thread counts.

use rayon::prelude::*;
use vulcan::prelude::*;
use vulcan_json::{Map, Value};

use crate::suite::ExperimentCell;

/// Base seed shared by every tiers cell.
const TIERS_SEED: u64 = 9;

/// One machine shape of the grid: a label plus its chain.
pub struct TierShape {
    /// Row label (`2tier`, `3tier`, `3tier-thin`).
    pub name: &'static str,
    /// Builder for the machine (shapes are `MachineSpec` constructors).
    pub build: fn() -> MachineSpec,
}

/// The swept chain shapes, in grid order. Combined workload RSS is
/// 5 120 pages: it fits fast+slow on the first two shapes and exceeds
/// fast+slow (3 584) on the thin shape, forcing residency on nvm.
pub const SHAPES: [TierShape; 3] = [
    TierShape {
        name: "2tier",
        build: || MachineSpec::small(1_536, 8_192, 8),
    },
    TierShape {
        name: "3tier",
        build: || MachineSpec::small3(1_536, 6_144, 8_192, 8),
    },
    TierShape {
        name: "3tier-thin",
        build: || MachineSpec::small3(1_536, 2_048, 8_192, 8),
    },
];

/// Scale knobs for the tiers sweep.
#[derive(Clone, Copy, Debug)]
pub struct TiersOpts {
    /// Quanta per cell.
    pub quanta: u64,
    /// Race the full registry (`PolicyKind::ALL`) or just the four
    /// paper systems.
    pub all_policies: bool,
    /// Intra-cell shard count (rows are byte-identical for any value).
    pub shards: usize,
}

impl TiersOpts {
    /// The full grid: every registered policy × 3 shapes.
    pub fn full() -> Self {
        TiersOpts {
            quanta: 40,
            all_policies: true,
            shards: 1,
        }
    }

    /// CI scale: the four paper policies, short cells.
    pub fn quick() -> Self {
        TiersOpts {
            quanta: 10,
            all_policies: false,
            shards: 1,
        }
    }

    /// Override the intra-cell shard count.
    pub fn with_shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    fn policies(&self) -> &'static [PolicyKind] {
        if self.all_policies {
            &PolicyKind::ALL
        } else {
            &PolicyKind::PAPER
        }
    }
}

/// The tiers co-location: a latency-critical front end and the
/// buffer-pool family under THP, both preallocated down-chain so the
/// capacity pressure is physically real from quantum zero.
fn tiers_specs() -> Vec<WorkloadSpec> {
    let mut lc = microbench(
        "lc",
        MicroConfig {
            rss_pages: 1_024,
            wss_pages: 256,
            read_ratio: 0.9,
            skew: 1.1,
            ..Default::default()
        },
        4,
    )
    .preallocated(TierKind::Slow);
    lc.class = WorkloadClass::LatencyCritical;
    let bp = bufferpool(
        "bufpool",
        BufferPoolConfig {
            rss_pages: 4_096,
            phase_ops: 128,
            ..Default::default()
        },
        4,
    )
    .preallocated(TierKind::Slow)
    .with_thp();
    vec![lc, bp]
}

/// One grid point: the cell plus its shape label.
struct TiersCell {
    cell: ExperimentCell,
    shape: &'static str,
    n_tiers: usize,
}

fn tiers_grid(opts: &TiersOpts) -> Vec<TiersCell> {
    let mut grid = Vec::new();
    for shape in &SHAPES {
        let machine = (shape.build)();
        let n_tiers = machine.n_tiers();
        for &kind in opts.policies() {
            let mut cell = ExperimentCell::new(kind, tiers_specs(), opts.quanta, TIERS_SEED)
                .on_machine(machine.clone())
                .with_quantum_active(Nanos::millis(1))
                .with_shards(opts.shards);
            cell.label = format!("{}/{kind}", shape.name);
            grid.push(TiersCell {
                cell,
                shape: shape.name,
                n_tiers,
            });
        }
    }
    grid
}

/// Outcome of one stepped cell: the artifact row plus any contract
/// violations observed.
struct CellOutcome {
    row: Value,
    violations: Vec<String>,
}

/// Step one cell to completion, snapshot per-tier residency, audit
/// teardown on every chain tier, and summarize.
fn run_cell(c: &TiersCell) -> CellOutcome {
    let mut violations = Vec::new();
    let mut runner = c.cell.paused_runner();
    for _ in 0..c.cell.quanta {
        runner.run_quantum();
    }

    // Pre-teardown residency per chain tier: the proof the shape's
    // lower chain actually held pages (MAX_TIERS-wide, absent tiers 0).
    let chain: Vec<TierKind> = runner.state.machine.spec().chain().to_vec();
    let used: Vec<u64> = TierKind::ALL
        .iter()
        .map(|&t| {
            if chain.contains(&t) {
                runner.state.machine.allocator(t).used_frames()
            } else {
                0
            }
        })
        .collect();

    // Teardown audit: every workload down, zero frames still allocated
    // on any chain tier.
    for w in 0..runner.state.workloads.len() {
        runner.state.teardown(w);
    }
    for &tier in &chain {
        let leaked = runner.state.machine.allocator(tier).used_frames();
        if leaked != 0 {
            violations.push(format!(
                "{}: {leaked} frames leaked at teardown on {}",
                c.cell.label,
                tier.name()
            ));
        }
    }

    let res = runner.into_result();
    let fthrs: Vec<f64> = res.per_workload.iter().map(|w| w.mean_fthr).collect();
    let mean_fthr = fthrs.iter().sum::<f64>() / fthrs.len().max(1) as f64;
    let jain = jain_index(&fthrs);
    let mut latencies: Vec<f64> = res
        .per_workload
        .iter()
        .filter_map(|w| res.series.get(&format!("{}.latency_ns", w.name)))
        .flat_map(|s| s.points.iter().map(|&(_, v)| v))
        .collect();
    let p99 = vulcan::metrics::percentile(&mut latencies, 99.0);
    let ops_total: u64 = res.per_workload.iter().map(|w| w.ops_total).sum();

    let row = Value::Object(
        Map::new()
            .with("cell", c.cell.label.as_str())
            .with("shape", c.shape)
            .with("n_tiers", c.n_tiers as u64)
            .with("policy", res.policy.as_str())
            .with("quanta", c.cell.quanta)
            .with("mean_fthr", mean_fthr)
            .with("jain_fthr", jain)
            .with("p99_latency_ns", p99)
            .with("cfi", res.cfi)
            .with("ops_total", ops_total)
            .with("used_fast", used[TierKind::Fast.index()])
            .with("used_slow", used[TierKind::Slow.index()])
            .with("used_nvm", used[TierKind::Nvm.index()]),
    );
    CellOutcome { row, violations }
}

/// Results of a tiers sweep: artifact rows (declaration order) and
/// every contract violation observed.
pub struct TiersReport {
    /// One JSON row per grid point.
    pub rows: Vec<Value>,
    /// Frame-conservation violations; empty on a passing sweep.
    pub violations: Vec<String>,
}

/// Run the full sweep. Pure — printing and exit codes are the binary's
/// concern (and the tests').
pub fn run_tiers(opts: &TiersOpts) -> TiersReport {
    let grid = tiers_grid(opts);
    let outcomes: Vec<CellOutcome> = grid.par_iter().map(run_cell).collect();

    let mut rows = Vec::new();
    let mut violations = Vec::new();
    for o in outcomes {
        rows.push(o.row);
        violations.extend(o.violations);
    }
    TiersReport { rows, violations }
}

/// Render the sweep as a terminal table (one row per grid point).
pub fn tiers_table(rows: &[Value]) -> Table {
    let mut table = Table::new(
        format!(
            "tiers: chain-shape sweep ({} threads)",
            rayon::pool::current_num_threads()
        ),
        &[
            "cell",
            "tiers",
            "FTHR",
            "jain",
            "p99 lat (us)",
            "used f/s/n",
        ],
    );
    for row in rows {
        let u = |k: &str| row.get(k).and_then(Value::as_u64).unwrap_or_default();
        let f = |k: &str| row.get(k).and_then(Value::as_f64);
        table.row(&[
            row.get("cell")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string(),
            u("n_tiers").to_string(),
            format!("{:.3}", f("mean_fthr").unwrap_or_default()),
            format!("{:.3}", f("jain_fthr").unwrap_or_default()),
            f("p99_latency_ns")
                .map(|v| format!("{:.1}", v / 1e3))
                .unwrap_or_else(|| "-".into()),
            format!("{}/{}/{}", u("used_fast"), u("used_slow"), u("used_nvm")),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A paper-policy micro sweep: frame conservation across every
    /// chain shape, and the thin 3-tier shape actually exercises nvm.
    #[test]
    fn micro_sweep_conserves_frames_on_every_shape() {
        let opts = TiersOpts {
            quanta: 4,
            all_policies: false,
            shards: 1,
        };
        let report = run_tiers(&opts);
        assert!(
            report.violations.is_empty(),
            "violations: {:?}",
            report.violations
        );
        assert_eq!(report.rows.len(), 3 * PolicyKind::PAPER.len());
        for row in &report.rows {
            let shape = row.get("shape").and_then(Value::as_str).unwrap();
            let n_tiers = row.get("n_tiers").and_then(Value::as_u64).unwrap();
            let used_nvm = row.get("used_nvm").and_then(Value::as_u64).unwrap();
            match shape {
                "2tier" => {
                    assert_eq!(n_tiers, 2);
                    assert_eq!(used_nvm, 0, "2-tier shape cannot hold nvm pages");
                }
                "3tier" => assert_eq!(n_tiers, 3),
                "3tier-thin" => {
                    assert_eq!(n_tiers, 3);
                    // RSS 5120 > fast+slow 3584: the chain's tail must
                    // be holding the overflow while the cell runs.
                    assert!(used_nvm > 0, "thin shape never spilled to nvm: {row:?}");
                }
                other => panic!("unknown shape {other}"),
            }
            assert!(row.get("ops_total").and_then(Value::as_u64).unwrap() > 0);
        }
    }

    #[test]
    fn sweep_rows_are_identical_across_reruns() {
        let opts = TiersOpts {
            quanta: 3,
            all_policies: false,
            shards: 1,
        };
        let a = run_tiers(&opts);
        let b = run_tiers(&opts);
        assert_eq!(a.rows.len(), b.rows.len());
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.to_json(), rb.to_json());
        }
    }
}
