//! Per-page heat tracking with exponential decay.
//!
//! Profilers feed observed accesses into a [`HeatMap`]; migration
//! policies read hot sets and write-intensity out of it. Decay gives the
//! recency weighting that systems like Memtis apply to their access
//! histograms (§2.1: strategies based on "frequency, recency, or a
//! combination of both").
//!
//! # Representation
//!
//! `record` sits on the per-access simulation hot path (every PEBS
//! sample and every hint fault lands here), so the map is *not* a
//! `HashMap`: it is a dense, epoch-versioned flat table indexed
//! directly by VPN. Workload VPNs are footprint-relative offsets
//! starting at zero, so the dense part covers essentially every page;
//! a small open-addressed spill table absorbs sparse outliers above
//! [`DENSE_LIMIT`]. Liveness is an epoch stamp per slot: `decay_epoch`
//! bumps the map epoch and re-stamps survivors, so a pruned page's slot
//! is retired without being written at all, and a later `record`
//! resurrects it from zero exactly like a fresh `HashMap` entry.
//! A `live` key list (first-record order) makes decay sweeps and
//! iteration proportional to the number of tracked pages, not table
//! capacity, and gives the map a deterministic iteration order.
//!
//! # Sharding and the lock-free read side
//!
//! The dense table is split into [`N_SHARDS`] power-of-two shards keyed
//! by the VPN's low bits (`shard = vpn & (N_SHARDS - 1)`, `slot = vpn >>
//! SHARD_BITS`), so consecutive VPNs stripe across shards and each shard
//! grows independently. Every dense slot is a bundle of atomics guarded
//! by a per-slot seqlock:
//!
//! - **Who writes:** exactly one writer — whoever holds `&mut HeatMap`.
//!   `record`/`decay_epoch`/`forget` wrap each slot update in a seqlock
//!   section (`seq` goes odd, fields stored, `seq` goes even). There is
//!   never writer/writer contention, so writes are plain atomic stores,
//!   no RMWs, no locks.
//! - **Who reads:** the same-thread policy/profiler side reads through
//!   `&HeatMap` with relaxed loads (it *is* the writer thread, so no
//!   protocol is needed and reads stay exact). Concurrent observers take
//!   a [`HeatReader`] — an `Arc` snapshot of the shard arrays plus the
//!   shared epoch counter — and read through the seqlock: retry while
//!   `seq` is odd or changed across the read, so a snapshot never tears
//!   and never blocks the writer.
//! - **Epoch rules:** a slot is live iff its `stamp` equals the map
//!   epoch (an `Arc<AtomicU64>` both sides share). Readers that race a
//!   `decay_epoch` may transiently see a survivor as dead (stamp not yet
//!   re-bumped) — staleness, never a torn value. A shard that grows
//!   swaps in a fresh slot array; existing `HeatReader`s keep the old
//!   one and read pages recorded after their snapshot as cold.
//!
//! Spill VPNs (at or above [`DENSE_LIMIT`]) stay on a writer-private
//! non-atomic table: they are sparse outliers that no lock-free reader
//! needs, and [`HeatReader::get`] reports them as cold.

use std::fmt;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;
use vulcan_vm::Vpn;

/// VPNs below this go in the dense direct-indexed table (2 Mi pages =
/// 8 GiB of 4 KiB-page footprint); anything above spills to the
/// open-addressed side table.
const DENSE_LIMIT: u64 = 1 << 21;

/// Pages whose decayed heat drops below this are pruned, matching the
/// prior `HashMap::retain` semantics.
const PRUNE_THRESHOLD: f64 = 1e-3;

/// log2 of the dense shard count.
const SHARD_BITS: u32 = 3;

/// Power-of-two dense shard count; a VPN's shard is its low bits.
const N_SHARDS: usize = 1 << SHARD_BITS;

/// Accumulated statistics for one page.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PageStats {
    /// Decayed access heat.
    pub heat: f64,
    /// Sampled reads since tracking began (decayed alongside heat).
    pub reads: f64,
    /// Sampled writes since tracking began (decayed alongside heat).
    pub writes: f64,
}

impl PageStats {
    /// Fraction of sampled accesses that were writes, in `[0, 1]`.
    pub fn write_ratio(&self) -> f64 {
        let total = self.reads + self.writes;
        if total == 0.0 {
            0.0
        } else {
            self.writes / total
        }
    }

    /// Whether the page counts as write-intensive under `threshold`
    /// (Table 1 classifies pages read- vs write-intensive).
    pub fn write_intensive(&self, threshold: f64) -> bool {
        self.write_ratio() >= threshold
    }
}

/// One spill-table entry: page statistics plus the liveness epoch stamp.
/// The slot is live iff `stamp` equals the map's current epoch.
#[derive(Clone, Copy, Debug, Default)]
struct Slot {
    stats: PageStats,
    stamp: u64,
}

/// One dense-table entry: the same statistics and epoch stamp as
/// [`Slot`], but held in atomics behind a per-slot seqlock so a
/// [`HeatReader`] on another thread can read it lock-free while the
/// single writer updates it.
#[derive(Debug, Default)]
struct AtomicSlot {
    /// Seqlock word: odd while the writer is mid-update; bumped to the
    /// next even value when the update completes.
    seq: AtomicU64,
    /// Liveness epoch stamp (0 is never a current epoch).
    stamp: AtomicU64,
    /// `f64` bits of [`PageStats::heat`].
    heat: AtomicU64,
    /// `f64` bits of [`PageStats::reads`].
    reads: AtomicU64,
    /// `f64` bits of [`PageStats::writes`].
    writes: AtomicU64,
}

impl AtomicSlot {
    /// Plain loads — exact on the writer thread, and safe inside a
    /// validated seqlock read section.
    #[inline]
    fn stats_relaxed(&self) -> PageStats {
        PageStats {
            heat: f64::from_bits(self.heat.load(Ordering::Relaxed)),
            reads: f64::from_bits(self.reads.load(Ordering::Relaxed)),
            writes: f64::from_bits(self.writes.load(Ordering::Relaxed)),
        }
    }

    /// Single-writer seqlock update: take `seq` odd, store the fields,
    /// release it even. Concurrent [`HeatReader`]s that overlap this
    /// window retry; the writer never waits.
    #[inline]
    fn write(&self, stamp: u64, stats: PageStats) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        self.stamp.store(stamp, Ordering::Relaxed);
        self.heat.store(stats.heat.to_bits(), Ordering::Relaxed);
        self.reads.store(stats.reads.to_bits(), Ordering::Relaxed);
        self.writes.store(stats.writes.to_bits(), Ordering::Relaxed);
        self.seq.store(s.wrapping_add(2), Ordering::Release);
    }

    /// A value-copy with a fresh (even) seqlock word.
    fn copy_of(&self) -> AtomicSlot {
        AtomicSlot {
            seq: AtomicU64::new(0),
            stamp: AtomicU64::new(self.stamp.load(Ordering::Relaxed)),
            heat: AtomicU64::new(self.heat.load(Ordering::Relaxed)),
            reads: AtomicU64::new(self.reads.load(Ordering::Relaxed)),
            writes: AtomicU64::new(self.writes.load(Ordering::Relaxed)),
        }
    }
}

/// One dense shard: a shared, immutable-length slot array. Growth swaps
/// in a bigger array; readers holding the old `Arc` keep a consistent
/// (if stale) view.
type DenseShard = Arc<[AtomicSlot]>;

/// `(shard, slot index)` of a dense VPN.
#[inline]
fn dense_pos(key: u64) -> (usize, usize) {
    (
        (key as usize) & (N_SHARDS - 1),
        (key >> SHARD_BITS) as usize,
    )
}

/// Open-addressed (linear probe) spill table for VPNs above the dense
/// range. Entries are never physically removed — death and `forget` are
/// epoch-stamp transitions — so probing needs no tombstones; the table
/// grows at 70% occupancy of *distinct keys ever inserted*.
#[derive(Clone, Debug)]
struct Spill {
    keys: Vec<u64>,
    slots: Vec<Slot>,
    used: usize,
}

impl Spill {
    const EMPTY: u64 = u64::MAX;

    fn new() -> Spill {
        Spill {
            keys: Vec::new(),
            slots: Vec::new(),
            used: 0,
        }
    }

    /// SplitMix64 finalizer: cheap, deterministic, well-mixed.
    fn hash(key: u64) -> usize {
        let mut x = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        x as usize
    }

    fn find(&self, key: u64) -> Option<usize> {
        if self.keys.is_empty() {
            return None;
        }
        let mask = self.keys.len() - 1;
        let mut i = Self::hash(key) & mask;
        loop {
            match self.keys[i] {
                k if k == key => return Some(i),
                Self::EMPTY => return None,
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// The slot for `key`, inserting an empty one if absent.
    fn slot_mut(&mut self, key: u64) -> &mut Slot {
        debug_assert_ne!(key, Self::EMPTY, "sentinel VPN is unrepresentable");
        if self.keys.is_empty() || (self.used + 1) * 10 > self.keys.len() * 7 {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut i = Self::hash(key) & mask;
        loop {
            match self.keys[i] {
                k if k == key => return &mut self.slots[i],
                Self::EMPTY => {
                    self.keys[i] = key;
                    self.used += 1;
                    return &mut self.slots[i];
                }
                _ => i = (i + 1) & mask,
            }
        }
    }

    fn grow(&mut self) {
        let cap = (self.keys.len() * 2).max(64);
        let old_keys = std::mem::replace(&mut self.keys, vec![Self::EMPTY; cap]);
        let old_slots = std::mem::replace(&mut self.slots, vec![Slot::default(); cap]);
        let mask = cap - 1;
        for (key, slot) in old_keys.into_iter().zip(old_slots) {
            if key == Self::EMPTY {
                continue;
            }
            let mut i = Self::hash(key) & mask;
            while self.keys[i] != Self::EMPTY {
                i = (i + 1) & mask;
            }
            self.keys[i] = key;
            self.slots[i] = slot;
        }
    }

    /// Rebuild the table around the slots live at `epoch`, reclaiming
    /// the capacity held by dead keys. `used` counts distinct keys ever
    /// inserted (death is an epoch-stamp transition, not a removal), so
    /// without this a workload churning through sparse VPNs grows the
    /// table with its *history* rather than its live set. Live slots
    /// move verbatim — stats stay byte-identical — and iteration order
    /// lives in `HeatMap::live`, so nothing observable changes.
    fn compact(&mut self, epoch: u64) {
        let live: Vec<(u64, Slot)> = self
            .keys
            .iter()
            .zip(&self.slots)
            .filter(|&(&key, slot)| key != Self::EMPTY && slot.stamp == epoch)
            .map(|(&key, &slot)| (key, slot))
            .collect();
        // Smallest power-of-two capacity keeping the live set under the
        // same 70% bound `slot_mut` grows at.
        let mut cap = 64;
        while (live.len() + 1) * 10 > cap * 7 {
            cap *= 2;
        }
        self.keys = vec![Self::EMPTY; cap];
        self.slots = vec![Slot::default(); cap];
        self.used = live.len();
        let mask = cap - 1;
        for (key, slot) in live {
            let mut i = Self::hash(key) & mask;
            while self.keys[i] != Self::EMPTY {
                i = (i + 1) & mask;
            }
            self.keys[i] = key;
            self.slots[i] = slot;
        }
    }
}

/// Decayed per-page heat map over a sharded, epoch-versioned flat table
/// whose dense slots are lock-free-readable (see the module docs for the
/// memory model).
///
/// ```
/// use vulcan_profile::HeatMap;
/// use vulcan_vm::Vpn;
///
/// let mut heat = HeatMap::new(0.7);
/// heat.record(Vpn(1), false, 10.0);
/// heat.record(Vpn(2), true, 2.0);
/// assert_eq!(heat.hot_set(1), vec![Vpn(1)]);
/// heat.decay_epoch();
/// assert_eq!(heat.get(Vpn(1)).heat, 7.0); // decayed by 0.7
/// ```
pub struct HeatMap {
    /// Multiplier applied at each epoch (0 = pure frequency of last epoch,
    /// 1 = pure cumulative frequency).
    decay: f64,
    /// Current liveness epoch; bumped by [`HeatMap::decay_epoch`].
    /// Shared with [`HeatReader`]s so their stamp checks track decay.
    epoch: Arc<AtomicU64>,
    /// Dense slot shards, striped by VPN low bits (grown on demand).
    shards: Box<[DenseShard]>,
    /// Spill table for VPNs at or above [`DENSE_LIMIT`] (writer-private).
    spill: Spill,
    /// Keys of currently-live pages in first-record order.
    live: Vec<u64>,
    /// Lockstep reference model (oracle builds only): the exact
    /// `HashMap` semantics this flat table replaced. Every mutation is
    /// mirrored into it and the affected state diffed immediately.
    #[cfg(feature = "oracle")]
    shadow: vulcan_oracle::RefHeat,
}

impl HeatMap {
    /// A heat map with per-epoch decay factor `decay` in `[0, 1]`.
    pub fn new(decay: f64) -> HeatMap {
        assert!((0.0..=1.0).contains(&decay), "decay must be in [0,1]");
        HeatMap {
            decay,
            epoch: Arc::new(AtomicU64::new(1)),
            shards: (0..N_SHARDS)
                .map(|_| Arc::from(Vec::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            spill: Spill::new(),
            live: Vec::new(),
            #[cfg(feature = "oracle")]
            shadow: vulcan_oracle::RefHeat::new(),
        }
    }

    #[inline]
    fn epoch_now(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Swap shard `sh`'s array for one that covers slot `idx`, copying
    /// existing values. Readers holding the old array keep a consistent
    /// pre-growth view.
    fn grow_shard(&mut self, sh: usize, idx: usize) {
        let cap = (idx + 1).next_power_of_two().max(128);
        let old = &self.shards[sh];
        let mut slots: Vec<AtomicSlot> = Vec::with_capacity(cap);
        slots.extend(old.iter().map(AtomicSlot::copy_of));
        slots.resize_with(cap, AtomicSlot::default);
        self.shards[sh] = Arc::from(slots);
    }

    /// Pre-size the dense table for a footprint of `pages` pages, so the
    /// first touches of a workload don't pay incremental regrowth.
    pub fn reserve(&mut self, pages: u64) {
        let per_shard = (pages.min(DENSE_LIMIT) as usize).div_ceil(N_SHARDS);
        for sh in 0..N_SHARDS {
            if per_shard > self.shards[sh].len() {
                self.grow_shard(sh, per_shard - 1);
            }
        }
    }

    /// Record `weight` sampled accesses to `vpn`.
    #[inline]
    pub fn record(&mut self, vpn: Vpn, is_write: bool, weight: f64) {
        let epoch = self.epoch_now();
        if vpn.0 < DENSE_LIMIT {
            let (sh, idx) = dense_pos(vpn.0);
            if idx >= self.shards[sh].len() {
                self.grow_shard(sh, idx);
            }
            let slot = &self.shards[sh][idx];
            let mut stats = if slot.stamp.load(Ordering::Relaxed) == epoch {
                slot.stats_relaxed()
            } else {
                // Dead or never-seen slot: resurrect from zero, exactly
                // like a fresh map entry.
                self.live.push(vpn.0);
                PageStats::default()
            };
            stats.heat += weight;
            if is_write {
                stats.writes += weight;
            } else {
                stats.reads += weight;
            }
            slot.write(epoch, stats);
        } else {
            let slot = self.spill.slot_mut(vpn.0);
            if slot.stamp != epoch {
                slot.stats = PageStats::default();
                slot.stamp = epoch;
                self.live.push(vpn.0);
            }
            slot.stats.heat += weight;
            if is_write {
                slot.stats.writes += weight;
            } else {
                slot.stats.reads += weight;
            }
        }
        #[cfg(feature = "oracle")]
        {
            self.shadow.record(vpn.0, is_write, weight);
            self.oracle_check_key(vpn.0);
        }
    }

    /// Apply one epoch of exponential decay, dropping negligible pages.
    ///
    /// Bumping the epoch retires every slot at once; survivors are
    /// re-stamped during the sweep, so pruned pages cost no writes.
    pub fn decay_epoch(&mut self) {
        let epoch = self.epoch_now() + 1;
        self.epoch.store(epoch, Ordering::Relaxed);
        let d = self.decay;
        let HeatMap {
            shards,
            spill,
            live,
            ..
        } = self;
        let mut live_spill = 0usize;
        live.retain(|&key| {
            if key < DENSE_LIMIT {
                let (sh, idx) = dense_pos(key);
                let slot = &shards[sh][idx];
                let mut stats = slot.stats_relaxed();
                stats.heat *= d;
                stats.reads *= d;
                stats.writes *= d;
                if stats.heat >= PRUNE_THRESHOLD {
                    slot.write(epoch, stats);
                    true
                } else {
                    false
                }
            } else {
                let i = spill.find(key).expect("live key is in the spill table");
                let slot = &mut spill.slots[i];
                slot.stats.heat *= d;
                slot.stats.reads *= d;
                slot.stats.writes *= d;
                if slot.stats.heat >= PRUNE_THRESHOLD {
                    slot.stamp = epoch;
                    live_spill += 1;
                    true
                } else {
                    false
                }
            }
        });
        // Reclaim spill capacity once dead keys dominate: `used` counts
        // distinct keys ever inserted, so sparse-VPN churn would grow
        // the table forever. The 2× hysteresis (compaction resets
        // `used` to the live count) keeps this amortized O(1).
        if spill.used > (2 * live_spill).max(64) {
            spill.compact(epoch);
        }
        #[cfg(feature = "oracle")]
        {
            self.shadow.decay(d, PRUNE_THRESHOLD);
            self.oracle_check_live_set();
        }
    }

    /// Statistics for one page (zero if never sampled).
    #[inline]
    pub fn get(&self, vpn: Vpn) -> PageStats {
        let epoch = self.epoch_now();
        if vpn.0 < DENSE_LIMIT {
            let (sh, idx) = dense_pos(vpn.0);
            match self.shards[sh].get(idx) {
                Some(s) if s.stamp.load(Ordering::Relaxed) == epoch => s.stats_relaxed(),
                _ => PageStats::default(),
            }
        } else {
            match self.spill.find(vpn.0) {
                Some(i) if self.spill.slots[i].stamp == epoch => self.spill.slots[i].stats,
                _ => PageStats::default(),
            }
        }
    }

    /// Remove a page's statistics (e.g. after unmap).
    pub fn forget(&mut self, vpn: Vpn) {
        let epoch = self.epoch_now();
        if vpn.0 < DENSE_LIMIT {
            let (sh, idx) = dense_pos(vpn.0);
            match self.shards[sh].get(idx) {
                Some(s) if s.stamp.load(Ordering::Relaxed) == epoch => {
                    s.write(0, PageStats::default()) // 0 is never a current epoch
                }
                _ => return,
            }
        } else {
            match self.spill.find(vpn.0) {
                Some(i) if self.spill.slots[i].stamp == epoch => self.spill.slots[i].stamp = 0,
                _ => return,
            }
        }
        self.live.retain(|&k| k != vpn.0);
        #[cfg(feature = "oracle")]
        {
            self.shadow.forget(vpn.0);
            self.oracle_check_key(vpn.0);
            vulcan_oracle::check(
                vulcan_oracle::Structure::Heat,
                self.live.len() == self.shadow.len(),
                Some(vpn.0),
                || {
                    format!(
                        "after forget: flat live count {} != reference {}",
                        self.live.len(),
                        self.shadow.len()
                    )
                },
            );
        }
    }

    /// Number of tracked pages.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no pages are tracked.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Iterate `(vpn, stats)` over live pages in first-record order.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, PageStats)> + '_ {
        self.live.iter().map(move |&k| (Vpn(k), self.get(Vpn(k))))
    }

    /// A lock-free read handle over the dense shards as they are now.
    /// See [`HeatReader`] for the visibility contract.
    pub fn reader(&self) -> HeatReader {
        HeatReader {
            epoch: Arc::clone(&self.epoch),
            shards: self.shards.clone(),
        }
    }

    /// The `n` extreme pages under `cmp` (a total order), best first:
    /// select the prefix, then sort only that prefix. Identical output
    /// to sorting everything and truncating, without the full sort.
    fn top_by(
        &self,
        n: usize,
        cmp: impl Fn(&(Vpn, f64), &(Vpn, f64)) -> std::cmp::Ordering,
    ) -> Vec<(Vpn, f64)> {
        let mut v: Vec<(Vpn, f64)> = self.iter().map(|(vpn, s)| (vpn, s.heat)).collect();
        if n == 0 {
            return Vec::new();
        }
        if n < v.len() {
            v.select_nth_unstable_by(n - 1, &cmp);
            v.truncate(n);
        }
        v.sort_by(cmp);
        v
    }

    /// The `n` hottest pages, hottest first (ties by VPN for determinism).
    pub fn hottest(&self, n: usize) -> Vec<(Vpn, f64)> {
        let got = self.top_by(n, |a, b| {
            b.1.partial_cmp(&a.1)
                .expect("heat is never NaN")
                .then(a.0 .0.cmp(&b.0 .0))
        });
        #[cfg(feature = "oracle")]
        self.oracle_check_selection(&got, n, true);
        got
    }

    /// The `n` coldest pages among those tracked, coldest first.
    pub fn coldest(&self, n: usize) -> Vec<(Vpn, f64)> {
        let got = self.top_by(n, |a, b| {
            a.1.partial_cmp(&b.1)
                .expect("heat is never NaN")
                .then(a.0 .0.cmp(&b.0 .0))
        });
        #[cfg(feature = "oracle")]
        self.oracle_check_selection(&got, n, false);
        got
    }

    /// Oracle builds: diff one key's flat-table view against the shadow
    /// `HashMap` model — bitwise, since both sides apply the identical
    /// arithmetic in the identical order.
    #[cfg(feature = "oracle")]
    fn oracle_check_key(&self, key: u64) {
        let got = self.get(Vpn(key));
        let want = self.shadow.get(key);
        vulcan_oracle::check(
            vulcan_oracle::Structure::Heat,
            got.heat == want.heat && got.reads == want.reads && got.writes == want.writes,
            Some(key),
            || format!("flat {got:?} != reference {want:?}"),
        );
    }

    /// Oracle builds: after `decay_epoch`, the surviving live set (and
    /// every survivor's stats) must equal the reference's retained set.
    #[cfg(feature = "oracle")]
    fn oracle_check_live_set(&self) {
        vulcan_oracle::check(
            vulcan_oracle::Structure::Heat,
            self.live.len() == self.shadow.len(),
            None,
            || {
                format!(
                    "after decay: flat live count {} != reference {}",
                    self.live.len(),
                    self.shadow.len()
                )
            },
        );
        for &key in &self.live {
            vulcan_oracle::check(
                vulcan_oracle::Structure::Heat,
                self.shadow.contains(key),
                Some(key),
                || "flat live key not tracked by reference".to_string(),
            );
            self.oracle_check_key(key);
        }
    }

    /// Oracle builds: the `select_nth_unstable_by` selection must equal
    /// a full sort of the reference model.
    #[cfg(feature = "oracle")]
    fn oracle_check_selection(&self, got: &[(Vpn, f64)], n: usize, hottest: bool) {
        let want = self.shadow.top_heat(n, hottest);
        let ok = got.len() == want.len()
            && got
                .iter()
                .zip(&want)
                .all(|(g, w)| g.0 .0 == w.0 && g.1 == w.1);
        vulcan_oracle::check(vulcan_oracle::Structure::Heat, ok, None, || {
            format!("selection (n={n}, hottest={hottest}): flat {got:?} != reference {want:?}")
        });
    }

    /// Capacity of the spill table, in slots (diagnostics; bounded-growth
    /// tests assert churned-through sparse VPNs don't grow it forever).
    pub fn spill_capacity(&self) -> usize {
        self.spill.keys.len()
    }

    /// Total heat across all pages.
    pub fn total_heat(&self) -> f64 {
        self.iter().map(|(_, s)| s.heat).sum()
    }

    /// The hot set under a capacity budget: hottest pages whose count fits
    /// `budget_pages` (Memtis-style capacity-based classification).
    pub fn hot_set(&self, budget_pages: usize) -> Vec<Vpn> {
        self.hottest(budget_pages)
            .into_iter()
            .map(|(v, _)| v)
            .collect()
    }
}

impl vulcan_json::Snapshot for HeatMap {
    /// Live pages travel as the `live` key list (first-record order is
    /// behavioral: it is the map's iteration order) plus parallel
    /// bit-exact stat arrays. The spill table is serialized **verbatim**
    /// — keys (dead ones included), stamps, stats and the `used`
    /// counter — because compaction hysteresis depends on the history of
    /// distinct keys ever inserted, not just the live set (ISSUE 10
    /// satellite: spillover compaction hysteresis is hidden state).
    /// Dense shard capacities are wall-clock-only and rebuilt on demand.
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::snap;
        let mut heat = Vec::with_capacity(self.live.len());
        let mut reads = Vec::with_capacity(self.live.len());
        let mut writes = Vec::with_capacity(self.live.len());
        for &key in &self.live {
            let s = self.get(Vpn(key));
            heat.push(s.heat);
            reads.push(s.reads);
            writes.push(s.writes);
        }
        let spill_stamps: Vec<u64> = self.spill.slots.iter().map(|s| s.stamp).collect();
        let spill_heat: Vec<f64> = self.spill.slots.iter().map(|s| s.stats.heat).collect();
        let spill_reads: Vec<f64> = self.spill.slots.iter().map(|s| s.stats.reads).collect();
        let spill_writes: Vec<f64> = self.spill.slots.iter().map(|s| s.stats.writes).collect();
        snap::obj(vec![
            ("decay", snap::f64_value(self.decay)),
            ("epoch", snap::u64_value(self.epoch_now())),
            ("live", snap::u64_array(&self.live)),
            ("heat", snap::f64_array(&heat)),
            ("reads", snap::f64_array(&reads)),
            ("writes", snap::f64_array(&writes)),
            ("spill_keys", snap::u64_array(&self.spill.keys)),
            ("spill_stamps", snap::u64_array(&spill_stamps)),
            ("spill_heat", snap::f64_array(&spill_heat)),
            ("spill_reads", snap::f64_array(&spill_reads)),
            ("spill_writes", snap::f64_array(&spill_writes)),
            ("spill_used", snap::u64_value(self.spill.used as u64)),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        let decay = snap::field_f64(v, "decay")?;
        if !(0.0..=1.0).contains(&decay) {
            return Err(format!("decay {decay} out of [0,1]"));
        }
        let epoch = snap::field_u64(v, "epoch")?;
        let live = snap::array_u64(snap::field(v, "live")?)?;
        let heat = snap::array_f64(snap::field(v, "heat")?)?;
        let reads = snap::array_f64(snap::field(v, "reads")?)?;
        let writes = snap::array_f64(snap::field(v, "writes")?)?;
        if heat.len() != live.len() || reads.len() != live.len() || writes.len() != live.len() {
            return Err("heat-map stat arrays disagree with live key list".into());
        }
        let spill_keys = snap::array_u64(snap::field(v, "spill_keys")?)?;
        if !spill_keys.is_empty() && !spill_keys.len().is_power_of_two() {
            return Err("spill capacity must be a power of two".into());
        }
        let spill_stamps = snap::array_u64(snap::field(v, "spill_stamps")?)?;
        let spill_heat = snap::array_f64(snap::field(v, "spill_heat")?)?;
        let spill_reads = snap::array_f64(snap::field(v, "spill_reads")?)?;
        let spill_writes = snap::array_f64(snap::field(v, "spill_writes")?)?;
        if [
            spill_stamps.len(),
            spill_heat.len(),
            spill_reads.len(),
            spill_writes.len(),
        ]
        .iter()
        .any(|&n| n != spill_keys.len())
        {
            return Err("spill arrays disagree with spill capacity".into());
        }
        let spill = Spill {
            slots: spill_stamps
                .iter()
                .zip(spill_heat.iter().zip(spill_reads.iter().zip(&spill_writes)))
                .map(|(&stamp, (&heat, (&reads, &writes)))| Slot {
                    stats: PageStats {
                        heat,
                        reads,
                        writes,
                    },
                    stamp,
                })
                .collect(),
            keys: spill_keys,
            used: usize::try_from(snap::field_u64(v, "spill_used")?)
                .map_err(|_| "spill_used out of range".to_string())?,
        };
        let mut map = HeatMap::new(decay);
        map.epoch.store(epoch, Ordering::Relaxed);
        map.spill = spill;
        for (i, &key) in live.iter().enumerate() {
            let stats = PageStats {
                heat: heat[i],
                reads: reads[i],
                writes: writes[i],
            };
            if key < DENSE_LIMIT {
                let (sh, idx) = dense_pos(key);
                if idx >= map.shards[sh].len() {
                    map.grow_shard(sh, idx);
                }
                map.shards[sh][idx].write(epoch, stats);
            } else {
                let j = map
                    .spill
                    .find(key)
                    .ok_or_else(|| format!("live spill key {key} missing from spill table"))?;
                if map.spill.slots[j].stamp != epoch {
                    return Err(format!("live spill key {key} has a dead stamp"));
                }
            }
            #[cfg(feature = "oracle")]
            map.shadow.set_exact(
                key,
                vulcan_oracle::RefStats {
                    heat: stats.heat,
                    reads: stats.reads,
                    writes: stats.writes,
                },
            );
        }
        map.live = live;
        Ok(map)
    }
}

impl Clone for HeatMap {
    /// Deep copy: fresh shard arrays and a fresh (unshared) epoch
    /// counter, so the clone's readers never observe the original.
    fn clone(&self) -> HeatMap {
        HeatMap {
            decay: self.decay,
            epoch: Arc::new(AtomicU64::new(self.epoch_now())),
            shards: self
                .shards
                .iter()
                .map(|sh| Arc::from(sh.iter().map(AtomicSlot::copy_of).collect::<Vec<_>>()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            spill: self.spill.clone(),
            live: self.live.clone(),
            #[cfg(feature = "oracle")]
            shadow: self.shadow.clone(),
        }
    }
}

impl fmt::Debug for HeatMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HeatMap")
            .field("decay", &self.decay)
            .field("epoch", &self.epoch_now())
            .field("live_pages", &self.live.len())
            .field("spill_capacity", &self.spill.keys.len())
            .finish_non_exhaustive()
    }
}

/// A lock-free, concurrent read handle over a [`HeatMap`]'s dense
/// shards.
///
/// Reads go through each slot's seqlock: they spin (never block, never
/// take a lock) while an update is in flight and retry if one raced the
/// read, so a returned [`PageStats`] is always an untorn snapshot some
/// writer actually produced. The handle snapshots the shard arrays at
/// creation: pages first recorded after a shard *grows* past the
/// snapshot read as cold, as do spill-range VPNs (at or above the dense
/// limit) — monitoring-grade visibility, while the writer-thread
/// [`HeatMap::get`] stays exact.
#[derive(Clone)]
pub struct HeatReader {
    epoch: Arc<AtomicU64>,
    shards: Box<[DenseShard]>,
}

impl HeatReader {
    /// Statistics for one page (zero if never sampled, dead, beyond the
    /// snapshot, or in the spill range).
    pub fn get(&self, vpn: Vpn) -> PageStats {
        if vpn.0 >= DENSE_LIMIT {
            return PageStats::default();
        }
        let (sh, idx) = dense_pos(vpn.0);
        let Some(slot) = self.shards[sh].get(idx) else {
            return PageStats::default();
        };
        loop {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let stamp = slot.stamp.load(Ordering::Relaxed);
            let stats = slot.stats_relaxed();
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) == s1 {
                return if stamp == self.epoch.load(Ordering::Relaxed) {
                    stats
                } else {
                    PageStats::default()
                };
            }
        }
    }
}

impl fmt::Debug for HeatReader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HeatReader")
            .field("epoch", &self.epoch.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut h = HeatMap::new(0.5);
        h.record(Vpn(1), false, 1.0);
        h.record(Vpn(1), true, 2.0);
        let s = h.get(Vpn(1));
        assert_eq!(s.heat, 3.0);
        assert_eq!(s.reads, 1.0);
        assert_eq!(s.writes, 2.0);
        assert!((s.write_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_page_is_cold() {
        let h = HeatMap::new(0.5);
        assert_eq!(h.get(Vpn(42)), PageStats::default());
        assert_eq!(h.get(Vpn(42)).write_ratio(), 0.0);
    }

    #[test]
    fn decay_halves_and_prunes() {
        let mut h = HeatMap::new(0.5);
        h.record(Vpn(1), false, 8.0);
        h.record(Vpn(2), false, 0.001);
        h.decay_epoch();
        assert_eq!(h.get(Vpn(1)).heat, 4.0);
        assert_eq!(h.len(), 1, "negligible page pruned");
        for _ in 0..20 {
            h.decay_epoch();
        }
        assert!(h.is_empty(), "everything decays away eventually");
    }

    #[test]
    fn hottest_orders_and_breaks_ties_deterministically() {
        let mut h = HeatMap::new(1.0);
        h.record(Vpn(3), false, 5.0);
        h.record(Vpn(1), false, 9.0);
        h.record(Vpn(2), false, 5.0);
        let top = h.hottest(3);
        assert_eq!(top[0].0, Vpn(1));
        assert_eq!(top[1].0, Vpn(2), "tie broken by vpn");
        assert_eq!(top[2].0, Vpn(3));
        assert_eq!(h.hottest(1).len(), 1);
    }

    #[test]
    fn coldest_is_reverse_of_hottest_extremes() {
        let mut h = HeatMap::new(1.0);
        for (v, w) in [(1u64, 1.0), (2, 10.0), (3, 5.0)] {
            h.record(Vpn(v), false, w);
        }
        assert_eq!(h.coldest(1)[0].0, Vpn(1));
        assert_eq!(h.hottest(1)[0].0, Vpn(2));
    }

    #[test]
    fn hot_set_respects_budget() {
        let mut h = HeatMap::new(1.0);
        for v in 0..10u64 {
            h.record(Vpn(v), false, v as f64 + 1.0);
        }
        let hot = h.hot_set(3);
        assert_eq!(hot, vec![Vpn(9), Vpn(8), Vpn(7)]);
    }

    #[test]
    fn write_intensity_threshold() {
        let mut h = HeatMap::new(1.0);
        h.record(Vpn(1), true, 3.0);
        h.record(Vpn(1), false, 7.0);
        assert!(h.get(Vpn(1)).write_intensive(0.3));
        assert!(!h.get(Vpn(1)).write_intensive(0.5));
    }

    #[test]
    fn forget_removes() {
        let mut h = HeatMap::new(1.0);
        h.record(Vpn(1), false, 1.0);
        h.forget(Vpn(1));
        assert!(h.is_empty());
        assert_eq!(h.get(Vpn(1)), PageStats::default());
    }

    #[test]
    fn total_heat_sums() {
        let mut h = HeatMap::new(1.0);
        h.record(Vpn(1), false, 2.0);
        h.record(Vpn(2), true, 3.0);
        assert!((h.total_heat() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn spill_pages_behave_like_dense_pages() {
        let mut h = HeatMap::new(0.5);
        let far = Vpn(DENSE_LIMIT + 12_345);
        let farther = Vpn(DENSE_LIMIT * 3 + 7);
        h.record(far, false, 8.0);
        h.record(farther, true, 2.0);
        h.record(Vpn(3), false, 4.0);
        assert_eq!(h.len(), 3);
        assert_eq!(h.get(far).heat, 8.0);
        assert_eq!(h.get(farther).writes, 2.0);
        h.decay_epoch();
        assert_eq!(h.get(far).heat, 4.0);
        h.forget(far);
        assert_eq!(h.get(far), PageStats::default());
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn spill_survives_regrowth() {
        let mut h = HeatMap::new(1.0);
        // Enough distinct spill keys to force several table regrowths.
        for i in 0..500u64 {
            h.record(Vpn(DENSE_LIMIT + i * 97), false, i as f64 + 1.0);
        }
        assert_eq!(h.len(), 500);
        for i in 0..500u64 {
            assert_eq!(h.get(Vpn(DENSE_LIMIT + i * 97)).heat, i as f64 + 1.0);
        }
    }

    #[test]
    fn pruned_page_resurrects_from_zero() {
        let mut h = HeatMap::new(0.5);
        h.record(Vpn(9), true, 0.001);
        h.decay_epoch(); // 0.0005 < threshold: pruned
        assert!(h.is_empty());
        h.record(Vpn(9), false, 1.0);
        let s = h.get(Vpn(9));
        assert_eq!(s.heat, 1.0, "no stale heat from the retired slot");
        assert_eq!(s.writes, 0.0, "no stale writes from the retired slot");
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn iteration_order_is_first_record_order() {
        let mut h = HeatMap::new(1.0);
        for v in [5u64, 2, 9, DENSE_LIMIT + 1, 3] {
            h.record(Vpn(v), false, 1.0);
        }
        let order: Vec<u64> = h.iter().map(|(v, _)| v.0).collect();
        assert_eq!(order, vec![5, 2, 9, DENSE_LIMIT + 1, 3]);
    }

    /// The flat table must be observationally identical to the reference
    /// `HashMap` semantics: same survivors, same values, same selections.
    #[test]
    fn matches_reference_hashmap_semantics() {
        use std::collections::HashMap;
        let mut flat = HeatMap::new(0.7);
        let mut reference: HashMap<u64, PageStats> = HashMap::new();
        // Deterministic pseudo-random op stream (LCG).
        let mut x: u64 = 0x1234_5678;
        let mut step = || {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            x >> 33
        };
        for round in 0..50 {
            for _ in 0..200 {
                let r = step();
                let vpn = match r % 10 {
                    0..=7 => r % 512,            // dense
                    8 => DENSE_LIMIT + (r % 64), // spill
                    _ => 1024 + (r % 97),        // dense, sparser
                };
                let write = r % 3 == 0;
                let weight = ((r % 7) + 1) as f64;
                flat.record(Vpn(vpn), write, weight);
                let s = reference.entry(vpn).or_default();
                s.heat += weight;
                if write {
                    s.writes += weight;
                } else {
                    s.reads += weight;
                }
            }
            if round % 3 == 0 {
                flat.decay_epoch();
                reference.retain(|_, s| {
                    s.heat *= 0.7;
                    s.reads *= 0.7;
                    s.writes *= 0.7;
                    s.heat >= 1e-3
                });
            }
            if round % 7 == 0 {
                let victim = step() % 512;
                flat.forget(Vpn(victim));
                reference.remove(&victim);
            }
        }
        assert_eq!(flat.len(), reference.len());
        for (&vpn, s) in &reference {
            assert_eq!(flat.get(Vpn(vpn)), *s, "vpn {vpn}");
        }
        // Selection agrees with a full sort of the reference.
        let mut all: Vec<(u64, f64)> = reference.iter().map(|(&v, s)| (v, s.heat)).collect();
        all.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        let want: Vec<(Vpn, f64)> = all.iter().take(10).map(|&(v, h)| (Vpn(v), h)).collect();
        assert_eq!(flat.hottest(10), want);
        all.reverse();
        let want: Vec<(Vpn, f64)> = all.iter().take(10).map(|&(v, h)| (Vpn(v), h)).collect();
        assert_eq!(flat.coldest(10), want);
    }

    #[test]
    fn spill_capacity_stays_bounded_under_churning_sparse_vpns() {
        // Long-run resource regression: `Spill::used` counts distinct
        // keys ever inserted. A workload churning through sparse VPNs
        // (mmap/munmap cycles, drifting footprints) inserts a stream of
        // distinct spill keys that all die at the next decay; without
        // dead-slot reclamation the table grows with *history*, not
        // with the live set.
        let mut h = HeatMap::new(0.0); // decay 0: everything pruned each epoch
        for round in 0..200u64 {
            for i in 0..100u64 {
                h.record(Vpn(DENSE_LIMIT + round * 1_000 + i * 7), false, 1.0);
            }
            h.decay_epoch();
            assert!(h.is_empty(), "decay 0 prunes every page");
        }
        // 20_000 distinct keys ever, zero live. The capacity must track
        // the live set (here: empty), not the insertion history, which
        // would need ≥ 32_768 slots at 70% occupancy.
        assert!(
            h.spill_capacity() <= 1_024,
            "spill capacity {} grew with history, not live set",
            h.spill_capacity()
        );
    }

    #[test]
    fn spill_compaction_preserves_live_stats_bitwise() {
        // Hot spill pages must survive compaction with bit-identical
        // stats while churned-through cold neighbours are reclaimed.
        use std::collections::HashMap;
        let mut h = HeatMap::new(0.5);
        let mut reference: HashMap<u64, PageStats> = HashMap::new();
        let hot: Vec<u64> = (0..40).map(|i| DENSE_LIMIT + 13 + i * 101).collect();
        for round in 0..120u64 {
            for (j, &key) in hot.iter().enumerate() {
                let w = (j + 1) as f64;
                h.record(Vpn(key), j % 3 == 0, w);
                let s = reference.entry(key).or_default();
                s.heat += w;
                if j % 3 == 0 {
                    s.writes += w;
                } else {
                    s.reads += w;
                }
            }
            // Transient sparse keys that die immediately.
            for i in 0..50u64 {
                h.record(
                    Vpn(DENSE_LIMIT + 1_000_000 + round * 500 + i * 9),
                    false,
                    0.001,
                );
            }
            h.decay_epoch();
            reference.retain(|_, s| {
                s.heat *= 0.5;
                s.reads *= 0.5;
                s.writes *= 0.5;
                s.heat >= 1e-3
            });
        }
        assert_eq!(h.len(), reference.len());
        for (&key, want) in &reference {
            assert_eq!(h.get(Vpn(key)), *want, "key {key}");
        }
        assert!(
            h.spill_capacity() <= 2_048,
            "capacity {} tracks history",
            h.spill_capacity()
        );
    }

    #[test]
    fn reserve_presizes_without_changing_semantics() {
        let mut h = HeatMap::new(1.0);
        h.reserve(4_096);
        assert!(h.is_empty());
        h.record(Vpn(4_000), false, 2.0);
        assert_eq!(h.get(Vpn(4_000)).heat, 2.0);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn clone_is_deep_and_independent() {
        let mut h = HeatMap::new(0.5);
        h.record(Vpn(1), false, 4.0);
        h.record(Vpn(DENSE_LIMIT + 5), true, 2.0);
        let mut c = h.clone();
        assert_eq!(c.get(Vpn(1)), h.get(Vpn(1)));
        assert_eq!(c.get(Vpn(DENSE_LIMIT + 5)), h.get(Vpn(DENSE_LIMIT + 5)));
        c.record(Vpn(1), false, 1.0);
        c.decay_epoch();
        assert_eq!(h.get(Vpn(1)).heat, 4.0, "original untouched by clone");
        assert_eq!(c.get(Vpn(1)).heat, 2.5);
    }

    #[test]
    fn reader_matches_writer_view_single_threaded() {
        let mut h = HeatMap::new(0.5);
        for v in 0..300u64 {
            h.record(Vpn(v), v % 4 == 0, (v % 9) as f64 + 1.0);
        }
        h.decay_epoch();
        for v in 0..50u64 {
            h.record(Vpn(v), false, 2.0);
        }
        let r = h.reader();
        for v in 0..300u64 {
            assert_eq!(r.get(Vpn(v)), h.get(Vpn(v)), "vpn {v}");
        }
        assert_eq!(r.get(Vpn(9_999)), PageStats::default(), "beyond snapshot");
        assert_eq!(
            r.get(Vpn(DENSE_LIMIT + 1)),
            PageStats::default(),
            "spill range is cold through the reader"
        );
    }

    #[test]
    fn reader_tracks_decay_through_shared_epoch() {
        let mut h = HeatMap::new(0.0); // decay 0: everything dies
        h.record(Vpn(7), false, 5.0);
        let r = h.reader();
        assert_eq!(r.get(Vpn(7)).heat, 5.0);
        h.decay_epoch();
        assert_eq!(r.get(Vpn(7)), PageStats::default(), "pruned page is cold");
        h.record(Vpn(7), false, 1.0);
        assert_eq!(r.get(Vpn(7)).heat, 1.0, "resurrection visible");
    }

    /// Satellite contract: concurrent lock-free reads during a record
    /// pass never tear and never deadlock. The writer only issues reads
    /// (`is_write = false`), so every consistent snapshot satisfies
    /// `heat == reads && writes == 0` bitwise — both fields go through
    /// the identical `+= weight` / `*= decay` sequence. A torn read
    /// (heat updated, reads not) breaks the equality.
    #[test]
    fn concurrent_reads_never_tear_or_deadlock() {
        use std::sync::atomic::AtomicBool;

        let mut h = HeatMap::new(0.5);
        h.reserve(512);
        let reader = h.reader();
        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let r = reader.clone();
                let done = &done;
                scope.spawn(move || {
                    let mut x: u64 = 0xDEAD_BEEF;
                    let mut observed_hot = 0u64;
                    while !done.load(Ordering::Relaxed) {
                        x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                        let s = r.get(Vpn((x >> 33) % 512));
                        assert_eq!(s.heat.to_bits(), s.reads.to_bits(), "torn snapshot: {s:?}");
                        assert_eq!(s.writes, 0.0, "torn snapshot: {s:?}");
                        observed_hot += (s.heat > 0.0) as u64;
                    }
                    observed_hot
                });
            }
            // The single writer hammers records and decays concurrently.
            let mut x: u64 = 0x1234_5678;
            for round in 0..200 {
                for _ in 0..2_000 {
                    x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                    h.record(Vpn((x >> 33) % 512), false, ((x % 7) + 1) as f64);
                }
                if round % 10 == 0 {
                    h.decay_epoch();
                }
            }
            done.store(true, Ordering::Relaxed);
        });
        // The writer-side view stays exact throughout.
        for v in 0..512u64 {
            let s = h.get(Vpn(v));
            assert_eq!(s.heat.to_bits(), s.reads.to_bits());
        }
    }
}
